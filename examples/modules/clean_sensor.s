; A well-behaved sensor module: reads a sample, stores it into its own
; heap buffer through the (rewriter-inserted) check stubs and reports
; through the kernel's noop service.  Loaded through the normal
; rewrite -> verify pipeline, it must lint clean:
;
;   python -m repro.cli lint examples/modules/clean_sensor.s
;
; The KERNEL_NOOP symbol is the trusted domain's jump-table entry for
; the kernel noop service; harbor-lint predefines it (and the other
; KERNEL_* entries) when assembling module arguments.

sample:
    ldi r26, 0x40          ; X -> this domain's buffer (heap block)
    ldi r27, 0x06
    ldi r24, 0x2A
    st X+, r24             ; rewritten into a checked store
    st X, r24
    call tally
    ret

tally:
    lds r24, 0x0640
    inc r24
    sts 0x0641, r24        ; rewritten into hb_st_sts
    ret

report:
    call KERNEL_NOOP       ; cross-domain call into the kernel's page
    ret
