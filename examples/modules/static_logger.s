; A logger module written against its *static data span* — the
; page-aligned, boot-pinned region SDATA_D0 the layout carves from the
; top of the heap when static_data_bytes > 0.  Loaded through
; harbor-opt (or SfiSystem.load_module(..., elide=True)) the prover
; shows every store below stays inside the span on every path, so the
; run-time check stubs are elided and recorded in the ElisionManifest:
;
;   python -m repro.cli opt \
;       examples/modules/static_logger.s:logger_fill,logger_set,logger_tally \
;       --static-data 256 -o static_logger.manifest.json
;
; (name the exports: the CLI's "export every label" default would turn
; the internal lf_loop label into a jump-table entry, forcing the loop
; head to an unknown-registers state and keeping its check)
;
; The SDATA_D0 symbol is predefined by the loader's kernel symbol map
; (like the KERNEL_* entries) whenever the layout has static spans.
;
; Two provable idioms, one deliberate non-idiom:
;
; * logger_fill re-pins the pointer high byte *inside* the loop — the
;   abstract interpreter's byte-interval domain then proves X stays in
;   the SDATA_D0 page across the back edge (without the re-pin, the
;   post-increment honestly straddles two pages and the check stays);
; * logger_set masks the index with andi before adding it to the
;   page-aligned base — interval arithmetic bounds the target to the
;   first 64 bytes of the span;
; * logger_tally stores through an unconstrained heap pointer, so its
;   check is *kept*: elision is per-site, not per-module.

logger_fill:
    ldi r26, lo8(SDATA_D0)
    ldi r27, hi8(SDATA_D0)
    ldi r24, 0xA5
    ldi r25, 16
lf_loop:
    ldi r27, hi8(SDATA_D0) ; re-pin the page: loop invariant for absint
    st X+, r24             ; provably in-domain -> check elided
    dec r25
    brne lf_loop
    ldi r24, 1
    ldi r25, 0
    ret

logger_set:
    andi r24, 0x3F         ; index into the first 64 span bytes
    ldi r30, lo8(SDATA_D0)
    ldi r31, hi8(SDATA_D0)
    add r30, r24           ; page-aligned base: no carry possible
    st Z, r22              ; provably in-domain -> check elided
    ret

logger_tally:
    ldi r26, 0x40          ; X -> a heap block (dynamic ownership)
    ldi r27, 0x06
    st X, r24              ; not provable -> checked store kept
    ret
