; A deliberately miscompiled module: what a buggy (or malicious)
; compiler/rewriter would hand the node.  The loader's verifier rejects
; it; harbor-lint in --unchecked mode places the raw image and reports
; every violation with its stable rule code:
;
;   python -m repro.cli lint --unchecked examples/modules/miscompiled.s
;
; Expected findings:
;   HL001  raw store not routed through a check stub (st X+ below)
;   HL002  direct call into the jump table (0x1000 is the jump-table
;          base, domain 0's page) bypassing hb_xdom_call
;   HL003  ret not preceded by call hb_restore_ret

broken:
    ldi r26, 0x00          ; X -> 0x0C00: the safe-stack region
    ldi r27, 0x0C
    ldi r24, 0x55
    st X+, r24             ; HL001: unchecked store
    call 0x1000            ; HL002: direct jump-table call
    ret                    ; HL003: no restore stub
