; A temporally-buggy sampler: the mainline keeps a 16-bit tick counter
; at 0x0700/0x0701 that a timer ISR (__vector_1) also increments.  The
; read-modify-write in sample_poll runs with interrupts enabled, so the
; ISR can fire between the load and the store (lost update, HL019) and
; between the two bytes of the counter (torn access, HL020).  The
; safe_reset path shows the fix: the same stores inside a cli/sei
; region are interrupt-atomic and race-free.
;
;   python -m repro.cli race examples/modules/racy_sampler.s
;
; exits 1 with HL019 + HL020 findings and a two-site witness per race;
; clean_sensor.s (no ISRs) analyzes race-free and exits 0.

sample_poll:
    lds r24, 0x0700        ; tick_lo   <- torn 16-bit read (HL020)
    lds r25, 0x0701        ; tick_hi
    adiw r24, 1
    sts 0x0700, r24        ; unprotected shared write (HL019)
    sts 0x0701, r25        ; second byte of the torn write (HL020)
    ret

safe_reset:
    cli                    ; interrupt-atomic region starts here
    ldi r24, 0
    sts 0x0700, r24        ; atomic: no findings for these stores
    sts 0x0701, r24
    sei
    ret

__vector_1:
    push r24               ; timer tick: bump the low counter byte
    lds r24, 0x0700
    inc r24
    sts 0x0700, r24
    pop r24
    reti
