#!/usr/bin/env python3
"""Fault-injection campaign: how much corruption does Harbor convert
into detected faults?

A "buggy" module computes store addresses from corrupted state (a
deterministic pseudo-random generator standing in for the paper's
"programming errors are quite common"), and fires one wild store per
message.  The campaign runs the identical store sequence on a protected
and an unprotected node and classifies every store:

* benign      — landed in the module's own memory (allowed either way)
* detected    — protected node: Harbor raised a typed fault
* corruption  — unprotected node: a foreign domain's memory changed

The paper's claim is that the detected and corruption sets coincide:
Harbor catches exactly the stores that would have corrupted the node.

Run:  python examples/fault_injection.py
"""


from repro.sos import MSG_TIMER_TIMEOUT, Message, SosKernel, SosModule

TRIALS = 200
SEED = 0xC0FFEE


def lcg(seed):
    """Deterministic 16-bit pseudo-random address generator."""
    state = seed
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state >> 8


class BuggyModule(SosModule):
    """Fires one store at an 'accidentally computed' address per tick."""

    name = "buggy"

    def __init__(self):
        self.rng = lcg(SEED)
        self.buf = None
        self.attempts = []

    def init(self, ctx):
        self.buf = ctx.malloc(64)

    def handle_message(self, ctx, msg):
        # half the stores target the module's own buffer (normal
        # operation); the other half use a corrupted pointer
        r = next(self.rng)
        if r & 1:
            addr = self.buf + (r >> 1) % 64
        else:
            addr = 0x0200 + (r >> 1) % 0x0D80  # anywhere in RAM
        self.attempts.append(addr)
        ctx.store(addr, 0xEE)


def run_campaign(protected):
    kernel = SosKernel(protected=protected, restart_crashed=False)
    module = BuggyModule()
    kernel.load_module(module)
    record = kernel.modules["buggy"]
    for _ in range(TRIALS):
        record.state = "loaded"  # re-arm after contained faults
        kernel.post(Message("kernel", "buggy", MSG_TIMER_TIMEOUT))
        kernel.run()
    return kernel, module


def classify():
    prot_kernel, prot_module = run_campaign(protected=True)
    unprot_kernel, unprot_module = run_campaign(protected=False)
    assert prot_module.attempts == unprot_module.attempts, \
        "campaigns must replay the identical store sequence"

    detected = len(prot_kernel.fault_log)
    benign = TRIALS - detected
    # on the unprotected node, count stores that the protection model
    # defines as foreign: inside the memory-map-protected region but not
    # in the module's own segment.  (Stores into the module's stack
    # window — above prot_top, below the stack bound — are *legal*:
    # coarse-grained protection does not protect a domain from itself.)
    cfg = prot_kernel.harbor.memmap.config
    own = set(range(prot_module.buf, prot_module.buf + 64))
    corrupting = sum(1 for addr in unprot_module.attempts
                     if cfg.contains(addr) and addr not in own)
    return detected, benign, corrupting, prot_kernel


def main():
    print("=" * 64)
    print("Fault injection: {} wild-pointer stores, seed 0x{:X}"
          .format(TRIALS, SEED))
    print("=" * 64)
    detected, benign, corrupting, prot_kernel = classify()
    print("\nprotected node:")
    print("  benign stores (own memory)      : {:>4}".format(benign))
    print("  detected by Harbor              : {:>4}".format(detected))
    kinds = {}
    for log in prot_kernel.fault_log:
        kinds[type(log.fault).__name__] = \
            kinds.get(type(log.fault).__name__, 0) + 1
    for kind, count in sorted(kinds.items()):
        print("    {:<28}  : {:>4}".format(kind, count))
    print("\nunprotected node (identical store sequence):")
    print("  silent foreign-memory stores    : {:>4}".format(corrupting))
    print("\ndetection completeness: {} detected vs {} foreign -> {}"
          .format(detected, corrupting,
                  "EXACT" if detected == corrupting else "MISMATCH"))
    print("(Harbor converts every would-be corruption into a typed, "
          "attributable fault\n and lets every legitimate store through)")


if __name__ == "__main__":
    main()
