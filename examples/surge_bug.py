#!/usr/bin/env python3
"""The Surge bug (paper §1.2), reproduced on the SOS substrate.

"In the Surge data collection module, under certain conditions, the
invalid result of a failed function call to the Tree routing module was
being used to determine an offset into a buffer ... which would cause
some of the nodes in the network to crash.  Harbor was successfully able
to prevent the corruption and signal the invalid access."

Four scenarios:
  A. protected node, Surge loaded before Tree routing  -> fault caught
  B. unprotected node, same order                      -> silent corruption
  C. protected node, correct order                     -> normal operation
  D. fixed Surge (error code checked), wrong order     -> graceful skip

Run:  python examples/surge_bug.py
"""

from repro.sos import (
    FixedSurgeModule,
    SosKernel,
    SurgeModule,
    TreeRoutingModule,
)


def banner(text):
    print()
    print("-" * 64)
    print(text)
    print("-" * 64)


def scenario_a():
    banner("A. Protected + Surge loaded before Tree routing (the bug)")
    k = SosKernel(protected=True)
    k.set_sensor_series([42])
    k.load_module(SurgeModule())       # tree_routing is NOT loaded
    k.post_timer("surge")
    k.run()
    log = k.fault_log[0]
    print("Harbor caught it: {}".format(log.fault))
    print("  faulting module : {}".format(log.module))
    print("  module state    : {}".format(k.modules['surge'].state))
    print("  kernel & other domains unharmed; node still up")


def scenario_b():
    banner("B. Unprotected node, same order (what really happens)")
    k = SosKernel(protected=False)
    k.set_sensor_series([42])
    k.load_module(SurgeModule())
    surge_dom = k.modules["surge"].domain.did
    k.post_timer("surge")
    k.run()
    print("faults raised: {} (nobody noticed)".format(len(k.fault_log)))
    heap = k.harbor.heap
    dirty = [a for a in range(heap.start, heap.end)
             if k.harbor.load(a) == 42
             and k.harbor.memmap.owner_of(a) != surge_dom]
    for addr in dirty:
        print("silently corrupted 0x{:04x} (owner: domain {}) with the "
              "sensor sample".format(addr, k.harbor.memmap.owner_of(addr)))
    print("=> this is the class of bug that 'would cause some of the "
          "nodes in the network to crash'")


def scenario_c():
    banner("C. Protected + correct load order (why testing missed it)")
    k = SosKernel(protected=True)
    k.set_sensor_series([42, 43, 44])
    k.load_module(TreeRoutingModule())
    k.load_module(SurgeModule())
    for _ in range(3):
        k.post_timer("surge")
        k.run()
    print("faults: {}   packets radioed: {}".format(
        len(k.fault_log), len(k.radio_log)))
    for pkt in k.radio_log:
        print("  packet seq={} from {}".format(pkt["seq"], pkt["src"]))


def scenario_d():
    banner("D. Fixed Surge (checks the error code), wrong order")
    k = SosKernel(protected=True)
    k.set_sensor_series([42])
    k.load_module(FixedSurgeModule())
    k.post_timer("surge")
    k.run()
    surge = k.modules["surge"].module
    print("faults: {}   samples skipped gracefully: {}".format(
        len(k.fault_log), surge.skipped))


def main():
    print("=" * 64)
    print("Reproducing the paper's Surge / Tree-routing anecdote")
    print("=" * 64)
    scenario_a()
    scenario_b()
    scenario_c()
    scenario_d()


if __name__ == "__main__":
    main()
