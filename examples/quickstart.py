#!/usr/bin/env python3
"""Quickstart: the Harbor protection model in five minutes.

Walks the components of Figure 1 on the behavioural golden model:
protection domains, the memory map, checked stores, ownership transfer,
cross-domain calls with stack bounds — and what Harbor catches.

Run:  python examples/quickstart.py
"""

from repro.core import (
    HarborSystem,
    MemMapFault,
    ProtectionFault,
    StackBoundFault,
)


def main():
    print("=" * 64)
    print("Harbor quickstart (behavioural golden model)")
    print("=" * 64)

    # A node with the paper's default layout: 8-byte blocks, 4-bit
    # multi-domain memory map over heap + safe stack.
    node = HarborSystem()
    print("protected region : 0x{:04x}-0x{:04x}".format(
        node.memmap.config.prot_bottom, node.memmap.config.prot_top))
    print("memory map size  : {} bytes".format(
        node.memmap.config.table_bytes))

    # -- 1. protection domains ----------------------------------------
    alice = node.create_domain("alice")
    bob = node.create_domain("bob")
    print("\n[1] domains: {}, {}".format(alice, bob))

    # -- 2. ownership-tracked allocation --------------------------------
    buf_a = node.malloc(24, alice)
    buf_b = node.malloc(24, bob)
    print("[2] alice's buffer at 0x{:04x} (owner {}), bob's at 0x{:04x}"
          .format(buf_a, node.memmap.owner_of(buf_a), buf_b))

    # -- 3. checked stores -------------------------------------------------
    node.store(buf_a, 0x42, alice)
    print("[3] alice stores into her buffer: ok "
          "(value {})".format(node.load(buf_a)))
    try:
        node.store(buf_a, 0x66, bob)
    except MemMapFault as exc:
        print("    bob stores into alice's buffer: {}".format(exc))
    print("    alice's data intact: {}".format(node.load(buf_a)))

    # -- 4. ownership transfer (the SOS message idiom) ---------------------
    node.change_own(buf_a, bob, alice)
    node.store(buf_a, 0x77, bob)
    print("[4] after change_own, bob may write it (value {})"
          .format(node.load(buf_a)))

    # -- 5. cross-domain call: jump table + stack bound ----------------------
    entry = node.jump_table.entry_addr(alice.did, 0)
    node.sp = 0x0E00  # pretend the kernel has frames below RAMEND
    callee = node.cross_domain_call(entry)
    print("[5] cross-domain call through jump-table entry 0x{:04x} "
          "-> domain {}".format(entry, callee))
    print("    stack bound is now 0x{:04x}".format(
        node.control.stack_bound))
    try:
        node.store(0x0E01, 1)  # above the bound: the caller's frames
    except StackBoundFault as exc:
        print("    writing the caller's stack: {}".format(exc))
    node.cross_domain_return()
    print("    returned; current domain = {} (trusted)".format(
        node.cur_domain))

    # -- 6. what an unprotected node does instead -----------------------------
    node.store_unchecked(buf_b, 0x99)
    print("\n[6] without Harbor the same store silently corrupts "
          "(buf_b now 0x{:02x})".format(node.load(buf_b)))
    print("\nNext: examples/surge_bug.py reproduces the bug the paper's "
          "deployment caught;\n      examples/sandbox_a_module.py runs "
          "the real rewriter/verifier toolchain;\n      "
          "examples/umpu_node.py runs the hardware-accelerated system.")


if __name__ == "__main__":
    main()
