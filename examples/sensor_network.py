#!/usr/bin/env python3
"""A multi-hop sensor network, with and without Harbor.

The paper opens with the deployment story: "current and upcoming sensor
network deployments require high availability ... bugs in any part of
the software can easily bring down an entire network."  This example
builds an 8-node collection tree running Surge + Tree routing, injects
the paper's bug on two nodes (they lose their route), and compares the
network-level outcome protected vs unprotected.

Topology (node 0 is the sink)::

        0
       / \\
      1   2
     / \\   \\
    3   4   5
    |
    6       7*        (* node 7 is isolated: no route)

Run:  python examples/sensor_network.py
"""

from repro.sos import SensorNetwork, SurgeModule

LINKS = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 6)]
NODES = list(range(8))  # node 7 has no link: the paper's rare condition
ROUNDS = 3


def build(protected):
    net = SensorNetwork(protected=protected)
    for node_id in NODES:
        net.add_node(node_id,
                     sensor_series=[node_id * 16 + k
                                    for k in range(1, ROUNDS + 2)])
    for a, b in LINKS:
        net.link(a, b)
    net.build_tree(0)
    net.install_collection(surge_cls=SurgeModule)
    return net


def run_campaign(protected):
    net = build(protected)
    for _ in range(ROUNDS):
        net.sample_all()
        net.run(rounds=5)
    return net


def describe(net, label):
    samplers = sum(1 for n in net.nodes.values() if not n.is_sink)
    expected = samplers * ROUNDS
    print("\n--- {} ---".format(label))
    print("packets at sink : {:>3} / {} expected from {} samplers"
          .format(len(net.delivered), expected, samplers))
    by_hops = {}
    for pkt in net.delivered:
        by_hops[pkt.hops] = by_hops.get(pkt.hops, 0) + 1
    for hops in sorted(by_hops):
        print("  {} hop(s): {} packets".format(hops, by_hops[hops]))
    crashed = net.crashed_modules()
    if crashed:
        print("crashed modules  :", crashed)
    faults = net.fault_report()
    for node_id, messages in faults.items():
        print("node {} faults    : {}".format(node_id, messages[0]))
    if not faults:
        print("faults           : none reported")
    return net


def count_corruption(net):
    total = 0
    for node in net.nodes.values():
        kernel = node.kernel
        surge = kernel.modules.get("surge")
        if surge is None:
            continue
        own = surge.domain.did
        heap = kernel.harbor.heap
        for addr in range(heap.start, heap.end):
            value = kernel.harbor.load(addr)
            if value and (value & 0x0F) in range(1, ROUNDS + 2) \
                    and kernel.harbor.memmap.owner_of(addr) != own \
                    and (value >> 4) == node.node_id:
                total += 1
    return total


def main():
    print("=" * 64)
    print("8-node collection tree; node 7 is isolated (no route) and")
    print("runs the buggy Surge — the paper's 'rare condition'")
    print("=" * 64)

    protected = describe(run_campaign(True), "WITH Harbor (protected)")
    unprotected = describe(run_campaign(False),
                           "WITHOUT Harbor (unprotected)")

    print("\nsummary:")
    print("  protected  : the fault is *detected and attributed* "
          "(node 7, surge, MemMapFault);")
    print("               every routed node keeps delivering ({} pkts)"
          .format(len(protected.delivered)))
    dirty = count_corruption(unprotected)
    print("  unprotected: zero faults reported, but ~{} foreign heap "
          "byte(s) now hold node 7's samples —".format(dirty))
    print("               the corruption the paper says 'would cause "
          "some of the nodes in the network to crash'")


if __name__ == "__main__":
    main()
