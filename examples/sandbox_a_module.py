#!/usr/bin/env python3
"""Sandbox a module with the real toolchain (the software-only system).

Takes an AVR assembly module, assembles it, runs it through the binary
rewriter, shows the before/after machine code, verifies the result with
the on-node verifier, loads it into a simulated node and demonstrates
both normal operation and a caught attack — the full §4 pipeline.

Run:  python examples/sandbox_a_module.py
"""

from repro.asm import assemble, disassemble
from repro.core.faults import MemMapFault
from repro.sfi import SfiSystem
from repro.sfi.verifier import VerifyError

MODULE_SRC = """
; a tiny sensor-logging module (unsandboxed source)
.equ KERNEL_MALLOC = {KERNEL_MALLOC}

log_sample:                 ; r24:25 = sample -> r24:25 = record addr
    push r16
    push r17
    movw r16, r24
    ldi r24, 8
    ldi r25, 0
    call KERNEL_MALLOC      ; cross-domain call into the kernel
    cp r24, r1
    cpc r25, r1
    breq ls_done
    movw r26, r24
    st X+, r16              ; store the sample into our record
    st X, r17
ls_done:
    pop r17
    pop r16
    ret

scribble:                   ; r24:25 = any address, r22 = value
    movw r26, r24
    mov r18, r22
    st X, r18
    ret
"""


def show_listing(title, program, limit=14):
    print("\n{}:".format(title))
    count = 0
    symbols_by_addr = {v: k for k, v in program.symbols.items()}
    for line in disassemble(program):
        label = symbols_by_addr.get(line.byte_addr)
        if label and not label.startswith("HB_"):
            print("  {}:".format(label))
        print("    {:05x}:  {}".format(line.byte_addr, line.text))
        count += 1
        if count >= limit:
            print("    ... ({} more instructions)".format(
                sum(1 for _ in disassemble(program)) - limit))
            break


def main():
    print("=" * 64)
    print("The SFI pipeline: assemble -> rewrite -> verify -> load -> run")
    print("=" * 64)

    node = SfiSystem()
    src = MODULE_SRC.format(**{k: hex(v)
                               for k, v in node.kernel_symbols().items()})
    module = assemble(src, "sensorlog")
    print("\n[1] assembled module: {} bytes".format(module.code_bytes))
    show_listing("original machine code", module)

    # --- rewrite + verify + load (what load_module does) ----------------
    loaded = node.load_module(module, "sensorlog",
                              exports=("log_sample", "scribble"))
    stats = loaded.rewrite_stats
    print("\n[2] rewritten: {} -> {} bytes at 0x{:04x}".format(
        stats["size_in"], stats["size_out"], loaded.start))
    print("    stores sandboxed      : {}".format(stats["stores"]))
    print("    cross-domain calls    : {}".format(stats["cross_calls"]))
    print("    prologues/epilogues   : {}/{}".format(stats["prologues"],
                                                     stats["rets"]))
    rewritten = node.rewriter.rewrite(module, loaded.start,
                                      exports=("log_sample", "scribble"))
    show_listing("sandboxed machine code", rewritten.program, limit=18)
    print("\n[3] on-node verifier accepted the binary "
          "(it runs on every node and does not trust the rewriter)")

    # --- the verifier rejecting a malicious image -------------------------
    evil = assemble(".org {}\nf:\n    st X, r5\n    ret\n".format(
        node._next_load), "evil")
    try:
        node.verifier.verify(evil, node._next_load, node._next_load + 4)
    except VerifyError as exc:
        print("    (a raw store smuggled past the rewriter is rejected: "
              "{})".format(exc))

    # --- run it ------------------------------------------------------------
    record, cycles = node.call_export("sensorlog", "log_sample", 0x1234)
    print("\n[4] log_sample(0x1234) -> record at 0x{:04x} "
          "({} cycles)".format(record, cycles))
    print("    record contents : 0x{:04x}".format(
        node.machine.read_word(record)))
    print("    record owner    : domain {} (the module)".format(
        node.memmap.owner_of(record)))

    victim = node.malloc(8)
    print("\n[5] attack: module scribbles on kernel memory at 0x{:04x}"
          .format(victim))
    try:
        node.call_export("sensorlog", "scribble", victim, ("u8", 0x66))
    except MemMapFault as exc:
        print("    caught at run time: {}".format(exc))
    print("    kernel memory intact: 0x{:02x}".format(
        node.machine.memory.read_data(victim)))


if __name__ == "__main__":
    main()
