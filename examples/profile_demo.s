; A small workload for the observability CLI:
;
;   python -m repro.cli profile examples/profile_demo.s --entry main --umpu
;   python -m repro.cli trace   examples/profile_demo.s --entry main --umpu -o trace.json
;
; Nested calls exercise the safe-stack unit's return-address
; redirection, the fill loop produces a steady stream of bus stores,
; and the retire/control-transfer events make a readable Chrome trace.
; See docs/observability.md.

main:
    ldi r24, 8
outer:
    call work
    dec r24
    brne outer
    ret

work:
    ldi r26, 0x00
    ldi r27, 0x03           ; X = 0x0300 (inside the protected region)
    ldi r18, 16
    ldi r19, 0xA5
fill:
    st X+, r19
    dec r18
    brne fill
    call leaf
    ret

leaf:
    nop
    ret
