#!/usr/bin/env python3
"""A node with the UMPU hardware extensions (the paper's second system).

The same module binary runs *unmodified* — no rewriting — because the
checks live in the MMC, the safe-stack unit and the domain tracker.
This example boots a two-module node, drives cross-domain traffic,
provokes a fault, and compares the protection overhead against the
software-only system on an identical workload.

Run:  python examples/umpu_node.py
"""

from repro.asm import assemble
from repro.core.faults import MemMapFault
from repro.umpu import HarborLayout, UmpuMachine

LAYOUT = HarborLayout()
JT_DOM0 = LAYOUT.jt_base            # domain 0's jump-table page
JT_DOM1 = LAYOUT.jt_base + 512      # domain 1's

NODE_SRC = """
; ---- domain 0: a counter service --------------------------------
.org 0x2000
counter_service:            ; increments its counter, returns it
    lds r24, 0x0400
    inc r24
    sts 0x0400, r24         ; store into domain 0's segment
    ret

; ---- domain 1: a client ------------------------------------------
.org 0x2800
client_tick:                ; calls the counter service across domains
    call {jt0:#x}
    sts 0x0480, r24         ; cache the result in domain 1's segment
    ret
client_attack:              ; tries to bump the counter directly
    ldi r24, 99
    sts 0x0400, r24
    ret

; ---- jump tables ---------------------------------------------------
.org {jt0:#x}
    jmp counter_service
.org {jt1:#x}
    jmp client_tick
""".format(jt0=JT_DOM0, jt1=JT_DOM1)


def build_node():
    machine = UmpuMachine(assemble(NODE_SRC, "umpu_node"), layout=LAYOUT)
    # the trusted runtime's boot work: owned segments + code regions
    machine.memmap.set_segment(0x0400, 32, 0)
    machine.memmap.set_segment(0x0480, 32, 1)
    machine.tracker.register_code_region(0, 0x2000, 0x2800)
    machine.tracker.register_code_region(1, 0x2800, 0x3000)
    return machine


def main():
    print("=" * 64)
    print("UMPU: hardware-accelerated Harbor "
          "(same ISA, no binary rewriting)")
    print("=" * 64)

    node = build_node()
    print("\nUMPU registers after boot:")
    for name, value in node.regs.dump().items():
        print("  {:<16} = 0x{:04x}".format(name, value))

    # -- cross-domain traffic -------------------------------------------
    print("\n[1] client (domain 1) calls the counter service "
          "(domain 0) three times:")
    for _ in range(3):
        node.enter_domain(1)
        cycles = node.call("client_tick")
        print("    counter={}  cached by client={}  ({} cycles, "
              "x-calls so far: {})".format(
                  node.memory.read_data(0x0400),
                  node.memory.read_data(0x0480),
                  cycles, node.tracker.cross_calls))

    # -- hardware fault ---------------------------------------------------
    print("\n[2] client tries to bump the counter directly:")
    node.enter_domain(1)
    try:
        node.call("client_attack")
    except MemMapFault as exc:
        print("    MMC exception: {}".format(exc))
    print("    counter intact: {}".format(node.memory.read_data(0x0400)))

    # -- the cost of protection -----------------------------------------------
    print("\n[3] protection overhead on this workload:")
    node = build_node()
    node.enter_domain(1)
    protected = node.call("client_tick")
    node2 = build_node()
    with node2.protection_disabled():
        node2.enter_domain(1)
        unprotected = node2.call("client_tick")
    print("    protected   : {} cycles".format(protected))
    print("    unprotected : {} cycles".format(unprotected))
    print("    overhead    : {} cycles (= cross-domain call 5 + jump "
          "redirect + ret 5 + 2 checked stores)".format(
              protected - unprotected))
    pct = 100.0 * (protected - unprotected) / unprotected
    print("    relative    : {:.1f}% on this (call-heavy) workload"
          .format(pct))

    print("\n[4] the very same binary runs on a stock AVR: "
          "`Machine(assemble(NODE_SRC))` executes it identically —\n"
          "    the extensions do not change the instruction set "
          "(existing toolchains keep working).")


if __name__ == "__main__":
    main()
