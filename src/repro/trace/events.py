"""Typed trace events and the bounded ring-buffer sink.

The simulator's components (core, bus, interrupt controller, UMPU
functional units) emit structured :class:`TraceEvent` records into a
:class:`TraceSink` when one is attached.  Every emission site is guarded
by an ``is not None`` check on the component's ``trace`` attribute, so a
machine without a sink pays nothing — cycle counts are byte-identical
with tracing on or off, because tracing is purely observational.

Events carry the CPU cycle at which they occurred, which makes them
directly convertible to Chrome ``trace_event`` JSON (see
:mod:`repro.trace.export`) and lets the :class:`~repro.trace.profiler.
DomainProfiler` cross-check its per-domain attribution against the
core's cycle counter.
"""

import enum
from collections import Counter, deque
from typing import NamedTuple


class TraceEventKind(enum.Enum):
    """The event vocabulary of the observability layer."""

    INSTR_RETIRE = "instr_retire"          # one instruction completed
    CONTROL_TRANSFER = "control_transfer"  # call/ret/ijmp
    IRQ_ENTER = "irq_enter"                # interrupt taken
    IRQ_EXIT = "irq_exit"                  # reti executed
    IRQ_COALESCED = "irq_coalesced"        # raise on an already-pending line
    DOMAIN_SWITCH = "domain_switch"        # cross-domain call/ret/irq swap
    BUS_ACCESS = "bus_access"              # one data-bus transaction
    MMC_STALL = "mmc_stall"                # MMC table-access stall cycle
    SAFE_STACK_REDIRECT = "safe_stack_redirect"  # ret-addr byte redirected
    PROTECTION_FAULT = "protection_fault"  # a unit vetoed an access


class TraceEvent(NamedTuple):
    """One timestamped event.

    ``pc`` is a flash *byte* address (or None where no PC applies, e.g.
    bus transactions observed outside the core), ``domain`` the
    protection domain current at emission time (None on machines without
    protection hardware), ``data`` a small dict of event-specific
    fields.
    """

    cycle: int
    kind: TraceEventKind
    pc: int
    domain: int
    data: dict

    def get(self, key, default=None):
        return self.data.get(key, default)


class TraceSink:
    """Bounded ring buffer of :class:`TraceEvent` records.

    The buffer keeps the most recent ``capacity`` events; older ones are
    dropped (and counted in :attr:`dropped`) so a long run can't grow
    without bound — the same discipline as a hardware trace port.
    """

    def __init__(self, capacity=65536):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self.emitted = 0

    # ------------------------------------------------------------------
    def emit(self, cycle, kind, pc=None, domain=None, **data):
        """Record one event (called from instrumented components)."""
        self.emitted += 1
        self._events.append(TraceEvent(cycle, kind, pc, domain, data))

    # ------------------------------------------------------------------
    @property
    def events(self):
        return list(self._events)

    @property
    def dropped(self):
        return self.emitted - len(self._events)

    def of(self, kind):
        """Events of one :class:`TraceEventKind`, oldest first."""
        return [e for e in self._events if e.kind is kind]

    def counts(self):
        """Per-kind event counts (of the retained window)."""
        return Counter(e.kind for e in self._events)

    def clear(self):
        self._events.clear()
        self.emitted = 0

    def __iter__(self):
        return iter(self._events)

    def __len__(self):
        return len(self._events)
