"""Per-domain cycle attribution (the measurement substrate for the
paper's evaluation tables).

The paper's numbers are all cycle accounting: how many cycles the MMC
stall costs, how many the cross-domain frame sequencing costs, what a
protected workload pays end to end.  :class:`DomainProfiler` splits the
core's cycle counter into *(domain, category)* buckets so benchmarks can
assert where cycles went, not just how many there were.

Attribution protocol
--------------------

The core brackets every instruction step with :meth:`begin_step` /
:meth:`end_step`.  In between, functional units report the stall cycles
they inserted via :meth:`charge` (the MMC its table-access stall, the
domain tracker its 5-cycle frame sequencing, the interrupt controller
its 4-cycle response).  ``end_step`` attributes the remainder of the
step — total consumed minus the explicit charges — to the ``app``
category (or ``runtime-checks`` when the step's PC lay inside a
configured trusted-runtime code window).

Charges are kept pending until ``end_step`` commits them, so a step
aborted by a protection fault (whose cycles never reach the core's
counter) leaves no orphaned attribution — the invariant
``profiler.total() == core.cycles - profiler.start_cycle`` holds
exactly, and :meth:`assert_balanced` checks it.
"""

from collections import defaultdict

#: Attribution categories.
CAT_APP = "app"
CAT_RUNTIME = "runtime-checks"
CAT_MMC = "mmc-stall"
CAT_SAFE_STACK = "safe-stack"
CAT_IRQ = "irq"

CATEGORIES = (CAT_APP, CAT_RUNTIME, CAT_MMC, CAT_SAFE_STACK, CAT_IRQ)


class DomainProfiler:
    """Attributes every core cycle to a (domain, category) bucket."""

    def __init__(self, domain_provider=None, runtime_region=None):
        #: callable returning the currently-active protection domain
        #: (``regs.cur_domain`` on a UMPU machine); None on machines
        #: without protection hardware — cycles land on domain None.
        self.domain_provider = domain_provider
        #: optional (start_byte, end_byte) window of trusted-runtime
        #: code; steps fetched from inside it are ``runtime-checks``.
        self.runtime_region = runtime_region
        #: (domain, category) -> cycles
        self.cycles = defaultdict(int)
        #: core.cycles when the profiler was attached (set by
        #: :func:`repro.trace.install_profiler`).
        self.start_cycle = 0
        self._in_step = False
        self._pending = []
        self._step_domain = None
        self._step_pc_byte = None

    # --- step bracketing (called by the core) -------------------------
    def _domain(self):
        return self.domain_provider() if self.domain_provider else None

    def begin_step(self, core):
        self._in_step = True
        self._pending.clear()
        self._step_domain = self._domain()
        self._step_pc_byte = core.pc * 2

    def end_step(self, core, consumed):
        charged = 0
        for domain, category, cycles in self._pending:
            self.cycles[(domain, category)] += cycles
            charged += cycles
        self._pending.clear()
        self._in_step = False
        rest = consumed - charged
        if rest:
            category = CAT_APP
            region = self.runtime_region
            if region and region[0] <= self._step_pc_byte < region[1]:
                category = CAT_RUNTIME
            self.cycles[(self._step_domain, category)] += rest

    # --- unit-side attribution ----------------------------------------
    def charge(self, category, cycles, domain=None):
        """Attribute *cycles* of the current step to *category*.

        Outside a step bracket (host-side helpers whose stall cycles the
        callers discard) the charge is ignored, keeping the attribution
        sum equal to the core's cycle counter.
        """
        if not self._in_step or cycles <= 0:
            return
        if domain is None:
            domain = self._domain()
        self._pending.append((domain, category, cycles))

    # --- reporting ----------------------------------------------------
    def total(self):
        return sum(self.cycles.values())

    def by_domain(self):
        """domain -> total attributed cycles."""
        out = defaultdict(int)
        for (domain, _category), cycles in self.cycles.items():
            out[domain] += cycles
        return dict(out)

    def by_category(self):
        """category -> total attributed cycles."""
        out = defaultdict(int)
        for (_domain, category), cycles in self.cycles.items():
            out[category] += cycles
        return dict(out)

    def domain_breakdown(self, domain):
        """category -> cycles for one domain."""
        return {category: cycles
                for (dom, category), cycles in self.cycles.items()
                if dom == domain}

    def assert_balanced(self, core):
        """Every cycle the core spent since attach is attributed."""
        expected = core.cycles - self.start_cycle
        total = self.total()
        if total != expected:
            raise AssertionError(
                "profiler attribution out of balance: attributed {} "
                "cycles, core spent {}".format(total, expected))
        return total

    def reset(self, core=None):
        self.cycles.clear()
        self._pending.clear()
        self._in_step = False
        if core is not None:
            self.start_cycle = core.cycles
