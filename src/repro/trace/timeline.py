"""Time-travel execution timeline: cycle-indexed record/replay.

A :class:`Timeline` turns a run into a seekable recording.  While
attached it drops keyframe :class:`~repro.sim.snapshot.MachineSnapshot`
captures every *interval* cycles — on the threaded-dispatch fast loop
as well as the instrumented ``step()`` path, via the core's cycle
watermark, which rides the run loop's existing budget comparison and
therefore costs nothing per instruction.  Afterwards (or mid-fault)
:meth:`Timeline.seek` restores the nearest keyframe at-or-before the
target cycle and deterministically re-executes up to it, giving

* ``seek(cycle)`` / ``seek_instret(n)`` — land on any recorded
  instruction boundary, bit-identical to a live run stopped there
  (pinned by ``tests/test_timeline.py`` on both system harnesses);
* ``window(cycle, before, after)`` — replay-derived instruction
  windows carrying *live* register/SREG/SP values per instruction,
  consumed by :class:`~repro.trace.forensics.FlightRecorder`;
* reverse-step in :class:`~repro.trace.debug.Debugger`;
* ``replay(on_step=...)`` — a full deterministic re-execution feeding
  per-instruction callbacks, which :class:`BlockHeat` uses to count
  per-basic-block execution heat (the block-JIT candidate list).

Determinism contract: replay re-executes the same instructions over the
same restored state, so it is exact for anything the snapshot covers —
CPU, memory, protection units, pending interrupt lines.  Peripheral
device models (``core.devices``) keep state outside the snapshot and
void the guarantee; they are suspended during replay along with every
observer (trace sink, profiler, metrics, debugger, forensics, the
recorder itself), so replay never pollutes live measurements.

Host mutations between runs (argument registers, kernel recovery cell
writes) are handled by segmenting the recording: ``begin_run()`` —
wired into ``Machine.call``/``run`` and the system harness dispatch
paths — pins a keyframe at every run entry, and replay never re-executes
across a run boundary; it restores the next segment's start keyframe
instead.
"""

import json
import zlib
from bisect import bisect_right
from contextlib import contextmanager

from repro.asm.disassembler import disassemble_one
from repro.core.faults import ProtectionFault
from repro.sim.snapshot import MachineSnapshot

#: default keyframe spacing in cycles.  A keyframe is ~one data-space
#: copy (4 KiB on the ATmega103 geometry); at 10k cycles the record-mode
#: overhead stays well under 2x the uninstrumented fast loop (pinned by
#: ``benchmarks/bench_replay_overhead.py``).
DEFAULT_INTERVAL = 10_000

#: timeline JSON export schema version (bump on incompatible changes)
TIMELINE_SCHEMA = 1


class Timeline:
    """Keyframe recorder + replay engine for one machine.

    Construction attaches immediately (``machine.timeline`` is set and
    the core watermark is armed); use ``Machine.attach_timeline()``.
    The first :meth:`seek`/:meth:`window`/:meth:`replay` finalizes the
    recording: the current state is pinned as the end keyframe and the
    watermark is disarmed.  Call :meth:`record` to start a fresh
    recording from the machine's current state.
    """

    def __init__(self, machine, interval=None, keep_flash=True):
        self.machine = machine
        self.interval = int(interval) if interval else DEFAULT_INTERVAL
        if self.interval < 1:
            raise ValueError("keyframe interval must be >= 1 cycle")
        #: share one immutable flash tuple across keyframes until a
        #: flash write dirties it (runtime flash writes are rare; a
        #: 64Ki-word copy per keyframe is not)
        self.keep_flash = keep_flash
        self.recording = False
        self.finalized = False
        self._keyframes = []      # MachineSnapshots, position-ordered
        self._tags = []           # parallel: "begin"|"run"|"interval"|...
        self._segment_starts = []  # keyframe indices where a run begins
        self._kf_cycles = None    # built at finalize for bisect
        self._kf_instrets = None
        self.faults = []          # (keyframe index, code) per noted fault
        self.seeks = 0
        self.reexec_cycles = 0    # total replayed cycles across seeks
        self.last_replay_fault = None
        self._flash_cache = None
        self._flash_dirty = True
        self._suspend_depth = 0
        machine.timeline = self
        if keep_flash:
            machine.memory.flash_listeners.append(self._on_flash_write)
        self.record()

    # -- recording ------------------------------------------------------
    def record(self):
        """(Re-)arm recording from the machine's current state."""
        core = self.machine.core
        self.recording = True
        self.finalized = False
        self._kf_cycles = self._kf_instrets = None
        self._capture("begin" if not self._keyframes else "record")
        self._segment_starts.append(len(self._keyframes) - 1)
        core.watermark = core.cycles + self.interval
        core.watermark_hook = self._on_watermark
        return self

    def begin_run(self):
        """Pin a keyframe at a run entry (a new replay segment).

        ``Machine.call``/``Machine.run`` and the system harness dispatch
        paths call this right before entering ``core.run``, after any
        host-side setup (argument registers, pushed sentinel, kernel
        recovery writes) — so seeks into the new run restore that setup
        instead of trying to re-execute it.
        """
        if not self.recording:
            return
        core = self.machine.core
        self._capture("run")
        self._segment_starts.append(len(self._keyframes) - 1)
        core.watermark = core.cycles + self.interval

    def _on_watermark(self, core):
        self._capture("interval")
        core.watermark = core.cycles + self.interval

    def note_fault(self, fault):
        """Pin the at-fault state (called by ``Machine.record_fault``
        while the fault is still propagating).  The faulting instruction
        advanced PC but retired nothing, so this keyframe is the exact
        resumable post-fault state."""
        if not self.recording:
            return
        idx = self._capture("fault")
        self.faults.append((idx, getattr(fault, "code", "protection")))

    def mark(self, tag="mark"):
        """Pin a keyframe at the current state (manual bookmark)."""
        if not self.recording:
            raise RuntimeError("timeline is not recording")
        return self._capture(tag)

    def _capture(self, tag):
        machine = self.machine
        core = machine.core
        mem = machine.memory
        if self.keep_flash:
            if self._flash_dirty or self._flash_cache is None:
                self._flash_cache = tuple(mem.flash)
                self._flash_dirty = False
            flash = self._flash_cache
        else:
            flash = tuple(mem.flash)
        snap = MachineSnapshot(
            data=bytes(mem.data), flash=flash, pc=core.pc,
            cycles=core.cycles, instret=core.instret, halted=core.halted,
            extra=machine._snapshot_extra())
        self._keyframes.append(snap)
        self._tags.append(tag)
        metrics = core.metrics
        if metrics is not None:
            metrics.counter("snapshot_keyframes").inc()
        return len(self._keyframes) - 1

    def _on_flash_write(self, word_addr):
        self._flash_dirty = True

    # -- lifecycle ------------------------------------------------------
    def finalize(self):
        """Stop recording and pin the end keyframe (idempotent).  The
        first seek/window/replay calls this implicitly."""
        if self.finalized:
            return self
        if self.recording:
            self._capture("end")
            self.recording = False
            core = self.machine.core
            core.watermark = None
            core.watermark_hook = None
        self.finalized = True
        self._kf_cycles = [kf.cycles for kf in self._keyframes]
        self._kf_instrets = [kf.instret for kf in self._keyframes]
        return self

    def detach(self):
        """Disarm and detach; the recorded keyframes stay usable."""
        self.finalize()
        machine = self.machine
        try:
            machine.memory.flash_listeners.remove(self._on_flash_write)
        except ValueError:
            pass
        if machine.timeline is self:
            machine.timeline = None

    # -- introspection --------------------------------------------------
    @property
    def keyframes(self):
        return tuple(self._keyframes)

    @property
    def start_cycle(self):
        return self._keyframes[0].cycles if self._keyframes else None

    @property
    def end_cycle(self):
        if not self.finalized or not self._keyframes:
            return None
        return self._keyframes[-1].cycles

    @property
    def fault_cycle(self):
        """Cycle of the first recorded fault, or None."""
        if not self.faults:
            return None
        return self._keyframes[self.faults[0][0]].cycles

    @property
    def fault_instret(self):
        if not self.faults:
            return None
        return self._keyframes[self.faults[0][0]].instret

    def can_replay(self):
        return bool(self._keyframes)

    # -- seeking --------------------------------------------------------
    def seek(self, cycle):
        """Restore the machine to its state at *cycle*: the first
        instruction boundary at-or-after *cycle*, exactly as a live run
        stopped there by a cycle budget.  Targets at-or-past the end of
        the recording clamp to the recorded end state; targets before
        the recording raise ``ValueError``.  Returns the machine."""
        self.finalize()
        kfs = self._keyframes
        if not kfs:
            raise RuntimeError("timeline holds no keyframes")
        if cycle < kfs[0].cycles:
            raise ValueError(
                "cycle {} predates the recording (starts at {})".format(
                    cycle, kfs[0].cycles))
        self.seeks += 1
        if cycle >= kfs[-1].cycles:
            # nothing recorded past the end; there is nothing
            # deterministic to re-execute beyond it
            kfs[-1].apply(self.machine)
            return self.machine
        idx = bisect_right(self._kf_cycles, cycle) - 1
        kf = kfs[idx]
        kf.apply(self.machine)
        if kf.cycles < cycle:
            self._reexec(target_cycle=cycle,
                         end_instret=self._segment_end_instret(idx))
        return self.machine

    def seek_instret(self, n):
        """Like :meth:`seek` but indexed by retired-instruction count."""
        self.finalize()
        kfs = self._keyframes
        if not kfs:
            raise RuntimeError("timeline holds no keyframes")
        if n < kfs[0].instret:
            raise ValueError(
                "instret {} predates the recording (starts at {})".format(
                    n, kfs[0].instret))
        self.seeks += 1
        if n >= kfs[-1].instret:
            kfs[-1].apply(self.machine)
            return self.machine
        idx = bisect_right(self._kf_instrets, n) - 1
        kf = kfs[idx]
        kf.apply(self.machine)
        if kf.instret < n:
            self._reexec(target_instret=n,
                         end_instret=self._segment_end_instret(idx))
        return self.machine

    def _segment_end_instret(self, kf_index):
        """Retired-instruction count at which the segment containing
        keyframe *kf_index* ends (the next run's entry, or the end of
        the recording) — replay never steps past it, so it can never
        execute through a call sentinel into unmapped flash."""
        pos = bisect_right(self._segment_starts, kf_index)
        if pos < len(self._segment_starts):
            return self._keyframes[self._segment_starts[pos]].instret
        return self._keyframes[-1].instret

    def _segment_bounds(self, kf_index=None, instret=None):
        """(start, end) retired-instruction bounds of the run segment
        containing keyframe *kf_index* (exact), or the segment a state
        with *instret* belongs to (the latest segment on run-boundary
        ties, matching seek's keyframe tie-breaking)."""
        starts = self._segment_starts
        kfs = self._keyframes
        if kf_index is not None:
            pos = max(0, bisect_right(starts, kf_index) - 1)
        else:
            seg_instrets = [kfs[s].instret for s in starts]
            pos = max(0, bisect_right(seg_instrets, instret) - 1)
        lo = kfs[starts[pos]].instret
        hi = (kfs[starts[pos + 1]].instret if pos + 1 < len(starts)
              else kfs[-1].instret)
        return lo, hi

    # -- replay core ----------------------------------------------------
    def _reexec(self, target_cycle=None, target_instret=None,
                end_instret=None, on_step=None):
        """Deterministically re-execute from the machine's current
        (just-restored) state up to the target boundary, observers
        suspended.  Returns cycles replayed."""
        core = self.machine.core
        start = core.cycles
        self.last_replay_fault = None
        with self._suspended():
            step = core.step
            while not core.halted:
                if target_cycle is not None and core.cycles >= target_cycle:
                    break
                if end_instret is not None and core.instret >= end_instret:
                    break
                if target_instret is not None \
                        and core.instret >= target_instret:
                    break
                pc0 = core.pc
                c0 = core.cycles
                try:
                    step()
                except ProtectionFault as fault:
                    # same containment as the live run: the instruction
                    # is vetoed, PC has advanced, nothing retired
                    self.last_replay_fault = fault
                    if on_step is not None:
                        on_step(pc0 * 2, core.cycles - c0, fault)
                    break
                if on_step is not None:
                    on_step(pc0 * 2, core.cycles - c0, None)
        delta = core.cycles - start
        self.reexec_cycles += delta
        metrics = core.metrics
        if metrics is not None:
            metrics.counter("replay_reexec_cycles").inc(delta)
        return delta

    @contextmanager
    def _suspended(self):
        """Detach every observer (and the recorder itself) for the
        duration of a replay, so re-execution neither pollutes live
        trace/profile/metrics data nor re-captures keyframes.
        Re-entrant."""
        if self._suspend_depth:
            self._suspend_depth += 1
            try:
                yield
            finally:
                self._suspend_depth -= 1
            return
        machine = self.machine
        core = machine.core
        bus = machine.bus
        saved = (core.trace, core.profiler, core.metrics, core.debug,
                 core.watermark, core.watermark_hook, core.devices,
                 bus.trace, bus.profiler, bus.metrics, bus.tracer,
                 machine.forensics)
        watch_unit = getattr(core.debug, "watch_unit", None)
        if watch_unit is not None and watch_unit in bus.interposers:
            bus.interposers.remove(watch_unit)
        else:
            watch_unit = None
        core.trace = core.profiler = core.metrics = core.debug = None
        core.watermark = core.watermark_hook = None
        core.devices = []
        bus.trace = bus.profiler = bus.metrics = bus.tracer = None
        machine.forensics = None
        self._suspend_depth = 1
        try:
            yield
        finally:
            self._suspend_depth = 0
            (core.trace, core.profiler, core.metrics, core.debug,
             core.watermark, core.watermark_hook, core.devices,
             bus.trace, bus.profiler, bus.metrics, bus.tracer,
             machine.forensics) = saved
            if watch_unit is not None:
                bus.interposers.insert(0, watch_unit)

    @contextmanager
    def preserving(self):
        """Snapshot the machine, yield, restore — so a caller (fault
        forensics, a debugger UI) can replay mid-flight and hand the
        machine back exactly as it found it.  If the timeline was still
        recording on entry (seeks finalize it), recording is re-armed on
        exit so execution after the excursion keeps being captured."""
        snap = MachineSnapshot.capture(self.machine)
        was_recording = self.recording
        try:
            yield self
        finally:
            snap.apply(self.machine)
            if was_recording and not self.recording:
                self.record()

    # -- windows --------------------------------------------------------
    def window(self, cycle=None, before=8, after=0, symbols=None):
        """Replay-derived instruction window around *cycle*.

        Returns a list of dicts, one per re-executed instruction, oldest
        first: ``pc`` (byte address), ``text`` (disassembly), ``cycles``
        consumed, ``instret`` after it retired, live ``registers`` (32
        bytes), ``sreg``, ``sp``, ``domain`` and ``fault`` (code slug
        when the instruction faulted, else None).  With *cycle* None the
        window ends at the first recorded fault when there is one, else
        at the end of the recording.  *symbols* is an optional
        ``addr -> name`` map for disassembly.
        """
        self.finalize()
        at_fault = cycle is None and bool(self.faults)
        if at_fault:
            # the latest noted fault: forensics captures while the
            # fault is still propagating, right after note_fault
            fault_kf = self.faults[-1][0]
            target_instret = self._keyframes[fault_kf].instret
            seg_lo, seg_hi = self._segment_bounds(kf_index=fault_kf)
        elif cycle is None:
            target_instret = self._keyframes[-1].instret
            seg_lo, seg_hi = self._segment_bounds(instret=target_instret)
        else:
            self.seek(cycle)
            target_instret = self.machine.core.instret
            seg_lo, seg_hi = self._segment_bounds(instret=target_instret)
        # a live machine never executes across a run boundary (host code
        # intervenes between runs), so the window must not either: clamp
        # the window start and length to the target's own segment
        start = max(seg_lo, target_instret - before)
        if at_fault and start == target_instret:
            # seek_instret at a run boundary tie-breaks into the NEXT
            # segment's start keyframe (host recovery applied); pin the
            # exact pre-fault state directly instead
            self._keyframes[fault_kf].apply(self.machine)
        else:
            self.seek_instret(start)
        core = self.machine.core
        total = min((target_instret - core.instret) + after,
                    seg_hi - core.instret)
        if at_fault:
            total += 1  # include the (vetoed, un-retired) faulting attempt
        records = []
        with self._suspended():
            for _ in range(total):
                if core.halted:
                    break
                record = self._step_record(symbols)
                records.append(record)
                if record["fault"] is not None:
                    break
        return records

    def _step_record(self, symbols=None):
        machine = self.machine
        core = machine.core
        mem = machine.memory
        pc0 = core.pc
        c0 = core.cycles
        fault = None
        try:
            core.step()
        except ProtectionFault as exc:
            fault = exc
            self.last_replay_fault = exc
        line = disassemble_one(mem.read_flash_word, pc0, symbols)
        provider = core.domain_provider
        return {
            "pc": pc0 * 2,
            "text": line.text if line is not None else "??",
            "cycles": core.cycles - c0,
            "instret": core.instret,
            "registers": list(mem.data[0:32]),
            "sreg": mem.sreg,
            "sp": mem.sp,
            "domain": provider() if provider is not None else None,
            "fault": getattr(fault, "code", "protection")
            if fault is not None else None,
        }

    # -- full replay ----------------------------------------------------
    def replay(self, on_step=None, to_cycle=None):
        """Re-execute the whole recording segment by segment, invoking
        ``on_step(pc_byte, cycles, fault_or_none)`` per instruction.
        Stops early at *to_cycle*.  Returns total cycles replayed."""
        self.finalize()
        kfs = self._keyframes
        if not kfs:
            raise RuntimeError("timeline holds no keyframes")
        total = 0
        starts = self._segment_starts
        for i, s in enumerate(starts):
            kf = kfs[s]
            if to_cycle is not None and kf.cycles >= to_cycle:
                break
            end_instret = (kfs[starts[i + 1]].instret
                           if i + 1 < len(starts) else kfs[-1].instret)
            if end_instret <= kf.instret:
                continue  # empty segment (no instruction retired in it)
            kf.apply(self.machine)
            total += self._reexec(target_cycle=to_cycle,
                                  end_instret=end_instret,
                                  on_step=on_step)
        return total

    # -- export ---------------------------------------------------------
    def to_dict(self):
        """JSON-ready description of the recording (keyframe positions
        and state digests, segments, faults, replay stats)."""
        self.finalize()
        flash_ids = {}
        keyframes = []
        for i, kf in enumerate(self._keyframes):
            fid = flash_ids.setdefault(id(kf.flash), len(flash_ids))
            keyframes.append({
                "cycle": kf.cycles,
                "instret": kf.instret,
                "pc": kf.pc * 2,
                "halted": kf.halted,
                "tag": self._tags[i],
                "data_crc32": zlib.crc32(kf.data) & 0xFFFFFFFF,
                "flash_id": fid,
            })
        return {
            "schema": TIMELINE_SCHEMA,
            "interval": self.interval,
            "keyframes": keyframes,
            "segments": list(self._segment_starts),
            "faults": [{"cycle": self._keyframes[idx].cycles,
                        "instret": self._keyframes[idx].instret,
                        "pc": self._keyframes[idx].pc * 2,
                        "code": code} for idx, code in self.faults],
            "stats": {
                "keyframes": len(self._keyframes),
                "seeks": self.seeks,
                "reexec_cycles": self.reexec_cycles,
            },
        }

    def write(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
        return path


# =====================================================================
class HeatCell:
    """Heat counters of one (basic block, protection domain) bucket."""

    __slots__ = ("entries", "instructions", "cycles")

    def __init__(self):
        self.entries = 0
        self.instructions = 0
        self.cycles = 0


class BlockHeat:
    """Per-basic-block execution heat, keyed by the static analyzer's
    :class:`~repro.analysis.static.cfg.RegionCFG` blocks and bucketed by
    the protection domain that executed them.

    Feed it from a timeline replay (:meth:`feed`); the ranked output is
    the candidate list the basic-block JIT roadmap item consumes, and
    :func:`repro.trace.export.to_speedscope` renders the recorded block
    sequence as a flamegraph-style speedscope document.
    """

    def __init__(self, blocks):
        # blocks: iterable of (start, end, label, domain, region_name)
        self.blocks = sorted(blocks)
        self._starts = [b[0] for b in self.blocks]
        self.cells = {}       # (block_index or None, domain) -> HeatCell
        self.sequence = []    # run-length [block_index|None, domain, cycles]
        self._prev = None     # last (block_index, pc) for entry counting
        self.total_cycles = 0
        self.total_instructions = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_system(cls, system):
        """Blocks from a live system image (runtime + loaded modules),
        labeled with image symbols and owning domains."""
        from repro.analysis.static.image import ImageModel
        model = ImageModel.from_system(system)
        by_addr = model.symbols_by_addr()
        blocks = []
        for region in model.regions:
            cfg = model.cfg_for(region)
            for start, block in cfg.blocks.items():
                if not block.lines:
                    continue
                label = by_addr.get(start)
                if label is None:
                    label = "{}+0x{:x}".format(region.name,
                                               start - region.start)
                blocks.append((start, block.end, label, region.domain,
                               region.name))
        return cls(blocks)

    @classmethod
    def from_machine(cls, machine):
        """Blocks from a bare machine's loaded program."""
        from repro.analysis.static.cfg import RegionCFG
        program = machine.program
        if program is None:
            raise ValueError("machine has no loaded program")
        lo, hi = program.extent()
        symbols = dict(getattr(program, "symbols", {}) or {})
        cfg = RegionCFG.build(machine.memory.read_flash_word,
                              lo * 2, (hi + 1) * 2, name="program",
                              extra_leaders=sorted(symbols.values()))
        by_addr = {}
        for name, addr in sorted(symbols.items()):
            by_addr.setdefault(addr, name)
        blocks = []
        for start, block in cfg.blocks.items():
            if not block.lines:
                continue
            label = by_addr.get(start, "0x{:04x}".format(start))
            blocks.append((start, block.end, label, None, "program"))
        return cls(blocks)

    # ------------------------------------------------------------------
    def _block_index(self, pc):
        pos = bisect_right(self._starts, pc) - 1
        if pos >= 0 and pc < self.blocks[pos][1]:
            return pos
        return None

    def on_step(self, pc, cycles, domain, fault=None):
        """Timeline replay callback (``pc`` is a byte address)."""
        idx = self._block_index(pc)
        key = (idx, domain)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = HeatCell()
        prev = self._prev
        if prev is None or prev[0] != idx:
            cell.entries += 1
        elif idx is not None and pc == self.blocks[idx][0] \
                and prev[1] >= pc:
            cell.entries += 1  # back-edge to the block's own head

        self._prev = (idx, pc)
        cell.instructions += 1
        cell.cycles += cycles
        self.total_instructions += 1
        self.total_cycles += cycles
        seq = self.sequence
        if seq and seq[-1][0] == idx and seq[-1][1] == domain:
            seq[-1][2] += cycles
        else:
            seq.append([idx, domain, cycles])

    def feed(self, timeline, to_cycle=None):
        """Replay *timeline* through :meth:`on_step`.  The machine's
        domain provider (UMPU register file) labels each instruction
        with its live protection domain; software systems count with
        domain None."""
        core = timeline.machine.core

        def hook(pc, cycles, fault):
            provider = core.domain_provider
            self.on_step(pc, cycles,
                         provider() if provider is not None else None,
                         fault)

        timeline.replay(on_step=hook, to_cycle=to_cycle)
        return self

    # ------------------------------------------------------------------
    def label_of(self, index):
        if index is None:
            return "<unmapped>"
        return self.blocks[index][2]

    def rank(self, top=None, domain=None):
        """Blocks by cycle heat, hottest first.  Rows: ``(label, start,
        end, domain, entries, instructions, cycles, share)``."""
        rows = []
        for (idx, dom), cell in self.cells.items():
            if domain is not None and dom != domain:
                continue
            start, end = (None, None) if idx is None \
                else self.blocks[idx][:2]
            share = (cell.cycles / self.total_cycles
                     if self.total_cycles else 0.0)
            rows.append((self.label_of(idx), start, end, dom,
                         cell.entries, cell.instructions, cell.cycles,
                         share))
        rows.sort(key=lambda r: (-r[6], r[0]))
        return rows[:top] if top else rows

    def render(self, top=20, title="Hot basic blocks (replay heat)"):
        from repro.analysis.tables import render_table
        from repro.trace.export import domain_label
        headers = ("Block", "Span", "Domain", "Entries", "Instr",
                   "Cycles", "Share")
        rows = []
        for (label, start, end, dom, entries, instrs, cycles,
             share) in self.rank(top):
            span = ("-" if start is None
                    else "0x{:04x}-0x{:04x}".format(start, end))
            rows.append((label, span, domain_label(dom), entries, instrs,
                         cycles, "{:.1f}%".format(100.0 * share)))
        return render_table(
            title, headers, rows,
            note="{} blocks, {} instructions, {} cycles replayed".format(
                len(self.blocks), self.total_instructions,
                self.total_cycles))
