"""Simulator-wide metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is the aggregate companion of the event-level
:class:`~repro.trace.events.TraceSink`: instead of a ring of individual
events it keeps cheap running aggregates — per-domain fault counts, MMC
stall cycles, cross-domain call depth, IRQ entry latency — suitable for
dashboards, regression gates and the ``metrics`` CLI subcommand.

Attachment follows the same discipline as tracing: components hold a
``metrics`` attribute that defaults to ``None`` and every emission site
is a single ``is not None`` guard, so a detached machine pays nothing on
the hot path.  Attaching a registry opts the core out of the
threaded-dispatch fast loop (see ``docs/performance.md``) but never
changes simulated cycle counts — metrics are purely observational.

Histograms use fixed bucket bounds (``counts[i]`` = observations with
``value <= buckets[i]``; the final slot is the overflow bucket), so
recording is O(buckets) with no allocation.

JSON schema (``to_dict()`` / :func:`write_metrics`), version 1::

    {"schema": 1,
     "counters":   [{"name": str, "labels": {str: any}, "value": int}],
     "gauges":     [{"name": str, "labels": {...}, "value": number}],
     "histograms": [{"name": str, "labels": {...},
                     "buckets": [bound, ...],     # ascending
                     "counts": [int, ...],        # len(buckets) + 1
                     "count": int, "sum": number}]}
"""

import json

#: JSON export schema version (bump on incompatible changes).
METRICS_SCHEMA = 1

#: default bucket bounds for the cross-domain call-depth histogram
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32)

#: default bucket bounds (cycles) for the IRQ entry-latency histogram
LATENCY_BUCKETS = (4, 8, 16, 32, 64, 128, 256)


def _label_key(labels):
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value):
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound + overflow."""

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "max")

    def __init__(self, name, labels, buckets):
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be ascending bounds")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0
        #: largest observed value (None until the first observe) — the
        #: static latency certifier compares its bound against this,
        #: which buckets alone can't recover once a value overflows
        self.max = None

    def observe(self, value):
        self.count += 1
        self.sum += value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Registry of named (and optionally labelled) metrics.

    Accessors create on first use and return the same object after, so
    instrumentation sites can call ``registry.counter("x").inc()``
    without setup ceremony.
    """

    def __init__(self):
        self._metrics = {}

    # ------------------------------------------------------------------
    def _get(self, factory, kind, name, labels):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name, **labels):
        return self._get(lambda: Counter(name, labels), "counter", name,
                         labels)

    def gauge(self, name, **labels):
        return self._get(lambda: Gauge(name, labels), "gauge", name, labels)

    def histogram(self, name, buckets=None, **labels):
        return self._get(
            lambda: Histogram(name, labels, buckets or DEPTH_BUCKETS),
            "histogram", name, labels)

    def __len__(self):
        return len(self._metrics)

    def reset(self):
        """Drop every metric (names, labels and values).

        A registry handed to ``install_metrics`` outlives the machine it
        observed; reusing one across runs (benchmark harnesses, fuzzer
        iterations, tests sharing a fixture) would otherwise accumulate
        counts from earlier runs.  Accessors recreate metrics on first
        use, so instrumentation sites need no awareness of the reset.
        """
        self._metrics.clear()
        return self

    # ------------------------------------------------------------------
    def sample(self, machine):
        """Snapshot machine-level state into gauges (call before
        exporting): cycle/instruction counters, safe-stack nesting and
        the unit counters of a UMPU machine when present."""
        core = machine.core
        self.gauge("cycles").set(core.cycles)
        self.gauge("instructions").set(core.instret)
        # instret as a monotone counter too (delta since last sample),
        # so aggregation across samples/exports composes like the other
        # counters; the gauge above keeps the point-in-time view
        instret = self.counter("instret")
        if core.instret > instret.value:
            instret.inc(core.instret - instret.value)
        timeline = getattr(machine, "timeline", None)
        if timeline is not None:
            keyframes = self.counter("snapshot_keyframes")
            if len(timeline.keyframes) > keyframes.value:
                keyframes.inc(len(timeline.keyframes) - keyframes.value)
            reexec = self.counter("replay_reexec_cycles")
            if timeline.reexec_cycles > reexec.value:
                reexec.inc(timeline.reexec_cycles - reexec.value)
        tracker = getattr(machine, "tracker", None)
        if tracker is not None:
            self.gauge("cross_domain_nesting").set(tracker.nesting)
        mmc = getattr(machine, "mmc", None)
        if mmc is not None:
            self.gauge("mmc_checked_stores").set(mmc.checked_stores)
        unit = getattr(machine, "safe_stack_unit", None)
        if unit is not None:
            self.gauge("safe_stack_redirected_pushes").set(
                unit.redirected_pushes)
            base = unit.floor
            if base is not None and unit.high_water:
                # occupancy in bytes at the deepest point — what the
                # static safe-stack bound must cover
                self.gauge("safe_stack_high_water").set(
                    max(unit.high_water - base, 0))
        return self

    # ------------------------------------------------------------------
    def to_dict(self):
        """Schema-versioned, JSON-ready export (see module docstring)."""
        doc = {"schema": METRICS_SCHEMA, "counters": [], "gauges": [],
               "histograms": []}
        for (kind, _name, _labels), metric in sorted(
                self._metrics.items(), key=lambda kv: kv[0]):
            entry = {"name": metric.name, "labels": dict(metric.labels)}
            if kind == "histogram":
                entry.update(buckets=list(metric.buckets),
                             counts=list(metric.counts),
                             count=metric.count, sum=metric.sum,
                             max=metric.max)
            else:
                entry["value"] = metric.value
            doc[kind + "s"].append(entry)
        return doc

    def render(self):
        """Flat text rendering (the ``metrics`` subcommand's default)."""
        lines = []
        for (kind, _name, _labels), metric in sorted(
                self._metrics.items(), key=lambda kv: kv[0]):
            label_text = ",".join("{}={}".format(k, v) for k, v
                                  in sorted(metric.labels.items()))
            name = metric.name + ("{" + label_text + "}" if label_text
                                  else "")
            if kind == "histogram":
                cells = ["le{}:{}".format(b, c) for b, c
                         in zip(metric.buckets, metric.counts)]
                cells.append("inf:{}".format(metric.counts[-1]))
                value = "count={} sum={} [{}]".format(
                    metric.count, metric.sum, " ".join(cells))
            else:
                value = str(metric.value)
            lines.append("{:<9} {:<44} {}".format(kind, name, value))
        return "\n".join(lines) if lines else "(no metrics recorded)"


def install_metrics(machine, registry=None):
    """Attach a :class:`MetricsRegistry` to *machine*.

    Sets ``core.metrics`` and ``bus.metrics`` so the core, interrupt
    controller and bus interposers (MMC, domain tracker) find the
    registry at emission time.  Returns the registry.  Note: an
    attached registry opts the core out of ``_run_fast``.
    """
    if registry is None:
        registry = MetricsRegistry()
    machine.core.metrics = registry
    machine.bus.metrics = registry
    return registry


def uninstall_metrics(machine):
    """Detach any registry from *machine* (fast loop eligible again)."""
    machine.core.metrics = None
    machine.bus.metrics = None


def write_metrics(path, registry):
    """Write the registry's schema-versioned JSON to *path*."""
    with open(path, "w") as handle:
        json.dump(registry.to_dict(), handle, indent=1, sort_keys=True)
    return path
