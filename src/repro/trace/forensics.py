"""Fault forensics: the flight recorder and structured fault reports.

Harbor's contract is to *signal* the invalid access; this module makes
the signal debuggable.  When a :class:`~repro.core.faults.
ProtectionFault` propagates out of a run — hardware UMPU units or the
software runtime's fault-code cells alike — the :class:`FlightRecorder`
captures a :class:`FaultReport`:

* register file, SREG, SP and PC at the fault;
* the faulting address annotated with its memory-map block owner and
  the region it falls in (heap / safe stack / run-time stack / ...);
* the cross-domain call stack reconstructed from the current domain and
  the 5-byte safe-stack frames ``[domain][sb_lo][sb_hi][ret_lo]
  [ret_hi]`` (identical layout in the hardware safe-stack unit and the
  software runtime);
* a disassembled window of the last N retired instructions — replayed
  deterministically (with live register/SREG/SP values per instruction)
  when a :class:`~repro.trace.timeline.Timeline` recording is attached,
  else fed from the attached :class:`~repro.trace.events.TraceSink`
  ring, else a static window of flash around the faulting PC.

The report is attached to the exception as ``fault.report``, rendered
as a text "panic dump" (:meth:`FaultReport.text`) or JSON
(:meth:`FaultReport.to_dict`), and mirrored into the process-wide
:data:`RECENT_REPORTS` ring so test harnesses and CI can export every
fault seen (see ``tests/conftest.py`` and :func:`dump_recent`).

Capture happens *after* the fault, outside the run loop, so forensics
adds zero hot-path cost and never perturbs cycle counts.
"""

import json
import os
from collections import deque

from repro.asm.disassembler import disassemble_flash, disassemble_one
from repro.trace.events import TraceEventKind

#: JSON export schema version (bump on incompatible changes).
REPORT_SCHEMA = 1

#: process-wide ring of the most recent reports (newest last), fed by
#: every FlightRecorder; used by the pytest failure hook / CI artifact.
RECENT_REPORTS = deque(maxlen=32)

#: bytes per safe-stack cross-domain frame (paper §3.3):
#: [caller_domain][sb_lo][sb_hi][ret_lo][ret_hi]
_FRAME_BYTES = 5


class StackFrame:
    """One entry of the reconstructed cross-domain call stack.

    ``ret_addr`` (flash byte address the frame returns to) is None for
    the innermost, still-active frame.
    """

    __slots__ = ("domain", "stack_bound", "ret_addr")

    def __init__(self, domain, stack_bound, ret_addr=None):
        self.domain = domain
        self.stack_bound = stack_bound
        self.ret_addr = ret_addr

    def to_dict(self):
        return {"domain": self.domain, "stack_bound": self.stack_bound,
                "ret_addr": self.ret_addr}

    def __repr__(self):
        return "StackFrame(domain={}, stack_bound={}, ret_addr={})".format(
            self.domain, self.stack_bound, self.ret_addr)


class FaultReport:
    """Structured snapshot of the machine at a protection fault."""

    def __init__(self, fault_type, code, message, domain, addr, addr_owner,
                 addr_region, pc, cycles, instret, sp, sreg, registers,
                 call_stack, instr_window, window_source):
        self.schema = REPORT_SCHEMA
        self.fault_type = fault_type
        self.code = code
        self.message = message
        self.domain = domain
        self.addr = addr
        self.addr_owner = addr_owner
        self.addr_region = addr_region
        self.pc = pc                    # flash byte address (resume point)
        self.cycles = cycles
        self.instret = instret
        self.sp = sp
        self.sreg = sreg
        self.registers = registers      # tuple of 32 bytes
        self.call_stack = call_stack    # [StackFrame], innermost first
        self.instr_window = instr_window  # [{"pc","cycles","text",...}]
        self.window_source = window_source  # "replay" | "trace" | "static"

    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "schema": self.schema,
            "fault_type": self.fault_type,
            "code": self.code,
            "message": self.message,
            "domain": self.domain,
            "addr": self.addr,
            "addr_owner": self.addr_owner,
            "addr_region": self.addr_region,
            "pc": self.pc,
            "cycles": self.cycles,
            "instret": self.instret,
            "sp": self.sp,
            "sreg": self.sreg,
            "registers": list(self.registers),
            "call_stack": [frame.to_dict() for frame in self.call_stack],
            "instr_window": list(self.instr_window),
            "window_source": self.window_source,
        }

    def to_json(self):
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    # ------------------------------------------------------------------
    def text(self):
        """Human-readable panic dump."""
        out = ["==== PROTECTION FAULT: {} (code={}) ====".format(
            self.fault_type, self.code)]
        out.append("  {}".format(self.message))
        out.append("  domain={}  pc=0x{:05x}  cycles={}  instret={}".format(
            self.domain, self.pc, self.cycles, self.instret))
        if self.addr is not None:
            owner = ("domain {}".format(self.addr_owner)
                     if self.addr_owner is not None else "?")
            out.append("  faulting address: 0x{:04x}  owner={}  region={}"
                       .format(self.addr, owner, self.addr_region))
        out.append("  SREG=0x{:02x}  SP=0x{:04x}".format(self.sreg, self.sp))
        out.append("  registers:")
        for row in range(0, 32, 8):
            cells = " ".join("{:02x}".format(v) for v
                             in self.registers[row:row + 8])
            out.append("    r{:<2}-r{:<2} {}".format(row, row + 7, cells))
        out.append("  cross-domain call stack (innermost first):")
        for i, frame in enumerate(self.call_stack):
            where = ("(active)" if frame.ret_addr is None
                     else "ret=0x{:05x}".format(frame.ret_addr))
            out.append("    #{} domain={} stack_bound=0x{:04x} {}".format(
                i, frame.domain, frame.stack_bound or 0, where))
        out.append("  last instructions ({}):".format(self.window_source))
        for entry in self.instr_window:
            cyc = ("" if entry.get("cycles") is None
                   else "  ({} cycles)".format(entry["cycles"]))
            live = ("" if entry.get("sreg") is None
                    else "  [SREG=0x{:02x} SP=0x{:04x}]".format(
                        entry["sreg"], entry["sp"]))
            mark = "  <-- FAULT" if entry.get("fault") else ""
            out.append("    0x{:05x}  {}{}{}{}".format(
                entry["pc"], entry["text"], cyc, live, mark))
        return "\n".join(out)


class FlightRecorder:
    """Captures a :class:`FaultReport` for every fault on one machine.

    Attached via ``Machine.attach_forensics()``; ``Machine.record_fault``
    funnels every propagating :class:`ProtectionFault` through
    :meth:`capture` exactly once.  ``layout`` (a ``HarborLayout`` or
    ``SfiLayout``) drives region classification and, for the software
    runtime, the trusted-cell reads of the call-stack walk;
    ``memmap_provider`` yields the live :class:`~repro.core.memmap.
    MemoryMap` for owner annotation.
    """

    def __init__(self, machine, window=16):
        self.machine = machine
        self.window = window
        self.layout = None
        self.memmap_provider = None
        self.symbols = None    # extra name -> byte addr map, or callable
        self.reports = []

    # ------------------------------------------------------------------
    def capture(self, fault):
        """Build a report for *fault*, attach it and return it."""
        machine = self.machine
        core = machine.core
        addr = getattr(fault, "addr", None)
        domain = getattr(fault, "domain", None)
        if domain is None:
            domain = self._current_domain()
        memmap = self._memmap()
        owner = None
        if addr is not None and memmap is not None \
                and memmap.config.contains(addr):
            try:
                owner = memmap.owner_of(addr)
            except Exception:
                owner = None
        window, source = self._instr_window()
        report = FaultReport(
            fault_type=type(fault).__name__,
            code=getattr(fault, "code", "protection"),
            message=str(fault),
            domain=domain,
            addr=addr,
            addr_owner=owner,
            addr_region=None if addr is None else self._region_of(addr),
            pc=core.pc * 2,
            cycles=core.cycles,
            instret=core.instret,
            sp=core.sp,
            sreg=core.sreg,
            registers=tuple(machine.memory.data[0:32]),
            call_stack=self._call_stack(),
            instr_window=window,
            window_source=source,
        )
        fault.report = report
        self.reports.append(report)
        RECENT_REPORTS.append(report)
        return report

    # ------------------------------------------------------------------
    def _memmap(self):
        provider = self.memmap_provider
        if provider is not None:
            return provider() if callable(provider) else provider
        return getattr(self.machine, "memmap", None)

    def _current_domain(self):
        regs = getattr(self.machine, "regs", None)
        if regs is not None:
            return regs.cur_domain
        layout = self.layout
        if layout is not None and hasattr(layout, "cur_dom"):
            try:
                return self.machine.memory.read_data(layout.cur_dom)
            except Exception:
                return None
        return None

    # ------------------------------------------------------------------
    def _region_of(self, addr):
        """Classify *addr* against the configured memory layout."""
        if addr < 0x20:
            return "register-file"
        if addr < 0x60:
            return "io"
        layout = self.layout
        if layout is None:
            return "sram"
        table = getattr(layout, "memmap_table", None)
        if table is not None:
            try:
                table_end = table + layout.memmap_config.table_bytes
            except Exception:
                table_end = table
            if table <= addr < table_end:
                return "memmap-table"
        ss_base = getattr(layout, "safe_stack_base", None)
        if ss_base is not None:
            ss_limit = getattr(layout, "safe_stack_limit", ss_base + 0x100)
            if ss_base <= addr < ss_limit:
                return "safe-stack"
        heap_start = getattr(layout, "heap_start", None)
        if heap_start is not None and heap_start <= addr < layout.heap_end:
            return "heap"
        prot_bottom = getattr(layout, "prot_bottom", None)
        if prot_bottom is not None:
            if prot_bottom <= addr <= layout.prot_top:
                return "protected-region"
            if addr > layout.prot_top:
                return "runtime-stack"
        return "trusted-globals"

    # ------------------------------------------------------------------
    def _call_stack(self):
        """Reconstruct the cross-domain call stack, innermost first.

        The active frame comes from the live protection state (UMPU
        registers or the runtime's trusted cells); outer frames are the
        5-byte safe-stack records, newest at the top of the stack.
        """
        machine = self.machine
        mem = machine.memory
        regs = getattr(machine, "regs", None)
        layout = self.layout
        if regs is not None:
            cur_domain = regs.cur_domain
            stack_bound = regs.stack_bound
            ss_ptr = regs.safe_stack_ptr
            unit = getattr(machine, "safe_stack_unit", None)
            ss_base = unit.floor if unit is not None else \
                getattr(layout, "safe_stack_base", ss_ptr)
        elif layout is not None and hasattr(layout, "cur_dom"):
            read = mem.read_data
            try:
                cur_domain = read(layout.cur_dom)
                stack_bound = read(layout.stack_bound) | \
                    (read(layout.stack_bound + 1) << 8)
                ss_ptr = read(layout.ss_ptr) | (read(layout.ss_ptr + 1) << 8)
            except Exception:
                return [StackFrame(None, mem.sp)]
            ss_base = layout.safe_stack_base
        else:
            return [StackFrame(None, mem.sp)]

        frames = [StackFrame(cur_domain, stack_bound)]
        p = ss_ptr - _FRAME_BYTES
        while ss_base is not None and p >= ss_base:
            try:
                caller = mem.read_data(p)
                sb = mem.read_data(p + 1) | (mem.read_data(p + 2) << 8)
                ret_word = mem.read_data(p + 3) | \
                    (mem.read_data(p + 4) << 8)
            except Exception:
                break
            frames.append(StackFrame(caller, sb, ret_word * 2))
            p -= _FRAME_BYTES
        return frames

    # ------------------------------------------------------------------
    def _symbols_by_addr(self):
        sources = []
        program = getattr(self.machine, "program", None)
        symbols = getattr(program, "symbols", None)
        if symbols:
            sources.append(symbols)
        extra = self.symbols
        if callable(extra):
            try:
                extra = extra()
            except Exception:
                extra = None
        if extra:
            sources.append(extra)
        if not sources:
            return None
        out = {}
        for symbols in sources:
            for name, addr in symbols.items():
                out.setdefault(addr, name)
        return out

    def _instr_window(self):
        """Last-N disassembled instructions, best source first: a
        deterministic timeline replay (live register/SREG/SP values per
        instruction) when a :class:`~repro.trace.timeline.Timeline` is
        attached, else the TraceSink ring if one is attached, else a
        static flash window ending at the PC."""
        mem = self.machine.memory
        symbols = self._symbols_by_addr()
        timeline = getattr(self.machine, "timeline", None)
        if timeline is not None and timeline.can_replay():
            try:
                with timeline.preserving():
                    window = timeline.window(before=self.window,
                                             symbols=symbols)
            except Exception:
                window = None
            if window:
                return window, "replay"
        trace = self.machine.core.trace
        if trace is not None:
            retires = trace.of(TraceEventKind.INSTR_RETIRE)[-self.window:]
            if retires:
                window = []
                for event in retires:
                    line = disassemble_one(mem.read_flash_word,
                                           event.pc // 2, symbols)
                    window.append({
                        "pc": event.pc,
                        "cycles": event.get("cycles"),
                        "text": line.text if line is not None else "??",
                    })
                return window, "trace"
        pc_word = self.machine.core.pc
        start = max(0, pc_word - self.window)
        lines = disassemble_flash(mem.read_flash_word, start,
                                  self.window + 1, symbols)
        window = [{"pc": line.byte_addr, "cycles": None, "text": line.text}
                  for line in lines]
        return window, "static"

    # ------------------------------------------------------------------
    def clear(self):
        self.reports = []


def reset():
    """Clear the process-wide :data:`RECENT_REPORTS` ring.

    Fault reports are process-global state (by design: the pytest
    failure hook and CI artifact export read them after the machine is
    gone), which means they leak across machines unless explicitly
    reset.  Test harnesses (an autouse fixture in ``tests/conftest.py``)
    and fuzzer iterations call this between runs so no run can observe
    another's faults.
    """
    RECENT_REPORTS.clear()


def dump_recent(directory, prefix=""):
    """Write every report in :data:`RECENT_REPORTS` as JSON under
    *directory* (created if needed); returns the written paths.  Used by
    the pytest failure hook so CI can archive fault dumps."""
    if not RECENT_REPORTS:
        return []
    os.makedirs(directory, exist_ok=True)
    safe_prefix = "".join(c if c.isalnum() or c in "-_." else "_"
                          for c in prefix)
    paths = []
    for i, report in enumerate(RECENT_REPORTS):
        name = "{}{}fault-{:02d}-{}.json".format(
            safe_prefix, "-" if safe_prefix else "", i, report.code)
        path = os.path.join(directory, name)
        with open(path, "w") as handle:
            handle.write(report.to_json())
        paths.append(path)
    return paths
