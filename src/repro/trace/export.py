"""Trace exporters: Chrome ``trace_event`` JSON and flat text reports.

The Chrome format (load via ``about://tracing`` or https://ui.perfetto.
dev) maps naturally onto the simulator: one *process* per node, one
*track* (tid) per protection domain, instruction retirements as complete
("X") slices whose duration is the instruction's cycle cost, and the
protection machinery's moments — MMC stalls, safe-stack redirects,
domain switches, faults — as instant ("i") events.  One simulated CPU
cycle is rendered as one microsecond, trace_event's native unit.
"""

import json

from repro.core.encoding import TRUSTED_DOMAIN
from repro.trace.events import TraceEventKind

#: trace_event "phase" per event kind: complete slices for retirements,
#: instants for everything else.
_INSTANT_KINDS = (
    TraceEventKind.IRQ_ENTER,
    TraceEventKind.IRQ_EXIT,
    TraceEventKind.IRQ_COALESCED,
    TraceEventKind.DOMAIN_SWITCH,
    TraceEventKind.MMC_STALL,
    TraceEventKind.SAFE_STACK_REDIRECT,
    TraceEventKind.PROTECTION_FAULT,
    TraceEventKind.CONTROL_TRANSFER,
)


def domain_label(domain):
    if domain is None:
        return "cpu"
    if domain == TRUSTED_DOMAIN:
        return "trusted"
    return "domain {}".format(domain)


def _tid(domain):
    # tids must be integers; park domain-less events on track 0 and
    # shift real domains up by one so they never collide.
    return 0 if domain is None else domain + 1


def _args(event):
    args = {}
    for key, value in event.data.items():
        if isinstance(value, int) and key in ("addr", "target", "ret",
                                              "table_addr"):
            args[key] = "0x{:04x}".format(value)
        else:
            args[key] = value
    if event.pc is not None:
        args["pc"] = "0x{:04x}".format(event.pc)
    return args


def to_chrome_trace(sink, pid=0, process_name="avr-node"):
    """Convert a :class:`~repro.trace.events.TraceSink` to a Chrome
    ``trace_event`` document (a plain dict, ready for ``json.dump``)."""
    events = []
    tids = set()
    for event in sink:
        tid = _tid(event.domain)
        tids.add((tid, event.domain))
        if event.kind is TraceEventKind.INSTR_RETIRE:
            events.append({
                "name": event.get("key", "instr"),
                "cat": "instr",
                "ph": "X",
                "ts": event.cycle - event.get("cycles", 1),
                "dur": event.get("cycles", 1),
                "pid": pid,
                "tid": tid,
                "args": _args(event),
            })
        elif event.kind in _INSTANT_KINDS:
            events.append({
                "name": event.kind.value,
                "cat": "protection",
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": pid,
                "tid": tid,
                "args": _args(event),
            })
        else:  # BUS_ACCESS and any future kinds: zero-width slices
            events.append({
                "name": event.kind.value,
                "cat": "bus",
                "ph": "X",
                "ts": event.cycle,
                "dur": 0,
                "pid": pid,
                "tid": tid,
                "args": _args(event),
            })
    meta = [{"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": process_name}}]
    for tid, domain in sorted(tids):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": domain_label(domain)}})
        # pin the track order (cpu, trusted, domain 0, 1, ...) so the
        # trace opens pre-sorted in Perfetto / about://tracing
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"sort_index": tid}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, sink, pid=0, process_name="avr-node"):
    """Write the Chrome trace JSON for *sink* to *path*."""
    doc = to_chrome_trace(sink, pid=pid, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1)
    return path


# ---------------------------------------------------------------------
#: speedscope file-format schema URL (https://www.speedscope.app)
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def to_speedscope(heat, name="harbor-replay"):
    """Render a :class:`~repro.trace.timeline.BlockHeat` recording as a
    speedscope "sampled" profile (a plain dict, ready for ``json.dump``;
    open at https://www.speedscope.app or with any flamegraph viewer
    that reads the format).

    Each replayed basic-block run becomes one sample whose weight is
    the cycles spent in it; frames are ``label [domain]`` per (block,
    domain) bucket, so the time-order view shows the execution ribbon
    hopping across protection domains and the left-heavy view is the
    block heat ranking.
    """
    frames = []
    frame_index = {}
    samples = []
    weights = []
    for block_index, domain, cycles in heat.sequence:
        key = (block_index, domain)
        idx = frame_index.get(key)
        if idx is None:
            idx = frame_index[key] = len(frames)
            label = heat.label_of(block_index)
            if domain is not None:
                label = "{} [{}]".format(label, domain_label(domain))
            frame = {"name": label}
            if block_index is not None:
                start, end = heat.blocks[block_index][:2]
                frame["file"] = "flash:0x{:04x}-0x{:04x}".format(start, end)
            frames.append(frame)
        samples.append([idx])
        weights.append(cycles)
    profile = {
        "type": "sampled",
        "name": name,
        "unit": "none",          # weights are simulated cycles
        "startValue": 0,
        "endValue": sum(weights),
        "samples": samples,
        "weights": weights,
    }
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.trace",
        "shared": {"frames": frames},
        "profiles": [profile],
    }


def write_speedscope(path, heat, name="harbor-replay"):
    """Write the speedscope JSON for *heat* to *path*."""
    doc = to_speedscope(heat, name=name)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1)
    return path


# ---------------------------------------------------------------------
def flat_report(profiler, sink=None, title="Cycle attribution"):
    """Render the profiler's (domain, category) buckets as an ASCII
    table, with the trace's event counts appended when a sink is given.
    """
    from repro.trace.profiler import CATEGORIES
    domains = sorted(profiler.by_domain(),
                     key=lambda d: (d is None, d))
    headers = ("Domain",) + CATEGORIES + ("Total", "Share")
    grand_total = profiler.total()
    rows = []
    for domain in domains:
        breakdown = profiler.domain_breakdown(domain)
        total = sum(breakdown.values())
        share = ("{:.1f}%".format(100.0 * total / grand_total)
                 if grand_total else "-")
        rows.append((domain_label(domain),)
                    + tuple(breakdown.get(c, 0) for c in CATEGORIES)
                    + (total, share))
    by_cat = profiler.by_category()
    rows.append(("TOTAL",)
                + tuple(by_cat.get(c, 0) for c in CATEGORIES)
                + (grand_total, "100.0%" if grand_total else "-"))
    from repro.analysis.tables import render_table
    text = render_table(title, headers, rows,
                        note="cycles attributed since attach: {}".format(
                            grand_total))
    if sink is not None:
        lines = [text, "", "trace events ({} emitted, {} retained, {} "
                 "dropped):".format(sink.emitted, len(sink),
                                    sink.dropped)]
        for kind, count in sorted(sink.counts().items(),
                                  key=lambda kv: -kv[1]):
            lines.append("  {:<22} {}".format(kind.value, count))
        text = "\n".join(lines)
    return text
