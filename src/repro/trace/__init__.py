"""repro.trace — cycle-attributed observability for the simulator.

Six pieces:

* :class:`TraceSink` — a bounded ring buffer of typed events
  (instruction retirements, control transfers, IRQ entry/exit, domain
  switches, bus accesses, MMC stalls, safe-stack redirects, protection
  faults) emitted by the instrumented simulator components.  Attach with
  :func:`install_tracing`; with no sink attached every emission site is
  a single ``is not None`` check and cycle counts are untouched.
* :class:`DomainProfiler` — attributes every CPU cycle (including
  interposer stall cycles) to the protection domain that spent it and to
  a category (app / runtime-checks / mmc-stall / safe-stack / irq).
  Attach with :func:`install_profiler`; the invariant
  ``profiler.total() == core.cycles - profiler.start_cycle`` is exact.
* Exporters — :func:`to_chrome_trace` / :func:`write_chrome_trace`
  (Chrome ``about://tracing`` JSON) and :func:`flat_report` (text).
* :class:`FlightRecorder` / :class:`FaultReport` — fault forensics:
  every propagating :class:`~repro.core.faults.ProtectionFault` gets a
  structured panic dump (registers, annotated faulting address,
  cross-domain call stack, disassembled instruction window).  Attach
  with ``Machine.attach_forensics()``.
* :class:`MetricsRegistry` — counters/gauges/histograms with zero
  hot-path cost when detached.  Attach with :func:`install_metrics`.
* :class:`Debugger` — data watchpoints and PC breakpoints; attaching
  one moves the core off the fast loop (cycle counts unchanged).
* :class:`Timeline` / :class:`BlockHeat` — cycle-indexed record/replay:
  keyframe snapshots every N cycles (fast path included, via the core's
  cycle watermark), ``seek``/``window``/full replay, reverse-step,
  replay-backed forensic windows and per-basic-block heat profiles
  (speedscope export).  Attach with ``Machine.attach_timeline()``.

CLI: ``python -m repro.cli trace|profile|replay|explain-fault|metrics
...``; see ``docs/observability.md``.
"""

from repro.trace.debug import (
    BreakpointHit,
    Debugger,
    DebugStop,
    Watchpoint,
    WatchpointHit,
)
from repro.trace.events import TraceEvent, TraceEventKind, TraceSink
from repro.trace.export import (
    domain_label,
    flat_report,
    to_chrome_trace,
    to_speedscope,
    write_chrome_trace,
    write_speedscope,
)
from repro.trace.forensics import (
    RECENT_REPORTS,
    FaultReport,
    FlightRecorder,
    dump_recent,
)
from repro.trace.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    install_metrics,
    uninstall_metrics,
    write_metrics,
)
from repro.trace.timeline import (
    DEFAULT_INTERVAL,
    TIMELINE_SCHEMA,
    BlockHeat,
    Timeline,
)
from repro.trace.profiler import (
    CAT_APP,
    CAT_IRQ,
    CAT_MMC,
    CAT_RUNTIME,
    CAT_SAFE_STACK,
    CATEGORIES,
    DomainProfiler,
)

__all__ = [
    "TraceEvent",
    "TraceEventKind",
    "TraceSink",
    "DomainProfiler",
    "CATEGORIES",
    "CAT_APP",
    "CAT_RUNTIME",
    "CAT_MMC",
    "CAT_SAFE_STACK",
    "CAT_IRQ",
    "domain_label",
    "flat_report",
    "to_chrome_trace",
    "to_speedscope",
    "write_chrome_trace",
    "write_speedscope",
    "Timeline",
    "BlockHeat",
    "DEFAULT_INTERVAL",
    "TIMELINE_SCHEMA",
    "FaultReport",
    "FlightRecorder",
    "RECENT_REPORTS",
    "dump_recent",
    "MetricsRegistry",
    "METRICS_SCHEMA",
    "install_metrics",
    "uninstall_metrics",
    "write_metrics",
    "Debugger",
    "DebugStop",
    "BreakpointHit",
    "WatchpointHit",
    "Watchpoint",
    "install_tracing",
    "install_profiler",
    "uninstall",
]


def install_tracing(machine, sink=None, capacity=65536):
    """Attach a :class:`TraceSink` to every instrumented component of
    *machine* (core, bus — and, through them, the interrupt controller,
    domain tracker, MMC and safe-stack unit, which read the sink off the
    core/bus at emission time).  Returns the sink."""
    if sink is None:
        sink = TraceSink(capacity)
    machine.core.trace = sink
    machine.bus.trace = sink
    return sink


def install_profiler(machine, runtime_region=None):
    """Attach a :class:`DomainProfiler` to *machine*.

    On a UMPU machine the profiler follows ``regs.cur_domain``; on a
    plain machine all cycles land on domain ``None`` ("cpu").
    *runtime_region* is an optional (start_byte, end_byte) window of
    trusted-runtime code classified as ``runtime-checks``."""
    regs = getattr(machine, "regs", None)
    provider = (lambda: regs.cur_domain) if regs is not None else None
    profiler = DomainProfiler(provider, runtime_region=runtime_region)
    profiler.start_cycle = machine.core.cycles
    machine.core.profiler = profiler
    machine.bus.profiler = profiler
    return profiler


def uninstall(machine):
    """Detach sink, profiler, metrics and debugger from *machine*
    (restores fast-loop eligibility)."""
    machine.core.trace = None
    machine.bus.trace = None
    machine.core.profiler = None
    machine.bus.profiler = None
    machine.core.metrics = None
    machine.bus.metrics = None
    if machine.core.debug is not None:
        machine.core.debug.detach()
