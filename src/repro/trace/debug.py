"""Watchpoints and PC breakpoints.

A :class:`Debugger` attaches two probes to a machine:

- a :class:`WatchUnit` inserted at the *front* of the data-bus
  interposer chain, so data watchpoints observe every access — including
  safe-stack redirected pushes and stores that a later protection unit
  will fault — before any unit can consume or reject it; and
- a ``core.debug`` hook that :meth:`AvrCore.step` consults before each
  instruction for PC breakpoints.

Attaching a debugger opts the core out of the threaded-dispatch fast
loop (``_run_fast``); execution moves to the instrumented ``step()``
path, which is slower on the host but cycle-for-cycle identical in
simulated time (see ``docs/performance.md``).  The watch unit itself
adds zero extra simulated cycles: it only observes and returns ``None``.

Breakpoint/watchpoint stops are delivered as :class:`DebugStop`
exceptions.  They deliberately do NOT subclass ``SimError`` or
``ProtectionFault`` — a stop is a debugger event, not a simulated
failure, and must not trip fault forensics or kernel panic paths.
"""


class DebugStop(Exception):
    """Base class for debugger-initiated stops (not simulation errors)."""


class BreakpointHit(DebugStop):
    """Execution reached a PC breakpoint (before executing it)."""

    def __init__(self, pc_byte, cycle):
        self.pc_byte = pc_byte
        self.cycle = cycle
        super().__init__("breakpoint at pc=0x{:05x} (cycle {})".format(
            pc_byte, cycle))


class WatchpointHit(DebugStop):
    """A data access matched a watchpoint with ``break_on_hit`` set.

    Raised from inside the bus access, i.e. mid-instruction; the
    instruction's architectural effects up to the access have applied.
    """

    def __init__(self, addr, write, value, cycle):
        self.addr = addr
        self.write = write
        self.value = value
        self.cycle = cycle
        super().__init__(
            "watchpoint: {} 0x{:04x} value=0x{:02x} (cycle {})".format(
                "write" if write else "read", addr, value, cycle))


class WatchHit:
    """One recorded watchpoint match."""

    __slots__ = ("cycle", "addr", "value", "write", "kind")

    def __init__(self, cycle, addr, value, write, kind):
        self.cycle = cycle
        self.addr = addr
        self.value = value
        self.write = write
        self.kind = kind

    def __repr__(self):
        return "WatchHit(cycle={}, addr=0x{:04x}, value=0x{:02x}, {}, {})" \
            .format(self.cycle, self.addr, self.value,
                    "write" if self.write else "read", self.kind)


class Watchpoint:
    """Watch an inclusive data-address range for reads and/or writes."""

    def __init__(self, lo, hi=None, on_read=False, on_write=True,
                 break_on_hit=False):
        self.lo = lo
        self.hi = lo if hi is None else hi
        self.on_read = on_read
        self.on_write = on_write
        self.break_on_hit = break_on_hit
        self.hits = []

    def matches(self, addr, write):
        if not (self.lo <= addr <= self.hi):
            return False
        return self.on_write if write else self.on_read

    def record(self, cycle, addr, value, write, kind):
        hit = WatchHit(cycle, addr, value, write, kind)
        self.hits.append(hit)
        if self.break_on_hit:
            raise WatchpointHit(addr, write, value, cycle)
        return hit


class WatchUnit:
    """Bus interposer that feeds data accesses to the watchpoint list.

    Duck-typed against the DataBus interposer protocol (``on_write`` /
    ``on_read`` returning a verdict or ``None``); it always returns
    ``None`` so it neither consumes accesses nor adds cycles, and it is
    inserted at position 0 so protection units downstream still see
    every access unchanged.
    """

    name = "watchpoints"

    def __init__(self, debugger):
        self.debugger = debugger

    def on_write(self, bus, addr, value, kind):
        cycle = self.debugger.machine.core.cycles
        for wp in self.debugger.watchpoints:
            if wp.matches(addr, write=True):
                wp.record(cycle, addr, value, True, kind)
        return None

    def on_read(self, bus, addr, kind):
        watchpoints = self.debugger.watchpoints
        if watchpoints:
            cycle = self.debugger.machine.core.cycles
            value = None
            for wp in watchpoints:
                if wp.matches(addr, write=False):
                    if value is None:
                        try:
                            value = bus.memory.read_data(addr)
                        except Exception:
                            value = 0
                    wp.record(cycle, addr, value, False, kind)
        return None


class Debugger:
    """Watchpoint/breakpoint controller for one machine.

    Construction attaches immediately: ``core.debug`` is set (which
    disables the fast loop) and the watch unit is spliced into the bus.
    Call :meth:`detach` to restore the unobserved configuration.
    """

    def __init__(self, machine):
        self.machine = machine
        self.watchpoints = []
        self.breakpoints = set()  # word addresses
        self._resume_pc = None
        self.watch_unit = WatchUnit(self)
        machine.core.debug = self
        machine.bus.interposers.insert(0, self.watch_unit)

    # -- breakpoints ----------------------------------------------------
    def add_breakpoint(self, byte_addr):
        self.breakpoints.add(byte_addr // 2)

    def remove_breakpoint(self, byte_addr):
        self.breakpoints.discard(byte_addr // 2)

    def check_pc(self, core):
        """Called by ``AvrCore.step`` before each instruction."""
        pc = core.pc
        if pc == self._resume_pc:
            # Resuming from a stop at this PC: execute it once without
            # re-triggering, then re-arm.
            self._resume_pc = None
            return
        self._resume_pc = None
        if pc in self.breakpoints:
            self._resume_pc = pc
            raise BreakpointHit(pc * 2, core.cycles)

    # -- time travel ----------------------------------------------------
    def reverse_step(self, n=1):
        """Step *n* retired instructions backwards.

        Requires a :class:`~repro.trace.timeline.Timeline` attached
        (``machine.attach_timeline()``) *before* the run being rewound:
        the timeline restores the nearest keyframe and deterministically
        re-executes forward to ``instret - n``.  Clamps at the start of
        the recording.  Returns the new PC (byte address).  Forward
        execution from the rewound state retraces the recording exactly
        (replay determinism), so breakpoints/watchpoints re-fire on the
        re-executed path.
        """
        timeline = getattr(self.machine, "timeline", None)
        if timeline is None or not timeline.can_replay():
            raise RuntimeError(
                "reverse_step needs an attached timeline recording "
                "(Machine.attach_timeline before the run)")
        core = self.machine.core
        first = timeline.keyframes[0].instret
        target = max(first, core.instret - n)
        timeline.seek_instret(target)
        self._resume_pc = None  # a rewind re-arms breakpoints
        return core.pc * 2

    # -- watchpoints ----------------------------------------------------
    def watch(self, lo, hi=None, on_read=False, on_write=True,
              break_on_hit=False):
        wp = Watchpoint(lo, hi, on_read=on_read, on_write=on_write,
                        break_on_hit=break_on_hit)
        self.watchpoints.append(wp)
        return wp

    def unwatch(self, watchpoint):
        self.watchpoints.remove(watchpoint)

    # -------------------------------------------------------------------
    def detach(self):
        """Remove all probes; the fast loop becomes eligible again."""
        if self.machine.core.debug is self:
            self.machine.core.debug = None
        try:
            self.machine.bus.interposers.remove(self.watch_unit)
        except ValueError:
            pass
