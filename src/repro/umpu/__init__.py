"""UMPU: the hardware-accelerated Harbor system.

Functional-unit models of the paper's architectural extensions (MMC,
safe-stack unit, domain tracker, configuration registers), the machine
that wires them onto the simulated AVR core, and the structural
gate-count area model.
"""

from repro.umpu.area import (
    GateCountRow,
    PAPER_TABLE6,
    Structure,
    baseline_core_area,
    core_growth,
    domain_tracker_area,
    fetch_decoder_area,
    fixed_config_savings,
    gate_count_table,
    glue_area,
    mmc_area,
    safe_stack_area,
)
from repro.umpu.cpu import HarborLayout, UmpuMachine
from repro.umpu.domain_tracker import (
    CROSS_DOMAIN_CALL_CYCLES,
    CROSS_DOMAIN_RET_CYCLES,
    DomainTracker,
)
from repro.umpu.mmc import MMC_STALL_CYCLES, MemMapController
from repro.umpu.registers import UmpuRegisters
from repro.umpu.runtime import build_umpu_runtime, umpu_runtime_source
from repro.umpu.safe_stack_unit import SafeStackUnit
from repro.umpu.system import UmpuModule, UmpuSystem

__all__ = [
    "GateCountRow",
    "PAPER_TABLE6",
    "Structure",
    "baseline_core_area",
    "core_growth",
    "domain_tracker_area",
    "fetch_decoder_area",
    "fixed_config_savings",
    "gate_count_table",
    "glue_area",
    "mmc_area",
    "safe_stack_area",
    "HarborLayout",
    "UmpuMachine",
    "CROSS_DOMAIN_CALL_CYCLES",
    "CROSS_DOMAIN_RET_CYCLES",
    "DomainTracker",
    "MMC_STALL_CYCLES",
    "MemMapController",
    "UmpuRegisters",
    "SafeStackUnit",
    "build_umpu_runtime",
    "umpu_runtime_source",
    "UmpuModule",
    "UmpuSystem",
]
