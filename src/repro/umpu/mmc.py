"""Memory Map Controller functional unit (paper §2.3, Figures 3-4).

The MMC sits between the CPU and the data memory.  For every store by
an untrusted domain it:

1. stalls the CPU and takes the address bus (one clock cycle — the
   paper's "single clock cycle penalty for memory map accesses");
2. translates the write address into a memory-map table location
   (subtract ``mem_prot_bot``, shift by the block size, index from
   ``mem_map_base`` — Figure "Addr Translate") and fetches the
   permission entry in the same cycle;
3. compares the entry's owner with ``cur_domain``;
4. asserts write-enable only if the check passed, else raises the
   protection exception.

The stack-bound comparison (§3.3) is combinational and free; only the
table access costs the stall cycle.  The trusted domain bypasses the
checker entirely, as does a disabled MMC.
"""

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    MemMapFault,
    StackBoundFault,
    UntrustedAccessFault,
)
from repro.sim.bus import BusInterposer, WriteAction
from repro.sim.events import AccessKind
from repro.trace.events import TraceEventKind
from repro.trace.profiler import CAT_MMC

#: Cycles the MMC stalls the CPU per memory-map table access.
MMC_STALL_CYCLES = 1

_CHECKED_KINDS = (AccessKind.DATA_STORE, AccessKind.STACK_PUSH)

#: preallocated verdict for the (hot) passed-check case: the bus only
#: reads WriteAction fields, so one immutable instance serves every
#: checked store without a per-transaction allocation
_STALL_VERDICT = WriteAction(extra_cycles=MMC_STALL_CYCLES)


class MemMapController(BusInterposer):
    """Hardware write checker, configured by :class:`UmpuRegisters`."""

    name = "mmc"

    def __init__(self, registers, memory):
        self.regs = registers
        self.memory = memory
        #: counters for traces/benchmarks
        self.checked_stores = 0
        self.faults = 0
        #: optional waveform recorder: list of per-phase dicts
        self.waveform = None

    # ------------------------------------------------------------------
    def translate(self, addr):
        """Hardware address translation: (table byte address, shift).

        Pure register arithmetic (no MemMapConfig object): offset,
        block number via the barrel shifter, entry index and in-byte
        shift from the encoding width, byte address from
        ``mem_map_base``.  Unit-tested for equivalence against
        :meth:`repro.core.memmap.MemMapConfig.translate`.
        """
        regs = self.regs
        offset = addr - regs.mem_prot_bot
        block = offset >> regs.block_size_log2
        if regs.bits_per_entry == 4:
            byte_index = block >> 1
            shift = 4 * (block & 1)
        else:
            byte_index = block >> 2
            shift = 2 * (block & 3)
        return regs.mem_map_base + byte_index, shift

    def permission_at(self, addr):
        """Fetch and split the permission entry covering *addr*."""
        table_addr, shift = self.translate(addr)
        byte = self.memory.read_data(table_addr)
        mask = (1 << self.regs.bits_per_entry) - 1
        return (byte >> shift) & mask

    def _owner_of_code(self, code):
        if self.regs.bits_per_entry == 4:
            return (code >> 1) & 0x7
        return TRUSTED_DOMAIN if code & 0b10 else 0

    # ------------------------------------------------------------------
    def on_write(self, bus, addr, value, kind):
        regs = self.regs
        if not regs.enabled or kind not in _CHECKED_KINDS:
            return None
        domain = regs.cur_domain
        if domain == TRUSTED_DOMAIN:
            return None
        self._wave("intercept", addr=addr, domain=domain)
        if addr > regs.stack_bound:
            self._fault(bus, addr, domain, "stack_bound")
            raise StackBoundFault(addr, domain, regs.stack_bound)
        if regs.mem_prot_bot <= addr <= regs.mem_prot_top:
            self.checked_stores += 1
            table_addr, shift = self.translate(addr)
            byte = self.memory.read_data(table_addr)
            code = (byte >> shift) & ((1 << regs.bits_per_entry) - 1)
            owner = self._owner_of_code(code)
            self._wave("translate", table_addr=table_addr, shift=shift,
                       code=code, owner=owner)
            if owner != domain:
                self._fault(bus, addr, domain, "memmap", owner=owner)
                raise MemMapFault(addr, domain, owner)
            self._wave("write_enable", addr=addr)
            if bus.trace is not None:
                bus.trace.emit(bus._now(), TraceEventKind.MMC_STALL,
                               domain=domain, addr=addr,
                               table_addr=table_addr)
            if bus.profiler is not None:
                bus.profiler.charge(CAT_MMC, MMC_STALL_CYCLES,
                                    domain=domain)
            metrics = bus.metrics
            if metrics is not None:
                metrics.counter("mmc_stall_cycles").inc(MMC_STALL_CYCLES)
                metrics.counter("mmc_checked_stores", domain=domain).inc()
            return _STALL_VERDICT
        if addr > regs.mem_prot_top:
            # the module's own stack window: the bound comparison above
            # already admitted it; no table access, no stall
            self._wave("stack_window", addr=addr)
            return None
        self._fault(bus, addr, domain, "untrusted_access")
        raise UntrustedAccessFault(addr, domain)

    # ------------------------------------------------------------------
    def _fault(self, bus=None, addr=None, domain=None, why=None, **data):
        self.faults += 1
        self._wave("exception")
        if bus is not None and bus.trace is not None:
            bus.trace.emit(bus._now(), TraceEventKind.PROTECTION_FAULT,
                           domain=domain, unit=self.name, addr=addr,
                           why=why, **data)

    def _wave(self, phase, **signals):
        if self.waveform is not None:
            self.waveform.append({"phase": phase, **signals})

    def record_waveform(self):
        """Start recording check phases (Figure 4a timing reproduction)."""
        self.waveform = []
        return self.waveform
