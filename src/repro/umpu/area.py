"""Structural gate-count area model (paper Table `hwsize`).

The paper reports Xilinx ISE 8.2i equivalent gate counts for the UMPU
units on a Virtex-2 Pro.  We cannot synthesize VHDL here, so this module
estimates areas *structurally*: each unit is decomposed into the RTL
primitives its behavioural model implies (registers, comparators,
adders, barrel shifters, muxes, FSMs), primitives carry NAND2-equivalent
gate costs, and a single global calibration factor maps raw structural
gates to ISE "equivalent gates" (FPGA equivalent-gate reporting inflates
logic roughly 2-3x over a plain NAND2 count; the factor is fitted once
against the paper's baseline AVR core and applied uniformly).

Because the factor is global, *relative* statements survive the
calibration: the unit ordering (MMC > safe stack > domain tracker), the
~32% core growth, and the ablation the paper suggests ("we can eliminate
this overhead if the processor is synthesized for a fixed block size and
number of protection domains") — dropping the barrel shifters from a
fixed-configuration MMC — are all model outputs, not inputs.
"""

from dataclasses import dataclass, field

# --- primitive costs (NAND2-equivalent gates) ---------------------------
GATES_PER_DFF = 6
GATES_PER_MUX2_BIT = 3
GATES_PER_FA_BIT = 5        # full adder / subtractor bit
GATES_PER_CMP_BIT = 3       # equality/magnitude comparator bit
GATES_PER_RANDOM_LOGIC = 1  # misc gate

#: Global calibration: raw structural gates -> ISE equivalent gates.
#: Fitted so the modelled baseline AVR core matches the paper's 16419.
XILINX_EQUIV_FACTOR = 2.62


def dff(bits):
    return bits * GATES_PER_DFF


def mux2(bits):
    return bits * GATES_PER_MUX2_BIT


def adder(bits):
    return bits * GATES_PER_FA_BIT


def comparator(bits):
    return bits * GATES_PER_CMP_BIT


def barrel_shifter(width, stages):
    """A *stages*-stage logarithmic shifter over *width* bits."""
    return stages * mux2(width)


@dataclass
class Structure:
    """A unit's structural decomposition and resulting gate estimate."""

    name: str
    parts: list = field(default_factory=list)

    def add(self, description, gates):
        self.parts.append((description, gates))
        return self

    @property
    def raw_gates(self):
        return sum(g for _d, g in self.parts)

    @property
    def equiv_gates(self):
        return round(self.raw_gates * XILINX_EQUIV_FACTOR)

    def report(self):
        lines = ["{} ({} equiv gates, {} raw):".format(
            self.name, self.equiv_gates, self.raw_gates)]
        for desc, gates in self.parts:
            lines.append("  {:<44} {:>5}".format(desc, gates))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
def mmc_area(configurable=True):
    """Memory Map Controller.

    With *configurable* False the unit is synthesized for a fixed block
    size and protection mode: the barrel shifters collapse to wiring and
    the config register disappears — the paper's suggested optimization.
    """
    s = Structure("MMC")
    s.add("protected-range bounds comparators (2 x 16b)", 2 * comparator(16))
    s.add("offset subtractor (addr - mem_prot_bot, 16b)", adder(16))
    if configurable:
        s.add("block-number barrel shifter (16b x 4 stages)",
              barrel_shifter(16, 4))
        s.add("entry-extract barrel shifter (8b x 3 stages)",
              barrel_shifter(8, 3))
        s.add("mem_map_config register + decode", dff(8) + 24)
    else:
        s.add("fixed block-size wiring (shift by constant)", 0)
        s.add("fixed entry extraction (nibble mux)", mux2(4))
    s.add("table-index adder (mem_map_base + index, 16b)", adder(16))
    s.add("address-bus takeover muxes (2 x 16b)", 2 * mux2(16))
    s.add("write address / data latches (16b)", dff(16))
    s.add("owner comparator + trusted detect (4b)", comparator(4) + 8)
    s.add("stack-bound comparator (16b)", comparator(16))
    s.add("check FSM, write-enable and exception logic", 20)
    return s


def safe_stack_area():
    """Safe-stack unit: pointer datapath + bus steal."""
    s = Structure("Safe Stack")
    s.add("safe_stack_ptr register (16b)", dff(16))
    s.add("pointer incrementer/decrementer (16b)", adder(16) + mux2(16))
    s.add("address-bus steal mux (16b)", mux2(16))
    s.add("overflow comparator vs SP (16b)", comparator(16))
    s.add("floor register + underflow comparator (16b+16b)",
          dff(16) + comparator(16))
    s.add("frame byte-sequencing counter + FSM", dff(5) + 60)
    s.add("data latch (8b)", dff(8))
    s.add("I/O window interface (rd/wr decode, byte muxes)", 66)
    return s


def domain_tracker_area(ndomains=8):
    """Domain tracker: call/ret extension."""
    s = Structure("Domain Tracker")
    s.add("cur_domain register (3b) + status mapping", dff(3) + 10)
    s.add("jump-table base comparator (16b)", comparator(16))
    s.add("callee-id extract (offset shift, fixed page)", 40)
    s.add("domain-range comparator (3b)", comparator(3))
    s.add("cross-domain state machine", 45)
    s.add("nesting counter ({} frames x 5b)".format(ndomains), 36)
    return s


def fetch_decoder_area(extended=False):
    """The instruction fetch/decode block.

    The baseline number is calibrated to the paper's 6685; the extension
    adds the decode of return-address push/pop strobes and call-target
    tagging for the tracker.
    """
    s = Structure("Fetch Decoder")
    s.add("baseline fetch/decode (calibrated)", 2552)
    if extended:
        s.add("ret-addr push/pop strobes + call-target tap", 37)
    return s


def baseline_core_area():
    """The unmodified AVR core, decomposed; calibrated to 16419."""
    s = Structure("AVR Core (baseline)")
    s.add("register file (32 x 8b DFF + 2 read-port muxing)",
          dff(32 * 8) + 2 * 31 * mux2(8))
    s.add("ALU (adder, logic, shifter, flags)", adder(8) + 330)
    s.add("SREG + flag update network", dff(8) + 120)
    s.add("program counter + incrementer (16b)", dff(16) + adder(16))
    s.add("stack pointer + inc/dec (16b)", dff(16) + adder(16) + mux2(16))
    s.add("instruction register + operand latches", dff(16 + 16))
    s.add("I/O space interface (incl. extension registers)", 330)
    s.add("data/program bus interface", 500)
    s.add("control / microsequencing", 953)
    s.add("interrupt unit", 330)
    return s


def glue_area():
    """Inter-unit glue of the extended core: stall arbitration, bus
    multiplexing between the MMC/safe-stack unit and the memory, and
    exception routing."""
    s = Structure("Extension glue")
    s.add("stall arbitration + pipeline hold", 150)
    s.add("data-bus multiplexing between units", 2 * mux2(16) + 60)
    s.add("exception encoder / vector mux", 90)
    s.add("unit enable/config fan-out", 143)
    return s


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GateCountRow:
    component: str
    extended: int
    original: object  # int or None (paper prints "N/A")


#: Paper Table 6 values, for comparison columns in benches/EXPERIMENTS.
PAPER_TABLE6 = {
    "AVR Core": (22498, 16419),
    "Fetch Decoder": (6783, 6685),
    "MMC": (2284, None),
    "Safe Stack": (1749, None),
    "Domain Tracker": (541, None),
}


def gate_count_table(configurable=True, ndomains=8):
    """Model output in the shape of paper Table 6."""
    base = baseline_core_area()
    mmc = mmc_area(configurable)
    ss = safe_stack_area()
    dt = domain_tracker_area(ndomains)
    fd_base = fetch_decoder_area(False)
    fd_ext = fetch_decoder_area(True)
    glue = glue_area()
    core_ext = (base.equiv_gates + mmc.equiv_gates + ss.equiv_gates
                + dt.equiv_gates + glue.equiv_gates
                + (fd_ext.equiv_gates - fd_base.equiv_gates))
    return [
        GateCountRow("AVR Core", core_ext, base.equiv_gates),
        GateCountRow("Fetch Decoder", fd_ext.equiv_gates,
                     fd_base.equiv_gates),
        GateCountRow("MMC", mmc.equiv_gates, None),
        GateCountRow("Safe Stack", ss.equiv_gates, None),
        GateCountRow("Domain Tracker", dt.equiv_gates, None),
    ]


def core_growth(configurable=True):
    """Fractional growth of the core area (paper: 'about 32%')."""
    rows = gate_count_table(configurable)
    core = rows[0]
    return (core.extended - core.original) / core.original


def fixed_config_savings():
    """Gate savings of the fixed-configuration synthesis (ablation)."""
    return mmc_area(True).equiv_gates - mmc_area(False).equiv_gates
