"""UMPU configuration/status registers (paper Table `mmap_config` + §3).

The hardware extensions are programmed through I/O-mapped registers:

=====================  =====================================================
``mem_map_base``       base pointer of the memory-map table in SRAM
``mem_prot_bot/top``   bounds of the memory-map-protected address space
``mem_map_config``     block size, protection mode, global enable
``stack_bound``        run-time-stack write limit of the active domain
``safe_stack_ptr``     next free byte of the safe stack (grows up)
``cur_domain``         identity of the executing domain (status register)
``jt_base``            flash byte address of the co-located jump tables
=====================  =====================================================

"The registers are accessible only by the run-time library loaded in the
trusted domain": any write issued while an untrusted domain is active
raises :class:`~repro.core.faults.ConfigFault`.  Reads are free — the
software library *reads the identity of the current active domain from
the status register* to attribute ``malloc``/``free`` calls.

``mem_map_config`` bit layout (our concrete encoding of "block size and
number of protection domains"):

* bits 2..0 — log2(block size in bytes)
* bit 3     — protection mode: 1 = multi-domain (4-bit), 0 = two-domain
* bits 6..4 — number of domains with jump tables, minus one
* bit 7     — global protection enable
"""

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import ConfigFault
from repro.isa.registers import IoReg


class UmpuRegisters:
    """The register file of the UMPU extensions, as an I/O device.

    Register state is held here (the hardware's flip-flops); the device
    maps the I/O window addresses onto 8-bit slices of that state.
    """

    #: data-space addresses of the register window
    BASE = IoReg.MEM_MAP_BASE_L + 0x20
    END = IoReg.UMPU_CTRL + 0x20  # inclusive

    def __init__(self):
        self.mem_map_base = 0
        self.mem_prot_bot = 0
        self.mem_prot_top = 0
        self.mem_map_config = 0
        self.stack_bound = 0xFFFF
        self.safe_stack_ptr = 0
        self.cur_domain = TRUSTED_DOMAIN
        self.jt_base = 0

    # --- config decoding ---------------------------------------------------
    @property
    def enabled(self):
        return bool(self.mem_map_config & 0x80)

    @property
    def block_size_log2(self):
        return self.mem_map_config & 0x07

    @property
    def block_size(self):
        return 1 << self.block_size_log2

    @property
    def multi_domain(self):
        return bool(self.mem_map_config & 0x08)

    @property
    def bits_per_entry(self):
        return 4 if self.multi_domain else 2

    @property
    def ndomains(self):
        """Domains with jump tables (1..8)."""
        return ((self.mem_map_config >> 4) & 0x07) + 1

    def encode_config(self, block_size_log2, multi_domain, ndomains,
                      enabled=True):
        value = (block_size_log2 & 0x07) \
            | (0x08 if multi_domain else 0) \
            | (((ndomains - 1) & 0x07) << 4) \
            | (0x80 if enabled else 0)
        self.mem_map_config = value
        return value

    # --- I/O device protocol ---------------------------------------------------
    _BYTE_MAP = {
        IoReg.MEM_MAP_BASE_L: ("mem_map_base", 0),
        IoReg.MEM_MAP_BASE_H: ("mem_map_base", 1),
        IoReg.MEM_PROT_BOT_L: ("mem_prot_bot", 0),
        IoReg.MEM_PROT_BOT_H: ("mem_prot_bot", 1),
        IoReg.MEM_PROT_TOP_L: ("mem_prot_top", 0),
        IoReg.MEM_PROT_TOP_H: ("mem_prot_top", 1),
        IoReg.MEM_MAP_CONFIG: ("mem_map_config", 0),
        IoReg.STACK_BOUND_L: ("stack_bound", 0),
        IoReg.STACK_BOUND_H: ("stack_bound", 1),
        IoReg.SAFE_STACK_PTR_L: ("safe_stack_ptr", 0),
        IoReg.SAFE_STACK_PTR_H: ("safe_stack_ptr", 1),
        IoReg.CUR_DOMAIN: ("cur_domain", 0),
        IoReg.JT_BASE_L: ("jt_base", 0),
        IoReg.JT_BASE_H: ("jt_base", 1),
        IoReg.UMPU_CTRL: ("mem_map_config", 0),  # alias of config for now
    }

    def attach(self, memory):
        """Register this device over its I/O window in *memory*."""
        for io_addr in self._BYTE_MAP:
            memory.io_devices[io_addr + 0x20] = self
        return self

    def _locate(self, data_addr):
        return self._BYTE_MAP[data_addr - 0x20]

    def io_read(self, data_addr):
        attr, byte = self._locate(data_addr)
        return (getattr(self, attr) >> (8 * byte)) & 0xFF

    def io_write(self, data_addr, value):
        if self.cur_domain != TRUSTED_DOMAIN:
            raise ConfigFault(
                "UMPU register 0x{:02x}".format(data_addr - 0x20),
                domain=self.cur_domain)
        attr, byte = self._locate(data_addr)
        old = getattr(self, attr)
        if byte:
            new = (old & 0x00FF) | ((value & 0xFF) << 8)
        else:
            new = (old & 0xFF00) | (value & 0xFF)
        setattr(self, attr, new)

    # --- descriptive dump (Table 2 reproduction) ---------------------------------
    REGISTER_TABLE = (
        ("mem_map_base", "Memory map base pointer"),
        ("mem_prot_bot", "Lower bound of protected address space"),
        ("mem_prot_top", "Upper bound of protected address space"),
        ("mem_map_config", "Configure block size and domains"),
        ("stack_bound", "Run-time stack write limit (set on x-domain call)"),
        ("safe_stack_ptr", "Safe stack pointer (grows up)"),
        ("cur_domain", "Identity of the executing domain"),
        ("jt_base", "Base of the co-located jump tables in flash"),
    )

    def dump(self):
        return {name: getattr(self, name)
                for name, _desc in self.REGISTER_TABLE}
