"""UmpuSystem: a complete node running the hardware-accelerated system.

The counterpart of :class:`repro.sfi.SfiSystem`: same software library
API (retargeted for UMPU), same jump-table layout, same kernel exports —
but modules load **unmodified** (no rewriting, no verifier): the MMC,
safe-stack unit and domain tracker enforce the protection model in
hardware.  The loader's only jobs are placing the code, registering the
module's code region with the tracker and publishing its exports.
"""

from dataclasses import dataclass

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import ProtectionFault, fault_from_code
from repro.core.memmap import MemoryBackedStorage, MemoryMap
from repro.sfi.layout import (
    FAULT_NAMES,
    FAULT_OWNERSHIP,
    FAULT_SS_OVERFLOW,
    FAULT_STACK_BOUND,
    SfiLayout,
)
from repro.sfi.system import KERNEL_EXPORTS
from repro.sos.linker import CrossDomainLinker
from repro.core.control_flow import JumpTable
from repro.umpu.cpu import HarborLayout, UmpuMachine
from repro.umpu.runtime import build_umpu_runtime


@dataclass
class UmpuModule:
    """A module installed on the hardware-protected node."""

    name: str
    domain: int
    start: int
    end: int
    exports: dict  # name -> jump-table entry byte address


class UmpuSystem:
    """A simulated node: UMPU hardware + the retargeted software library."""

    def __init__(self, layout=None):
        self.layout = layout or SfiLayout()
        self.hw_layout = HarborLayout(
            memmap_table=self.layout.memmap_table,
            prot_bottom=self.layout.prot_bottom,
            prot_top=self.layout.prot_top,
            safe_stack_base=self.layout.safe_stack_base,
            jt_base=self.layout.jt_base,
            ndomains=self.layout.ndomains)
        self.runtime = build_umpu_runtime(self.layout)
        self.machine = UmpuMachine(self.runtime, layout=self.hw_layout)
        # the SfiLayout knows heap/safe-stack bounds and the trusted
        # cells, so fault reports classify regions more precisely than
        # the bare hardware layout would
        self.machine.attach_forensics(layout=self.layout,
                                      symbols=self.symbol_map)
        self.jump_table = JumpTable(
            base=self.layout.jt_base,
            ndomains=self.layout.ndomains,
            entries_per_domain=self.layout.jt_page_bytes // 4,
            entry_bytes=4)
        self.linker = CrossDomainLinker(
            self.jump_table,
            exception_target=self.runtime.symbol("hb_fault_r20"))
        self.modules = {}
        self._next_load = self.layout.jt_end
        self._next_domain = 0
        self._free_domains = []
        for name, entry in KERNEL_EXPORTS:
            self.linker.export(TRUSTED_DOMAIN, name,
                               self.runtime.symbol(entry))
        # the kernel library is the trusted domain's code region
        self.machine.tracker.register_code_region(
            TRUSTED_DOMAIN, 0, self.machine.geometry.flash_bytes)
        self._flush_jump_table()
        self.boot()

    # ------------------------------------------------------------------
    def boot(self):
        self.machine.reset()
        self.machine.enter_trusted()
        # hardware registers were programmed at construction
        # (UmpuMachine.configure); the library builds its data structures
        self.machine.call("hb_init", max_cycles=100000)
        # keep a fresh view (configure()'s view cleared the table before
        # hb_init rebuilt it; both agree now)
        self.machine.memmap = MemoryMap(
            self.layout.memmap_config,
            MemoryBackedStorage(self.machine.memory,
                                self.layout.memmap_table),
            initialize=False)
        return self

    def _flush_jump_table(self):
        self.linker.emit(self.machine.memory.write_flash_word)
        self.machine.core.invalidate_decode_cache()

    @property
    def memmap(self):
        return self.machine.memmap

    @property
    def cur_domain(self):
        return self.machine.regs.cur_domain

    def kernel_symbols(self):
        syms = {}
        for name, _entry in KERNEL_EXPORTS:
            syms["KERNEL_" + name.upper()] = self.linker.entry_for(
                TRUSTED_DOMAIN, name)
        for module in self.modules.values():
            for export, addr in module.exports.items():
                syms["JT_{}_{}".format(module.name.upper(),
                                       export.upper())] = addr
        return syms

    def symbol_map(self):
        """Whole-image symbol map: runtime labels, jump-table slot
        labels (``jt_d<n>_<export>``) and module export code addresses
        (``<module>.<export>``) — what the disassembler, the fault
        forensics windows and harbor-lint symbolize against."""
        syms = dict(self.runtime.symbols)
        syms.update(self.linker.symbols())
        for module in self.modules.values():
            for export in module.exports:
                target = self.linker.export_target(module.domain, export)
                if target is not None:
                    syms.setdefault(
                        "{}.{}".format(module.name, export), target)
        return syms

    # ------------------------------------------------------------------
    def load_module(self, program, name, exports=()):
        """Install an *unmodified* module binary.

        No rewriting, no verification: hardware enforces the model.  The
        image is placed at the next load address, its code region is
        registered with the domain tracker, its exports are linked.
        """
        if self._free_domains:
            domain = self._free_domains.pop(0)
        elif self._next_domain < self.layout.ndomains - 1:
            domain = self._next_domain
        else:
            raise ValueError("no free protection domain")
        lo, hi = program.extent()
        span_words = hi - lo + 1
        base_word = self._next_load // 2
        for word_addr, value in program.words.items():
            self.machine.memory.write_flash_word(
                base_word + (word_addr - lo), value)
        start = self._next_load
        end = start + span_words * 2
        if lo != 0:
            raise ValueError("assemble UMPU modules at origin 0 "
                             "(they are placed by the loader)")
        # NOTE: modules must be position-independent w.r.t. absolute
        # jumps; relative branches and jump-table calls survive the move
        self._relocate_absolute(program, base_word)
        self.machine.core.invalidate_decode_cache()
        self.machine.tracker.register_code_region(domain, start, end)
        jt_exports = {}
        for export in exports:
            target = start + program.symbol(export)
            jt_exports[export] = self.linker.export(domain, export, target)
        self._flush_jump_table()
        module = UmpuModule(name=name, domain=domain, start=start,
                            end=end, exports=jt_exports)
        self.modules[name] = module
        if domain == self._next_domain:
            self._next_domain += 1
        self._next_load = (end + 0xFF) & ~0xFF
        return module

    def _relocate_absolute(self, program, base_word):
        """Patch module-internal jmp/call targets for the load address
        (the linker's relocation step; jump-table targets are absolute
        and stay put)."""
        from repro.isa.encoding import decode_words, encode
        lo, hi = program.extent()
        mem = self.machine.memory
        idx = lo
        while idx <= hi:
            w0 = program.word(idx)
            w1 = program.word(idx + 1) if idx + 1 <= hi else None
            try:
                instr = decode_words(w0, w1)
            except Exception:
                idx += 1
                continue
            if instr.key in ("jmp", "call"):
                target_byte = instr.operands[0] * 2
                if lo * 2 <= target_byte <= hi * 2 + 1:
                    new = encode(instr.key,
                                 ((base_word * 2 + target_byte) // 2,))
                    mem.write_flash_word(base_word + (idx - lo), new[0])
                    mem.write_flash_word(base_word + (idx - lo) + 1,
                                         new[1])
            idx += instr.size_words
        # the patched words may sit at addresses the core has already
        # executed (a reload at a reused base); never let it run stale
        # decodes (write_flash_word also notifies the core per word)
        self.machine.core.invalidate_decode_cache()
        return program


    def unload_module(self, name):
        """Unload a module: free every heap segment its domain owns,
        drop its jump-table entries (slots revert to the exception
        routine), and release the domain id for reuse.  The module's
        flash stays behind (as on a real node) but is no longer
        reachable through any jump table."""
        module = self.modules.pop(name)
        memmap = self.memmap
        heap_start, heap_end = self.layout.heap_start, self.layout.heap_end
        for start, _nblocks, owner in memmap.segments():
            if owner == module.domain and heap_start <= start < heap_end:
                self.free(start + self.layout.heap_header)
        self.linker.unlink_domain(module.domain)
        self._flush_jump_table()
        # the module's flash span is dead code now and its addresses
        # will be reused by the next load there
        self.machine.core.invalidate_decode_cache()
        self._free_domains.append(module.domain)
        return module

    def attach_timeline(self, interval=None, keep_flash=True):
        """Attach a :class:`~repro.trace.timeline.Timeline` recorder to
        the node (keyframes span every subsequent ``call_export`` /
        kernel-call run; see ``docs/observability.md``)."""
        return self.machine.attach_timeline(interval=interval,
                                            keep_flash=keep_flash)

    # --- snapshot/restore ---------------------------------------------
    def snapshot(self):
        """Capture machine + loader state for :meth:`restore`.  The
        UMPU register file, domain tracker and safe-stack unit ride in
        the machine snapshot (``UmpuMachine._snapshot_extra``)."""
        from repro.sim.snapshot import MachineSnapshot
        return MachineSnapshot.capture_system(self)

    def restore(self, snap):
        snap.apply_system(self)
        return self

    # ------------------------------------------------------------------
    def _software_fault(self):
        """Map the library's numeric fault code back to the typed
        exception via the stable ``code`` slugs — the same round-trip
        the software-only system performs, so both paths raise identical
        fault types for identical violations."""
        mem = self.machine.memory
        code = mem.read_data(self.layout.fault_code)
        if not code:
            return None
        addr = mem.read_word_data(self.layout.fault_addr)
        slug = FAULT_NAMES.get(code)
        if slug is None:
            return ProtectionFault(
                "unknown library fault code {}".format(code), addr=addr)
        context = {}
        if code == FAULT_OWNERSHIP:
            context["operation"] = "free/change_own"
        elif code == FAULT_STACK_BOUND:
            context["stack_bound"] = mem.read_word_data(
                self.layout.stack_bound)
        elif code == FAULT_SS_OVERFLOW:
            context["ptr"] = mem.read_word_data(self.layout.ss_ptr)
            context["limit"] = self.layout.safe_stack_limit
        elif slug == "memmap" and self.layout.memmap_config.contains(addr):
            try:
                context["owner"] = self.memmap.owner_of(addr)
            except Exception:
                pass
        return fault_from_code(slug, addr=addr, domain=self.cur_domain,
                               **context)

    def clear_fault(self):
        self.machine.memory.write_data(self.layout.fault_code, 0)
        self.machine.core.halted = False

    def recover(self):
        """Kernel-side recovery after a contained hardware fault."""
        self.clear_fault()
        machine = self.machine
        machine.enter_trusted()
        machine.regs.safe_stack_ptr = self.hw_layout.safe_stack_base
        machine.tracker.call_depths.clear()
        machine.memory.sp = machine.geometry.ramend
        machine.memory.write_data(self.layout.cur_dom, TRUSTED_DOMAIN)
        return self

    def _checked(self, cycles):
        exc = self._software_fault()
        if exc is not None:
            self.clear_fault()
            raise self.machine.record_fault(exc)
        return cycles

    # ------------------------------------------------------------------
    def call_export(self, module, export, *args, max_cycles=1_000_000):
        """Dispatch into a module export through the jump table (via the
        hb_dispatch springboard so the hardware sees a real icall)."""
        entry = self.modules[module].exports[export]
        machine = self.machine
        machine.enter_trusted()
        machine.set_args(*args)
        machine.core.set_reg_pair(30, entry // 2)
        machine.core.push_return_address(0xFFFE)
        machine.core.pc = self.runtime.symbol("hb_dispatch") // 2
        if machine.timeline is not None:
            machine.timeline.begin_run()
        start = machine.core.cycles
        try:
            machine.core.run(max_cycles=max_cycles, until_pc=0xFFFE)
        except ProtectionFault as fault:
            raise machine.record_fault(fault)
        self._checked(0)
        return machine.result16(), machine.core.cycles - start

    # --- host-side trusted memory API -----------------------------------
    def _acting(self, domain):
        self.machine.memory.write_data(self.layout.cur_dom, domain)

    def malloc(self, nbytes, domain=TRUSTED_DOMAIN):
        self._acting(domain)
        try:
            cycles = self.machine.call("hb_malloc", nbytes)
            self._checked(cycles)
        finally:
            self._acting(TRUSTED_DOMAIN)
        return self.machine.result16() or None

    def free(self, ptr, domain=TRUSTED_DOMAIN):
        self._acting(domain)
        try:
            self._checked(self.machine.call("hb_free", ptr))
        finally:
            self._acting(TRUSTED_DOMAIN)

    def change_own(self, ptr, new_domain, domain=TRUSTED_DOMAIN):
        self._acting(domain)
        try:
            self._checked(self.machine.call("hb_change_own", ptr,
                                            ("u8", new_domain)))
        finally:
            self._acting(TRUSTED_DOMAIN)
