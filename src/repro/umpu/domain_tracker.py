"""Domain tracker: hardware-extended ``call``/``return`` (paper §3.2).

The tracker watches every control transfer the core executes:

* a ``call``/``rcall``/``icall`` whose target lies inside the jump-table
  region is a **cross-domain call**: the callee's identity is computed
  by dividing the target's offset from ``jt_base`` by the page size (a
  quotient beyond the configured domain count means the target overran
  the table → exception); the tracker then sequences the caller's
  domain id and stack bound onto the safe stack (the redirected
  return-address push completes the 5-byte frame), copies SP into
  ``stack_bound`` and activates the callee domain.  The sequencing
  costs :data:`CROSS_DOMAIN_CALL_CYCLES` stall cycles — the paper's
  "five clock cycles ... five bytes and only one byte can be written
  every clock cycle".
* any other call by an untrusted domain must stay inside the domain's
  registered code region, else the control flow is escaping and the
  tracker raises :class:`JumpTableFault`.
* a ``ret`` that closes a cross-domain frame restores the caller's
  domain and stack bound from the safe stack (5 more stall cycles);
  ordinary returns pass through.  The *cross-domain state machine* —
  a per-frame counter of nested ordinary calls — decides which ``ret``
  closes a frame.
* computed jumps (``ijmp``) are confined to the current domain's code
  region.
"""

from repro.core.control_flow import JumpTable
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import JumpTableFault
from repro.trace.events import TraceEventKind
from repro.trace.metrics import DEPTH_BUCKETS
from repro.trace.profiler import CAT_SAFE_STACK

#: Stall cycles of a cross-domain call / return (5-byte frame at one
#: byte per clock).
CROSS_DOMAIN_CALL_CYCLES = 5
CROSS_DOMAIN_RET_CYCLES = 5


class DomainTracker:
    """Call/return extension; installs as a core call hook."""

    name = "domain_tracker"

    def __init__(self, registers, safe_stack_unit,
                 entries_per_domain=128, entry_bytes=4):
        self.regs = registers
        self.unit = safe_stack_unit
        self.entries_per_domain = entries_per_domain
        self.entry_bytes = entry_bytes
        #: per-open-frame counters of nested ordinary calls
        self.call_depths = []
        #: domain id -> (code_start_byte, code_end_byte)
        self.code_regions = {}
        self.cross_calls = 0
        self.cross_returns = 0

    # ------------------------------------------------------------------
    def jump_table(self):
        """Current jump-table geometry from the registers."""
        return JumpTable(base=self.regs.jt_base,
                         ndomains=self.regs.ndomains,
                         entries_per_domain=self.entries_per_domain,
                         entry_bytes=self.entry_bytes)

    def register_code_region(self, domain, start_byte, end_byte):
        self.code_regions[domain] = (start_byte, end_byte)

    def install(self, core):
        core.call_hooks.append(self.on_event)
        return self

    # ------------------------------------------------------------------
    def on_event(self, core, event, **kw):
        if not self.regs.enabled:
            return 0
        if event == "call":
            return self._on_call(core, kw["target"] * 2)
        if event == "ret":
            return self._on_ret(core)
        if event == "ijmp":
            return self._on_ijmp(kw["target"] * 2)
        if event == "irq":
            return self._on_irq(core)
        return 0

    # ------------------------------------------------------------------
    def _switched(self, core, old_domain, via, stall):
        """A cross-domain transition happened: trace the switch and
        attribute the frame-sequencing stall to the *old* domain (its
        state is what the safe stack is moving)."""
        # getattr: unit tests drive the tracker with minimal core stubs
        trace = getattr(core, "trace", None)
        if trace is not None:
            trace.emit(core.cycles, TraceEventKind.DOMAIN_SWITCH,
                       pc=core.pc * 2, domain=self.regs.cur_domain,
                       via=via, from_domain=old_domain,
                       to_domain=self.regs.cur_domain)
        profiler = getattr(core, "profiler", None)
        if profiler is not None:
            profiler.charge(CAT_SAFE_STACK, stall, domain=old_domain)
        metrics = getattr(core, "metrics", None)
        if metrics is not None:
            metrics.counter("cross_domain_transfers", via=via).inc()
            metrics.histogram("cross_domain_depth",
                              buckets=DEPTH_BUCKETS).observe(
                                  len(self.call_depths))

    def _on_call(self, core, target_byte):
        jt = self.jump_table()
        if jt.contains(target_byte):
            jt.classify(target_byte)  # validates alignment/domain range
            callee = (target_byte - jt.base) // jt.page_bytes
            # sequence the caller's state onto the safe stack; the
            # core's redirected return-address push follows, completing
            # the frame [domain][sb_lo][sb_hi][ret_lo][ret_hi]
            caller = self.regs.cur_domain
            self.unit.push_byte(caller)
            self.unit.push_byte(self.regs.stack_bound & 0xFF)
            self.unit.push_byte((self.regs.stack_bound >> 8) & 0xFF)
            self.call_depths.append(0)
            self.regs.cur_domain = callee
            self.regs.stack_bound = core.sp
            self.cross_calls += 1
            self._switched(core, caller, "call",
                           CROSS_DOMAIN_CALL_CYCLES)
            return CROSS_DOMAIN_CALL_CYCLES
        # ordinary call: confined to the current domain's code
        self._confine(target_byte, "call")
        if self.call_depths:
            self.call_depths[-1] += 1
        return 0

    def _on_ret(self, core):
        if not self.call_depths:
            return 0
        if self.call_depths[-1] > 0:
            self.call_depths[-1] -= 1
            return 0
        # closes the innermost cross-domain frame; the core already
        # popped the return address, the rest of the frame follows
        self.call_depths.pop()
        sb_hi = self.unit.pop_byte()
        sb_lo = self.unit.pop_byte()
        prev_domain = self.unit.pop_byte()
        callee = self.regs.cur_domain
        self.regs.stack_bound = (sb_hi << 8) | sb_lo
        self.regs.cur_domain = prev_domain
        self.cross_returns += 1
        self._switched(core, callee, "ret", CROSS_DOMAIN_RET_CYCLES)
        return CROSS_DOMAIN_RET_CYCLES

    def _on_irq(self, core):
        """Interrupt entry: handlers are kernel code, so the hardware
        swaps to the trusted domain exactly like a cross-domain call (a
        frame on the safe stack, closed by the reti's return)."""
        interrupted = self.regs.cur_domain
        self.unit.push_byte(interrupted)
        self.unit.push_byte(self.regs.stack_bound & 0xFF)
        self.unit.push_byte((self.regs.stack_bound >> 8) & 0xFF)
        self.call_depths.append(0)
        self.regs.cur_domain = TRUSTED_DOMAIN
        # the handler borrows the interrupted stack; trusted code is
        # unchecked, so the bound may stay as-is for the frame's pop
        self.cross_calls += 1
        self._switched(core, interrupted, "irq",
                       CROSS_DOMAIN_CALL_CYCLES)
        return CROSS_DOMAIN_CALL_CYCLES

    def _on_ijmp(self, target_byte):
        self._confine(target_byte, "ijmp")
        return 0

    def _confine(self, target_byte, what):
        domain = self.regs.cur_domain
        if domain == TRUSTED_DOMAIN:
            return
        region = self.code_regions.get(domain)
        if region and region[0] <= target_byte < region[1]:
            return
        raise JumpTableFault(
            target_byte, domain=domain,
            reason="{} escaping the domain's code region".format(what))

    @property
    def nesting(self):
        return len(self.call_depths)
