"""Safe-stack hardware unit (paper §3.4 and Table 3 rows "Save/Restore
Ret Addr").

"The hardware unit for safe stack simply takes over the address bus when
the processor is pushing the return address to the run-time stack.  By
stealing the address bus from the processor, the hardware unit is able
to simply redirect the store of the return addresses to the safe stack"
— and therefore *saving and restoring return addresses introduces no
added overhead* (0 cycles in Table 3).

The unit watches the bus for return-address transactions (``RET_PUSH``
and ``RET_POP``, distinct decoder signals of the ``call``/``ret``
families), services them from the safe-stack region at
``safe_stack_ptr`` and marks them handled so they never reach the
run-time stack.  The run-time stack keeps a 2-byte hole per call frame
(SP still moves; the *data* goes to the safe stack), which keeps the CPU
core's SP datapath untouched — the extensions stay outside the core,
"minimal low-cost architectural extensions".

Overflow: the safe stack grows up toward the run-time stack; the unit
raises :class:`SafeStackOverflow` when ``safe_stack_ptr`` would collide
with SP.
"""

from repro.core.faults import SafeStackOverflow, SafeStackUnderflow
from repro.sim.bus import BusInterposer, ReadAction, WriteAction
from repro.sim.events import AccessKind
from repro.trace.events import TraceEventKind

#: preallocated verdict for redirected pushes: the bus only reads
#: WriteAction fields, so one immutable instance serves every push
_HANDLED_VERDICT = WriteAction(handled=True, extra_cycles=0)


class SafeStackUnit(BusInterposer):
    """Redirects return-address pushes/pops to the safe stack region."""

    name = "safe_stack"

    def __init__(self, registers, memory):
        self.regs = registers
        self.memory = memory
        self.redirected_pushes = 0
        self.redirected_pops = 0
        #: highest safe_stack_ptr ever reached (byte address past the
        #: deepest frame) — the runtime high-water mark the static
        #: occupancy bound is cross-checked against
        self.high_water = 0
        #: lowest address the safe stack may reach (set by the runtime;
        #: defaults to colliding with SP only)
        self.floor = None

    # ------------------------------------------------------------------
    def push_byte(self, value):
        """Sequence one byte onto the safe stack (also used by the
        domain tracker to push its part of the cross-domain frame)."""
        ptr = self.regs.safe_stack_ptr
        if ptr >= self.memory.sp:
            raise SafeStackOverflow(ptr, self.memory.sp)
        self.memory.write_data(ptr, value & 0xFF)
        self.regs.safe_stack_ptr = ptr + 1
        if ptr + 1 > self.high_water:
            self.high_water = ptr + 1

    def pop_byte(self):
        ptr = self.regs.safe_stack_ptr - 1
        if self.floor is not None and ptr < self.floor:
            raise SafeStackUnderflow()
        if ptr < 0:
            raise SafeStackUnderflow()
        self.regs.safe_stack_ptr = ptr
        return self.memory.read_data(ptr)

    # ------------------------------------------------------------------
    def on_write(self, bus, addr, value, kind):
        if not self.regs.enabled or kind is not AccessKind.RET_PUSH:
            return None
        self.push_byte(value)
        self.redirected_pushes += 1
        if bus.trace is not None:
            bus.trace.emit(bus._now(),
                           TraceEventKind.SAFE_STACK_REDIRECT,
                           domain=self.regs.cur_domain, addr=addr,
                           target=self.regs.safe_stack_ptr - 1,
                           write=True)
        # handled: the run-time stack never sees the byte; zero extra
        # cycles (the write happens in the slot the CPU already spends)
        return _HANDLED_VERDICT

    def on_read(self, bus, addr, kind):
        if not self.regs.enabled or kind is not AccessKind.RET_POP:
            return None
        value = self.pop_byte()
        self.redirected_pops += 1
        if bus.trace is not None:
            bus.trace.emit(bus._now(),
                           TraceEventKind.SAFE_STACK_REDIRECT,
                           domain=self.regs.cur_domain, addr=addr,
                           target=self.regs.safe_stack_ptr,
                           write=False)
        return ReadAction(value=value, extra_cycles=0)
