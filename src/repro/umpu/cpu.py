"""UMPU machine: AVR core + MMC + safe-stack unit + domain tracker.

:class:`UmpuMachine` is the hardware system of the paper: a stock AVR
core (the simulator) with the three functional units wired onto its data
bus and call path.  The instruction set is untouched — programs
assembled for a plain :class:`~repro.sim.Machine` run unmodified, which
is the paper's "instruction set compatible with regular AVR" property
(and is asserted by tests).

Typical setup (what the trusted runtime does at boot)::

    m = UmpuMachine(program)
    m.configure(HarborLayout(...))       # program the UMPU registers
    m.tracker.register_code_region(0, start, end)
    m.enter_domain(0)                    # activate an untrusted domain
    m.call("module_entry")
"""

from dataclasses import dataclass

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.memmap import MemMapConfig, MemoryBackedStorage, MemoryMap
from repro.isa.registers import ATMEGA103
from repro.sim.machine import Machine
from repro.umpu.domain_tracker import DomainTracker
from repro.umpu.mmc import MemMapController
from repro.umpu.registers import UmpuRegisters
from repro.umpu.safe_stack_unit import SafeStackUnit


@dataclass(frozen=True)
class HarborLayout:
    """Memory layout the trusted runtime programs into the UMPU.

    Defaults follow the paper's ATmega103 configuration: 8-byte blocks,
    multi-domain encoding, the memory map table in trusted SRAM, the
    safe stack above the globals growing up, the run-time stack at
    RAMEND growing down, jump tables co-located in flash.
    """

    memmap_table: int = 0x0100     # SRAM address of the table
    prot_bottom: int = 0x0200
    prot_top: int = 0x0CFF
    block_size: int = 8
    mode: str = "multi"            # "multi" or "two"
    safe_stack_base: int = 0x0D00  # grows up from here
    jt_base: int = 0x1000          # flash byte address
    ndomains: int = 8

    @property
    def memmap_config(self):
        return MemMapConfig(prot_bottom=self.prot_bottom,
                            prot_top=self.prot_top,
                            block_size=self.block_size,
                            mode=self.mode)


class UmpuMachine(Machine):
    """A simulated AVR node with the UMPU hardware extensions."""

    def __init__(self, program=None, geometry=ATMEGA103, layout=None):
        super().__init__(program, geometry)
        self.regs = UmpuRegisters().attach(self.memory)
        self.safe_stack_unit = SafeStackUnit(self.regs, self.memory)
        self.mmc = MemMapController(self.regs, self.memory)
        # unit order matters: the safe-stack unit must claim RET_PUSH
        # transactions before the MMC would check them
        self.bus.add_interposer(self.safe_stack_unit)
        self.bus.add_interposer(self.mmc)
        self.tracker = DomainTracker(self.regs, self.safe_stack_unit)
        self.tracker.install(self.core)
        # trace events and the profiler attribute to the active domain
        self.core.domain_provider = lambda: self.regs.cur_domain
        self.layout = None
        self.memmap = None
        if layout is not None:
            self.configure(layout)

    # ------------------------------------------------------------------
    def configure(self, layout):
        """Program the UMPU registers for *layout* and build the memory
        map view over the in-SRAM table (all free initially)."""
        cfg = layout.memmap_config
        regs = self.regs
        regs.mem_map_base = layout.memmap_table
        regs.mem_prot_bot = layout.prot_bottom
        regs.mem_prot_top = layout.prot_top
        regs.safe_stack_ptr = layout.safe_stack_base
        regs.stack_bound = self.geometry.ramend
        regs.jt_base = layout.jt_base
        regs.cur_domain = TRUSTED_DOMAIN
        block_log2 = layout.block_size.bit_length() - 1
        regs.encode_config(block_log2, layout.mode == "multi",
                           layout.ndomains, enabled=True)
        self.layout = layout
        self.memmap = MemoryMap(
            cfg, MemoryBackedStorage(self.memory, layout.memmap_table))
        self.safe_stack_unit.floor = layout.safe_stack_base
        # forensics is capture-on-fault only (no hot-path cost), so a
        # configured UMPU machine always produces fault reports
        self.attach_forensics(layout=layout)
        return self

    # ------------------------------------------------------------------
    def enter_domain(self, domain, stack_bound=None):
        """Activate *domain* directly (as the kernel's dispatcher would
        before jumping into module code in tests/benchmarks)."""
        self.regs.cur_domain = domain
        if stack_bound is not None:
            self.regs.stack_bound = stack_bound
        else:
            self.regs.stack_bound = self.memory.sp
        return self

    def enter_trusted(self):
        self.regs.cur_domain = TRUSTED_DOMAIN
        self.regs.stack_bound = self.geometry.ramend
        return self

    @property
    def cur_domain(self):
        return self.regs.cur_domain

    # --- snapshot/restore ---------------------------------------------
    #: UmpuRegisters fields that are architectural state (everything the
    #: trusted runtime can program; derived properties recompute)
    _SNAP_REG_FIELDS = ("mem_map_base", "mem_prot_bot", "mem_prot_top",
                        "mem_map_config", "stack_bound", "safe_stack_ptr",
                        "cur_domain", "jt_base")

    def _snapshot_extra(self):
        extra = super()._snapshot_extra()
        regs = self.regs
        tracker = self.tracker
        unit = self.safe_stack_unit
        extra["umpu_regs"] = {name: getattr(regs, name)
                              for name in self._SNAP_REG_FIELDS}
        extra["tracker"] = {
            "call_depths": list(tracker.call_depths),
            "code_regions": dict(tracker.code_regions),
            "cross_calls": tracker.cross_calls,
            "cross_returns": tracker.cross_returns,
        }
        extra["safe_stack_unit"] = {
            "redirected_pushes": unit.redirected_pushes,
            "redirected_pops": unit.redirected_pops,
            "high_water": unit.high_water,
            "floor": unit.floor,
        }
        extra["mmc"] = {"checked_stores": self.mmc.checked_stores,
                        "faults": self.mmc.faults}
        return extra

    def _restore_extra(self, extra):
        super()._restore_extra(extra)
        regs = self.regs
        for name, value in extra["umpu_regs"].items():
            setattr(regs, name, value)
        tracker = self.tracker
        state = extra["tracker"]
        tracker.call_depths = list(state["call_depths"])
        tracker.code_regions = dict(state["code_regions"])
        tracker.cross_calls = state["cross_calls"]
        tracker.cross_returns = state["cross_returns"]
        unit = self.safe_stack_unit
        state = extra["safe_stack_unit"]
        unit.redirected_pushes = state["redirected_pushes"]
        unit.redirected_pops = state["redirected_pops"]
        unit.high_water = state["high_water"]
        unit.floor = state["floor"]
        self.mmc.checked_stores = extra["mmc"]["checked_stores"]
        self.mmc.faults = extra["mmc"]["faults"]

    # ------------------------------------------------------------------
    def protection_disabled(self):
        """Context manager temporarily disabling all units (for loads)."""
        regs = self.regs

        class _Ctx:
            def __enter__(self_inner):
                self._saved_config = regs.mem_map_config
                regs.mem_map_config &= 0x7F
                return self

            def __exit__(self_inner, *exc):
                regs.mem_map_config = self._saved_config
                return False

        return _Ctx()
