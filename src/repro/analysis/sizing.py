"""Memory-map sizing model (paper §5.2).

The paper's resource numbers all follow from the table geometry:

* 4 KiB address space / 8-byte blocks / 4-bit entries = **256 bytes**
  of memory map — "an overhead of 6.25%";
* protecting only the heap and safe stack (abutted) shrinks the covered
  range so the multi-domain map needs **140 bytes**;
* two-domain protection halves the entry to 2 bits: **70 bytes**
  ("1.7%") over the same range.

This module computes those numbers from
:class:`~repro.core.memmap.MemMapConfig` for arbitrary configurations
(the sweep bench uses it), and collects the software-library size
measurements for Table 5.
"""

from dataclasses import dataclass

from repro.core.memmap import MemMapConfig
from repro.isa.registers import ATMEGA103


@dataclass(frozen=True)
class SizingPoint:
    """One configuration in the sizing sweep."""

    label: str
    covered_bytes: int
    block_size: int
    mode: str
    table_bytes: int
    overhead_pct: float  # of total data space


def memmap_size(covered_bytes, block_size=8, mode="multi",
                data_space=ATMEGA103.data_space_bytes):
    """Table bytes + overhead %% for a protected range of *covered_bytes*."""
    cfg = MemMapConfig(prot_bottom=0, prot_top=covered_bytes - 1,
                       block_size=block_size, mode=mode)
    return cfg.table_bytes, 100.0 * cfg.table_bytes / data_space


def paper_sizing_points(heap_and_stack_bytes=2240,
                        data_space=ATMEGA103.data_space_bytes):
    """The three configurations §5.2 quotes.

    ``heap_and_stack_bytes`` defaults to 2240: 140 bytes x 2 entries
    per byte x 8-byte blocks — the heap + safe-stack range that yields
    the paper's 140/70-byte figures.
    """
    points = []
    for label, covered, mode in (
            ("full address space, multi-domain", data_space, "multi"),
            ("heap + safe stack, multi-domain", heap_and_stack_bytes,
             "multi"),
            ("heap + safe stack, two-domain", heap_and_stack_bytes, "two"),
            ("full address space, two-domain", data_space, "two"),
    ):
        table, pct = memmap_size(covered, 8, mode, data_space)
        points.append(SizingPoint(label, covered, 8, mode, table, pct))
    return points


def sweep(block_sizes=(4, 8, 16, 32, 64), modes=("multi", "two"),
          covered_bytes=ATMEGA103.data_space_bytes,
          data_space=ATMEGA103.data_space_bytes):
    """Full sizing sweep: table bytes for every (block size, mode)."""
    points = []
    for mode in modes:
        for bs in block_sizes:
            table, pct = memmap_size(covered_bytes, bs, mode, data_space)
            points.append(SizingPoint(
                "block={}B {}".format(bs, mode), covered_bytes, bs, mode,
                table, pct))
    return points


#: Paper Table 5 (FLASH/RAM bytes of the software library) for
#: comparison columns.
PAPER_TABLE5 = {
    "Dynamic Memory": (1204, 2054),
    "Memory Map": (422, 256),
    "Jump Table": (2048, 0),
}

#: Paper §5.2 headline numbers.
PAPER_SIZING = {
    "memmap_full_multi": 256,
    "memmap_heapstack_multi": 140,
    "memmap_heapstack_two": 70,
    "library_code_bytes": 3674,
    "overhead_full_pct": 6.25,
    "overhead_two_pct": 1.7,
    "code_pct": 2.8,
}


def measure_library(layout=None):
    """Measure our software library the way Table 5 partitions it.

    FLASH: assembled bytes of (a) the allocator + services ("Dynamic
    Memory"), (b) the checker + safe stack + cross-domain machinery
    ("Memory Map" checks), (c) the jump-table region.  RAM: heap
    metadata + state cells, memory map table, none for the jump table.
    """
    from repro.sfi.layout import SfiLayout
    from repro.sfi.runtime_asm import build_runtime
    layout = layout or SfiLayout()
    program = build_runtime(layout)
    sym = program.symbols

    def span(first_label, end_label):
        return sym[end_label] - sym[first_label]

    # section boundaries follow source order in runtime_asm.runtime_source
    checks_flash = span("hb_fault_r20", "hb_malloc_core")
    dynmem_flash = span("hb_malloc_core", "hb_init")
    init_flash = span("hb_init", "rt_end")
    memmap_ram = layout.memmap_config.table_bytes
    # dynamic-memory RAM: the heap metadata is in-band (headers/free
    # nodes), so its resident cost is the state cells + safe stack
    state_ram = layout.scratch + 2 - layout.cur_dom
    safe_stack_ram = layout.safe_stack_limit - layout.safe_stack_base
    jt_flash = layout.ndomains * layout.jt_page_bytes
    return {
        "Dynamic Memory": (dynmem_flash + init_flash, state_ram),
        "Memory Map": (checks_flash, memmap_ram + safe_stack_ram),
        "Jump Table": (jt_flash, 0),
        "total_code_bytes": program.code_bytes,
        "code_pct": 100.0 * program.code_bytes / ATMEGA103.flash_bytes,
    }
