"""Measurement and reporting: micro-benchmark harness (Tables 3-4),
sizing model (Table 5 / §5.2), table rendering."""

from repro.analysis.microbench import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    measure_sfi,
    measure_table3,
    measure_table4,
    measure_umpu,
    step_trace,
    window_cycles,
)
from repro.analysis.sizing import (
    PAPER_SIZING,
    PAPER_TABLE5,
    SizingPoint,
    measure_library,
    memmap_size,
    paper_sizing_points,
    sweep,
)
from repro.analysis.tables import comparison_rows, ratio, render_table

__all__ = [
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "measure_sfi",
    "measure_table3",
    "measure_table4",
    "measure_umpu",
    "step_trace",
    "window_cycles",
    "PAPER_SIZING",
    "PAPER_TABLE5",
    "SizingPoint",
    "measure_library",
    "memmap_size",
    "paper_sizing_points",
    "sweep",
    "comparison_rows",
    "ratio",
    "render_table",
]
