"""Paper-style table rendering for benches and EXPERIMENTS.md.

Each bench prints the rows the paper's table prints, with a *paper*
column next to the *measured* column so reproduction quality is visible
at a glance.
"""


def render_table(title, headers, rows, note=None):
    """Render an ASCII table (list of row tuples) with a title."""
    widths = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        cells = [_fmt(c) for c in row]
        str_rows.append(cells)
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = "+{}+".format(sep)
    lines = [title, sep, _row(headers, widths), sep]
    for cells in str_rows:
        lines.append(_row(cells, widths))
    lines.append(sep)
    if note:
        lines.append(note)
    return "\n".join(lines)


def _fmt(cell):
    if cell is None:
        return "N/A"
    if isinstance(cell, float):
        return "{:.2f}".format(cell)
    return str(cell)


def _row(cells, widths):
    body = "|".join(" {:<{w}} ".format(c, w=w)
                    for c, w in zip(cells, widths))
    return "|{}|".format(body)


def comparison_rows(measured, paper, keys=None):
    """Zip measured/paper dicts into (name, measured, paper) rows."""
    keys = keys or list(paper)
    return [(k, measured.get(k), paper.get(k)) for k in keys]


def ratio(measured, paper):
    """measured/paper as a printable string ('-' when undefined)."""
    if not paper:
        return "-"
    return "{:.2f}x".format(measured / paper)
