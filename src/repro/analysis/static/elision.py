"""Proof-directed check elision: the analyzer earns back cycles.

PR 4's whole-image analyzer could already classify store targets
against the :class:`~repro.sfi.layout.SfiLayout`; this module turns
those classifications into *proofs* that individual run-time protection
checks are unnecessary, in the spirit of analysis-time
compartmentalization systems (UCCA, CompartOS): prove at verification
time, switch the run-time mechanism off only where the proof holds.

The provable target class is the layout's **static data spans** —
per-domain, page-aligned regions carved from the top of the heap,
pinned to their owning domain by ``hb_init`` and guarded against
``hb_free`` / ``hb_change_own``, so their ownership is a build-time
constant.  A store whose effective address provably stays inside the
executing domain's own span passes the Harbor memory-map check on
every run; routing it through ``hb_st_*`` (65 cycles, Table 3) buys
nothing.  The elision pass re-rewrites the module with those checks
removed and emits an :class:`ElisionManifest` — a machine-checkable
record (schema v1) of every elided site with its interval evidence.
The verifier and ``harbor-lint`` accept a raw store *only* when the
manifest covers it **and** re-proving the site on the live image
succeeds; a stale or forged manifest fails its checksum / re-proof and
is rejected (rule HL014), so ``strict_lint`` load gates keep their
guarantee: the image that runs is the image that was proved.

Proof kinds
-----------
``in-domain-static``
    The store's effective-address interval lies wholly inside the
    executing domain's own static data span on every path.  The check
    is redundant — elidable.
``provably-faulting``
    The interval lies wholly below the protected region or wholly
    inside *another* domain's pinned span: the check always faults.
    The check is **kept** (the fault is architecturally required);
    the proof is reported so the analyzer can warn about it.
``unknown``
    Anything else (heap pointers, call-clobbered registers, intervals
    that straddle regions).  The check is kept.
"""

import json
import struct
import zlib
from dataclasses import dataclass, field

from repro.analysis.static import absint
from repro.analysis.static.cfg import RegionCFG, static_target

MANIFEST_SCHEMA = 1

PROOF_IN_DOMAIN = "in-domain-static"
PROOF_FAULTING = "provably-faulting"
PROOF_UNKNOWN = "unknown"

#: cycles one elided checked store saves per execution (the Table 3
#: static model of ``hb_st_*``: marshal + call + hb_check + return).
ELIDED_CHECK_CYCLES = 65

#: Register-preservation contract of the runtime stubs (see the
#: register conventions in :mod:`repro.sfi.runtime_asm`): every store /
#: save / restore stub preserves all registers and SREG *except* the
#: architectural pointer side effect of its addressing mode.  Values
#: are ``(ptr_lo_reg, delta)``; ``(None, 0)`` is fully preserving.
STUB_EFFECTS = {
    "hb_st_x": (None, 0),
    "hb_st_x_plus": (26, 1),
    "hb_st_x_dec": (26, -1),
    "hb_st_y_plus": (28, 1),
    "hb_st_y_dec": (28, -1),
    "hb_st_y_q": (None, 0),
    "hb_st_z_plus": (30, 1),
    "hb_st_z_dec": (30, -1),
    "hb_st_z_q": (None, 0),
    "hb_st_sts": (None, 0),
    "hb_save_ret": (None, 0),
    "hb_restore_ret": (None, 0),
}

#: Effective address of each store stub in terms of the abstract state
#: at the call: ``(pointer_low_reg, bias, add_r19_displacement)``.
#: Post-increment stubs store *before* bumping the pointer (EA = ptr);
#: pre-decrement stubs store after (EA = ptr - 1).  ``hb_st_sts``
#: receives its absolute address in X (materialized by the rewriter's
#: ``ldi r26/r27`` pair).
_STUB_EA = {
    "hb_st_x": (26, 0, False),
    "hb_st_x_plus": (26, 0, False),
    "hb_st_x_dec": (26, -1, False),
    "hb_st_y_plus": (28, 0, False),
    "hb_st_y_dec": (28, -1, False),
    "hb_st_y_q": (28, 0, True),
    "hb_st_z_plus": (30, 0, False),
    "hb_st_z_dec": (30, -1, False),
    "hb_st_z_q": (30, 0, True),
    "hb_st_sts": (26, 0, False),
}

#: raw store instruction keys and their EA recipe
#: key -> (ptr_lo_reg or None, bias, displacement_operand_index or None)
_RAW_EA = {
    "st_x": (26, 0, None),
    "st_xp": (26, 0, None),
    "st_mx": (26, -1, None),
    "st_yp": (28, 0, None),
    "st_my": (28, -1, None),
    "st_zp": (30, 0, None),
    "st_mz": (30, -1, None),
    "std_y": (28, 0, 0),
    "std_z": (30, 0, 0),
    "sts": (None, 0, None),
}


def runtime_call_models(runtime_symbols):
    """absint call models (addr -> effect) for the runtime stubs."""
    models = {}
    for name, effect in STUB_EFFECTS.items():
        addr = runtime_symbols.get(name)
        if addr is not None:
            models[addr] = effect
    return models


@dataclass
class StoreProof:
    """Classification of one store site with its interval evidence."""

    pc: int          # byte address of the site (stub call or raw store)
    key: str         # "stub:hb_st_x_plus" or the raw instruction key
    kind: str        # PROOF_IN_DOMAIN / PROOF_FAULTING / PROOF_UNKNOWN
    lo: int = 0      # effective-address interval evidence (inclusive)
    hi: int = 0
    rule: str = ""   # provenance of the classification

    def to_dict(self):
        return {"pc": self.pc, "key": self.key, "kind": self.kind,
                "interval": [self.lo, self.hi], "rule": self.rule}

    @classmethod
    def from_dict(cls, data):
        interval = data.get("interval", [0, 0])
        return cls(pc=int(data["pc"]), key=str(data["key"]),
                   kind=str(data["kind"]),
                   lo=int(interval[0]), hi=int(interval[1]),
                   rule=str(data.get("rule", "")))


class StoreProver:
    """Proves store sites of one domain's region against the layout."""

    def __init__(self, layout, runtime_symbols, domain):
        self.layout = layout
        self.domain = domain
        self.call_models = runtime_call_models(runtime_symbols)
        self.stub_by_addr = {}
        for name in _STUB_EA:
            addr = runtime_symbols.get(name)
            if addr is not None:
                self.stub_by_addr[addr] = name

    # ------------------------------------------------------------------
    def prove_cfg(self, cfg, entries=(), stats=None):
        """Run absint over *cfg* and classify every store site.

        Returns ``{byte_addr: StoreProof}`` covering both check-stub
        call sites and raw (already elided) stores.  *entries* seed the
        fixpoint (export/entry block addresses); sites in unreachable
        blocks get no proof — unreachable is not provably safe.
        """
        entry_states = {a: {} for a in entries if a in cfg.blocks}
        in_states = absint.analyze_cfg(cfg, entry_states=entry_states or None,
                                       call_models=self.call_models,
                                       stats=stats)
        proofs = {}
        for addr in sorted(cfg.blocks):
            if addr not in in_states:
                continue
            state = dict(in_states[addr])
            for line in cfg.blocks[addr].lines:
                if line.instr is not None:
                    proof = self.prove_line(line, state)
                    if proof is not None:
                        proofs[line.byte_addr] = proof
                    absint.transfer(state, line, self.call_models)
        return proofs

    def prove_line(self, line, state):
        """Classify one line given the abstract state before it."""
        key = line.instr.key
        if key in ("call", "rcall"):
            stub = self.stub_by_addr.get(static_target(line))
            if stub is None:
                return None
            ea = self._stub_ea(stub, state)
            return self._classify(line.byte_addr, "stub:" + stub, ea)
        if key in _RAW_EA:
            return self._classify(line.byte_addr, key,
                                  self._raw_ea(line, state))
        return None

    def _stub_ea(self, stub, state):
        ptr_lo, bias, uses_q = _STUB_EA[stub]
        ea = absint.value_add(absint.get_pair(state, ptr_lo), bias)
        if uses_q:
            ea = absint.value_sum(ea, state.get(19, absint.TOP))
        return ea

    def _raw_ea(self, line, state):
        key = line.instr.key
        ops = line.instr.operands
        if key == "sts":
            return ops[0]
        ptr_lo, bias, disp_idx = _RAW_EA[key]
        ea = absint.value_add(absint.get_pair(state, ptr_lo), bias)
        if disp_idx is not None:
            ea = absint.value_sum(ea, ops[disp_idx])
        return ea

    def _classify(self, pc, key, ea):
        layout = self.layout
        if ea is absint.TOP:
            return StoreProof(pc, key, PROOF_UNKNOWN, rule="ea-unknown")
        lo, hi = absint._as_range(ea)
        own = layout.static_data_span(self.domain)
        if own is not None and own[0] <= lo and hi < own[1]:
            return StoreProof(pc, key, PROOF_IN_DOMAIN, lo, hi,
                              rule="sd-span-d{}".format(self.domain))
        if hi < layout.prot_bottom:
            return StoreProof(pc, key, PROOF_FAULTING, lo, hi,
                              rule="below-prot-bottom")
        for dom in range(layout.static_data_domains):
            if dom == self.domain:
                continue
            span = layout.static_data_span(dom)
            if span is not None and span[0] <= lo and hi < span[1]:
                return StoreProof(pc, key, PROOF_FAULTING, lo, hi,
                                  rule="foreign-span-d{}".format(dom))
        return StoreProof(pc, key, PROOF_UNKNOWN, lo, hi,
                          rule="target-" +
                          absint.classify_data_address(layout, ea))


# =====================================================================
# The manifest: a proof-carrying image's detachable proof
# =====================================================================
def image_checksum(read_word, start, end):
    """CRC32 over the little-endian words of ``[start, end)``."""
    data = bytearray()
    for i in range(start // 2, end // 2):
        word = read_word(i)
        data += struct.pack("<H", (word if word is not None else 0xFFFF)
                            & 0xFFFF)
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


@dataclass
class ElisionManifest:
    """Schema-v1 proof record shipped alongside an elided image."""

    module: str
    domain: int
    start: int
    end: int
    checksum: int
    sites: list = field(default_factory=list)   # StoreProof list
    schema: int = MANIFEST_SCHEMA

    def site_at(self, pc):
        for site in self.sites:
            if site.pc == pc:
                return site
        return None

    @property
    def elided_checks(self):
        return len(self.sites)

    @property
    def elided_cycles_saved(self):
        """Static Table-3 estimate of cycles saved per execution of
        every elided site once (the dynamic number is workload-bound)."""
        return len(self.sites) * ELIDED_CHECK_CYCLES

    def to_dict(self):
        return {
            "schema": self.schema,
            "module": self.module,
            "domain": self.domain,
            "start": self.start,
            "end": self.end,
            "image_crc32": self.checksum,
            "sites": [site.to_dict() for site in self.sites],
        }

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, data):
        if data.get("schema") != MANIFEST_SCHEMA:
            raise ValueError("unsupported elision manifest schema: "
                             "{!r}".format(data.get("schema")))
        return cls(module=str(data["module"]), domain=int(data["domain"]),
                   start=int(data["start"]), end=int(data["end"]),
                   checksum=int(data["image_crc32"]),
                   sites=[StoreProof.from_dict(s)
                          for s in data.get("sites", ())])

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def build_manifest(name, domain, rewritten, proofs, read_word=None):
    """Manifest for a :class:`~repro.sfi.rewriter.RewrittenModule` whose
    elided sites all carry ``in-domain-static`` proofs in *proofs*."""
    read = read_word or (lambda i: rewritten.program.words.get(i, 0xFFFF))
    sites = []
    for old in sorted(rewritten.elided_sites):
        pc = rewritten.elided_sites[old]
        proof = proofs[pc]
        if proof.kind != PROOF_IN_DOMAIN:
            raise ValueError("site {:#06x} is not provably in-domain"
                             .format(pc))
        sites.append(proof)
    return ElisionManifest(
        module=name, domain=domain,
        start=rewritten.start, end=rewritten.end,
        checksum=image_checksum(read, rewritten.start, rewritten.end),
        sites=sites)


#: adversarial manifest mutations the soundness fuzzer draws from; each
#: changes a *security-relevant* claim (intervals are deliberately not
#: in the list: verify_manifest re-proves from scratch and treats them
#: as human-facing evidence, so corrupting them must not and does not
#: change any admission decision)
MANIFEST_ATTACKS = ("site-pc", "forged-site", "site-kind", "checksum",
                    "span", "domain")


def corrupt_manifest(manifest, attack, rng):
    """A forged/stale variant of *manifest* for the soundness campaign.

    *attack* is one of :data:`MANIFEST_ATTACKS`; *rng* is a seeded
    ``random.Random``.  Returns a new manifest making a claim the
    verifier must reject: a shifted site pc, a site fabricated at a pc
    with no provable store, a non-elidable proof kind, a checksum for a
    different image, a shifted code span, or a wrong domain.  Feeding
    these through ``Verifier.verify(..., manifest=)`` and
    :func:`verify_manifest` and observing anything but a rejection is
    an isolation escape.
    """
    sites = [StoreProof.from_dict(site.to_dict())
             for site in manifest.sites]
    forged = ElisionManifest(
        module=manifest.module, domain=manifest.domain,
        start=manifest.start, end=manifest.end,
        checksum=manifest.checksum, sites=sites)
    if attack == "site-pc" and sites:
        # an odd pc can never name an instruction boundary, so the
        # mutated claim is unsatisfiable by construction (no chance of
        # accidentally landing on another provable site)
        site = rng.choice(sites)
        site.pc += rng.choice((-1, 1, 3))
    elif attack == "forged-site":
        # the final word of the region is the module's terminal ret (by
        # campaign construction), never a provable store
        sites.append(StoreProof(pc=manifest.end - 2, key="sts",
                                kind=PROOF_IN_DOMAIN,
                                lo=0, hi=0xFFFF, rule="forged"))
    elif attack == "site-kind" and sites:
        site = rng.choice(sites)
        site.kind = rng.choice((PROOF_FAULTING, PROOF_UNKNOWN))
    elif attack == "checksum":
        forged.checksum = manifest.checksum ^ (1 << rng.randrange(32))
    elif attack == "span":
        shift = rng.choice((-4, -2, 2, 4))
        forged.start = max(0, manifest.start + shift)
    elif attack == "domain":
        forged.domain = (manifest.domain + 1 + rng.randrange(6)) % 7
    else:
        # an empty-site manifest degenerates to the checksum attack so
        # every draw produces a hostile artifact
        forged.checksum = manifest.checksum ^ 1
    return forged


def verify_manifest(read_word, layout, runtime_symbols, manifest,
                    entries=(), proofs=None, cfg=None):
    """Re-check a manifest against the live image.

    Returns a list of ``(message, byte_addr)`` problems — empty means
    every claim re-proves.  The checksum binds the manifest to the
    exact image; each site is then *re-proved* from scratch (the
    manifest's intervals are evidence for humans, not trusted input).
    Callers that already ran the prover can pass *proofs*/*cfg* to skip
    the duplicate fixpoint.
    """
    problems = []
    if manifest.schema != MANIFEST_SCHEMA:
        return [("unsupported manifest schema {!r}".format(manifest.schema),
                 manifest.start)]
    actual = image_checksum(read_word, manifest.start, manifest.end)
    if actual != manifest.checksum:
        return [("manifest checksum mismatch (stale manifest or patched "
                 "image): {:#010x} != {:#010x}".format(
                     actual, manifest.checksum), manifest.start)]
    if proofs is None:
        if cfg is None:
            cfg = RegionCFG.build(read_word, manifest.start, manifest.end,
                                  name=manifest.module,
                                  extra_leaders=sorted(entries))
        prover = StoreProver(layout, runtime_symbols, manifest.domain)
        proofs = prover.prove_cfg(cfg, entries=entries)
    for site in manifest.sites:
        if site.kind != PROOF_IN_DOMAIN:
            problems.append(("manifest claims non-elidable proof kind "
                             "{!r} at {:#06x}".format(site.kind, site.pc),
                             site.pc))
            continue
        proof = proofs.get(site.pc)
        if proof is None:
            problems.append(("manifest site {:#06x} has no provable "
                             "store (forged or stale site)".format(site.pc),
                             site.pc))
        elif proof.key != site.key:
            problems.append(("manifest site {:#06x} key mismatch: image "
                             "has {!r}, manifest claims {!r}".format(
                                 site.pc, proof.key, site.key), site.pc))
        elif proof.kind != PROOF_IN_DOMAIN:
            problems.append(("manifest site {:#06x} does not re-prove: "
                             "{} ({})".format(site.pc, proof.kind,
                                              proof.rule), site.pc))
    return problems
