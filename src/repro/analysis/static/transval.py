"""Translation validation of the rewrite->elide pipeline (HL017/HL018).

``validate_translation`` proves, per module, that the image installed
in flash is a *sanctioned translation* of the source binary: it walks
the source disassembly and the installed disassembly in lockstep,
admitting exactly the transformations the rewriter is specified to
perform —

* checked store  <=>  marshalling + check-stub call whose
  module-visible symbolic effect (:mod:`.symexec`) equals the raw
  store's,
* elided store   <=>  the verbatim store at a site covered by a
  re-verified :class:`~repro.analysis.static.elision.ElisionManifest`,
* function entry <=>  ``call hb_save_ret`` prologue, preceded by an
  ``rjmp`` entry guard when the entry is fall-through-reachable
  (HL015 discipline),
* ``ret``        <=>  ``call hb_restore_ret`` + ``ret``,
* cross-domain call <=> the Z-marshalling ``hb_xdom_call`` sequence,
* branches/jumps <=>  the same (or relaxation-inverted) branch whose
  target resolves to the translation of the source target,
* everything else <=> copied verbatim.

Every deviation is a stable HL017 ``translation-mismatch`` error
through the ordinary :class:`DiagnosticsEngine`/SARIF path.  Because
the walk re-derives the address maps itself, it never trusts the
rewriter's reported ``addr_map`` — like the verifier, it would catch a
miscompiling or malicious rewriter after the fact.

The same pass classifies every basic block of the installed image for
the planned block JIT (pure / translatable / untranslatable, HL018
notes for the latter) and reports the counts that back the
``certified_blocks`` / ``translatable_blocks`` metrics gauges and the
JIT-readiness report.
"""

from repro.analysis.static.cfg import RegionCFG, static_target
from repro.analysis.static.diagnostics import DiagnosticsEngine
from repro.analysis.static.elision import (
    ELIDED_CHECK_CYCLES,
    STUB_EFFECTS,
    _STUB_EA,
    verify_manifest,
)
from repro.analysis.static.symexec import (
    CLASS_PURE,
    CLASS_TRANSLATABLE,
    CLASS_UNTRANSLATABLE,
    CallModel,
    UnsupportedInstruction,
    block_effect,
    classify_lines,
    effects_equal,
    summarize,
)
from repro.asm.disassembler import disassemble, disassemble_flash
from repro.isa.registers import IoReg
from repro.sfi.runtime_asm import STORE_STUBS

__all__ = [
    "TranslationReport",
    "stub_call_models",
    "validate_translation",
]

#: instructions with no sanctioned translation (mirrors
#: ``Rewriter.FORBIDDEN``)
_FORBIDDEN = frozenset(("break", "ijmp", "reti", "sleep", "wdr"))

TRANSVAL_SCHEMA = 1


def stub_call_models(runtime_symbols):
    """:class:`CallModel` per store-stub entry address: the atomic
    effect the Harbor runtime contract guarantees (one store at the
    addressing mode's effective address, pointer bump, every other
    register and SREG preserved, SP-neutral)."""
    models = {}
    for name, (ptr_lo, bias, uses_q) in _STUB_EA.items():
        addr = runtime_symbols.get(name)
        if addr is None:
            continue
        models[addr] = CallModel(
            name, store=True, ptr_lo=ptr_lo, ea_bias=bias,
            ea_uses_q=uses_q, delta=STUB_EFFECTS[name][1],
            cycles=ELIDED_CHECK_CYCLES)
    return models


class _Mismatch(Exception):
    def __init__(self, message, byte_addr):
        super().__init__(message)
        self.message = message
        self.byte_addr = byte_addr


class TranslationReport(object):
    """Outcome of validating one module's installed translation."""

    def __init__(self, module, domain, start, end, engine):
        self.module = module
        self.domain = domain
        self.start = start
        self.end = end
        self.engine = engine
        self.blocks = {}          # installed block start -> (cls, reason)
        self.matched_lines = 0    # source lines proven translated
        self.store_checks = 0     # checked-store sequences matched
        self.semantic_proofs = 0  # ... of which symexec-proved
        self.elided_sites = 0     # raw stores admitted via manifest

    @property
    def mismatches(self):
        return sum(1 for f in self.engine.findings
                   if f.rule.code == "HL017")

    @property
    def ok(self):
        return self.mismatches == 0

    def _count(self, cls):
        return sum(1 for c, _ in self.blocks.values() if c == cls)

    @property
    def certified_blocks(self):
        return len(self.blocks) if self.ok else 0

    @property
    def pure_blocks(self):
        return self._count(CLASS_PURE)

    @property
    def translatable_blocks(self):
        return self._count(CLASS_PURE) + self._count(CLASS_TRANSLATABLE)

    @property
    def untranslatable_blocks(self):
        return self._count(CLASS_UNTRANSLATABLE)

    def to_dict(self):
        return {
            "schema": TRANSVAL_SCHEMA,
            "module": self.module,
            "domain": self.domain,
            "start": self.start,
            "end": self.end,
            "ok": self.ok,
            "mismatches": self.mismatches,
            "matched_lines": self.matched_lines,
            "store_checks": self.store_checks,
            "semantic_proofs": self.semantic_proofs,
            "elided_sites": self.elided_sites,
            "blocks": {
                "total": len(self.blocks),
                "pure": self.pure_blocks,
                "translatable": self.translatable_blocks,
                "untranslatable": self.untranslatable_blocks,
            },
            "block_classes": {
                "0x{:04x}".format(start): cls
                for start, (cls, _reason) in sorted(self.blocks.items())
            },
        }


class _Walker(object):
    """Lockstep source-vs-installed walk consuming the catalog."""

    def __init__(self, src_lines, new_lines, layout, runtime_symbols,
                 entry_addrs, extent):
        self.src_lines = src_lines
        self.new_lines = new_lines
        self.layout = layout
        self.runtime = runtime_symbols
        self.entry_addrs = entry_addrs
        self.extent = extent              # (lo, hi) source byte addrs
        self.stub_models = stub_call_models(runtime_symbols)
        self.index = 0
        self.new_of = {}                  # source addr -> call target
        self.body_of = {}                 # source addr -> jump target
        self.obligations = []   # (src_addr, kind, src_target, got)
        self.elided = []        # (installed_addr, src_addr)
        self.store_checks = 0
        self.semantic_proofs = 0
        self.matched_lines = 0

    # -- installed-stream helpers -------------------------------------
    def _take(self, src_addr, what):
        if self.index >= len(self.new_lines):
            raise _Mismatch(
                "installed image ends while expecting {} for source "
                "0x{:04x}".format(what, src_addr), src_addr)
        line = self.new_lines[self.index]
        self.index += 1
        if line.instr is None:
            raise _Mismatch(
                "undecodable installed word 0x{:04x} where {} was "
                "expected".format(line.words[0], what), line.byte_addr)
        return line

    def _peek(self):
        if self.index >= len(self.new_lines):
            return None
        return self.new_lines[self.index]

    def _sym(self, name):
        addr = self.runtime.get(name)
        if addr is None:
            raise _Mismatch("runtime symbol {!r} unknown — cannot "
                            "validate".format(name), 0)
        return addr

    def _map(self, old, installed_addr):
        self.new_of.setdefault(old, installed_addr)
        self.body_of.setdefault(old, installed_addr)

    # -- the walk ------------------------------------------------------
    def walk(self):
        prev_key = None
        for line in self.src_lines:
            if line.instr is None:
                raise _Mismatch(
                    "undecodable source word 0x{:04x}: modules must be "
                    "pure code".format(line.words[0]), line.byte_addr)
            old = line.byte_addr
            if old in self.entry_addrs:
                self._match_entry(old, prev_key)
            self._match_line(line)
            self.matched_lines += 1
            prev_key = line.instr.key
        if self.index != len(self.new_lines):
            left = self.new_lines[self.index]
            raise _Mismatch(
                "{} trailing installed instruction(s) beyond the "
                "source translation".format(
                    len(self.new_lines) - self.index), left.byte_addr)
        self._check_obligations()

    def _match_entry(self, old, prev_key):
        if prev_key is not None and prev_key not in ("ret", "rjmp",
                                                     "jmp"):
            guard = self._take(old, "an rjmp entry guard")
            if guard.instr.key not in ("rjmp", "jmp"):
                raise _Mismatch(
                    "fall-through-reachable entry 0x{:04x} lacks its "
                    "rjmp entry guard (found {!r})".format(
                        old, guard.instr.key), guard.byte_addr)
            self.obligations.append(
                (old, "body", old, static_target(guard)))
        prologue = self._take(old, "the hb_save_ret prologue")
        if not (prologue.instr.key == "call"
                and prologue.instr.operands[0] * 2
                == self._sym("hb_save_ret")):
            raise _Mismatch(
                "entry 0x{:04x} lacks its hb_save_ret prologue "
                "(found {!r})".format(old, prologue.instr.key),
                prologue.byte_addr)
        # calls enter through the prologue; jumps resolve past it
        self.new_of.setdefault(old, prologue.byte_addr)

    def _match_line(self, line):
        instr = line.instr
        key = instr.key
        old = line.byte_addr

        if key in _FORBIDDEN:
            raise _Mismatch(
                "source instruction {!r} at 0x{:04x} has no sanctioned "
                "translation".format(key, old), old)
        if key == "out" and instr.operands[0] in (
                IoReg.SPL, IoReg.SPH) or key == "out" and \
                instr.operands[0] in IoReg.UMPU_REGISTERS:
            raise _Mismatch(
                "source writes SP or a protection register at 0x{:04x} "
                "— no sanctioned translation".format(old), old)

        if instr.spec.kind == "store" or key == "sts":
            self._match_store(line)
        elif key == "icall":
            got = self._take(old, "the hb_xdom_call translation")
            if not (got.instr.key == "call"
                    and got.instr.operands[0] * 2
                    == self._sym("hb_xdom_call")):
                raise _Mismatch(
                    "icall at 0x{:04x} must become call hb_xdom_call "
                    "(found {!r})".format(old, got.instr.key),
                    got.byte_addr)
            self._map(old, got.byte_addr)
        elif key in ("call", "rcall"):
            self._match_call(line)
        elif key in ("jmp", "rjmp"):
            got = self._take(old, "the translated jump")
            if got.instr.key not in ("rjmp", "jmp"):
                raise _Mismatch(
                    "jump at 0x{:04x} translated to {!r}".format(
                        old, got.instr.key), got.byte_addr)
            self._map(old, got.byte_addr)
            self.obligations.append(
                (old, "body", static_target(line), static_target(got)))
        elif key == "ret":
            restore = self._take(old, "the hb_restore_ret epilogue")
            if not (restore.instr.key == "call"
                    and restore.instr.operands[0] * 2
                    == self._sym("hb_restore_ret")):
                raise _Mismatch(
                    "ret at 0x{:04x} lacks its hb_restore_ret epilogue "
                    "(found {!r})".format(old, restore.instr.key),
                    restore.byte_addr)
            ret = self._take(old, "the ret")
            if ret.instr.key != "ret":
                raise _Mismatch(
                    "hb_restore_ret at 0x{:04x} not followed by ret "
                    "(found {!r})".format(restore.byte_addr,
                                          ret.instr.key), ret.byte_addr)
            self._map(old, restore.byte_addr)
        elif key in ("brbs", "brbc"):
            self._match_branch(line)
        else:
            got = self._take(old, "the verbatim copy")
            if got.instr.key != key or tuple(got.instr.operands) != \
                    tuple(instr.operands):
                raise _Mismatch(
                    "{!r} at 0x{:04x} not copied verbatim (installed "
                    "image has {!r})".format(key, old, got.instr.key),
                    got.byte_addr)
            self._map(old, got.byte_addr)

    # -- stores --------------------------------------------------------
    def _match_store(self, line):
        instr = line.instr
        old = line.byte_addr
        peek = self._peek()
        if (peek is not None and peek.instr is not None
                and peek.instr.key == instr.key
                and tuple(peek.instr.operands) == tuple(instr.operands)):
            # elided store: verbatim copy, admitted only through the
            # manifest (checked after the walk)
            got = self._take(old, "the elided store")
            self._map(old, got.byte_addr)
            self.elided.append((got.byte_addr, old))
            return
        expected = self._expected_store_items(instr, old)
        seq = []
        for exp_key, exp_ops in expected:
            got = self._take(old, "the checked-store sequence")
            if exp_key == "call":
                ok = (got.instr.key == "call"
                      and got.instr.operands[0] * 2
                      == self._sym(exp_ops[0]))
            else:
                ok = (got.instr.key == exp_key
                      and tuple(got.instr.operands) == exp_ops)
            if not ok:
                raise _Mismatch(
                    "checked store at 0x{:04x}: expected {} {} in the "
                    "marshalling sequence, found {!r}".format(
                        old, exp_key, exp_ops, got.instr.key),
                    got.byte_addr)
            seq.append(got)
        self._map(old, seq[0].byte_addr)
        self.store_checks += 1
        # semantic proof: the sequence's module-visible symbolic effect
        # must equal the raw store's (the stub applied atomically)
        try:
            src_effect = block_effect(summarize([line]))
            new_effect = block_effect(
                summarize(seq, call_models=self.stub_models))
        except UnsupportedInstruction:
            return    # syntactic match above is already exact
        equal, reason = effects_equal(src_effect, new_effect)
        if not equal:
            raise _Mismatch(
                "checked store at 0x{:04x} is not semantically "
                "equivalent to its translation: {}".format(old, reason),
                seq[0].byte_addr)
        self.semantic_proofs += 1

    @staticmethod
    def _expected_store_items(instr, old):
        """The rewriter's deterministic emission for one store."""
        items = []
        if instr.key == "sts":
            addr, reg = instr.operands
            if reg != 18:
                items += [("push", (18,)), ("mov", (18, reg))]
            items += [("push", (26,)), ("push", (27,)),
                      ("ldi", (26, addr & 0xFF)),
                      ("ldi", (27, (addr >> 8) & 0xFF)),
                      ("call", ("hb_st_sts",)),
                      ("pop", (27,)), ("pop", (26,))]
            if reg != 18:
                items.append(("pop", (18,)))
            return items
        modes = instr.spec.modes
        ptr = modes["ptr"]
        displaced = bool(modes.get("disp", False))
        post_inc = bool(modes.get("post_inc", False))
        pre_dec = bool(modes.get("pre_dec", False))
        reg = instr.operands[-1]
        q = instr.operand("q") if displaced else 0
        if ptr != "X" and not (post_inc or pre_dec):
            displaced = True    # plain st Y/Z is the q=0 displaced form
        stub = STORE_STUBS[(ptr, post_inc, pre_dec, displaced)]
        if reg != 18:
            items += [("push", (18,)), ("mov", (18, reg))]
        if displaced:
            items += [("push", (19,)), ("ldi", (19, q))]
        items.append(("call", (stub,)))
        if displaced:
            items.append(("pop", (19,)))
        if reg != 18:
            items.append(("pop", (18,)))
        return items

    # -- calls and branches -------------------------------------------
    def _match_call(self, line):
        old = line.byte_addr
        target = static_target(line)
        layout = self.layout
        if layout.jt_base <= target < layout.jt_end:
            word = target // 2
            expected = [("push", (30,)), ("push", (31,)),
                        ("ldi", (30, word & 0xFF)),
                        ("ldi", (31, (word >> 8) & 0xFF)),
                        ("call", ("hb_xdom_call",)),
                        ("pop", (31,)), ("pop", (30,))]
            first = None
            for exp_key, exp_ops in expected:
                got = self._take(old, "the cross-domain call sequence")
                if exp_key == "call":
                    ok = (got.instr.key == "call"
                          and got.instr.operands[0] * 2
                          == self._sym(exp_ops[0]))
                else:
                    ok = (got.instr.key == exp_key
                          and tuple(got.instr.operands) == exp_ops)
                if not ok:
                    raise _Mismatch(
                        "cross-domain call at 0x{:04x}: expected {} {} "
                        "in the hb_xdom_call sequence, found "
                        "{!r}".format(old, exp_key, exp_ops,
                                      got.instr.key), got.byte_addr)
                first = first or got
            self._map(old, first.byte_addr)
            return
        lo, hi = self.extent
        if not lo <= target <= hi:
            raise _Mismatch(
                "call at 0x{:04x} leaves the module (target 0x{:04x} "
                "is neither internal nor a jump-table slot)".format(
                    old, target), old)
        got = self._take(old, "the translated internal call")
        if got.instr.key != "call":
            raise _Mismatch(
                "internal call at 0x{:04x} translated to {!r}".format(
                    old, got.instr.key), got.byte_addr)
        self._map(old, got.byte_addr)
        self.obligations.append(
            (old, "entry", target, got.instr.operands[0] * 2))

    def _match_branch(self, line):
        instr = line.instr
        old = line.byte_addr
        s = instr.operands[0]
        src_target = old + 2 + 2 * instr.operands[1]
        got = self._take(old, "the translated branch")
        inverted = "brbc" if instr.key == "brbs" else "brbs"
        if got.instr.key == instr.key and got.instr.operands[0] == s:
            self.obligations.append(
                (old, "body", src_target, static_target(got)))
            self._map(old, got.byte_addr)
            return
        if got.instr.key == inverted and got.instr.operands[0] == s:
            over = self._take(old, "the relaxation jump")
            if over.instr.key not in ("rjmp", "jmp"):
                raise _Mismatch(
                    "relaxed branch at 0x{:04x} not followed by its "
                    "rjmp/jmp (found {!r})".format(old, over.instr.key),
                    over.byte_addr)
            if got.instr.operands[1] != len(over.words):
                raise _Mismatch(
                    "relaxed branch at 0x{:04x} does not hop exactly "
                    "over its jump".format(old), got.byte_addr)
            self.obligations.append(
                (old, "body", src_target, static_target(over)))
            self._map(old, got.byte_addr)
            return
        raise _Mismatch(
            "branch at 0x{:04x} translated to {!r} (flag operand or "
            "polarity mismatch)".format(old, got.instr.key),
            got.byte_addr)

    # -- control-edge obligations -------------------------------------
    def _check_obligations(self):
        for src_addr, kind, target, got in self.obligations:
            table = self.new_of if kind == "entry" else self.body_of
            want = table.get(target)
            if want is None:
                raise _Mismatch(
                    "control edge at 0x{:04x} targets 0x{:04x}, which "
                    "has no translation".format(src_addr, target),
                    src_addr)
            if want != got:
                raise _Mismatch(
                    "control edge at 0x{:04x} resolves to 0x{:04x} but "
                    "the translation of 0x{:04x} is at 0x{:04x}".format(
                        src_addr, got, target, want), src_addr)


def validate_translation(program, read_word, start, end, layout,
                         runtime_symbols, exports=(), entries=(),
                         manifest=None, export_targets=None,
                         engine=None, region=None, domain=None,
                         module=None):
    """Validate that flash ``[start, end)`` is the sanctioned
    translation of source *program*.

    *read_word* reads absolute flash word indices (the live image or
    the rewritten Program); *exports*/*entries* are the same
    function-entry hints the rewriter was given; *manifest* is the
    module's :class:`ElisionManifest` (or None); *export_targets*
    optionally maps export names to the code addresses the linker
    actually published, cross-checked against the derived map.

    Returns a :class:`TranslationReport`; every problem is an HL017
    finding on ``report.engine`` (pass *engine* to accumulate across
    modules), untranslatable blocks are HL018 notes.
    """
    if engine is None:
        engine = DiagnosticsEngine()
    name = module or (region or "module")
    report = TranslationReport(name, domain, start, end, engine)

    src_lines = [ln for ln in disassemble(program)]
    entry_addrs = _find_entry_addrs(program, src_lines, exports, entries)
    new_lines = disassemble_flash(read_word, start // 2,
                                  (end - start) // 2)
    lo, hi = program.extent()
    walker = _Walker(src_lines, new_lines, layout, runtime_symbols,
                     entry_addrs, (lo * 2, hi * 2 + 1))
    try:
        walker.walk()
        _check_manifest(walker, report, read_word, layout,
                        runtime_symbols, manifest, region, domain)
        if export_targets:
            _check_exports(walker, program, export_targets, engine,
                           region, domain)
    except _Mismatch as exc:
        engine.emit("HL017", exc.message, byte_addr=exc.byte_addr,
                    region=region, domain=domain)
    report.matched_lines = walker.matched_lines
    report.store_checks = walker.store_checks
    report.semantic_proofs = walker.semantic_proofs
    report.elided_sites = len(walker.elided)

    _classify_blocks(walker, report, read_word, start, end, engine,
                     region, domain)
    return report


def _find_entry_addrs(program, src_lines, exports, entries):
    """Function entries, exactly as the rewriter derives them: exports,
    declared entries and every internal static call target."""
    addrs = set()
    for name in list(exports) + list(entries):
        addrs.add(program.symbol(name))
    lo, hi = program.extent()
    lo *= 2
    hi = hi * 2 + 1
    for line in src_lines:
        if line.instr is None:
            continue
        if line.instr.key in ("call", "rcall"):
            target = static_target(line)
            if lo <= target <= hi:
                addrs.add(target)
    return addrs


def _check_manifest(walker, report, read_word, layout, runtime_symbols,
                    manifest, region, domain):
    elided_pcs = {pc for pc, _old in walker.elided}
    if not elided_pcs and manifest is None:
        return
    if manifest is None:
        pc, old = walker.elided[0]
        raise _Mismatch(
            "raw store at 0x{:04x} (source 0x{:04x}) without an "
            "elision manifest".format(pc, old), pc)
    manifest_pcs = {site.pc for site in manifest.sites}
    forged = sorted(manifest_pcs - elided_pcs)
    if forged:
        raise _Mismatch(
            "manifest claims an elided store at 0x{:04x} but the "
            "installed image has a check there (forged or stale "
            "site)".format(forged[0]), forged[0])
    uncovered = sorted(elided_pcs - manifest_pcs)
    if uncovered:
        raise _Mismatch(
            "raw store at 0x{:04x} is not covered by the elision "
            "manifest".format(uncovered[0]), uncovered[0])
    entry_pcs = sorted({walker.new_of[e] for e in walker.entry_addrs
                        if e in walker.new_of})
    problems = verify_manifest(read_word, layout, runtime_symbols,
                               manifest, entries=entry_pcs)
    if problems:
        message, byte_addr = problems[0]
        raise _Mismatch(message, byte_addr)


def _check_exports(walker, program, export_targets, engine, region,
                   domain):
    for name, published in export_targets.items():
        old = program.symbol(name)
        derived = walker.new_of.get(old)
        if derived != published:
            raise _Mismatch(
                "export {!r} is linked to 0x{:04x} but its translation "
                "is at {}".format(
                    name, published,
                    "0x{:04x}".format(derived) if derived is not None
                    else "<missing>"), published)


def _classify_blocks(walker, report, read_word, start, end, engine,
                     region, domain):
    leaders = sorted(set(walker.body_of.values())
                     | set(walker.new_of.values()))
    cfg = RegionCFG.build(read_word, start, end,
                          name=report.module, extra_leaders=leaders)
    for block_start, block in sorted(cfg.blocks.items()):
        cls, reason, byte_addr = classify_lines(block.lines)
        report.blocks[block_start] = (cls, reason)
        if cls == CLASS_UNTRANSLATABLE:
            engine.emit(
                "HL018",
                "block 0x{:04x} is outside the symbolic model: "
                "{}".format(block_start, reason),
                byte_addr=byte_addr if byte_addr is not None
                else block_start,
                region=region, domain=domain)
