"""Interrupt-aware concurrency analysis: races, torn accesses, latency.

Harbor/UMPU give the node *spatial* isolation; this module certifies
the *temporal* side of the same image.  Three cooperating analyses run
over one :class:`~repro.analysis.static.cfg.RegionCFG`:

1. **I-bit dataflow** — a forward fixpoint tracking the SREG
   interrupt-enable bit (``cli``/``sei``/``reti`` and the
   ``in rX, SREG`` / ``out SREG, rX`` save-restore idiom) through every
   block, partitioning instructions into *interrupt-atomic* (I provably
   clear before the instruction executes — the simulator polls pending
   lines before each fetch) and *interruptible* ones.

2. **mainline x ISR race detection** — the abstract interpreter
   (:mod:`repro.analysis.static.absint`) resolves every store/load
   target to a constant or interval; the detector intersects the
   interruptible mainline access set against each ISR's access set and
   emits **HL019** for unprotected shared accesses with a write on
   either side, and **HL020** for multi-byte (torn) accesses outside an
   atomic region.  Every race carries a witness: the two access sites
   plus the mainline interleaving window the ISR can fire inside.

3. **latency certification** — the datasheet cycle model (the same
   per-instruction costs :mod:`repro.analysis.static.symexec` uses)
   plus absint-derived counted-loop bounds give each ISR a WCET and the
   image a longest interrupt-disabled region; their combination is a
   static upper bound on interrupt-entry latency, published as the
   ``static_max_irq_latency`` / ``static_isr_wcet{vector}`` gauges and
   cross-checked against the runtime ``irq_entry_latency`` histogram
   (see ``benchmarks/bench_raceck.py``).  **HL021** fires when a bound
   degrades to *unbounded* or exceeds a configured cycle budget.

ISRs are discovered from vector tables (:func:`vector_table_isrs`),
from ``__vector_N`` / ``*_isr`` entry labels (:func:`find_isr_labels`),
or passed explicitly.
"""

import re
from dataclasses import dataclass, field

from repro.isa.encoding import decode_words
from repro.sim.interrupts import IRQ_RESPONSE_CYCLES

from repro.analysis.static import absint
from repro.analysis.static.cfg import CALL_KEYS

#: SREG's I/O-space address (``in``/``out`` operand).
SREG_IO = 0x3F
#: bit 7 of SREG: the global interrupt enable.
I_BIT = 7

#: abstract I-bit values
I_ON, I_OFF, I_UNKNOWN = "on", "off", "unknown"

#: entry labels recognized as interrupt handlers
_VECTOR_RE = re.compile(r"^__vector_(\d+)$")
_ISR_NAME_RE = re.compile(r"(^isr_|_isr$)")


# =====================================================================
# ISR discovery
# =====================================================================
@dataclass
class IsrInfo:
    """One interrupt handler: vector line and entry byte address."""

    line: int
    entry: int
    name: str


def find_isr_labels(entries):
    """Discover ISRs among *entries* (``{name: byte_addr}``) by label
    convention: ``__vector_N`` carries its line number; ``isr_*`` /
    ``*_isr`` handlers get sequential lines after the highest explicit
    vector."""
    isrs = []
    named = []
    for name in sorted(entries):
        m = _VECTOR_RE.match(name)
        if m:
            isrs.append(IsrInfo(int(m.group(1)), entries[name], name))
        elif _ISR_NAME_RE.search(name):
            named.append(name)
    next_line = max((i.line for i in isrs), default=0) + 1
    for name in named:
        isrs.append(IsrInfo(next_line, entries[name], name))
        next_line += 1
    return sorted(isrs, key=lambda i: i.line)


def vector_table_isrs(read_word, nvectors, stride_words=2, skip_reset=True):
    """Parse a hardware vector table at flash word 0: slot *line* sits
    at word ``line * stride_words`` and must decode to ``jmp``/``rjmp``.
    Returns the handlers as :class:`IsrInfo`; *skip_reset* drops line 0
    (the reset vector is the mainline entry, not an ISR)."""
    isrs = []
    for line in range(nvectors):
        if skip_reset and line == 0:
            continue
        word_addr = line * stride_words
        try:
            w0 = read_word(word_addr)
            w1 = read_word(word_addr + 1) if stride_words > 1 else 0
            instr = decode_words(w0, w1)
        except Exception:
            continue
        if instr.key == "jmp":
            target = instr.operands[0] * 2
        elif instr.key == "rjmp":
            target = word_addr * 2 + 2 + instr.operands[0] * 2
        else:
            continue
        isrs.append(IsrInfo(line, target, "vector_{}".format(line)))
    return isrs


# =====================================================================
# Result records
# =====================================================================
@dataclass
class Access:
    """One resolved data-space access."""

    byte_addr: int
    kind: str           # "read" | "write"
    lo: int
    hi: int
    text: str
    atomic: bool = False   # I provably clear before this instruction
    block: int = None

    def overlaps(self, other):
        return self.lo <= other.hi and other.lo <= self.hi

    def range_text(self):
        if self.lo == self.hi:
            return "0x{:04x}".format(self.lo)
        return "0x{:04x}..0x{:04x}".format(self.lo, self.hi)


@dataclass
class WideAccess:
    """Adjacent same-kind byte accesses forming one logical object."""

    kind: str
    lo: int
    hi: int
    sites: list

    @property
    def atomic(self):
        return all(site.atomic for site in self.sites)

    def overlaps(self, access):
        return self.lo <= access.hi and access.lo <= self.hi


@dataclass
class RaceFinding:
    """One mainline x ISR conflict with its witness."""

    code: str                    # HL019 | HL020
    mainline: object             # Access | WideAccess
    isr: IsrInfo
    isr_site: Access
    window: list = field(default_factory=list)   # interleaving window

    def witness_lines(self):
        out = []
        sites = self.mainline.sites if isinstance(self.mainline,
                                                  WideAccess) \
            else [self.mainline]
        for site in sites:
            out.append("mainline {:<5} 0x{:04x}: {}".format(
                site.kind, site.byte_addr, site.text))
        out.append("isr      {:<5} 0x{:04x}: {}  [{}]".format(
            self.isr_site.kind, self.isr_site.byte_addr,
            self.isr_site.text, self.isr.name))
        if self.window:
            out.append("interleaving window (ISR may fire anywhere here):")
            out.extend("    " + entry for entry in self.window)
        return out


@dataclass
class IsrLatency:
    """Static WCET of one handler (cycles from entry through reti)."""

    isr: IsrInfo
    wcet: int = None         # None: unbounded
    reason: str = None       # why unbounded


@dataclass
class LatencyReport:
    """The static interrupt-latency certificate."""

    per_isr: list = field(default_factory=list)     # [IsrLatency]
    disabled_cycles: int = None      # longest mainline cli region
    disabled_site: int = None        # where that region starts
    disabled_reason: str = None      # why unbounded
    max_instr_cycles: int = 0

    @property
    def bound(self):
        """Static upper bound on ``irq_entry_latency`` (the cycles from
        ``raise_irq`` to the controller taking the line), or None when
        any component is unbounded.  Worst case: the line is raised
        just after the poll of the instruction that *starts* the
        longest non-interruptible stretch (a cli region or another
        handler's body), so the wait is that stretch plus one more
        instruction's worth of skew."""
        pieces = [self.disabled_cycles]
        pieces.extend(entry.wcet if entry.wcet is None
                      else entry.wcet + IRQ_RESPONSE_CYCLES
                      for entry in self.per_isr)
        if any(p is None for p in pieces):
            return None
        longest = max(pieces) if pieces else 0
        return longest + self.max_instr_cycles

    def to_dict(self):
        return {
            "bound": self.bound,
            "max_instr_cycles": self.max_instr_cycles,
            "disabled_region": {
                "cycles": self.disabled_cycles,
                "site": self.disabled_site,
                "reason": self.disabled_reason,
            },
            "isrs": [{"line": e.isr.line, "name": e.isr.name,
                      "entry": e.isr.entry, "wcet": e.wcet,
                      "reason": e.reason} for e in self.per_isr],
        }


@dataclass
class ConcurrencyReport:
    """Everything the concurrency analysis derived for one region."""

    region: str
    isrs: list = field(default_factory=list)
    races: list = field(default_factory=list)       # HL019 RaceFindings
    torn: list = field(default_factory=list)        # HL020 RaceFindings
    latency: LatencyReport = None
    mainline_accesses: int = 0
    isr_accesses: int = 0
    unresolved: int = 0
    atomic_instrs: int = 0
    total_instrs: int = 0

    def to_dict(self):
        return {
            "region": self.region,
            "isrs": [{"line": i.line, "name": i.name, "entry": i.entry}
                     for i in self.isrs],
            "races": len(self.races),
            "torn": len(self.torn),
            "accesses": {"mainline": self.mainline_accesses,
                         "isr": self.isr_accesses,
                         "unresolved": self.unresolved},
            "atomic_instrs": self.atomic_instrs,
            "total_instrs": self.total_instrs,
            "latency": self.latency.to_dict() if self.latency else None,
        }

    def render(self):
        lines = ["concurrency[{}]: {} isr(s), {} race(s), {} torn, "
                 "{}/{} instrs interrupt-atomic".format(
                     self.region, len(self.isrs), len(self.races),
                     len(self.torn), self.atomic_instrs,
                     self.total_instrs)]
        lat = self.latency
        if lat is not None:
            for entry in lat.per_isr:
                lines.append(
                    "  isr {:<2} {:<16} wcet = {}".format(
                        entry.isr.line, entry.isr.name,
                        "unbounded ({})".format(entry.reason)
                        if entry.wcet is None else
                        "{} cycles".format(entry.wcet)))
            if lat.disabled_cycles is None:
                lines.append("  longest cli region: unbounded ({})"
                             .format(lat.disabled_reason))
            else:
                lines.append(
                    "  longest cli region: {} cycles{}".format(
                        lat.disabled_cycles,
                        "" if lat.disabled_site is None else
                        " (starts 0x{:04x})".format(lat.disabled_site)))
            lines.append("  static_max_irq_latency = {}".format(
                "unbounded" if lat.bound is None
                else "{} cycles".format(lat.bound)))
        for finding in self.races + self.torn:
            lines.append("  -- {} witness --".format(finding.code))
            lines.extend("  " + entry
                         for entry in finding.witness_lines())
        return "\n".join(lines)


def publish_gauges(registry, report):
    """Publish the latency certificate into a
    :class:`~repro.trace.metrics.MetricsRegistry` (-1 = unbounded)."""
    lat = report.latency
    if lat is None:
        return registry
    bound = lat.bound
    registry.gauge("static_max_irq_latency").set(
        -1 if bound is None else bound)
    for entry in lat.per_isr:
        registry.gauge("static_isr_wcet",
                       vector=str(entry.isr.line)).set(
            -1 if entry.wcet is None else entry.wcet)
    return registry


# =====================================================================
# The analysis
# =====================================================================
class ConcurrencyAnalysis:
    """Run the I-bit dataflow, race detection and latency certifier
    over one region CFG.

    *mainline_entries* are the interruptible roots (exports / the reset
    path); *isrs* the discovered handlers.  *call_models* is forwarded
    to the abstract interpreter.
    """

    def __init__(self, cfg, mainline_entries, isrs, call_models=None,
                 symbols_by_addr=None):
        self.cfg = cfg
        self.isrs = sorted(isrs, key=lambda i: i.line)
        isr_entries = {i.entry for i in self.isrs}
        self.mainline_entries = sorted(
            set(mainline_entries) - isr_entries)
        self.call_models = call_models or {}
        self.symbols_by_addr = symbols_by_addr or {}
        self._line_at = {line.byte_addr: line for line in cfg.lines}
        self._calls_by_addr = {site.byte_addr: site for site in cfg.calls}
        self.pre_i = {}          # byte addr -> I state before execution
        self.in_states = None    # absint fixpoint
        self._touches_memo = {}
        self._wcet_memo = {}

    # -- public entry --------------------------------------------------
    def run(self, engine=None, budget=None):
        """Returns a :class:`ConcurrencyReport`; when *engine* is given
        the HL019/HL020/HL021 findings are emitted into it."""
        cfg = self.cfg
        entries = {}
        for addr in self.mainline_entries:
            if addr in cfg.blocks:
                entries[addr] = {}
        for isr in self.isrs:
            if isr.entry in cfg.blocks:
                entries[isr.entry] = {}
        self.in_states = absint.analyze_cfg(
            cfg, entry_states=entries, call_models=self.call_models)
        self._ibit_fixpoint()

        report = ConcurrencyReport(region=cfg.name, isrs=list(self.isrs))
        report.total_instrs = sum(
            1 for line in cfg.lines if line.instr is not None)
        report.atomic_instrs = sum(
            1 for addr, state in self.pre_i.items()
            if state[0] == I_OFF)

        mainline, m_unres = self._collect_accesses(self.mainline_entries)
        isr_sets = {}
        for isr in self.isrs:
            accesses, unres = self._collect_accesses([isr.entry])
            isr_sets[isr.name] = accesses
            report.unresolved += unres
        report.unresolved += m_unres
        report.mainline_accesses = len(mainline)
        report.isr_accesses = sum(len(v) for v in isr_sets.values())

        report.races = self._detect_races(mainline, isr_sets)
        report.torn = self._detect_torn(mainline, isr_sets)
        report.latency = self._certify_latency()

        if engine is not None:
            self._emit(engine, report, budget)
        return report

    # -- I-bit dataflow ------------------------------------------------
    def _ibit_transfer(self, state, line):
        """One instruction over ``(i, saved)``; *saved* maps registers
        holding an ``in rX, SREG`` snapshot to the I value they hold."""
        i, saved = state
        instr = line.instr
        if instr is None:
            return (I_UNKNOWN, {})
        key = instr.key
        ops = instr.operands
        if key == "bclr" and ops[0] == I_BIT:
            return (I_OFF, saved)
        if key == "bset" and ops[0] == I_BIT:
            return (I_ON, saved)
        if key == "in" and ops[1] == SREG_IO:
            saved = dict(saved)
            saved[ops[0]] = i
            return (i, saved)
        if key == "out" and ops[0] == SREG_IO:
            return (saved.get(ops[1], I_UNKNOWN), saved)
        if key in CALL_KEYS or key == "icall":
            site = self._calls_by_addr.get(line.byte_addr)
            target = site.target if site else None
            if target is not None and target in self.cfg.blocks:
                if self._touches_i(target):
                    return (I_UNKNOWN, {})
                return (i, saved)
            if key == "icall" or target is None:
                return (I_UNKNOWN, {})     # unresolvable callee
            # a static call out of the region reaches the trusted
            # runtime, whose stubs never touch the I bit — preserve it
            # (saved-SREG snapshots die with the clobbered registers)
            saved = {reg: val for reg, val in saved.items()
                     if reg not in absint.CALL_CLOBBERED}
            return (i, saved)
        if key == "reti":
            return (I_ON, saved)
        # any other register write invalidates a saved-SREG snapshot
        if saved and ops and isinstance(ops[0], int) and ops[0] in saved \
                and instr.spec.kind in ("alu", "load", "stack", "io") \
                and key not in ("out", "push"):
            saved = dict(saved)
            saved.pop(ops[0], None)
            return (i, saved)
        return (i, saved)

    @staticmethod
    def _ibit_join(a, b):
        if a is None:
            return b
        if b is None:
            return a
        i = a[0] if a[0] == b[0] else I_UNKNOWN
        saved = {reg: val for reg, val in a[1].items()
                 if b[1].get(reg) == val}
        return (i, saved)

    def _touches_i(self, entry):
        """Does the function at *entry* (transitively) write the I bit?"""
        memo = self._touches_memo
        if entry in memo:
            return memo[entry]
        memo[entry] = True      # cycles: assume the worst
        touches = False
        for addr in self.cfg.reachable_from([entry]):
            for line in self.cfg.blocks[addr]:
                instr = line.instr
                if instr is None:
                    continue
                key = instr.key
                ops = instr.operands
                if (key in ("bset", "bclr") and ops[0] == I_BIT) or \
                        (key == "out" and ops[0] == SREG_IO) or \
                        key == "reti":
                    touches = True
                    break
                if key == "icall" or (
                        key in CALL_KEYS and
                        (self._calls_by_addr[line.byte_addr].target
                         not in self.cfg.blocks)):
                    touches = True   # unknown callee: assume it does
                    break
            if touches:
                break
        memo[entry] = touches
        return touches

    def _ibit_fixpoint(self):
        cfg = self.cfg
        in_i = {addr: None for addr in cfg.blocks}
        worklist = []
        for addr in self.mainline_entries:
            if addr in cfg.blocks:
                in_i[addr] = self._ibit_join(in_i[addr], (I_ON, {}))
                worklist.append(addr)
        for isr in self.isrs:
            if isr.entry in cfg.blocks:
                # hardware clears I when vectoring into the handler
                in_i[isr.entry] = self._ibit_join(in_i[isr.entry],
                                                  (I_OFF, {}))
                worklist.append(isr.entry)
        rounds = 0
        limit = 4 * (len(cfg.blocks) + 1) * (len(cfg.blocks) + 1) + 64
        while worklist and rounds < limit:
            rounds += 1
            addr = worklist.pop()
            state = in_i[addr]
            if state is None:
                continue
            for line in cfg.blocks[addr]:
                # propagate the pre-call state into internal call
                # targets: the callee entry runs with I as at call time
                instr = line.instr
                if instr is not None and (instr.key in CALL_KEYS or
                                          instr.key == "icall"):
                    site = self._calls_by_addr.get(line.byte_addr)
                    target = site.target if site else None
                    if target is not None and target in cfg.blocks:
                        joined = self._ibit_join(in_i[target],
                                                 (state[0], {}))
                        if joined != in_i[target]:
                            in_i[target] = joined
                            worklist.append(target)
                state = self._ibit_transfer(state, line)
            for succ in cfg.blocks[addr].succs:
                if succ not in in_i:
                    continue
                joined = self._ibit_join(in_i[succ], state)
                if joined != in_i[succ]:
                    in_i[succ] = joined
                    worklist.append(succ)
        self.in_i = in_i
        # final pass: per-instruction pre-states
        for addr, block in cfg.blocks.items():
            state = in_i.get(addr)
            if state is None:
                continue
            for line in block:
                self.pre_i[line.byte_addr] = state
                state = self._ibit_transfer(state, line)

    def _atomic(self, byte_addr):
        state = self.pre_i.get(byte_addr)
        return state is not None and state[0] == I_OFF

    # -- access extraction --------------------------------------------
    def _collect_accesses(self, roots):
        cfg = self.cfg
        accesses, unresolved = [], 0
        for baddr in sorted(cfg.reachable_from(roots)):
            block = cfg.blocks[baddr]
            state = dict(self.in_states.get(baddr) or {})
            for line in block:
                instr = line.instr
                if instr is None:
                    continue
                target, kind = self._access_target(line, state)
                if kind is not None:
                    if target is absint.TOP:
                        unresolved += 1
                    else:
                        lo, hi = absint._as_range(target)
                        if hi >= 0x60:      # data RAM only, not regs/IO
                            accesses.append(Access(
                                byte_addr=line.byte_addr, kind=kind,
                                lo=max(lo, 0x60), hi=hi, text=line.text,
                                atomic=self._atomic(line.byte_addr),
                                block=baddr))
                absint.transfer(state, line, self.call_models)
        return accesses, unresolved

    @staticmethod
    def _access_target(line, state):
        """``(abstract_addr, "read"|"write")`` for a data access line,
        ``(None, None)`` otherwise.  Evaluated *before* the line's own
        pointer side effect."""
        instr = line.instr
        key = instr.key
        spec_kind = instr.spec.kind
        if key == "sts":
            return instr.operands[0], "write"
        if key == "lds":
            return instr.operands[1], "read"
        if spec_kind not in ("store", "load"):
            return None, None
        modes = instr.spec.modes
        ptr = modes.get("ptr")
        if ptr is None:
            return None, None       # lpm/elpm: program memory
        kind = "write" if spec_kind == "store" else "read"
        value = absint.get_pair(state, {"X": 26, "Y": 28, "Z": 30}[ptr])
        if modes.get("disp"):
            q = instr.operands[0] if spec_kind == "store" \
                else instr.operands[1]
            value = absint.value_add(value, q)
        elif modes.get("pre_dec"):
            value = absint.value_add(value, -1)
        return value, kind

    # -- race detection ------------------------------------------------
    def _detect_races(self, mainline, isr_sets):
        findings = []
        reported = set()
        for access in mainline:
            if access.atomic:
                continue
            for isr in self.isrs:
                for other in isr_sets.get(isr.name, ()):
                    if not access.overlaps(other):
                        continue
                    if access.kind != "write" and other.kind != "write":
                        continue
                    dedup = (access.byte_addr, isr.name)
                    if dedup in reported:
                        continue
                    reported.add(dedup)
                    findings.append(RaceFinding(
                        "HL019", access, isr, other,
                        window=self._window(access)))
                    break
        return findings

    def _detect_torn(self, mainline, isr_sets):
        findings = []
        for wide in self._wide_accesses(mainline):
            if wide.atomic:
                continue
            for isr in self.isrs:
                hit = next((a for a in isr_sets.get(isr.name, ())
                            if wide.overlaps(a)), None)
                if hit is not None:
                    first = min(wide.sites, key=lambda a: a.byte_addr)
                    last = max(wide.sites, key=lambda a: a.byte_addr)
                    findings.append(RaceFinding(
                        "HL020", wide, isr, hit,
                        window=self._window(first, last)))
                    break
        return findings

    @staticmethod
    def _wide_accesses(accesses):
        """Group adjacent-byte constant accesses of one kind inside one
        block into logical multi-byte objects."""
        wides = []
        by_group = {}
        for access in accesses:
            if access.lo == access.hi:      # constant byte target
                by_group.setdefault((access.block, access.kind),
                                    []).append(access)
        for (block, kind), group in sorted(by_group.items()):
            group.sort(key=lambda a: (a.lo, a.byte_addr))
            run = [group[0]]
            for access in group[1:]:
                if access.lo == run[-1].lo + 1:
                    run.append(access)
                    continue
                if len(run) > 1:
                    wides.append(WideAccess(kind, run[0].lo, run[-1].hi,
                                            list(run)))
                run = [access]
            if len(run) > 1:
                wides.append(WideAccess(kind, run[0].lo, run[-1].hi,
                                        list(run)))
        return wides

    def _window(self, access, last=None):
        """The mainline lines an ISR can interleave into: from the
        first access of the racy block's shared sequence through the
        racing access itself."""
        block = self.cfg.blocks.get(access.block)
        if block is None:
            return []
        last_addr = (last or access).byte_addr
        start_addr = access.byte_addr
        # widen to an earlier read of an overlapping range in the block
        # (the load half of a read-modify-write)
        for line in block:
            if line.byte_addr >= start_addr:
                break
            instr = line.instr
            if instr is None:
                continue
            target, kind = self._access_target(line, {})
            if kind == "read" and isinstance(target, int) and \
                    access.lo <= target <= access.hi:
                start_addr = line.byte_addr
                break
        out = []
        for line in block:
            if start_addr <= line.byte_addr <= last_addr:
                out.append("0x{:04x}: {}".format(line.byte_addr,
                                                 line.text))
        return out

    # -- latency certification ----------------------------------------
    def _block_cost(self, addr):
        """Worst-case cycles of one block, excluding callees; None when
        it contains an undecodable word."""
        block = self.cfg.blocks[addr]
        total = 0
        for line in block:
            if line.instr is None:
                return None
            total += line.instr.spec.cycles
        if block.terminator == "branch":
            total += 1                      # taken costs one more
        elif block.terminator == "skip":
            skipped = self._line_at.get(block.end)
            total += len(skipped.words) if skipped is not None else 2
        return total

    def _block_call_cost(self, addr, stack):
        """Worst-case callee cycles contributed by the block's calls."""
        total = 0
        for site in self.cfg.calls:
            if site.block != addr:
                continue
            if site.key == "icall" or site.target is None:
                return None, "indirect call at 0x{:04x}".format(
                    site.byte_addr)
            if site.target not in self.cfg.blocks:
                return None, "call outside the region at 0x{:04x}" \
                    .format(site.byte_addr)
            wcet, reason = self._wcet(site.target, stack)
            if wcet is None:
                return None, reason
            total += wcet
        return total, None

    def _wcet(self, entry, stack=()):
        """Worst-case execution cycles from *entry* to any ret/reti,
        with counted loops bounded through absint.  ``(None, reason)``
        when unbounded."""
        if entry in self._wcet_memo:
            return self._wcet_memo[entry]
        if entry in stack:
            result = (None, "recursive call through 0x{:04x}"
                      .format(entry))
            self._wcet_memo[entry] = result
            return result
        stack = stack + (entry,)
        cfg = self.cfg
        # function body: blocks reachable along succ edges only
        body = set()
        work = [entry]
        while work:
            addr = work.pop()
            if addr in body or addr not in cfg.blocks:
                continue
            body.add(addr)
            work.extend(cfg.blocks[addr].succs)
        back_edges = self._back_edges(entry, body)
        loop_extra = 0
        loops = set()
        for tail, head in back_edges:
            bound, loop_body = self._loop_bound(tail, head, body)
            if bound is None:
                result = (None, "unbounded loop at 0x{:04x}"
                          .format(head))
                self._wcet_memo[entry] = result
                return result
            body_cost = 0
            for addr in loop_body:
                cost = self._block_cost(addr)
                calls, reason = self._block_call_cost(addr, stack)
                if cost is None or calls is None:
                    result = (None, reason or
                              "undecodable word in loop at 0x{:04x}"
                              .format(addr))
                    self._wcet_memo[entry] = result
                    return result
                body_cost += cost + calls
            loop_extra += max(bound - 1, 0) * body_cost
            loops.add((tail, head))
        # longest acyclic path over the DAG (back edges removed)
        memo = {}
        failure = []

        def longest(addr, trail):
            if addr in memo:
                return memo[addr]
            if addr in trail:       # irreducible cycle not caught above
                failure.append("irreducible loop at 0x{:04x}"
                               .format(addr))
                return None
            cost = self._block_cost(addr)
            calls, reason = self._block_call_cost(addr, stack)
            if cost is None or calls is None:
                failure.append(reason or "undecodable word at 0x{:04x}"
                               .format(addr))
                return None
            block = cfg.blocks[addr]
            if block.terminator == "ijmp":
                failure.append("indirect jump at 0x{:04x}"
                               .format(block.lines[-1].byte_addr))
                return None
            best = 0
            trail = trail | {addr}
            for succ in block.succs:
                if (addr, succ) in loops or succ not in cfg.blocks:
                    continue
                sub = longest(succ, trail)
                if sub is None:
                    return None
                best = max(best, sub)
            memo[addr] = cost + calls + best
            return memo[addr]

        path = longest(entry, frozenset())
        if path is None:
            result = (None, failure[0] if failure else "unbounded")
        else:
            result = (path + loop_extra, None)
        self._wcet_memo[entry] = result
        return result

    def _back_edges(self, entry, body):
        """DFS back edges of the function *body* rooted at *entry*."""
        edges = []
        color = {}

        def visit(addr):
            color[addr] = 1
            for succ in self.cfg.blocks[addr].succs:
                if succ not in body:
                    continue
                if color.get(succ) == 1:
                    edges.append((addr, succ))
                elif succ not in color:
                    visit(succ)
            color[addr] = 2

        visit(entry)
        return edges

    def _loop_bound(self, tail, head, body):
        """Trip count of the ``ldi rN, K ... dec rN; brne head`` counted
        loop, or ``(None, body)`` when unresolvable."""
        cfg = self.cfg
        # natural loop body: nodes reaching tail without passing head
        loop_body = {head, tail}
        work = [tail]
        while work:
            addr = work.pop()
            if addr == head:
                continue
            for pred, block in cfg.blocks.items():
                if pred in loop_body or pred not in body:
                    continue
                if addr in block.succs:
                    loop_body.add(pred)
                    work.append(pred)
        last = cfg.blocks[tail].lines[-1]
        if last.instr is None or last.instr.key != "brbc" or \
                last.instr.operands[0] != 1:
            return None, loop_body      # not a brne loop
        counter = None
        for line in cfg.blocks[tail].lines[-2::-1]:
            instr = line.instr
            if instr is None:
                break
            if instr.key == "dec" or (instr.key == "subi" and
                                      instr.operands[1] == 1):
                counter = instr.operands[0]
            break
        if counter is None:
            return None, loop_body
        # initial counter value: join of the entry predecessors' exits
        bound = None
        for pred, block in cfg.blocks.items():
            if pred in loop_body or head not in block.succs:
                continue
            state = dict(self.in_states.get(pred) or {})
            for line in block:
                absint.transfer(state, line, self.call_models)
            value = state.get(counter, absint.TOP)
            if not isinstance(value, int) or value <= 0:
                return None, loop_body
            bound = value if bound is None else max(bound, value)
        if bound is None:
            return None, loop_body
        return bound, loop_body

    def _certify_latency(self):
        report = LatencyReport()
        cfg = self.cfg
        reachable = cfg.reachable_from(
            list(self.mainline_entries) +
            [i.entry for i in self.isrs])
        for addr in reachable:
            for line in cfg.blocks[addr]:
                if line.instr is not None:
                    report.max_instr_cycles = max(
                        report.max_instr_cycles, line.instr.spec.cycles)
        for isr in self.isrs:
            if isr.entry not in cfg.blocks:
                report.per_isr.append(IsrLatency(
                    isr, None, "handler entry outside the region"))
                continue
            wcet, reason = self._wcet(isr.entry)
            report.per_isr.append(IsrLatency(isr, wcet, reason))
        cycles, site, reason = self._longest_disabled()
        report.disabled_cycles = cycles
        report.disabled_site = site
        report.disabled_reason = reason
        return report

    def _longest_disabled(self):
        """Longest run of may-be-disabled mainline instructions, in
        cycles: ``(cycles, start_site, reason)``; cycles None when a
        loop or an unresolvable construct sits inside a cli region."""
        cfg = self.cfg
        isr_blocks = set()
        for isr in self.isrs:
            isr_blocks |= cfg.reachable_from([isr.entry])
        mainline_blocks = cfg.reachable_from(self.mainline_entries)

        def may_off(byte_addr):
            state = self.pre_i.get(byte_addr)
            return state is not None and state[0] != I_ON

        # per-block maximal runs of may-off instructions
        runs = {}            # run id -> (cycles, start_addr)
        head_run = {}        # block -> run id of a run starting line 0
        tail_run = {}        # block -> run id of a run ending last line
        edges = []
        for addr in sorted(mainline_blocks - isr_blocks):
            block = cfg.blocks[addr]
            current = None
            for idx, line in enumerate(block.lines):
                if line.instr is not None and may_off(line.byte_addr):
                    cost = line.instr.spec.cycles
                    call = self._calls_by_addr.get(line.byte_addr)
                    if call is not None:
                        if call.target in cfg.blocks:
                            wcet, reason = self._wcet(call.target)
                            if wcet is None:
                                return None, line.byte_addr, reason
                            cost += wcet
                        else:
                            return (None, line.byte_addr,
                                    "call outside the region inside a "
                                    "cli region (0x{:04x})"
                                    .format(line.byte_addr))
                    if current is None:
                        current = len(runs)
                        runs[current] = [cost, line.byte_addr]
                        if idx == 0:
                            head_run[addr] = current
                    else:
                        runs[current][0] += cost
                else:
                    current = None
            if current is not None:
                if block.terminator == "branch":
                    runs[current][0] += 1
                elif block.terminator == "skip":
                    skipped = self._line_at.get(block.end)
                    runs[current][0] += len(skipped.words) \
                        if skipped is not None else 2
                tail_run[addr] = current
        for addr in mainline_blocks - isr_blocks:
            run = tail_run.get(addr)
            if run is None:
                continue
            for succ in cfg.blocks[addr].succs:
                if succ in head_run:
                    edges.append((run, head_run[succ]))
        # longest path over the run graph; a cycle means an entire loop
        # executes with interrupts possibly off
        succs = {}
        for a, b in edges:
            succs.setdefault(a, []).append(b)
        memo = {}

        def longest(run, trail):
            if run in memo:
                return memo[run]
            if run in trail:
                return None
            best = 0
            for nxt in succs.get(run, ()):
                sub = longest(nxt, trail | {run})
                if sub is None:
                    return None
                best = max(best, sub)
            memo[run] = runs[run][0] + best
            return memo[run]

        best, site = 0, None
        for run in runs:
            total = longest(run, frozenset())
            if total is None:
                return (None, runs[run][1],
                        "loop inside an interrupt-disabled region "
                        "(0x{:04x})".format(runs[run][1]))
            if total > best:
                best, site = total, runs[run][1]
        return best, site, None

    # -- diagnostics ---------------------------------------------------
    def _emit(self, engine, report, budget):
        region = self.cfg.name
        for finding in report.races:
            access = finding.mainline
            engine.emit(
                "HL019",
                "mainline {} {} @0x{:04x} races ISR {} ({} {} "
                "@0x{:04x}) on {}".format(
                    access.kind, access.text, access.byte_addr,
                    finding.isr.name, finding.isr_site.kind,
                    finding.isr_site.text, finding.isr_site.byte_addr,
                    access.range_text()),
                byte_addr=access.byte_addr, region=region,
                isr=finding.isr.name, isr_pc=finding.isr_site.byte_addr,
                witness=finding.witness_lines())
        for finding in report.torn:
            wide = finding.mainline
            engine.emit(
                "HL020",
                "torn {}-byte {} of 0x{:04x}..0x{:04x} shared with "
                "ISR {} (interrupts not disabled across all {} "
                "bytes)".format(
                    wide.hi - wide.lo + 1, wide.kind, wide.lo, wide.hi,
                    finding.isr.name, wide.hi - wide.lo + 1),
                byte_addr=wide.sites[0].byte_addr, region=region,
                isr=finding.isr.name, isr_pc=finding.isr_site.byte_addr,
                witness=finding.witness_lines())
        lat = report.latency
        for entry in lat.per_isr:
            if entry.wcet is None:
                engine.emit(
                    "HL021",
                    "ISR {} (vector {}) has unbounded WCET: {}".format(
                        entry.isr.name, entry.isr.line, entry.reason),
                    byte_addr=entry.isr.entry, region=region,
                    isr=entry.isr.name)
        if lat.disabled_cycles is None:
            engine.emit(
                "HL021",
                "interrupt-disabled region is unbounded: {}".format(
                    lat.disabled_reason),
                byte_addr=lat.disabled_site, region=region)
        elif budget is not None and lat.bound is not None and \
                lat.bound > budget:
            engine.emit(
                "HL021",
                "static interrupt-latency bound {} cycles exceeds the "
                "budget of {} cycles".format(lat.bound, budget),
                byte_addr=lat.disabled_site, region=region,
                bound=lat.bound, budget=budget)
        return engine


# =====================================================================
# Convenience front doors
# =====================================================================
def analyze_region_concurrency(model, region, engine=None, budget=None,
                               isrs=None, call_models=None):
    """Run the concurrency analysis on one region of *model*.

    ISRs default to :meth:`ImageModel.isr_handlers` discovery (explicit
    registrations + ``__vector_N`` / ``*_isr`` entry labels)."""
    if isrs is None:
        isrs = model.isr_handlers(region)
    cfg = model.cfg_for(region)
    entries = set(region.entries.values())
    entries.update(model.jt_targets_into(region))
    analysis = ConcurrencyAnalysis(
        cfg, mainline_entries=entries, isrs=isrs,
        call_models=call_models,
        symbols_by_addr=model.symbols_by_addr())
    return analysis.run(engine=engine, budget=budget)
