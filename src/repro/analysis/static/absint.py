"""Register-constancy abstract interpretation over a :class:`RegionCFG`.

A deliberately small abstract domain — per 8-bit register either a
known constant, an interval, or unknown (top) — propagated to a
fixpoint over the block graph.  That is exactly enough for the two
questions the whole-image analyzer asks:

* what is **Z** when control reaches ``call hb_xdom_call`` / ``icall`` /
  ``ijmp``?  The rewriter materializes jump-table entries with an
  ``ldi r30 / ldi r31`` pair, so the pair is constant at the call and
  the callee *domain* falls out of the jump-table geometry.
* what do **X/Y/Z** point at when a raw store executes?  A constant or
  narrow interval classifies the target against the
  :class:`~repro.sfi.layout.SfiLayout` regions (trusted cells, memory
  map table, heap, safe stack, run-time stack).

Abstract values are plain Python: ``None`` is top, an ``int`` is a
constant, an ``(lo, hi)`` tuple is an inclusive interval.  States are
dicts ``register -> value`` with absent registers top, so the per-block
state a fixpoint carries is a handful of entries — the analyzer's
memory stays near the verifier's "constant state" point (measured in
``benchmarks/bench_verifier_space.py``).
"""

TOP = None

#: widen an interval beyond this many values straight to top — keeps the
#: fixpoint short and the state small (precision beyond this range never
#: changes a classification).
MAX_INTERVAL = 4096

#: re-join a block's in-state this many times before *widening* the
#: unstable bounds to the full byte range.  Three rounds lets short
#: counting patterns settle exactly; anything still moving is a loop.
WIDEN_DELAY = 3

#: decreasing (narrowing) iterations applied after the widened fixpoint;
#: each round is one application of the transfer functions from the
#: post-fixpoint, which is sound regardless of monotonicity (if X
#: over-approximates every concrete behavior, so does F(X) joined with
#: the entry seeds) and recovers precision widening threw away.
NARROW_ROUNDS = 2

#: registers an AVR callee may clobber (avr-gcc ABI call-clobbered set);
#: joined to top across call instructions.
CALL_CLOBBERED = (0, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 30, 31)


def _as_range(val):
    if isinstance(val, int):
        return val, val
    return val


def join_value(a, b):
    """Least upper bound of two abstract values."""
    if a is TOP or b is TOP:
        return TOP
    if a == b:
        return a
    alo, ahi = _as_range(a)
    blo, bhi = _as_range(b)
    lo, hi = min(alo, blo), max(ahi, bhi)
    if hi - lo + 1 > MAX_INTERVAL:
        return TOP
    return (lo, hi)


def join_state(a, b):
    """Join two states; only registers known in both survive."""
    out = {}
    for reg, val in a.items():
        if reg in b:
            joined = join_value(val, b[reg])
            if joined is not TOP:
                out[reg] = joined
    return out


def widen_value(old, new):
    """Classic bound-stable widening: keep the bounds that did not move,
    jump the ones that did straight to the byte extreme.

    ``new`` is the join of ``old`` with fresh flow, so ``old ⊑ new``; a
    bound that moved once is assumed to keep moving (a loop-carried
    update) and is widened to 0 / 0xFF.  The result still over-
    approximates ``new``, and since each register's value can only be
    widened twice (one per bound) before reaching (0, 0xFF), the
    ascending chain is finite and the fixpoint terminates.
    """
    if old is TOP or new is TOP or old == new:
        return new
    olo, ohi = _as_range(old)
    nlo, nhi = _as_range(new)
    lo = nlo if nlo >= olo else 0
    hi = nhi if nhi <= ohi else 0xFF
    return lo if lo == hi else (lo, hi)


def widen_state(old, new):
    """Widen ``old`` by ``new`` (``new`` = join(old, flow)) per register."""
    out = {}
    for reg, val in new.items():
        widened = widen_value(old.get(reg, TOP), val)
        if widened is not TOP:
            out[reg] = widened
    return out


def value_add(val, delta, bits=16):
    """Shift an abstract value by a constant; TOP on wraparound."""
    if val is TOP:
        return TOP
    mask = (1 << bits) - 1
    if isinstance(val, int):
        return (val + delta) & mask
    lo, hi = val[0] + delta, val[1] + delta
    if lo < 0 or hi > mask:
        return TOP      # interval wrapped: no longer contiguous
    return (lo, hi)


def value_sum(a, b, bits=16):
    """Abstract sum of two abstract values (e.g. pointer + displacement)."""
    if a is TOP or b is TOP:
        return TOP
    alo, ahi = _as_range(a)
    blo, bhi = _as_range(b)
    lo, hi = alo + blo, ahi + bhi
    if hi > (1 << bits) - 1 or hi - lo + 1 > MAX_INTERVAL:
        return TOP
    return lo if lo == hi else (lo, hi)


def get_pair(state, lo_reg):
    """16-bit value of the (lo_reg, lo_reg+1) pair, or TOP/interval."""
    lo = state.get(lo_reg)
    hi = state.get(lo_reg + 1)
    if lo is TOP or hi is TOP:
        return TOP
    if isinstance(lo, int) and isinstance(hi, int):
        return (hi << 8) | lo
    llo, lhi = _as_range(lo)
    hlo, hhi = _as_range(hi)
    pair = ((hlo << 8) | llo, (hhi << 8) | lhi)
    if pair[1] - pair[0] + 1 > MAX_INTERVAL:
        return TOP
    return pair


def set_pair(state, lo_reg, value):
    if value is TOP:
        state.pop(lo_reg, None)
        state.pop(lo_reg + 1, None)
        return
    if isinstance(value, int):
        state[lo_reg] = value & 0xFF
        state[lo_reg + 1] = (value >> 8) & 0xFF
        return
    lo, hi = value
    if (lo >> 8) == (hi >> 8):     # high byte constant across the range
        state[lo_reg + 1] = (lo >> 8) & 0xFF
        state[lo_reg] = (lo & 0xFF, hi & 0xFF)
    else:
        # page-crossing interval: the low bytes wrap, so the widest
        # sound per-byte facts are "any byte" low and the high-byte
        # interval.  Keeping these (instead of dropping the pair)
        # preserves page-pinned loop invariants: a loop that reloads
        # the high byte (ldi r27, hi8(...)) recovers the full pair.
        state[lo_reg] = (0, 0xFF)
        hi_lo, hi_hi = (lo >> 8) & 0xFF, (hi >> 8) & 0xFF
        state[lo_reg + 1] = hi_lo if hi_lo == hi_hi else (hi_lo, hi_hi)


def _set(state, reg, value):
    if value is TOP:
        state.pop(reg, None)
    else:
        state[reg] = value


def _const_byte_op(state, d, k, fn):
    val = state.get(d)
    if isinstance(val, int):
        _set(state, d, fn(val, k) & 0xFF)
    else:
        _set(state, d, TOP)


def transfer(state, line, call_models=None):
    """Apply one instruction to *state* in place.

    Sound over-approximation: anything not modeled sets its destination
    to top; memory is not modeled at all (loads always produce top).

    *call_models* maps static call-target byte addresses to a
    ``(ptr_lo_reg, delta)`` effect for callees with a stronger contract
    than the avr-gcc clobber set — the Harbor store stubs preserve every
    register except the architectural pointer side effect of their
    addressing mode (see the :mod:`repro.sfi.runtime_asm` register
    conventions).  An unmodeled call clobbers ``CALL_CLOBBERED``.
    """
    instr = line.instr
    if instr is None:
        return state
    key = instr.key
    kind = instr.spec.kind
    ops = instr.operands
    if key == "ldi":
        state[ops[0]] = ops[1]
    elif key == "mov":
        _set(state, ops[0], state.get(ops[1], TOP))
    elif key == "movw":
        set_pair(state, ops[0], get_pair(state, ops[1]))
    elif key in ("eor", "sub") and ops[0] == ops[1]:
        state[ops[0]] = 0   # clr idiom: eor/sub d,d always zeroes d
    elif key in ("add", "adc", "and", "or", "eor", "sub", "sbc"):
        a, b = state.get(ops[0]), state.get(ops[1])
        if isinstance(a, int) and isinstance(b, int) and \
                key in ("add", "and", "or", "eor", "sub"):
            fn = {"add": lambda x, y: x + y,
                  "and": lambda x, y: x & y,
                  "or": lambda x, y: x | y,
                  "eor": lambda x, y: x ^ y,
                  "sub": lambda x, y: x - y}[key]
            state[ops[0]] = fn(a, b) & 0xFF
        elif key == "add" and a is not TOP and b is not TOP:
            # interval add; TOP when the carry-out is possible (the
            # wrapped result is no longer a contiguous byte interval)
            _set(state, ops[0], value_sum(a, b, bits=8))
        else:
            _set(state, ops[0], TOP)
    elif key == "subi":
        val = state.get(ops[0])
        if isinstance(val, int):
            state[ops[0]] = (val - ops[1]) & 0xFF
        else:
            # interval subtract; TOP when a borrow is possible
            _set(state, ops[0], value_add(val, -ops[1], bits=8))
    elif key == "andi":
        val = state.get(ops[0])
        if isinstance(val, int):
            state[ops[0]] = val & ops[1]
        else:
            # x & K is always within [0, K] whatever x was — the mask
            # idiom that makes bounded-index stores provable
            state[ops[0]] = (0, ops[1]) if ops[1] else 0
    elif key == "ori":
        _const_byte_op(state, ops[0], ops[1], lambda x, k: x | k)
    elif key == "sbci":
        # carry not modeled: constant only if the preceding subi did not
        # borrow is unknowable here, so the result is top unless K == 0
        # and the register is already constant with no borrow possible —
        # keep it simple and sound: top.
        _set(state, ops[0], TOP)
    elif key == "inc":
        _set(state, ops[0], value_add(state.get(ops[0]), 1, bits=8))
    elif key == "dec":
        _set(state, ops[0], value_add(state.get(ops[0]), -1, bits=8))
    elif key in ("com", "neg", "swap", "asr", "lsr", "ror", "bld"):
        _set(state, ops[0], TOP)
    elif key in ("adiw", "sbiw"):
        delta = ops[1] if key == "adiw" else -ops[1]
        set_pair(state, ops[0], value_add(get_pair(state, ops[0]), delta))
    elif kind == "load" or key in ("lds", "in", "pop"):
        if ops:
            _set(state, ops[0], TOP)
        else:
            state.pop(0, None)   # lpm/elpm r0 forms
        if key in ("lpm_zp", "elpm_zp"):
            set_pair(state, 30, TOP)
        _ptr_side_effect(state, instr)
    elif kind == "store":
        _ptr_side_effect(state, instr)
    elif kind == "call":
        model = _call_model(line, call_models)
        if model is not None:
            ptr_lo, delta = model
            if ptr_lo is not None and delta:
                set_pair(state, ptr_lo,
                         value_add(get_pair(state, ptr_lo), delta))
        else:
            for reg in CALL_CLOBBERED:
                state.pop(reg, None)
    # everything else (cp/cpi/cpc, push, out, sbi/cbi, branches, nop,
    # flag ops) leaves the register state unchanged
    return state


def _call_model(line, call_models):
    """Effect model for a statically-resolved call target, or None."""
    if not call_models:
        return None
    key = line.instr.key
    ops = line.instr.operands
    if key == "call":
        target = ops[0] * 2
    elif key == "rcall":
        target = line.byte_addr + 2 + ops[0] * 2
    else:
        return None     # icall: target unknown, full clobber
    return call_models.get(target)


def _ptr_side_effect(state, instr):
    """Post-increment / pre-decrement of the pointer pair."""
    modes = instr.spec.modes
    ptr = modes.get("ptr")
    if ptr is None:
        return
    lo_reg = {"X": 26, "Y": 28, "Z": 30}[ptr]
    if modes.get("post_inc"):
        set_pair(state, lo_reg, value_add(get_pair(state, lo_reg), 1))
    elif modes.get("pre_dec"):
        set_pair(state, lo_reg, value_add(get_pair(state, lo_reg), -1))


# =====================================================================
# Fixpoint over a RegionCFG
# =====================================================================
def analyze_cfg(cfg, entry_states=None, call_models=None, stats=None):
    """Run the fixpoint; returns ``{block_start: in_state}``.

    *entry_states* maps block starts to their boundary state (defaults
    to top — an empty dict — at every declared entry).  Blocks reached
    both by fallthrough and by branches get the join.  Function entries
    reached by calls start at top (the caller's registers are not the
    callee's contract — except that this also keeps the analysis sound
    without an interprocedural pass).

    Loop-carried register updates terminate through widening: once a
    block's in-state has been re-joined :data:`WIDEN_DELAY` times, the
    moving bounds jump to the byte extremes (finite ascending chain),
    then :data:`NARROW_ROUNDS` decreasing iterations recover the
    precision widening discarded where flow permits.

    *call_models* is passed through to :func:`transfer`.  *stats*, if
    given, is filled with ``iterations``, ``widened`` and ``gave_up``.
    """
    in_states = {addr: None for addr in cfg.blocks}
    seeds = {}
    worklist = []
    for addr in sorted(cfg.blocks):
        base = (entry_states or {}).get(addr)
        if base is not None or addr == cfg.start:
            seeds[addr] = dict(base or {})
    if not seeds:        # nothing declared: seed every block at top
        for addr in cfg.blocks:
            seeds[addr] = {}
    # call targets are entered with top state (callers vary)
    for site in cfg.calls:
        if site.target in cfg.blocks:
            seeds[site.target] = {}
    for addr in sorted(seeds):
        in_states[addr] = dict(seeds[addr])
        worklist.append(addr)

    def block_out(addr):
        out = dict(in_states[addr])
        for line in cfg.blocks[addr].lines:
            transfer(out, line, call_models)
        return out

    iterations = 0
    widened = 0
    join_counts = {}
    limit = max(256, 48 * len(cfg.blocks))
    gave_up = False
    while worklist:
        iterations += 1
        if iterations > limit:
            # backstop only — widening makes every chain finite; give up
            # soundly (everything top) if it is somehow exceeded
            gave_up = True
            in_states = {addr: {} for addr in cfg.blocks}
            break
        addr = worklist.pop(0)
        if in_states.get(addr) is None:
            continue
        out = block_out(addr)
        for succ in cfg.blocks[addr].succs:
            if succ in seeds and not seeds[succ]:
                continue   # entered at top already (seed is top state)
            prev = in_states.get(succ)
            # a seeded block starts at its seed, so incremental joins
            # already fold the boundary state in
            joined = out if prev is None else join_state(prev, out)
            if prev is None or joined != prev:
                if prev is not None:
                    count = join_counts.get(succ, 0) + 1
                    join_counts[succ] = count
                    if count > WIDEN_DELAY:
                        joined = widen_state(prev, joined)
                        widened += 1
                        if joined == prev:
                            continue
                in_states[succ] = dict(joined)
                if succ not in worklist:
                    worklist.append(succ)

    if not gave_up and NARROW_ROUNDS:
        # decreasing iterations from the post-fixpoint: recompute each
        # reachable in-state as seed ⊔ (join of predecessor outs) using
        # the *previous* round's states.  Sound whether or not the
        # result shrinks monotonically — every round over-approximates
        # the concrete collecting semantics by induction from the
        # widened fixpoint.
        preds = {addr: [] for addr in cfg.blocks}
        for addr, block in cfg.blocks.items():
            for succ in block.succs:
                if succ in preds:
                    preds[succ].append(addr)
        for _round in range(NARROW_ROUNDS):
            outs = {addr: block_out(addr)
                    for addr in cfg.blocks if in_states.get(addr) is not None}
            new_states = {}
            for addr in cfg.blocks:
                if addr in seeds and not seeds[addr]:
                    new_states[addr] = {}
                    continue
                parts = [outs[p] for p in preds[addr] if p in outs]
                if addr in seeds:
                    parts.append(seeds[addr])
                if not parts:
                    new_states[addr] = in_states.get(addr)
                    continue
                acc = parts[0]
                for part in parts[1:]:
                    acc = join_state(acc, part)
                new_states[addr] = dict(acc)
            in_states = new_states

    if stats is not None:
        stats["iterations"] = iterations
        stats["widened"] = widened
        stats["gave_up"] = gave_up
    return {addr: state for addr, state in in_states.items()
            if state is not None}


def state_at(cfg, in_states, byte_addr, call_models=None):
    """Abstract state immediately **before** the instruction at
    *byte_addr* (replays the containing block's prefix)."""
    block = cfg.block_of(byte_addr)
    if block is None or block.start not in in_states:
        return {}
    state = dict(in_states[block.start])
    for line in block.lines:
        if line.byte_addr == byte_addr:
            return state
        transfer(state, line, call_models)
    return {}


# =====================================================================
# Store-target classification against the layout
# =====================================================================
def classify_data_address(layout, value):
    """Classify an abstract data address against the SfiLayout regions.

    Returns a region label, or ``"unknown"`` for top / region-straddling
    intervals.
    """
    if value is TOP:
        return "unknown"
    lo, hi = _as_range(value)

    def region_of(addr):
        if addr < 0x60:
            return "registers/io"
        if layout.memmap_table <= addr < layout.memmap_table + \
                layout.memmap_config.table_bytes:
            return "memmap-table"
        if addr < layout.prot_bottom:
            return "trusted-globals"
        if layout.heap_start <= addr < layout.heap_end:
            return "heap"
        if layout.safe_stack_base <= addr < layout.safe_stack_limit:
            return "safe-stack"
        if addr <= layout.prot_top:
            return "protected-region"
        return "runtime-stack"

    first = region_of(lo)
    return first if region_of(hi) == first else "unknown"
