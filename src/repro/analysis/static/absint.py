"""Register-constancy abstract interpretation over a :class:`RegionCFG`.

A deliberately small abstract domain — per 8-bit register either a
known constant, an interval, or unknown (top) — propagated to a
fixpoint over the block graph.  That is exactly enough for the two
questions the whole-image analyzer asks:

* what is **Z** when control reaches ``call hb_xdom_call`` / ``icall`` /
  ``ijmp``?  The rewriter materializes jump-table entries with an
  ``ldi r30 / ldi r31`` pair, so the pair is constant at the call and
  the callee *domain* falls out of the jump-table geometry.
* what do **X/Y/Z** point at when a raw store executes?  A constant or
  narrow interval classifies the target against the
  :class:`~repro.sfi.layout.SfiLayout` regions (trusted cells, memory
  map table, heap, safe stack, run-time stack).

Abstract values are plain Python: ``None`` is top, an ``int`` is a
constant, an ``(lo, hi)`` tuple is an inclusive interval.  States are
dicts ``register -> value`` with absent registers top, so the per-block
state a fixpoint carries is a handful of entries — the analyzer's
memory stays near the verifier's "constant state" point (measured in
``benchmarks/bench_verifier_space.py``).
"""

TOP = None

#: widen an interval beyond this many values straight to top — keeps the
#: fixpoint short and the state small (precision beyond this range never
#: changes a classification).
MAX_INTERVAL = 4096

#: registers an AVR callee may clobber (avr-gcc ABI call-clobbered set);
#: joined to top across call instructions.
CALL_CLOBBERED = (0, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 30, 31)


def _as_range(val):
    if isinstance(val, int):
        return val, val
    return val


def join_value(a, b):
    """Least upper bound of two abstract values."""
    if a is TOP or b is TOP:
        return TOP
    if a == b:
        return a
    alo, ahi = _as_range(a)
    blo, bhi = _as_range(b)
    lo, hi = min(alo, blo), max(ahi, bhi)
    if hi - lo + 1 > MAX_INTERVAL:
        return TOP
    return (lo, hi)


def join_state(a, b):
    """Join two states; only registers known in both survive."""
    out = {}
    for reg, val in a.items():
        if reg in b:
            joined = join_value(val, b[reg])
            if joined is not TOP:
                out[reg] = joined
    return out


def get_pair(state, lo_reg):
    """16-bit value of the (lo_reg, lo_reg+1) pair, or TOP/interval."""
    lo = state.get(lo_reg)
    hi = state.get(lo_reg + 1)
    if lo is TOP or hi is TOP:
        return TOP
    if isinstance(lo, int) and isinstance(hi, int):
        return (hi << 8) | lo
    llo, lhi = _as_range(lo)
    hlo, hhi = _as_range(hi)
    pair = ((hlo << 8) | llo, (hhi << 8) | lhi)
    if pair[1] - pair[0] + 1 > MAX_INTERVAL:
        return TOP
    return pair


def set_pair(state, lo_reg, value):
    if value is TOP:
        state.pop(lo_reg, None)
        state.pop(lo_reg + 1, None)
        return
    if isinstance(value, int):
        state[lo_reg] = value & 0xFF
        state[lo_reg + 1] = (value >> 8) & 0xFF
        return
    lo, hi = value
    if (lo >> 8) == (hi >> 8):     # high byte constant across the range
        state[lo_reg + 1] = (lo >> 8) & 0xFF
        state[lo_reg] = (lo & 0xFF, hi & 0xFF)
    else:
        state.pop(lo_reg, None)
        state.pop(lo_reg + 1, None)


def _set(state, reg, value):
    if value is TOP:
        state.pop(reg, None)
    else:
        state[reg] = value


def _const_byte_op(state, d, k, fn):
    val = state.get(d)
    if isinstance(val, int):
        _set(state, d, fn(val, k) & 0xFF)
    else:
        _set(state, d, TOP)


def transfer(state, line):
    """Apply one instruction to *state* in place.

    Sound over-approximation: anything not modeled sets its destination
    to top; memory is not modeled at all (loads always produce top).
    """
    instr = line.instr
    if instr is None:
        return state
    key = instr.key
    kind = instr.spec.kind
    ops = instr.operands
    if key == "ldi":
        state[ops[0]] = ops[1]
    elif key == "mov":
        _set(state, ops[0], state.get(ops[1], TOP))
    elif key == "movw":
        set_pair(state, ops[0], get_pair(state, ops[1]))
    elif key in ("eor", "sub") and ops[0] == ops[1]:
        state[ops[0]] = 0   # clr idiom: eor/sub d,d always zeroes d
    elif key in ("add", "adc", "and", "or", "eor", "sub", "sbc"):
        a, b = state.get(ops[0]), state.get(ops[1])
        if isinstance(a, int) and isinstance(b, int) and \
                key in ("add", "and", "or", "eor", "sub"):
            fn = {"add": lambda x, y: x + y,
                  "and": lambda x, y: x & y,
                  "or": lambda x, y: x | y,
                  "eor": lambda x, y: x ^ y,
                  "sub": lambda x, y: x - y}[key]
            state[ops[0]] = fn(a, b) & 0xFF
        else:
            _set(state, ops[0], TOP)
    elif key in ("subi", "andi", "ori"):
        fn = {"subi": lambda x, k: x - k,
              "andi": lambda x, k: x & k,
              "ori": lambda x, k: x | k}[key]
        _const_byte_op(state, ops[0], ops[1], fn)
    elif key == "sbci":
        # carry not modeled: constant only if the preceding subi did not
        # borrow is unknowable here, so the result is top unless K == 0
        # and the register is already constant with no borrow possible —
        # keep it simple and sound: top.
        _set(state, ops[0], TOP)
    elif key == "inc":
        _const_byte_op(state, ops[0], 0, lambda x, _k: x + 1)
    elif key == "dec":
        _const_byte_op(state, ops[0], 0, lambda x, _k: x - 1)
    elif key in ("com", "neg", "swap", "asr", "lsr", "ror", "bld"):
        _set(state, ops[0], TOP)
    elif key in ("adiw", "sbiw"):
        pair = get_pair(state, ops[0])
        if isinstance(pair, int):
            delta = ops[1] if key == "adiw" else -ops[1]
            set_pair(state, ops[0], (pair + delta) & 0xFFFF)
        else:
            set_pair(state, ops[0], TOP)
    elif kind == "load" or key in ("lds", "in", "pop"):
        if ops:
            _set(state, ops[0], TOP)
        else:
            state.pop(0, None)   # lpm/elpm r0 forms
        if key in ("lpm_zp", "elpm_zp"):
            set_pair(state, 30, TOP)
        _ptr_side_effect(state, instr)
    elif kind == "store":
        _ptr_side_effect(state, instr)
    elif kind == "call":
        for reg in CALL_CLOBBERED:
            state.pop(reg, None)
    # everything else (cp/cpi/cpc, push, out, sbi/cbi, branches, nop,
    # flag ops) leaves the register state unchanged
    return state


def _ptr_side_effect(state, instr):
    """Post-increment / pre-decrement of the pointer pair."""
    modes = instr.spec.modes
    ptr = modes.get("ptr")
    if ptr is None:
        return
    lo_reg = {"X": 26, "Y": 28, "Z": 30}[ptr]
    if modes.get("post_inc"):
        pair = get_pair(state, lo_reg)
        set_pair(state, lo_reg,
                 (pair + 1) & 0xFFFF if isinstance(pair, int) else TOP)
    elif modes.get("pre_dec"):
        pair = get_pair(state, lo_reg)
        set_pair(state, lo_reg,
                 (pair - 1) & 0xFFFF if isinstance(pair, int) else TOP)


# =====================================================================
# Fixpoint over a RegionCFG
# =====================================================================
def analyze_cfg(cfg, entry_states=None):
    """Run the fixpoint; returns ``{block_start: in_state}``.

    *entry_states* maps block starts to their boundary state (defaults
    to top — an empty dict — at every declared entry).  Blocks reached
    both by fallthrough and by branches get the join.  Function entries
    reached by calls start at top (the caller's registers are not the
    callee's contract — except that this also keeps the analysis sound
    without an interprocedural pass).
    """
    in_states = {addr: None for addr in cfg.blocks}
    worklist = []
    for addr in sorted(cfg.blocks):
        base = (entry_states or {}).get(addr)
        if base is not None or addr == cfg.start:
            in_states[addr] = dict(base or {})
            worklist.append(addr)
    if not worklist:     # nothing declared: seed every block at top
        for addr in sorted(cfg.blocks):
            in_states[addr] = {}
            worklist.append(addr)
    # call targets are entered with top state (callers vary)
    call_targets = {site.target for site in cfg.calls
                    if site.target in cfg.blocks}
    for addr in sorted(call_targets):
        in_states[addr] = {}
        if addr not in worklist:
            worklist.append(addr)

    iterations = 0
    limit = max(64, 16 * len(cfg.blocks))
    while worklist:
        iterations += 1
        addr = worklist.pop(0)
        state = in_states.get(addr)
        if state is None:
            continue
        out = dict(state)
        for line in cfg.blocks[addr].lines:
            transfer(out, line)
        for succ in cfg.blocks[addr].succs:
            if succ in call_targets:
                continue   # entered at top already
            prev = in_states.get(succ)
            joined = out if prev is None else join_state(prev, out)
            if prev is None or joined != prev:
                in_states[succ] = dict(joined)
                if succ not in worklist:
                    worklist.append(succ)
        if iterations > limit:
            # pathological join chain: give up soundly — everything top
            return {addr: {} for addr in cfg.blocks}
    return {addr: state for addr, state in in_states.items()
            if state is not None}


def state_at(cfg, in_states, byte_addr):
    """Abstract state immediately **before** the instruction at
    *byte_addr* (replays the containing block's prefix)."""
    block = cfg.block_of(byte_addr)
    if block is None or block.start not in in_states:
        return {}
    state = dict(in_states[block.start])
    for line in block.lines:
        if line.byte_addr == byte_addr:
            return state
        transfer(state, line)
    return {}


# =====================================================================
# Store-target classification against the layout
# =====================================================================
def classify_data_address(layout, value):
    """Classify an abstract data address against the SfiLayout regions.

    Returns a region label, or ``"unknown"`` for top / region-straddling
    intervals.
    """
    if value is TOP:
        return "unknown"
    lo, hi = _as_range(value)

    def region_of(addr):
        if addr < 0x60:
            return "registers/io"
        if layout.memmap_table <= addr < layout.memmap_table + \
                layout.memmap_config.table_bytes:
            return "memmap-table"
        if addr < layout.prot_bottom:
            return "trusted-globals"
        if layout.heap_start <= addr < layout.heap_end:
            return "heap"
        if layout.safe_stack_base <= addr < layout.safe_stack_limit:
            return "safe-stack"
        if addr <= layout.prot_top:
            return "protected-region"
        return "runtime-stack"

    first = region_of(lo)
    return first if region_of(hi) == first else "unknown"
