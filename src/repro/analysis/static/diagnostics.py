"""Diagnostics engine for the whole-image static analyzer.

Every finding the analyzer (or the on-node verifier in multi-diagnostic
mode) produces is a :class:`Diagnostic` referencing a :class:`Rule` from
a fixed catalog.  Rule codes (``HL001`` ...) and slugs are **stable
machine-readable identifiers** — the same convention as the fault-code
slugs of :mod:`repro.core.faults`: scripts and CI gates match on the
code, humans read the slug and message, and neither ever changes
meaning once shipped.

Exporters: flat text (one line per finding, grep-friendly), JSON
(schema-versioned, like :mod:`repro.trace.metrics`) and a minimal SARIF
2.1.0 document so the report can be uploaded to code-scanning UIs.

This module is dependency-free on purpose: :mod:`repro.sfi.verifier`
imports it for rule codes without dragging the analyzer (or an import
cycle) along.
"""

import hashlib
import json
from dataclasses import dataclass, field

#: JSON export schema version (bump on incompatible changes).
LINT_SCHEMA = 1

#: Severity levels, most severe first (also the report sort order).
SEVERITIES = ("error", "warning", "note")

#: SARIF result levels per severity.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}

#: Documentation page every rule anchor points into.
RULE_DOC = "docs/static-analysis.md"


@dataclass(frozen=True)
class Rule:
    """One entry of the stable rule catalog."""

    code: str       # "HL001" — never renumbered
    slug: str       # "unchecked-store" — never renamed
    severity: str   # "error" | "warning" | "note"
    summary: str    # one-line description for catalogs and SARIF
    full: str = ""  # full description (SARIF fullDescription text)

    @property
    def anchor(self):
        """The docs heading anchor, e.g. ``hl001-unchecked-store``."""
        return "{}-{}".format(self.code.lower(), self.slug)

    @property
    def help_uri(self):
        """Stable documentation link (SARIF ``helpUri``)."""
        return "{}#{}".format(RULE_DOC, self.anchor)


#: The rule catalog.  Codes are append-only: a retired rule keeps its
#: number (like fault-code slugs, these are wire format).
RULES = tuple(Rule(*fields) for fields in (
    ("HL001", "unchecked-store", "error",
     "store does not go through a runtime check stub",
     "Every data-memory store in an untrusted module must be routed "
     "through a Harbor check stub (hb_st_*), be covered by the inline "
     "check template, or appear as a proved site in a checksum-bound "
     "elision manifest.  A raw store satisfying none of these could "
     "write another domain's state."),
    ("HL002", "direct-cross-domain-call", "error",
     "cross-domain transfer bypasses hb_xdom_call",
     "Control may only cross a domain boundary through hb_xdom_call, "
     "which switches the current-domain byte and stack bound.  A direct "
     "call or jump into the jump table (or another domain) would run "
     "foreign code with the caller's store privileges."),
    ("HL003", "missing-restore-ret", "error",
     "a ret path does not run the restore stub",
     "Return addresses live on the protected safe stack; every ret in "
     "an untrusted module must be immediately preceded by a call to "
     "hb_restore_ret so the runtime pops and validates the address.  A "
     "bare ret would consume an attacker-controlled word from the data "
     "stack."),
    ("HL004", "mid-instruction-target", "error",
     "control transfer into the middle of a 32-bit instruction",
     "A branch, call, jump, or skip that lands inside a 32-bit "
     "instruction (or between an inline check and its store) would "
     "re-synchronize the instruction stream at an unverified byte "
     "sequence, defeating the linear verifier."),
    ("HL005", "forbidden-instruction", "error",
     "instruction is outside the sandboxed subset",
     "Untrusted modules are limited to the sandboxed instruction "
     "subset: no indirect jumps/calls, no break/reti/sleep/wdr, and no "
     "direct manipulation of machine state the runtime owns."),
    ("HL006", "control-escape", "error",
     "static control transfer leaves the module sandbox",
     "Every static call, jump, and branch must target the module "
     "itself or a runtime entry point.  Any other target executes "
     "memory outside the sandbox with this domain's privileges."),
    ("HL007", "protected-io-write", "error",
     "write to a protected or unapproved I/O register",
     "Writes to SPL/SPH/SREG, the UMPU protection registers, or any "
     "I/O register not on the module's approved list are rejected: "
     "they could redirect the stack, disable protection, or drive "
     "unapproved peripherals."),
    ("HL008", "recursion-cycle", "warning",
     "call-graph cycle: static call depth is unbounded",
     "The safe-stack bound analysis needs an acyclic call graph to "
     "compute a finite worst-case depth.  A recursion cycle makes the "
     "static bound infinite; the runtime bound check still catches "
     "overflow, but only at run time."),
    ("HL009", "safe-stack-bound-exceeded", "error",
     "worst-case safe-stack occupancy exceeds the configured region",
     "The computed worst-case safe-stack usage (call depth times "
     "per-frame cost, plus cross-domain frames) does not fit in the "
     "region the layout reserves, so a deep call chain would fault at "
     "run time."),
    ("HL010", "dead-code", "note",
     "basic block unreachable from any export or jump-table entry",
     "Code that no export, entry, or jump-table slot can reach is "
     "either leftover or evidence of a broken control-flow assumption; "
     "it wastes flash and hides unverified paths.  Data words must be "
     "declared as data spans so they are not flagged."),
    ("HL011", "undecodable-word", "error",
     "flash word in a code region does not decode",
     "Every word of a code region must decode as an instruction — the "
     "verifier cannot prove anything about bytes it cannot decode.  "
     "Constant pools and jump-table data belong in declared data "
     "spans, not code regions."),
    ("HL012", "unresolved-indirect-target", "warning",
     "indirect transfer target not resolvable by abstract interpretation",
     "An ijmp/icall whose pointer register the abstract interpreter "
     "cannot pin to a known target set may transfer anywhere; the "
     "runtime still confines it, but the static analysis loses "
     "precision downstream of the site."),
    ("HL013", "bad-jump-table-entry", "error",
     "jump-table entry malformed or targets a foreign domain",
     "Each jump-table slot must be a well-formed trampoline whose "
     "target lies inside the domain the slot belongs to; anything else "
     "turns the cross-domain gateway into an escape hatch."),
    ("HL014", "invalid-elision-manifest", "error",
     "elision manifest stale, forged, or no longer provable",
     "A proof-carrying image's elision manifest must be checksum-bound "
     "to the exact flash words and every listed site must re-prove as "
     "in-domain-static under the whole-image analyzer.  A stale or "
     "forged manifest would let unchecked raw stores through the "
     "verifier."),
    ("HL015", "save-restore-desync", "error",
     "control flow can execute hb_save_ret unpaired",
     "The hb_save_ret prologue reads the return address out of the "
     "frame the entering call just pushed, so it must be reachable "
     "only by a call: never by fall-through, jump, branch or skip, "
     "and every internal call must enter through such a prologue.  "
     "Any other path executes save and restore unpaired, spooling a "
     "garbage word to the safe stack; once the pop order is off by "
     "one, a later cross-domain return reinterprets module-controlled "
     "words as a saved domain/stack-bound frame — an isolation "
     "escape."),
    ("HL016", "stack-pointer-drift", "error",
     "push/pop traffic is not depth-consistent",
     "hb_restore_ret rewrites the return-address slot at a fixed "
     "offset from SP, so the module must reach every ret with the "
     "stack pointer exactly where the entering call left it.  A pop "
     "past the frame, a restore call or prologue at nonzero push "
     "depth, or a jump/branch/skip whose target sits at a different "
     "push depth lets the module drift SP, pointing the slot rewrite "
     "— and the following ret — at a module-controlled or "
     "caller-owned stack slot."),
    ("HL017", "translation-mismatch", "error",
     "installed image is not a sanctioned translation of the source",
     "The translation validator walks the source module and the "
     "installed image in lockstep and admits only the sanctioned "
     "rewrite transformations: checked stores become marshalling + "
     "check-stub calls whose symbolic effect provably equals the raw "
     "store, elided stores must appear verbatim at a site covered by "
     "a re-verified elision manifest, function entries carry "
     "hb_save_ret prologues (with rjmp entry guards on fall-through "
     "paths), every ret is preceded by hb_restore_ret, and every "
     "control edge must land on the translation of its source "
     "target.  Any other difference — a miscompiled sequence, a "
     "forged manifest site, a branch resolving to the wrong block — "
     "is a translation mismatch, and certification (and the load, "
     "under certify=True) fails."),
    ("HL018", "untranslatable-block", "note",
     "basic block is outside the symbolic model (not JIT-translatable)",
     "JIT-readiness classification summarizes every basic block of "
     "the installed image with the symbolic evaluator.  Blocks "
     "containing indirect control transfers (ijmp/icall), RAMPZ "
     "program-memory access (elpm), SP writes, undecodable words or "
     "constant data addresses aliasing the register file cannot be "
     "summarized and would fall back to the interpreter under a "
     "block JIT.  This is informational: the block is still safe and "
     "still verified — it just does not count toward the "
     "translatable-cycle fraction of the JIT-readiness report."),
    ("HL019", "unprotected-shared-write", "error",
     "mainline access races an ISR on shared RAM without cli/sei",
     "The I-bit dataflow analysis partitions the image into "
     "interrupt-atomic regions (interrupts provably disabled: after "
     "cli, inside an ISR body, or under a saved-SREG restore that "
     "provably re-installs a disabled I bit) and interruptible "
     "regions.  The race detector then intersects the "
     "absint-resolved store/load target intervals of interruptible "
     "mainline code against each ISR's access set.  A mainline "
     "access that overlaps an ISR access, where at least one side "
     "writes, is an unprotected shared access: the ISR can fire "
     "between the mainline load and store (or mid-update) and the "
     "classic lost-update / stale-read interleavings become "
     "reachable.  Wrap the mainline access in cli/sei (or an "
     "in-SREG/cli/.../out-SREG save-restore) or move the shared "
     "variable behind an atomic protocol."),
    ("HL020", "torn-shared-access", "error",
     "multi-byte shared object is read or written non-atomically",
     "The AVR moves one byte per instruction, so a 16-bit (or wider) "
     "object shared with an ISR is updated as a sequence of byte "
     "accesses.  The detector groups adjacent-byte accesses of the "
     "same kind inside a basic block into one logical wide access; "
     "if any byte of the group executes with interrupts possibly "
     "enabled and the object overlaps an ISR's access set, the ISR "
     "can fire between the bytes and observe (or be clobbered by) a "
     "torn value — high byte new, low byte old.  Every byte of the "
     "wide access must sit inside one interrupt-atomic region."),
    ("HL021", "interrupt-latency-unbounded", "warning",
     "interrupt latency is unbounded or exceeds the configured budget",
     "The static latency certifier combines the datasheet cycle "
     "model with absint-derived loop bounds to compute each ISR's "
     "WCET and the longest interrupt-disabled region in cycles, and "
     "from them a static bound on interrupt-entry latency.  The "
     "bound degrades to 'unbounded' when a disabled region or ISR "
     "body contains an indirect jump, a call outside the analyzed "
     "image, or a loop whose trip count the abstract interpreter "
     "cannot resolve to a constant — and the rule also fires when a "
     "finite bound exceeds the configured cycle budget "
     "(--latency-budget).  The runtime irq_entry_latency histogram "
     "must stay at or below this bound; the raceck benchmark "
     "cross-checks the two."),
))

RULE_BY_CODE = {rule.code: rule for rule in RULES}
RULE_BY_SLUG = {rule.slug: rule for rule in RULES}


def rule(code_or_slug):
    """Look up a rule by code (``HL001``) or slug (``unchecked-store``)."""
    hit = RULE_BY_CODE.get(code_or_slug) or RULE_BY_SLUG.get(code_or_slug)
    if hit is None:
        raise KeyError("unknown lint rule {!r}".format(code_or_slug))
    return hit


@dataclass
class Diagnostic:
    """One finding: a rule violated at a flash byte address."""

    rule: Rule
    message: str
    byte_addr: int = None       # flash byte address, when meaningful
    region: str = None          # module/region name
    domain: int = None
    context: dict = field(default_factory=dict)

    @property
    def code(self):
        return self.rule.code

    @property
    def severity(self):
        return self.rule.severity

    def render(self):
        """One grep-friendly line: ``severity CODE[slug] @addr region: msg``."""
        where = "0x{:04x}".format(self.byte_addr) \
            if self.byte_addr is not None else "-"
        place = self.region or "-"
        return "{:<7} {} [{}] {:>8} {:<12} {}".format(
            self.severity, self.rule.code, self.rule.slug, where, place,
            self.message)

    def to_dict(self):
        doc = {"code": self.rule.code, "slug": self.rule.slug,
               "severity": self.severity, "message": self.message,
               "byte_addr": self.byte_addr, "region": self.region,
               "domain": self.domain}
        if self.context:
            doc["context"] = dict(self.context)
        return doc


class DiagnosticsEngine:
    """Collects diagnostics and renders/exports them.

    Every producer (analyses, the verifier's collect-all mode) calls
    :meth:`emit`; consumers read :attr:`findings` or one of the export
    methods.  Findings keep emission order within a severity; rendering
    sorts most-severe-first, then by address.
    """

    def __init__(self):
        self.findings = []

    def emit(self, code_or_slug, message, byte_addr=None, region=None,
             domain=None, **context):
        diag = Diagnostic(rule(code_or_slug), message, byte_addr=byte_addr,
                          region=region, domain=domain, context=context)
        self.findings.append(diag)
        return diag

    def extend(self, diagnostics):
        self.findings.extend(diagnostics)
        return self

    # ------------------------------------------------------------------
    def by_severity(self, severity):
        return [d for d in self.findings if d.severity == severity]

    @property
    def errors(self):
        return self.by_severity("error")

    @property
    def has_errors(self):
        return any(d.severity == "error" for d in self.findings)

    def codes(self):
        """The set of rule codes present (what CI gates pin against)."""
        return {d.rule.code for d in self.findings}

    def sorted(self):
        rank = {sev: i for i, sev in enumerate(SEVERITIES)}
        return sorted(self.findings,
                      key=lambda d: (rank[d.severity],
                                     d.byte_addr if d.byte_addr is not None
                                     else -1))

    def __len__(self):
        return len(self.findings)

    # ------------------------------------------------------------------
    def render_text(self):
        if not self.findings:
            return "no findings"
        lines = [d.render() for d in self.sorted()]
        counts = {sev: len(self.by_severity(sev)) for sev in SEVERITIES}
        lines.append("{} finding(s): {}".format(
            len(self.findings),
            ", ".join("{} {}".format(counts[sev], sev) for sev in SEVERITIES
                      if counts[sev])))
        return "\n".join(lines)

    def to_dict(self, analysis=None):
        """Schema-versioned JSON-ready export; *analysis* is an optional
        dict of analysis summaries (bounds, overhead) appended verbatim."""
        doc = {"schema": LINT_SCHEMA,
               "findings": [d.to_dict() for d in self.sorted()],
               "counts": {sev: len(self.by_severity(sev))
                          for sev in SEVERITIES}}
        if analysis is not None:
            doc["analysis"] = analysis
        return doc

    def to_sarif(self, artifact="image"):
        """Minimal SARIF 2.1.0 document (code-scanning upload format)."""
        used = sorted(self.codes())
        rules = [{"id": code,
                  "name": RULE_BY_CODE[code].slug,
                  "shortDescription": {"text": RULE_BY_CODE[code].summary},
                  "fullDescription":
                      {"text": RULE_BY_CODE[code].full
                       or RULE_BY_CODE[code].summary},
                  "helpUri": RULE_BY_CODE[code].help_uri}
                 for code in used]
        index = {code: i for i, code in enumerate(used)}
        results = []
        for diag in self.sorted():
            entry = {
                "ruleId": diag.rule.code,
                "ruleIndex": index[diag.rule.code],
                "level": _SARIF_LEVEL[diag.severity],
                "message": {"text": diag.message},
            }
            location = {"physicalLocation": {
                "artifactLocation": {"uri": diag.region or artifact}}}
            if diag.byte_addr is not None:
                location["physicalLocation"]["region"] = {
                    "byteOffset": diag.byte_addr}
            entry["locations"] = [location]
            results.append(entry)
        return {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "harbor-lint",
                                    "informationUri":
                                        "https://example.invalid/harbor",
                                    "rules": rules}},
                "results": results,
            }],
        }


def write_report(path, engine, fmt="json", analysis=None):
    """Write the findings to *path* as ``json`` or ``sarif``."""
    if fmt == "json":
        doc = engine.to_dict(analysis=analysis)
    elif fmt == "sarif":
        doc = engine.to_sarif()
    else:
        raise ValueError("unknown report format {!r}".format(fmt))
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
    return path


# =====================================================================
# Baselines: suppress known findings so CI fails only on new ones
# =====================================================================
#: schema version of the baseline suppression file
BASELINE_SCHEMA = 1


def finding_fingerprint(diag):
    """Stable content hash of one finding: rule + region + message.

    Together with the rule code and pc this keys a baseline entry —
    the finding is suppressed only while it stays at the same site
    with the same message."""
    basis = "|".join((diag.rule.code, diag.region or "", diag.message))
    return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]


def _baseline_key(diag):
    return (diag.rule.code, diag.byte_addr, finding_fingerprint(diag))


def write_baseline(path, engine):
    """Write every current finding as a suppression entry."""
    doc = {"schema": BASELINE_SCHEMA, "suppressions": [
        {"rule": code, "pc": pc, "fingerprint": fp}
        for code, pc, fp in sorted(
            {_baseline_key(d) for d in engine.findings},
            key=lambda k: (k[0], k[1] if k[1] is not None else -1, k[2]))
    ]}
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
    return path


def load_baseline(path):
    """Read a baseline file; returns the suppression key set."""
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError("unsupported baseline schema {!r}"
                         .format(doc.get("schema")))
    return {(e["rule"], e["pc"], e["fingerprint"])
            for e in doc.get("suppressions", ())}


def apply_baseline(engine, suppressions):
    """Drop suppressed findings from *engine* (report and gate see only
    new findings); returns how many were suppressed."""
    kept, suppressed = [], 0
    for diag in engine.findings:
        if _baseline_key(diag) in suppressions:
            suppressed += 1
        else:
            kept.append(diag)
    engine.findings[:] = kept
    return suppressed
