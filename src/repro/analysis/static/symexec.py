"""Symbolic block semantics for decoded AVR instruction sequences.

``summarize`` evaluates a straight-line block of decoded instructions
symbolically and returns a :class:`BlockSummary`: for every register and
SREG flag an expression over the *initial* block state, an ordered log
of memory writes, the set of memory reads, a cycle count (base cycles
plus per-edge conditional extras) and the block terminator.  The
expression language is deliberately tiny — leaves are the initial
registers/flags/SP plus memory and flash reads, interior nodes are the
exact ALU/flag formulas of :mod:`repro.sim.core` — and every node folds
to a Python ``int`` when its operands are constants, so summaries stay
small and structurally canonical.

Two consumers build on the summaries:

* the hypothesis differential (tests/test_symexec.py) evaluates a
  summary against a captured pre-state and asserts the resulting
  register file / SREG / memory image / cycle count matches concrete
  ``step()`` execution on both protection systems;
* the translation validator (:mod:`repro.analysis.static.transval`)
  compares the *module-visible effect* of a source block against its
  rewritten counterpart, with the Harbor store stubs applied as atomic
  call models (:class:`CallModel`).

Model boundary (documented, checked where cheap): data-space accesses
with a *constant* target in the register file (below 0x20) or at the
SP/SREG bytes — which the concrete core aliases into ``memory.data``
but the model tracks separately — are rejected as unsupported;
symbolic store/load targets are assumed to stay in SRAM proper,
exactly the addresses the Harbor store rule sanctions.  ``in``/``out``
on SREG and ``in`` on SPL/SPH are modelled precisely; writing SP
directly, ``elpm`` (RAMPZ) and indirect control (``ijmp``/``icall``)
are out of model and classify a block as untranslatable.
"""

from repro.analysis.static.cfg import static_target

__all__ = [
    "BlockSummary",
    "CallModel",
    "ConcreteEnv",
    "Evaluator",
    "Expr",
    "ModuleEffect",
    "Outcome",
    "UnsupportedInstruction",
    "block_effect",
    "classify_lines",
    "CLASS_PURE",
    "CLASS_TRANSLATABLE",
    "CLASS_UNTRANSLATABLE",
    "effects_equal",
    "image_after",
    "run_summary",
    "summarize",
]

_SREG_ADDR = 0x5F
_SPL_ADDR = 0x5D
_SPH_ADDR = 0x5E
_PTR_REG = {"X": 26, "Y": 28, "Z": 30}

# SREG bit indices (repro.isa.registers.SREG_BITS)
_C, _Z, _N, _V, _S, _H, _T, _I = 0, 1, 2, 3, 4, 5, 6, 7


class UnsupportedInstruction(Exception):
    """The symbolic evaluator cannot model this instruction."""

    def __init__(self, byte_addr, key, reason):
        super().__init__("{} at 0x{:04X}: {}".format(key, byte_addr, reason))
        self.byte_addr = byte_addr
        self.key = key
        self.reason = reason


# ---------------------------------------------------------------------
# expression language
# ---------------------------------------------------------------------
# Every op is a *total* function returning an already-masked value, so
# constant folding and concrete evaluation share one table.  Flag ops
# return 0/1; byte ops return 0..255; 16-bit ops return 0..65535.
_OPS = {
    "add8": lambda a, b: (a + b) & 0xFF,
    "adc8": lambda a, b, c: (a + b + c) & 0xFF,
    "sub8": lambda a, b: (a - b) & 0xFF,
    "sbc8": lambda a, b, c: (a - b - c) & 0xFF,
    "add16": lambda a, b: (a + b) & 0xFFFF,
    "sub16": lambda a, b: (a - b) & 0xFFFF,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "com": lambda a: (~a) & 0xFF,
    "neg": lambda a: (-a) & 0xFF,
    "shr": lambda a: a >> 1,
    "asr": lambda a: (a >> 1) | (a & 0x80),
    "rorc": lambda a, c: ((c & 1) << 7) | (a >> 1),
    "swap": lambda a: ((a << 4) | (a >> 4)) & 0xFF,
    "mul": lambda a, b: a * b,
    "lo": lambda a: a & 0xFF,
    "hi": lambda a: (a >> 8) & 0xFF,
    "pair": lambda lo, hi: lo | (hi << 8),
    "bit": lambda a, b: (a >> b) & 1,
    "setbit": lambda a, b, v: ((a | (1 << b)) if v
                               else (a & ~(1 << b) & 0xFF)),
    "pack8": lambda *bits: sum(b << i for i, b in enumerate(bits)),
    "not1": lambda a: 1 - a,
    "eq": lambda a, b: int(a == b),
    "eq0": lambda a: int(a == 0),
    "ne0": lambda a: int(a != 0),
    # flag formulas, verbatim from repro.sim.core
    "h_add": lambda a, b, c: int(((a & 0xF) + (b & 0xF) + c) > 0xF),
    "c_add": lambda a, b, c: int((a + b + c) > 0xFF),
    "v_add": lambda a, b, c: int(bool(
        (~(a ^ b) & (a ^ ((a + b + c) & 0xFF))) & 0x80)),
    "h_sub": lambda a, b, c: int(((a & 0xF) - (b & 0xF) - c) < 0),
    "c_sub": lambda a, b, c: int((a - b - c) < 0),
    "v_sub": lambda a, b, c: int(bool(
        ((a ^ b) & (a ^ ((a - b - c) & 0xFF))) & 0x80)),
    "h_neg": lambda a: int(bool((((-a) & 0xFF) | a) & 0x8)),
    "v_adiw": lambda a, b: int(bool((~a & ((a + b) & 0xFFFF)) & 0x8000)),
    "c_adiw": lambda a, b: int(bool((~((a + b) & 0xFFFF) & a) & 0x8000)),
    "v_sbiw": lambda a, b: int(bool((a & ~((a - b) & 0xFFFF)) & 0x8000)),
    "c_sbiw": lambda a, b: int(bool((((a - b) & 0xFFFF) & ~a) & 0x8000)),
}


class Expr(object):
    """An interior or leaf node; structurally hashable/comparable.

    Leaves: ``reg0(n)``, ``flag0(bit)``, ``sp0()`` — the initial block
    state — plus ``mem(addr, index)`` (data-space read after the first
    *index* entries of the write log) and ``flash(addr)``.  Interior
    nodes name an entry of ``_OPS``.  Operands are ``Expr`` or ``int``.
    """

    __slots__ = ("name", "args", "_key", "_hash")

    def __init__(self, name, args):
        self.name = name
        self.args = args
        self._key = (name,) + tuple(
            a._key if isinstance(a, Expr) else a for a in args)
        self._hash = hash(self._key)

    def __eq__(self, other):
        if isinstance(other, Expr):
            return self._key == other._key
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, Expr):
            return self._key != other._key
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __repr__(self):
        if self.name in ("reg0", "flag0"):
            return "{}{}".format("r" if self.name == "reg0" else "f",
                                 self.args[0])
        if self.name == "sp0":
            return "sp0"
        return "{}({})".format(
            self.name, ", ".join(repr(a) for a in self.args))


_REG0 = tuple(Expr("reg0", (n,)) for n in range(32))
_FLAG0 = tuple(Expr("flag0", (b,)) for b in range(8))
_SP0 = Expr("sp0", ())


def _op(name, *args):
    """Smart constructor: folds constants and trivial identities."""
    if all(isinstance(a, int) for a in args):
        return _OPS[name](*args)
    if name in ("add16", "sub16") and args[1] == 0:
        return args[0]
    return Expr(name, args)


def _sp_slot(addr):
    """Stack-slot offset (relative to initial SP) if *addr* is
    structurally a stack address, else None."""
    if isinstance(addr, Expr):
        if addr.name == "sp0":
            return 0
        if (addr.name == "add16" and isinstance(addr.args[1], int)
                and isinstance(addr.args[0], Expr)
                and addr.args[0].name == "sp0"):
            return addr.args[1]
    return None


class _Write(object):
    __slots__ = ("addr", "value", "kind")

    def __init__(self, addr, value, kind):
        self.addr = addr
        self.value = value
        self.kind = kind      # "data" | "stack" | "io"

    def __repr__(self):
        return "[{!r}] <- {!r} ({})".format(self.addr, self.value,
                                            self.kind)


class CallModel(object):
    """Atomic effect model for a ``call`` target inside a block.

    The Harbor store stubs preserve all registers and SREG except the
    pointer-pair bump and perform exactly one data-space store at their
    effective address; their own frame is balanced, so they are
    SP-neutral from the caller's perspective (the ``call``'s return
    push is consumed by the stub's ``ret`` and is not logged).
    """

    __slots__ = ("name", "store", "ptr_lo", "ea_bias", "ea_uses_q",
                 "delta", "cycles")

    def __init__(self, name, store=False, ptr_lo=None, ea_bias=0,
                 ea_uses_q=False, delta=0, cycles=0):
        self.name = name
        self.store = store
        self.ptr_lo = ptr_lo
        self.ea_bias = ea_bias
        self.ea_uses_q = ea_uses_q
        self.delta = delta
        self.cycles = cycles


class BlockSummary(object):
    """Symbolic effect of one straight-line instruction sequence."""

    def __init__(self, lines):
        self.lines = list(lines)
        self.regs = list(_REG0)
        self.flags = list(_FLAG0)
        self.sp_off = 0
        self.writes = []          # ordered [_Write]
        self.reads = []           # [(kind, addr expr)]
        self.base_cycles = 0
        self.extras = []          # [(cond 0/1 expr, extra cycles)]
        self.stub_calls = []      # [CallModel names, in order]
        self.terminator = None    # final Line when it transfers control

    @property
    def start(self):
        return self.lines[0].byte_addr if self.lines else None

    def successors(self):
        """Static control successors: list of (kind, byte_addr|None)."""
        line = self.terminator
        if line is None:
            if not self.lines:
                return []
            last = self.lines[-1]
            return [("fall", last.byte_addr + 2 * len(last.words))]
        key = line.instr.key
        fall = line.byte_addr + 2 * len(line.words)
        if key in ("rjmp", "jmp"):
            return [("jump", static_target(line))]
        if key in ("brbs", "brbc"):
            return [("branch", static_target(line)), ("fall", fall)]
        if key in ("cpse", "sbrc", "sbrs", "sbic", "sbis"):
            return [("skip", None), ("fall", fall)]
        if key in ("ret", "reti"):
            return [("ret", None)]
        return [("halt", None)]


# ---------------------------------------------------------------------
# evaluation against a concrete pre-state
# ---------------------------------------------------------------------
class ConcreteEnv(object):
    """A concrete block pre-state: registers, SREG, SP, a snapshot of
    data memory and a flash-byte reader."""

    def __init__(self, regs, sreg, sp, data, flash_byte=None):
        self.regs = regs
        self.sreg = sreg
        self.sp = sp
        self.data = data
        self.flash_byte = flash_byte or (lambda addr: 0)

    @classmethod
    def from_core(cls, core):
        data = bytes(core.memory.data)
        sp = data[_SPL_ADDR] | (data[_SPH_ADDR] << 8)
        return cls(regs=list(data[:32]), sreg=data[_SREG_ADDR], sp=sp,
                   data=data, flash_byte=core.memory.read_flash_byte)

    def mem(self, addr):
        return self.data[addr & 0xFFFF]


class Evaluator(object):
    """Evaluates expressions of one summary against a ConcreteEnv."""

    def __init__(self, env, writes):
        self.env = env
        self.writes = writes
        self._memo = {}

    def eval(self, x):
        if isinstance(x, int):
            return x
        memo = self._memo
        key = id(x)
        if key in memo:
            return memo[key]
        name = x.name
        env = self.env
        if name == "reg0":
            value = env.regs[x.args[0]]
        elif name == "flag0":
            value = (env.sreg >> x.args[0]) & 1
        elif name == "sp0":
            value = env.sp
        elif name == "flash":
            value = env.flash_byte(self.eval(x.args[0]))
        elif name == "mem":
            value = self._mem(x)
        else:
            value = _OPS[name](*[self.eval(a) for a in x.args])
        memo[key] = value
        return value

    def _mem(self, x):
        addr = self.eval(x.args[0]) & 0xFFFF
        index = x.args[1]
        for write in reversed(self.writes[:index]):
            if self.eval(write.addr) & 0xFFFF == addr:
                return self.eval(write.value) & 0xFF
        return self.env.mem(addr)


class Outcome(object):
    """Concrete post-state predicted by a summary for one pre-state."""

    def __init__(self, regs, sreg, sp, writes, cycles):
        self.regs = regs
        self.sreg = sreg
        self.sp = sp
        self.writes = writes       # [(addr, value, kind)] in order
        self.cycles = cycles


def run_summary(summary, env):
    """Evaluate *summary* against pre-state *env* -> :class:`Outcome`."""
    ev = Evaluator(env, summary.writes)
    regs = [ev.eval(x) & 0xFF for x in summary.regs]
    sreg = 0
    for b in range(8):
        if ev.eval(summary.flags[b]):
            sreg |= 1 << b
    sp = (env.sp + summary.sp_off) & 0xFFFF
    writes = [(ev.eval(w.addr) & 0xFFFF, ev.eval(w.value) & 0xFF, w.kind)
              for w in summary.writes]
    cycles = summary.base_cycles
    for cond, extra in summary.extras:
        if ev.eval(cond):
            cycles += extra
    return Outcome(regs, sreg, sp, writes, cycles)


def image_after(summary, env):
    """Predicted full data-memory image after the block: the captured
    pre-state image with the write log, final registers, SREG and SP
    applied.  Comparing this against ``bytes(core.memory.data)`` after
    concrete execution checks every architectural effect at once."""
    outcome = run_summary(summary, env)
    data = bytearray(env.data)
    for addr, value, _kind in outcome.writes:
        data[addr] = value
    data[0:32] = bytes(outcome.regs)
    data[_SREG_ADDR] = outcome.sreg
    data[_SPL_ADDR] = outcome.sp & 0xFF
    data[_SPH_ADDR] = outcome.sp >> 8
    return data


# ---------------------------------------------------------------------
# the symbolic transfer functions
# ---------------------------------------------------------------------
class _Sym(object):
    def __init__(self, summary, call_models):
        self.s = summary
        self.call_models = call_models or {}

    # -- tiny state helpers -------------------------------------------
    def reg(self, n):
        return self.s.regs[n]

    def set_reg(self, n, value):
        self.s.regs[n] = value

    def pair(self, n):
        return _op("pair", self.s.regs[n], self.s.regs[n + 1])

    def set_pair(self, n, value):
        self.s.regs[n] = _op("lo", value)
        self.s.regs[n + 1] = _op("hi", value)

    def flag(self, b):
        return self.s.flags[b]

    def sp_addr(self, off):
        return _SP0 if off == 0 else Expr("add16", (_SP0, off))

    def read_mem(self, addr, kind):
        self.s.reads.append((kind, addr))
        return Expr("mem", (addr, len(self.s.writes)))

    def write_mem(self, addr, value, kind):
        if isinstance(addr, int):
            self._check_const_addr(addr)
        self.s.writes.append(_Write(addr, value, kind))

    # -- flag groups, matching repro.sim.core bit for bit -------------
    def _nzs(self, res, v):
        flags = self.s.flags
        n = _op("bit", res, 7)
        flags[_N] = n
        flags[_V] = v
        flags[_S] = _op("xor", n, v)
        flags[_Z] = _op("eq0", res)

    def _add(self, d, r_val, carry):
        rd = self.reg(d)
        res = _op("adc8", rd, r_val, carry)
        flags = self.s.flags
        flags[_H] = _op("h_add", rd, r_val, carry)
        flags[_C] = _op("c_add", rd, r_val, carry)
        self._nzs(res, _op("v_add", rd, r_val, carry))
        self.set_reg(d, res)

    def _sub(self, d, r_val, carry, store=True, keep_z=False):
        rd = self.reg(d)
        res = _op("sbc8", rd, r_val, carry)
        flags = self.s.flags
        z_prev = flags[_Z]
        flags[_H] = _op("h_sub", rd, r_val, carry)
        flags[_C] = _op("c_sub", rd, r_val, carry)
        self._nzs(res, _op("v_sub", rd, r_val, carry))
        if keep_z:
            flags[_Z] = _op("and", flags[_Z], z_prev)
        if store:
            self.set_reg(d, res)

    def _logic(self, d, res):
        flags = self.s.flags
        n = _op("bit", res, 7)
        flags[_V] = 0
        flags[_N] = n
        flags[_S] = n
        flags[_Z] = _op("eq0", res)
        self.set_reg(d, res)

    def _shift(self, d, rd, res):
        flags = self.s.flags
        c = _op("bit", rd, 0)
        n = _op("bit", res, 7)
        v = _op("xor", n, c)
        flags[_C] = c
        flags[_N] = n
        flags[_V] = v
        flags[_S] = _op("xor", n, v)
        flags[_Z] = _op("eq0", res)
        self.set_reg(d, res)

    def _inc_dec(self, d, res, v):
        flags = self.s.flags
        n = _op("bit", res, 7)
        flags[_V] = v
        flags[_N] = n
        flags[_S] = _op("xor", n, v)
        flags[_Z] = _op("eq0", res)
        self.set_reg(d, res)

    def sreg_byte(self):
        return _op("pack8", *self.s.flags)

    def set_sreg_byte(self, value):
        self.s.flags = [_op("bit", value, b) for b in range(8)]

    # -- dispatch ------------------------------------------------------
    def exec_line(self, line):
        instr = line.instr
        self._addr = line.byte_addr
        self._key = instr.key
        ops = instr.operands
        s = self.s
        key = instr.key

        if key == "add":
            self._add(ops[0], self.reg(ops[1]), 0)
        elif key == "adc":
            self._add(ops[0], self.reg(ops[1]), self.flag(_C))
        elif key == "sub":
            self._sub(ops[0], self.reg(ops[1]), 0)
        elif key == "sbc":
            self._sub(ops[0], self.reg(ops[1]), self.flag(_C),
                      keep_z=True)
        elif key == "subi":
            self._sub(ops[0], ops[1], 0)
        elif key == "sbci":
            self._sub(ops[0], ops[1], self.flag(_C), keep_z=True)
        elif key == "cp":
            self._sub(ops[0], self.reg(ops[1]), 0, store=False)
        elif key == "cpc":
            self._sub(ops[0], self.reg(ops[1]), self.flag(_C),
                      store=False, keep_z=True)
        elif key == "cpi":
            self._sub(ops[0], ops[1], 0, store=False)
        elif key == "and":
            self._logic(ops[0], _op("and", self.reg(ops[0]),
                                    self.reg(ops[1])))
        elif key == "andi":
            self._logic(ops[0], _op("and", self.reg(ops[0]), ops[1]))
        elif key == "or":
            self._logic(ops[0], _op("or", self.reg(ops[0]),
                                    self.reg(ops[1])))
        elif key == "ori":
            self._logic(ops[0], _op("or", self.reg(ops[0]), ops[1]))
        elif key == "eor":
            self._logic(ops[0], _op("xor", self.reg(ops[0]),
                                    self.reg(ops[1])))
        elif key == "com":
            res = _op("com", self.reg(ops[0]))
            flags = s.flags
            flags[_C] = 1
            n = _op("bit", res, 7)
            flags[_V] = 0
            flags[_N] = n
            flags[_S] = n
            flags[_Z] = _op("eq0", res)
            self.set_reg(ops[0], res)
        elif key == "neg":
            rd = self.reg(ops[0])
            res = _op("neg", rd)
            flags = s.flags
            flags[_H] = _op("h_neg", rd)
            flags[_C] = _op("ne0", res)
            self._nzs(res, _op("eq", res, 0x80))
            self.set_reg(ops[0], res)
        elif key == "inc":
            rd = self.reg(ops[0])
            self._inc_dec(ops[0], _op("add8", rd, 1), _op("eq", rd, 0x7F))
        elif key == "dec":
            rd = self.reg(ops[0])
            self._inc_dec(ops[0], _op("sub8", rd, 1), _op("eq", rd, 0x80))
        elif key == "swap":
            self.set_reg(ops[0], _op("swap", self.reg(ops[0])))
        elif key == "asr":
            rd = self.reg(ops[0])
            self._shift(ops[0], rd, _op("asr", rd))
        elif key == "lsr":
            rd = self.reg(ops[0])
            self._shift(ops[0], rd, _op("shr", rd))
        elif key == "ror":
            rd = self.reg(ops[0])
            self._shift(ops[0], rd, _op("rorc", rd, self.flag(_C)))
        elif key == "mov":
            self.set_reg(ops[0], self.reg(ops[1]))
        elif key == "movw":
            d, r = ops
            self.set_reg(d, self.reg(r))
            self.set_reg(d + 1, self.reg(r + 1))
        elif key == "ldi":
            self.set_reg(ops[0], ops[1] & 0xFF)
        elif key == "mul":
            product = _op("mul", self.reg(ops[0]), self.reg(ops[1]))
            self.set_reg(0, _op("lo", product))
            self.set_reg(1, _op("hi", product))
            s.flags[_C] = _op("bit", product, 15)
            s.flags[_Z] = _op("eq0", product)
        elif key == "adiw":
            d, k = ops
            rd = self.pair(d)
            res = _op("add16", rd, k)
            self._adiw_sbiw(res, _op("v_adiw", rd, k),
                            _op("c_adiw", rd, k))
            self.set_pair(d, res)
        elif key == "sbiw":
            d, k = ops
            rd = self.pair(d)
            res = _op("sub16", rd, k)
            self._adiw_sbiw(res, _op("v_sbiw", rd, k),
                            _op("c_sbiw", rd, k))
            self.set_pair(d, res)
        elif key == "bset":
            s.flags[ops[0]] = 1
        elif key == "bclr":
            s.flags[ops[0]] = 0
        elif key == "bst":
            s.flags[_T] = _op("bit", self.reg(ops[0]), ops[1])
        elif key == "bld":
            self.set_reg(ops[0], _op("setbit", self.reg(ops[0]),
                                     ops[1], self.flag(_T)))
        elif key == "push":
            self.write_mem(self.sp_addr(s.sp_off),
                           self.reg(ops[0]), "stack")
            s.sp_off -= 1
        elif key == "pop":
            s.sp_off += 1
            self.set_reg(ops[0],
                         self.read_mem(self.sp_addr(s.sp_off), "stack"))
        elif key == "lds":
            self._check_const_addr(ops[1])
            self.set_reg(ops[0], self.read_mem(ops[1], "data"))
        elif key == "sts":
            self._check_const_addr(ops[0])
            self.write_mem(ops[0], self.reg(ops[1]), "data")
        elif key in ("ld_x", "ld_xp", "ld_mx", "ld_yp", "ld_my",
                     "ld_zp", "ld_mz", "ldd_y", "ldd_z"):
            self._load_store(instr, ops, load=True)
        elif key in ("st_x", "st_xp", "st_mx", "st_yp", "st_my",
                     "st_zp", "st_mz", "std_y", "std_z"):
            self._load_store(instr, ops, load=False)
        elif key == "in":
            self._in(ops[0], ops[1])
        elif key == "out":
            self._out(ops[0], ops[1])
        elif key in ("sbi", "cbi"):
            a, b = ops
            self._check_io_plain(a)
            value = self.read_mem(a + 0x20, "io")
            if key == "sbi":
                value = _op("or", value, 1 << b)
            else:
                value = _op("and", value, ~(1 << b) & 0xFF)
            self.write_mem(a + 0x20, value, "io")
        elif key == "lpm_r0":
            self.set_reg(0, self._flash_read(self.pair(30)))
        elif key == "lpm":
            self.set_reg(ops[0], self._flash_read(self.pair(30)))
        elif key == "lpm_zp":
            z = self.pair(30)
            self.set_reg(ops[0], self._flash_read(z))
            self.set_pair(30, _op("add16", z, 1))
        elif key in ("nop", "sleep", "wdr"):
            pass
        else:
            raise UnsupportedInstruction(
                line.byte_addr, key, "out of the symbolic model")

    def _adiw_sbiw(self, res, v, c):
        flags = self.s.flags
        n = _op("bit", res, 15)
        flags[_V] = v
        flags[_C] = c
        flags[_N] = n
        flags[_S] = _op("xor", n, v)
        flags[_Z] = _op("eq0", res)

    def _check_const_addr(self, addr):
        # the concrete core aliases the register file and SP/SREG into
        # data space; the model keeps them separate, so constant
        # accesses there are out of model (symbolic targets are assumed
        # to stay in SRAM proper, as the Harbor store rule sanctions)
        if addr < 0x20 or addr in (_SPL_ADDR, _SPH_ADDR, _SREG_ADDR):
            raise UnsupportedInstruction(
                self._addr, self._key,
                "constant data address 0x{:02X} aliases the register "
                "file / SP / SREG".format(addr))

    def _check_io_plain(self, a):
        if a + 0x20 in (_SREG_ADDR, _SPL_ADDR, _SPH_ADDR):
            raise UnsupportedInstruction(
                self._addr, self._key,
                "bit access to SREG/SP is out of model")

    def _flash_read(self, addr):
        self.s.reads.append(("flash", addr))
        return Expr("flash", (addr,))

    def _load_store(self, instr, ops, load):
        modes = instr.spec.modes
        preg = _PTR_REG[modes["ptr"]]
        ptr = self.pair(preg)
        if modes.get("pre_dec"):
            addr = _op("sub16", ptr, 1)
            self.set_pair(preg, addr)
        elif modes.get("post_inc"):
            addr = ptr
            self.set_pair(preg, _op("add16", ptr, 1))
        elif modes.get("disp"):
            # ldd operands (d, q); std operands (q, r)
            q = ops[1] if load else ops[0]
            addr = _op("add16", ptr, q)
        else:
            addr = ptr
        if load:
            self.set_reg(ops[0], self.read_mem(addr, "data"))
        else:
            self.write_mem(addr, self.reg(ops[-1]), "data")

    def _in(self, d, a):
        addr = a + 0x20
        if addr == _SREG_ADDR:
            self.set_reg(d, self.sreg_byte())
        elif addr == _SPL_ADDR:
            self.set_reg(d, _op("lo", self._sp_expr()))
        elif addr == _SPH_ADDR:
            self.set_reg(d, _op("hi", self._sp_expr()))
        else:
            self.set_reg(d, self.read_mem(addr, "io"))

    def _out(self, a, r):
        addr = a + 0x20
        if addr == _SREG_ADDR:
            self.set_sreg_byte(self.reg(r))
        elif addr in (_SPL_ADDR, _SPH_ADDR):
            raise UnsupportedInstruction(
                self._addr, self._key, "writing SP is out of model")
        else:
            self.write_mem(addr, self.reg(r), "io")

    def _sp_expr(self):
        return self.sp_addr(self.s.sp_off)

    def apply_call_model(self, model):
        s = self.s
        if model.store:
            ea = self.pair(model.ptr_lo)
            if model.ea_bias:
                ea = _op("sub16", ea, -model.ea_bias)
            if model.ea_uses_q:
                ea = _op("add16", ea, self.reg(19))
            self.write_mem(ea, self.reg(18), "data")
        if model.delta:
            preg = model.ptr_lo
            if model.delta > 0:
                self.set_pair(preg, _op("add16", self.pair(preg),
                                        model.delta))
            else:
                self.set_pair(preg, _op("sub16", self.pair(preg),
                                        -model.delta))
        s.base_cycles += model.cycles
        s.stub_calls.append(model.name)


_CONTROL_KEYS = frozenset((
    "rjmp", "jmp", "ijmp", "rcall", "call", "icall", "ret", "reti",
    "brbs", "brbc", "cpse", "sbrc", "sbrs", "sbic", "sbis", "break",
))


def summarize(lines, call_models=None, next_size_words=1):
    """Symbolically evaluate a straight-line block.

    *lines* are disassembler ``Line`` objects (``.instr``,
    ``.byte_addr``, ``.words``).  Control-transfer instructions are
    only admitted as the final line (the block terminator); ``call``/
    ``rcall`` to a target present in *call_models* (byte address ->
    :class:`CallModel`) are applied atomically in the middle of the
    block.  *next_size_words* sizes the skip-cost edge of a trailing
    skip instruction.  Raises :class:`UnsupportedInstruction` for
    anything outside the model.
    """
    summary = BlockSummary(lines)
    sym = _Sym(summary, call_models)
    models = sym.call_models
    last = len(summary.lines) - 1
    for index, line in enumerate(summary.lines):
        instr = line.instr
        if instr is None:
            raise UnsupportedInstruction(
                line.byte_addr, "?", "undecodable word")
        key = instr.key
        if key in _CONTROL_KEYS:
            if key in ("call", "rcall"):
                model = models.get(static_target(line))
                if model is not None:
                    summary.base_cycles += instr.spec.cycles
                    sym.apply_call_model(model)
                    continue
                raise UnsupportedInstruction(
                    line.byte_addr, key, "call to unmodelled target")
            if index != last:
                raise UnsupportedInstruction(
                    line.byte_addr, key,
                    "control transfer inside a straight-line block")
            summary.base_cycles += instr.spec.cycles
            summary.terminator = line
            _apply_terminator(sym, summary, line, next_size_words)
            break
        summary.base_cycles += instr.spec.cycles
        sym.exec_line(line)
    return summary


def _apply_terminator(sym, summary, line, next_size_words):
    key = line.instr.key
    ops = line.instr.operands
    if key in ("rjmp", "jmp", "ret", "break"):
        return
    if key == "reti":
        summary.flags[_I] = 1
        return
    if key == "brbs":
        summary.extras.append((sym.flag(ops[0]), 1))
    elif key == "brbc":
        summary.extras.append((_op("not1", sym.flag(ops[0])), 1))
    elif key == "cpse":
        cond = _op("eq", sym.reg(ops[0]), sym.reg(ops[1]))
        summary.extras.append((cond, next_size_words))
    elif key == "sbrc":
        cond = _op("not1", _op("bit", sym.reg(ops[0]), ops[1]))
        summary.extras.append((cond, next_size_words))
    elif key == "sbrs":
        cond = _op("bit", sym.reg(ops[0]), ops[1])
        summary.extras.append((cond, next_size_words))
    elif key in ("sbic", "sbis"):
        sym._addr, sym._key = line.byte_addr, key
        sym._check_io_plain(ops[0])
        value = sym.read_mem(ops[0] + 0x20, "io")
        cond = _op("bit", value, ops[1])
        if key == "sbic":
            cond = _op("not1", cond)
        summary.extras.append((cond, next_size_words))
    else:
        raise UnsupportedInstruction(
            line.byte_addr, key, "indirect control transfer")


# ---------------------------------------------------------------------
# module-visible effects (translation validation)
# ---------------------------------------------------------------------
class ModuleEffect(object):
    """A summary normalized to what the rest of the image can observe:
    changed registers/flags, the ordered non-stack write log and the
    net SP movement.  Stack-slot reads are resolved structurally
    against the block's own pushes (sanctioned no-alias: a checked or
    proven store can never target the protected stack region), and
    scratch writes at or below the initial SP are dropped once the
    block has restored SP — the Harbor frame discipline makes that
    space dead."""

    def __init__(self, regs, flags, writes, sp_off):
        self.regs = regs          # {n: expr}
        self.flags = flags        # {bit: expr}
        self.writes = writes      # [(addr expr, value expr)]
        self.sp_off = sp_off


def _resolve_stack(x, writes, memo):
    if isinstance(x, int):
        return x
    key = id(x)
    if key in memo:
        return memo[key]
    if x.name == "mem":
        off = _sp_slot(x.args[0])
        if off is not None:
            for write in reversed(writes[:x.args[1]]):
                if _sp_slot(write.addr) == off:
                    value = _resolve_stack(write.value, writes, memo)
                    memo[key] = value
                    return value
            value = Expr("mem", (x.args[0], 0))
            memo[key] = value
            return value
        addr = _resolve_stack(x.args[0], writes, memo)
        value = Expr("mem", (addr, x.args[1]))
        memo[key] = value
        return value
    args = tuple(_resolve_stack(a, writes, memo) for a in x.args)
    value = _op(x.name, *args) if x.name in _OPS else Expr(x.name, args)
    memo[key] = value
    return value


def block_effect(summary):
    """The module-visible :class:`ModuleEffect` of a summary."""
    memo = {}
    writes = summary.writes
    regs = {}
    for n in range(32):
        resolved = _resolve_stack(summary.regs[n], writes, memo)
        if resolved != _REG0[n]:
            regs[n] = resolved
    flags = {}
    for b in range(8):
        resolved = _resolve_stack(summary.flags[b], writes, memo)
        if resolved != _FLAG0[b]:
            flags[b] = resolved
    visible = []
    for write in writes:
        off = _sp_slot(write.addr)
        if off is not None and off <= 0 and summary.sp_off == 0:
            continue        # dead scratch below the restored SP
        visible.append((_resolve_stack(write.addr, writes, memo),
                        _resolve_stack(write.value, writes, memo)))
    return ModuleEffect(regs, flags, visible, summary.sp_off)


def effects_equal(a, b):
    """Structural equality of two module-visible effects.

    Returns ``(True, None)`` or ``(False, reason)``.
    """
    if a.sp_off != b.sp_off:
        return False, "net SP movement differs ({} vs {})".format(
            a.sp_off, b.sp_off)
    for n in sorted(set(a.regs) | set(b.regs)):
        if a.regs.get(n, _REG0[n]) != b.regs.get(n, _REG0[n]):
            return False, "r{} differs: {!r} vs {!r}".format(
                n, a.regs.get(n, _REG0[n]), b.regs.get(n, _REG0[n]))
    for b_ in sorted(set(a.flags) | set(b.flags)):
        if a.flags.get(b_, _FLAG0[b_]) != b.flags.get(b_, _FLAG0[b_]):
            return False, "SREG bit {} differs".format(b_)
    if len(a.writes) != len(b.writes):
        return False, "write counts differ ({} vs {})".format(
            len(a.writes), len(b.writes))
    for i, ((aa, av), (ba, bv)) in enumerate(zip(a.writes, b.writes)):
        if aa != ba:
            return False, "write {} address differs: {!r} vs {!r}".format(
                i, aa, ba)
        if av != bv:
            return False, "write {} value differs: {!r} vs {!r}".format(
                i, av, bv)
    return True, None


# ---------------------------------------------------------------------
# JIT-readiness classification
# ---------------------------------------------------------------------
CLASS_PURE = "pure"
CLASS_TRANSLATABLE = "translatable"
CLASS_UNTRANSLATABLE = "untranslatable"


def classify_lines(lines):
    """Classify a basic block for the block JIT.

    Returns ``(cls, reason, byte_addr)`` where *cls* is one of
    :data:`CLASS_PURE` (register/SREG-only effect — the JIT can
    translate with no memory glue), :data:`CLASS_TRANSLATABLE` (fully
    summarizable, possibly with memory traffic and calls treated as
    block-internal control points) or :data:`CLASS_UNTRANSLATABLE`
    (contains an instruction the symbolic model rejects); *reason* and
    *byte_addr* locate the rejection for HL018 reporting.
    """
    runs = [[]]
    for line in lines:
        instr = line.instr
        if instr is not None and instr.key in ("call", "rcall"):
            # a call is a block-internal control point: the JIT re-
            # enters the interpreter, so summarization restarts after
            if runs[-1]:
                runs.append([])
            continue
        runs[-1].append(line)
    has_call = len(runs) > 1 or any(
        line.instr is not None and line.instr.key in ("call", "rcall")
        for line in lines)
    summaries = []
    try:
        for run in runs:
            if run:
                summaries.append(summarize(run))
    except UnsupportedInstruction as exc:
        return CLASS_UNTRANSLATABLE, exc.reason, exc.byte_addr
    if (not has_call and len(summaries) <= 1
            and all(not s.writes and not s.reads and s.sp_off == 0
                    and (s.terminator is None
                         or s.terminator.instr.key in
                         ("rjmp", "jmp", "brbs", "brbc"))
                    for s in summaries)):
        return CLASS_PURE, None, None
    return CLASS_TRANSLATABLE, None, None
