"""Basic-block CFG construction over disassembled flash regions.

A :class:`RegionCFG` is built per code region (the runtime, each loaded
module) by a linear decode — the same walk the on-node verifier does —
followed by the classic leaders/blocks split.  Unlike the verifier's
constant-state scan the CFG keeps per-block structure, which is what
lets the analyses answer *path* questions: can a ``ret`` be reached
without passing the restore stub, what is the deepest call chain, which
blocks are unreachable.

Calls do **not** terminate blocks (they return); each ``call``/``rcall``
/``icall`` becomes a :class:`CallSite` record attached to the walk, from
which :func:`build_call_graph` derives the function-level graph used by
the depth/occupancy analysis.
"""

from dataclasses import dataclass, field

from repro.asm.disassembler import disassemble_flash

#: keys that transfer control without returning
JUMP_KEYS = frozenset({"jmp", "rjmp"})
BRANCH_KEYS = frozenset({"brbs", "brbc"})
CALL_KEYS = frozenset({"call", "rcall"})
RET_KEYS = frozenset({"ret", "reti"})
SKIP_KINDS = frozenset({"skip"})


def static_target(line):
    """Resolve the static byte target of a call/jump/branch line."""
    instr = line.instr
    key = instr.key
    if key in ("rcall", "rjmp"):
        return line.byte_addr + 2 + 2 * instr.operands[0]
    if key in ("call", "jmp"):
        return instr.operands[0] * 2
    if key in BRANCH_KEYS:
        return line.byte_addr + 2 + 2 * instr.operands[-1]
    raise ValueError("no static target for {!r}".format(key))


@dataclass
class CallSite:
    """One call instruction inside a region."""

    byte_addr: int
    key: str            # "call" | "rcall" | "icall"
    target: int = None  # byte address; None for icall (absint may fill it)
    block: int = None   # start address of the containing block


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    start: int
    lines: list = field(default_factory=list)
    succs: list = field(default_factory=list)    # internal block starts
    exits: list = field(default_factory=list)    # (kind, target) external
    terminator: str = "fall"  # fall|jump|branch|skip|ret|ijmp|icall-end

    @property
    def end(self):
        last = self.lines[-1]
        return last.byte_addr + 2 * len(last.words)

    def __iter__(self):
        return iter(self.lines)


class RegionCFG:
    """CFG of one contiguous code region ``[start, end)``."""

    def __init__(self, name, start, end):
        self.name = name
        self.start = start
        self.end = end
        self.lines = []
        self.blocks = {}         # start byte addr -> BasicBlock
        self.boundaries = set()  # instruction-start byte addresses
        self.calls = []          # CallSite list (static + indirect)
        self.indirect_jumps = []  # byte addrs of ijmp
        self.undecodable = []    # byte addrs of .dw words
        self.bad_targets = []    # (target, from_addr) not on a boundary
        self.data_spans = ()     # (lo, hi) byte ranges excluded as data

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, read_word, start, end, name="region",
              extra_leaders=(), data_spans=()):
        """Disassemble ``[start, end)`` through *read_word* and build the
        CFG.  *extra_leaders* (export/entry byte addresses) force block
        starts even when nothing in the region branches there.

        *data_spans* are ``(lo, hi)`` byte ranges of known data (jump
        tables, lookup tables, ``.dw`` constants) inside the region:
        they are never disassembled — so their words cannot show up as
        undecodable or dead blocks — and control never falls through
        across them (code before a span must end in a jump/ret)."""
        cfg = cls(name, start, end)
        spans = []
        for lo, hi in data_spans:
            lo, hi = max(start, lo & ~1), min(end, (hi + 1) & ~1)
            if lo < hi:
                spans.append((lo, hi))
        cfg.data_spans = tuple(sorted(spans))
        cfg.lines = []
        seg_lo = start
        for lo, hi in cfg.data_spans + ((end, end),):
            if seg_lo < lo:
                cfg.lines.extend(disassemble_flash(
                    read_word, seg_lo // 2, (lo - seg_lo) // 2))
            seg_lo = max(seg_lo, hi)
        index_of = {}
        for i, line in enumerate(cfg.lines):
            cfg.boundaries.add(line.byte_addr)
            index_of[line.byte_addr] = i
            if line.instr is None:
                cfg.undecodable.append(line.byte_addr)

        def internal(target):
            return start <= target < end

        # --- pass 1: leaders -----------------------------------------
        leaders = {start}
        for addr in extra_leaders:
            if internal(addr):
                leaders.add(addr)
        for i, line in enumerate(cfg.lines):
            if line.instr is None:
                continue
            key = line.instr.key
            kind = line.instr.spec.kind
            after = line.byte_addr + 2 * len(line.words)
            if key in JUMP_KEYS or key in BRANCH_KEYS:
                target = static_target(line)
                if internal(target):
                    if target in cfg.boundaries:
                        leaders.add(target)
                    else:
                        cfg.bad_targets.append((target, line.byte_addr))
                leaders.add(after)
            elif key in CALL_KEYS:
                target = static_target(line)
                if internal(target):
                    if target in cfg.boundaries:
                        leaders.add(target)  # function entry
                    else:
                        cfg.bad_targets.append((target, line.byte_addr))
            elif key in RET_KEYS or key == "ijmp":
                leaders.add(after)
            elif kind in SKIP_KINDS:
                # the skipped-over successor starts a (tiny) block
                if i + 1 < len(cfg.lines):
                    nxt = cfg.lines[i + 1]
                    leaders.add(nxt.byte_addr +
                                2 * len(nxt.words))
        leaders = {a for a in leaders if a in cfg.boundaries}

        # --- pass 2: blocks and edges --------------------------------
        block = None
        prev_end = None
        for i, line in enumerate(cfg.lines):
            # a data span between this line and the previous one breaks
            # fallthrough: control does not run off code into data
            gap = prev_end is not None and line.byte_addr != prev_end
            prev_end = line.byte_addr + 2 * len(line.words)
            if block is None or line.byte_addr in leaders or gap:
                if block is not None and not gap:
                    # fallthrough into the new leader
                    block.succs.append(line.byte_addr)
                block = BasicBlock(start=line.byte_addr)
                cfg.blocks[line.byte_addr] = block
            block.lines.append(line)
            if line.instr is None:
                continue
            key = line.instr.key
            kind = line.instr.spec.kind
            after = line.byte_addr + 2 * len(line.words)

            def close(terminator):
                block.terminator = terminator

            if key in CALL_KEYS or key == "icall":
                target = None
                if key != "icall":
                    target = static_target(line)
                cfg.calls.append(CallSite(line.byte_addr, key,
                                          target=target,
                                          block=block.start))
            if key in JUMP_KEYS:
                target = static_target(line)
                if internal(target) and target in cfg.boundaries:
                    block.succs.append(target)
                elif internal(target):
                    pass  # already in bad_targets
                else:
                    block.exits.append(("jump", target))
                close("jump")
                block = None
            elif key in BRANCH_KEYS:
                target = static_target(line)
                if internal(target) and target in cfg.boundaries:
                    block.succs.append(target)
                elif not internal(target):
                    block.exits.append(("branch", target))
                if after < end and after in cfg.boundaries:
                    block.succs.append(after)
                close("branch")
                block = None
            elif kind in SKIP_KINDS:
                if i + 1 < len(cfg.lines):
                    nxt = cfg.lines[i + 1]
                    skip_to = nxt.byte_addr + 2 * len(nxt.words)
                    if skip_to < end and skip_to in cfg.boundaries:
                        block.succs.append(skip_to)
                    block.succs.append(nxt.byte_addr)
                close("skip")
                block = None
            elif key in RET_KEYS:
                close("ret")
                block = None
            elif key == "ijmp":
                cfg.indirect_jumps.append(line.byte_addr)
                close("ijmp")
                block = None
        # de-duplicate successor lists (branch-to-fallthrough etc.)
        for blk in cfg.blocks.values():
            seen = set()
            blk.succs = [s for s in blk.succs
                         if not (s in seen or seen.add(s))]
        return cfg

    # ------------------------------------------------------------------
    def block_of(self, byte_addr):
        """The block containing *byte_addr* (by start-address floor)."""
        starts = sorted(self.blocks)
        lo, hi = 0, len(starts) - 1
        best = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if starts[mid] <= byte_addr:
                best = starts[mid]
                lo = mid + 1
            else:
                hi = mid - 1
        return self.blocks.get(best)

    def reachable_from(self, roots):
        """Block start addresses reachable from *roots* following block
        edges **and** internal call edges (a called function is live)."""
        calls_by_block = {}
        for site in self.calls:
            if site.target is not None and \
                    self.start <= site.target < self.end and \
                    site.target in self.blocks:
                calls_by_block.setdefault(site.block, []).append(site.target)
        seen = set()
        work = [r for r in roots if r in self.blocks]
        while work:
            addr = work.pop()
            if addr in seen:
                continue
            seen.add(addr)
            block = self.blocks[addr]
            for succ in block.succs:
                if succ not in seen and succ in self.blocks:
                    work.append(succ)
            for target in calls_by_block.get(addr, ()):
                if target not in seen:
                    work.append(target)
        return seen

    def predecessors(self):
        """Map block start -> list of predecessor block starts."""
        preds = {addr: [] for addr in self.blocks}
        for addr, block in self.blocks.items():
            for succ in block.succs:
                if succ in preds:
                    preds[succ].append(addr)
        return preds


# =====================================================================
# Function partition + call graph
# =====================================================================
@dataclass
class FunctionInfo:
    """A function inside a region: entry block and its body blocks."""

    entry: int
    blocks: set = field(default_factory=set)    # block start addresses
    calls: list = field(default_factory=list)   # CallSite list


def partition_functions(cfg, entries):
    """Split *cfg* into functions, flow-based.

    Function entries are the declared *entries* plus every internal call
    target.  A function's body is the set of blocks reachable from its
    entry along block edges without crossing another entry — so a call
    site is attributed to the function(s) whose activation actually
    executes it (a block shared by two functions, e.g. a common error
    tail, counts for both: conservative, never undercounting).  Blocks
    reachable from no entry (host-only-callable code never targeted by
    an internal call) stay unattributed; declare such functions as
    entries to include them.
    """
    starts = set()
    for addr in entries:
        if addr in cfg.blocks:
            starts.add(addr)
    for site in cfg.calls:
        if site.target is not None and site.target in cfg.blocks:
            starts.add(site.target)
    if not starts and cfg.start in cfg.blocks:
        starts.add(cfg.start)
    functions = {}
    for entry in sorted(starts):
        blocks = set()
        work = [entry]
        while work:
            addr = work.pop()
            if addr in blocks:
                continue
            blocks.add(addr)
            for succ in cfg.blocks[addr].succs:
                if succ in cfg.blocks and succ not in starts:
                    work.append(succ)
        functions[entry] = FunctionInfo(entry=entry, blocks=blocks)
    for site in cfg.calls:
        for info in functions.values():
            if site.block in info.blocks:
                info.calls.append(site)
    return functions


def build_call_graph(functions):
    """Intra-region call graph: entry addr -> set of callee entry addrs
    (only calls whose static target is itself a function entry)."""
    graph = {entry: set() for entry in functions}
    for entry, info in functions.items():
        for site in info.calls:
            if site.target in functions:
                graph[entry].add(site.target)
    return graph


def find_cycles(graph):
    """Strongly connected components with more than one node (or a
    self-loop): the recursion cycles of the call graph.  Iterative
    Tarjan so deep graphs cannot hit the recursion limit."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1 or node in graph.get(node, ()):
                    sccs.append(sorted(scc))
    return sccs


def max_call_depth(graph, entry, cyclic_nodes=frozenset()):
    """Longest call chain (in function activations, >= 1) starting at
    *entry*.  Nodes in *cyclic_nodes* poison the result to ``None``
    (unbounded)."""
    memo = {}
    # depths in reverse topological order (iterative DFS, so deep call
    # chains cannot hit the host recursion limit)
    order = []
    seen = set()
    work = [(entry, iter(sorted(graph.get(entry, ()))))]
    seen.add(entry)
    while work:
        node, it = work[-1]
        advanced = False
        for succ in it:
            if succ not in seen:
                seen.add(succ)
                work.append((succ, iter(sorted(graph.get(succ, ())))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            work.pop()
    for node in order:
        if node in cyclic_nodes:
            memo[node] = None
            continue
        best = 1
        for callee in graph.get(node, ()):
            # a callee not yet finished is a back edge (cycle that the
            # caller did not flag): treat as unbounded, never undercount
            sub = memo.get(callee)
            if sub is None or callee in cyclic_nodes:
                best = None
                break
            best = max(best, 1 + sub)
        memo[node] = best
    return memo.get(entry, 1)
