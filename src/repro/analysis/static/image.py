"""Whole-image model: what the static analyzer analyzes.

An :class:`ImageModel` bundles everything the analyses need about one
flash image: a word reader, the :class:`~repro.sfi.layout.SfiLayout`,
the jump-table geometry, the trusted runtime region and every module
region with its entry points, plus a combined symbol map (runtime
labels + jump-table entry labels + module exports) used to symbolize
diagnostics.

:meth:`ImageModel.from_system` builds the model straight off a live
:class:`~repro.sfi.system.SfiSystem` or
:class:`~repro.umpu.system.UmpuSystem` (duck-typed: both expose
``layout``/``machine``/``runtime``/``jump_table``/``modules``), which is
what the ``harbor-lint`` CLI and the strict load-time gate use.
"""

from dataclasses import dataclass, field

from repro.isa.encoding import DecodeError, decode_words

from repro.analysis.static.cfg import RegionCFG


@dataclass
class ModuleRegion:
    """One contiguous code region of the image.

    *policy* selects the rules that apply:

    * ``"sfi"`` — a rewritten, sandboxed module: the full rule set
      (stores via stubs, no direct cross-domain calls, restore-stub
      discipline, ...);
    * ``"umpu"`` — an unrewritten module on the hardware system: raw
      stores are legal (the MMC checks them), but control-flow rules
      (jump-table discipline, boundaries) still apply;
    * ``"trusted"`` — the runtime/kernel itself: exempt from sandbox
      rules, still parsed for the call-depth and occupancy analyses.
    """

    name: str
    domain: int
    start: int
    end: int
    policy: str = "sfi"
    entries: dict = field(default_factory=dict)   # name -> byte address
    #: (lo, hi) byte ranges inside [start, end) holding data words
    #: (jump tables, constant pools) — excluded from decode/dead-code
    data_spans: tuple = ()
    #: the module's ElisionManifest, when it was loaded proof-carrying
    manifest: object = None


@dataclass
class JtEntry:
    """One parsed jump-table slot."""

    domain: int
    index: int
    addr: int          # flash byte address of the slot
    target: int = None  # jmp destination (byte address) or None
    ok: bool = True     # decoded to a plain jmp?
    words: tuple = ()   # raw flash words of the slot


class ImageModel:
    """A flash image plus the layout metadata the analyses need."""

    def __init__(self, read_word, layout, jump_table, runtime_region,
                 modules=(), symbols=None, allowed_io=(), mode="sfi",
                 isrs=()):
        self.read_word = read_word
        self.layout = layout
        self.jump_table = jump_table
        self.runtime = runtime_region          # ModuleRegion or None
        self.modules = list(modules)
        self.symbols = dict(symbols or {})     # name -> byte address
        self.allowed_io = frozenset(allowed_io)
        self.mode = mode                       # "sfi" | "umpu"
        #: explicitly registered interrupt handlers (IsrInfo list);
        #: :meth:`isr_handlers` unions these with label discovery
        self.isrs = list(isrs)
        self._cfgs = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_system(cls, system, extra_modules=()):
        """Model a live SfiSystem/UmpuSystem node."""
        machine = system.machine
        layout = system.layout
        read_word = machine.memory.read_flash_word
        is_sfi = hasattr(system, "verifier")
        lo, hi = system.runtime.extent()
        symbols = system.symbol_map() if hasattr(system, "symbol_map") \
            else dict(system.runtime.symbols)
        runtime_entries = {}
        from repro.sfi.runtime_asm import RUNTIME_ENTRIES
        from repro.sfi.system import KERNEL_EXPORTS
        entry_names = set(RUNTIME_ENTRIES)
        entry_names.update(stub for _n, stub in KERNEL_EXPORTS)
        entry_names.update(("hb_init", "hb_fault_r20", "hb_dispatch"))
        for name in entry_names:
            addr = system.runtime.symbols.get(name)
            if addr is not None:
                runtime_entries[name] = addr
        runtime = ModuleRegion(
            name="runtime", domain=None, start=lo * 2, end=(hi + 1) * 2,
            policy="trusted", entries=runtime_entries)
        model = cls(read_word, layout, system.jump_table, runtime,
                    symbols=symbols,
                    allowed_io=getattr(getattr(system, "verifier", None),
                                       "allowed_io", ()),
                    mode="sfi" if is_sfi else "umpu")
        for module in system.modules.values():
            entries = {}
            for export, entry_addr in module.exports.items():
                target = model.jt_target(entry_addr)
                if target is not None:
                    entries[export] = target
            model.modules.append(ModuleRegion(
                name=module.name, domain=module.domain,
                start=module.start, end=module.end,
                policy="sfi" if is_sfi else "umpu", entries=entries,
                data_spans=tuple(getattr(module, "data_spans", ()) or ()),
                manifest=getattr(module, "manifest", None)))
        model.modules.extend(extra_modules)
        return model

    # ------------------------------------------------------------------
    @property
    def regions(self):
        """All code regions, trusted runtime first."""
        out = []
        if self.runtime is not None:
            out.append(self.runtime)
        out.extend(self.modules)
        return out

    def region_of(self, byte_addr):
        for region in self.regions:
            if region.start <= byte_addr < region.end:
                return region
        return None

    def cfg_for(self, region):
        """The (cached) :class:`RegionCFG` of *region*."""
        cfg = self._cfgs.get(region.name)
        if cfg is None:
            cfg = RegionCFG.build(self.read_word, region.start, region.end,
                                  name=region.name,
                                  extra_leaders=sorted(
                                      region.entries.values()),
                                  data_spans=getattr(region, "data_spans",
                                                     ()))
            self._cfgs[region.name] = cfg
        return cfg

    # ------------------------------------------------------------------
    def symbols_by_addr(self):
        out = {}
        for name, addr in sorted(self.symbols.items()):
            out.setdefault(addr, name)
        return out

    def symbolize(self, byte_addr):
        by_addr = self.symbols_by_addr()
        if byte_addr in by_addr:
            return by_addr[byte_addr]
        return "0x{:04x}".format(byte_addr)

    # ------------------------------------------------------------------
    def isr_handlers(self, region):
        """The interrupt handlers living inside *region*: explicitly
        registered ones (:attr:`isrs`) plus any discovered from the
        region's entry labels (``__vector_N`` / ``isr_*`` / ``*_isr``
        convention — see
        :func:`repro.analysis.static.concurrency.find_isr_labels`)."""
        from repro.analysis.static.concurrency import find_isr_labels
        explicit = [i for i in self.isrs
                    if region.start <= i.entry < region.end]
        taken = {i.entry for i in explicit}
        for isr in find_isr_labels(region.entries):
            if isr.entry not in taken:
                explicit.append(isr)
                taken.add(isr.entry)
        return sorted(explicit, key=lambda i: i.line)

    def vector_isrs(self, nvectors, stride_words=2):
        """Interrupt handlers parsed from a hardware vector table at
        flash word 0 (see
        :func:`repro.analysis.static.concurrency.vector_table_isrs`)."""
        from repro.analysis.static.concurrency import vector_table_isrs
        return vector_table_isrs(self.read_word, nvectors,
                                 stride_words=stride_words)

    # ------------------------------------------------------------------
    def jt_target(self, entry_addr):
        """The jmp destination of the jump-table slot at *entry_addr*
        (byte address), or None if the slot does not decode to a jmp."""
        try:
            w0 = self.read_word(entry_addr // 2)
            w1 = self.read_word(entry_addr // 2 + 1)
            instr = decode_words(w0, w1)
        except Exception:
            return None
        if instr.key != "jmp":
            return None
        return instr.operands[0] * 2

    def jt_entries(self):
        """Parse every jump-table slot; yields :class:`JtEntry`."""
        jt = self.jump_table
        entries = []
        for domain in range(jt.ndomains):
            for index in range(jt.entries_per_domain):
                addr = jt.entry_addr(domain, index)
                try:
                    w0 = self.read_word(addr // 2)
                    w1 = self.read_word(addr // 2 + 1)
                except Exception:
                    entries.append(JtEntry(domain, index, addr, ok=False))
                    continue
                words = (w0, w1)
                try:
                    instr = decode_words(w0, w1)
                except DecodeError:
                    entries.append(JtEntry(domain, index, addr, ok=False,
                                           words=words))
                    continue
                if instr.key != "jmp":
                    entries.append(JtEntry(domain, index, addr, ok=False,
                                           words=words))
                    continue
                entries.append(JtEntry(domain, index, addr,
                                       target=instr.operands[0] * 2,
                                       words=words))
        return entries

    def jt_targets_into(self, region):
        """Jump-table targets landing inside *region* (the addresses a
        cross-domain call can reach — entry roots for reachability)."""
        return sorted({e.target for e in self.jt_entries()
                       if e.target is not None
                       and region.start <= e.target < region.end})
