"""Whole-image static analyzer: CFG + abstract interpretation over
disassembled flash, protection verification, safe-stack bounds,
overhead estimation and dead-code detection, reported through a
stable-rule-code diagnostics engine (``harbor-lint``).

See ``docs/static-analysis.md`` for the architecture and rule catalog.
"""

from repro.analysis.static.analyses import (
    ImageAnalyzer,
    ImageReport,
    StackBoundReport,
    analyze_image,
    lint_system,
)
from repro.analysis.static.cfg import RegionCFG
from repro.analysis.static.concurrency import (
    ConcurrencyAnalysis,
    ConcurrencyReport,
    IsrInfo,
    LatencyReport,
    analyze_region_concurrency,
    find_isr_labels,
    publish_gauges,
    vector_table_isrs,
)
from repro.analysis.static.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticsEngine,
    Rule,
    rule,
    write_report,
)
from repro.analysis.static.elision import (
    PROOF_FAULTING,
    PROOF_IN_DOMAIN,
    PROOF_UNKNOWN,
    ElisionManifest,
    StoreProof,
    StoreProver,
    build_manifest,
    image_checksum,
    runtime_call_models,
    verify_manifest,
)
from repro.analysis.static.image import ImageModel, ModuleRegion
from repro.analysis.static.symexec import (
    CLASS_PURE,
    CLASS_TRANSLATABLE,
    CLASS_UNTRANSLATABLE,
    BlockSummary,
    CallModel,
    ConcreteEnv,
    UnsupportedInstruction,
    block_effect,
    classify_lines,
    effects_equal,
    image_after,
    run_summary,
    summarize,
)
from repro.analysis.static.transval import (
    TranslationReport,
    stub_call_models,
    validate_translation,
)

__all__ = [
    "BlockSummary",
    "CLASS_PURE",
    "CLASS_TRANSLATABLE",
    "CLASS_UNTRANSLATABLE",
    "CallModel",
    "ConcreteEnv",
    "ConcurrencyAnalysis",
    "ConcurrencyReport",
    "Diagnostic",
    "DiagnosticsEngine",
    "ElisionManifest",
    "ImageAnalyzer",
    "ImageModel",
    "ImageReport",
    "IsrInfo",
    "LatencyReport",
    "ModuleRegion",
    "PROOF_FAULTING",
    "PROOF_IN_DOMAIN",
    "PROOF_UNKNOWN",
    "RegionCFG",
    "RULES",
    "Rule",
    "StackBoundReport",
    "StoreProof",
    "StoreProver",
    "TranslationReport",
    "UnsupportedInstruction",
    "analyze_image",
    "analyze_region_concurrency",
    "block_effect",
    "build_manifest",
    "classify_lines",
    "effects_equal",
    "find_isr_labels",
    "image_after",
    "image_checksum",
    "lint_system",
    "publish_gauges",
    "rule",
    "run_summary",
    "stub_call_models",
    "summarize",
    "validate_translation",
    "vector_table_isrs",
]
