"""Whole-image static analyzer: CFG + abstract interpretation over
disassembled flash, protection verification, safe-stack bounds,
overhead estimation and dead-code detection, reported through a
stable-rule-code diagnostics engine (``harbor-lint``).

See ``docs/static-analysis.md`` for the architecture and rule catalog.
"""

from repro.analysis.static.analyses import (
    ImageAnalyzer,
    ImageReport,
    StackBoundReport,
    analyze_image,
    lint_system,
)
from repro.analysis.static.cfg import RegionCFG
from repro.analysis.static.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticsEngine,
    Rule,
    rule,
    write_report,
)
from repro.analysis.static.image import ImageModel, ModuleRegion

__all__ = [
    "Diagnostic",
    "DiagnosticsEngine",
    "ImageAnalyzer",
    "ImageModel",
    "ImageReport",
    "ModuleRegion",
    "RegionCFG",
    "RULES",
    "Rule",
    "StackBoundReport",
    "analyze_image",
    "lint_system",
    "rule",
    "write_report",
]
