"""The four whole-image analyses (tentpole of the static analyzer).

1. **Protection verification** — generalizes the per-module linear
   verifier to the whole image: every cross-domain edge goes through
   ``hb_xdom_call``/jump-table entries, no module-to-module direct
   edges, every ``ret`` path runs the restore stub (checked on the CFG,
   so a branch that lands *on* the ``ret`` and skips the restore call —
   invisible to the linear scan's boolean — is caught), 32-bit
   instruction boundaries respected image-wide, jump-table slots sane.
2. **Call-depth / safe-stack occupancy bounds** — per-domain worst-case
   call depth from the call graph (cycles → HL008), turned into a
   worst-case safe-stack occupancy in bytes over the inter-domain call
   chain, checked against the configured safe-stack region (HL009) and
   cross-checkable against the runtime high-water mark the metrics
   registry records.
3. **Static protection-overhead estimation** — worst-case checked-store
   and cross-domain-transfer counts per CFG path (the static
   counterpart of the Fig. 2–5 runtime measurements).
4. **Dead/unreachable block detection** (HL010).

All results flow through one :class:`~repro.analysis.static.diagnostics.
DiagnosticsEngine`; :func:`analyze_image` is the entry point,
:func:`lint_system` the convenience wrapper over a live system.
"""

from dataclasses import dataclass, field

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import JumpTableFault
from repro.isa.registers import IoReg
from repro.sfi.runtime_asm import RUNTIME_ENTRIES, STORE_STUBS

from repro.analysis.static import absint
from repro.analysis.static.cfg import (
    BRANCH_KEYS,
    CALL_KEYS,
    JUMP_KEYS,
    build_call_graph,
    find_cycles,
    max_call_depth,
    partition_functions,
    static_target,
)
from repro.analysis.static.diagnostics import DiagnosticsEngine
from repro.analysis.static.elision import (
    PROOF_IN_DOMAIN,
    StoreProver,
    runtime_call_models,
    verify_manifest,
)

#: store keys a sandboxed module may not contain raw
STORE_KEYS = frozenset({
    "st_x", "st_xp", "st_mx", "st_yp", "st_my", "st_zp", "st_mz",
    "std_y", "std_z", "sts",
})

#: other keys outside the sandboxed subset
FORBIDDEN_KEYS = frozenset({"ijmp", "icall", "break", "reti", "sleep",
                            "wdr"})

#: flash words that mean "erased / never written" (skip, don't diagnose)
_ERASED_WORDS = frozenset({0xFFFF, 0x0000})

#: paper Table 3, "AVR binary rewrite" column — per-event worst-case
#: cycle overheads used by the static estimator
SFI_EVENT_CYCLES = {
    "checked_store": 65,
    "xdom_call": 65 + 28,       # call side + return side
    "save_restore": 38 + 38,    # per function activation
}

#: cross-domain frame on the safe stack: [prev_dom][sb_lo][sb_hi]
#: [ret_lo][ret_hi] (both systems)
XDOM_FRAME_BYTES = 5

#: bytes a function activation parks on the safe stack: the 2-byte
#: return address (hb_save_ret in SFI, the redirected RET_PUSH on UMPU)
LOCAL_FRAME_BYTES = 2


# =====================================================================
# Result records
# =====================================================================
@dataclass
class DomainBound:
    """Static call-depth / occupancy summary of one domain."""

    domain: int
    regions: list = field(default_factory=list)
    functions: int = 0
    max_depth: int = None        # activations; None = unbounded
    local_bytes: int = None      # frame bytes at max depth
    cycles: list = field(default_factory=list)


@dataclass
class StackBoundReport:
    """Whole-image safe-stack occupancy bound."""

    per_domain: dict = field(default_factory=dict)  # domain -> DomainBound
    edges: list = field(default_factory=list)       # (from, to, label)
    capacity: int = 0
    worst_chain: list = field(default_factory=list)
    bound_bytes: int = None      # None = statically unbounded
    unresolved_sites: int = 0

    def covers(self, measured_bytes):
        """Is the static bound an upper bound on a measured occupancy?"""
        return self.bound_bytes is None or \
            self.bound_bytes >= measured_bytes


@dataclass
class ExportOverhead:
    """Worst-case protection events on any acyclic path of one export."""

    name: str
    checked_stores: int = 0
    xdom_calls: int = 0
    activations: int = 0
    has_loops: bool = False
    #: checked stores on the worst path whose check the prover showed
    #: redundant (elidable): the pre/post-elision delta of the estimate
    provable_stores: int = 0

    @property
    def est_cycles(self):
        return (self.checked_stores * SFI_EVENT_CYCLES["checked_store"] +
                self.xdom_calls * SFI_EVENT_CYCLES["xdom_call"] +
                self.activations * SFI_EVENT_CYCLES["save_restore"])

    @property
    def est_cycles_post(self):
        """The Table-3 estimate after eliding every provable check."""
        return self.est_cycles - \
            self.provable_stores * SFI_EVENT_CYCLES["checked_store"]


@dataclass
class RegionOverhead:
    """Static protection-overhead summary of one module region."""

    region: str
    store_sites: int = 0
    xdom_sites: int = 0
    save_sites: int = 0
    restore_sites: int = 0
    #: check-stub sites proved in-domain-static (elidable)
    provable_sites: int = 0
    #: raw stores already elided under an in-domain proof
    elided_sites: int = 0
    exports: list = field(default_factory=list)   # ExportOverhead


@dataclass
class ImageReport:
    """Everything :func:`analyze_image` produces."""

    diagnostics: DiagnosticsEngine
    stack: StackBoundReport = None
    overhead: list = field(default_factory=list)
    dead_blocks: dict = field(default_factory=dict)
    #: region name -> ConcurrencyReport, for regions with ISRs
    concurrency: dict = field(default_factory=dict)

    def analysis_dict(self):
        """JSON-ready summary of the non-diagnostic results."""
        doc = {"overhead": [], "dead_blocks": {
            name: sorted(blocks) for name, blocks in
            self.dead_blocks.items()}}
        if self.concurrency:
            doc["concurrency"] = {
                name: rep.to_dict()
                for name, rep in sorted(self.concurrency.items())}
        if self.stack is not None:
            doc["stack"] = {
                "capacity_bytes": self.stack.capacity,
                "bound_bytes": self.stack.bound_bytes,
                "worst_chain": list(self.stack.worst_chain),
                "unresolved_sites": self.stack.unresolved_sites,
                "per_domain": {
                    str(d): {"max_depth": b.max_depth,
                             "local_bytes": b.local_bytes,
                             "functions": b.functions,
                             "regions": list(b.regions)}
                    for d, b in sorted(self.stack.per_domain.items())},
            }
        for region in self.overhead:
            doc["overhead"].append({
                "region": region.region,
                "store_sites": region.store_sites,
                "xdom_sites": region.xdom_sites,
                "save_sites": region.save_sites,
                "restore_sites": region.restore_sites,
                "provable_sites": region.provable_sites,
                "elided_sites": region.elided_sites,
                "exports": [{
                    "name": e.name,
                    "checked_stores": e.checked_stores,
                    "xdom_calls": e.xdom_calls,
                    "activations": e.activations,
                    "has_loops": e.has_loops,
                    "est_cycles": e.est_cycles,
                    "provable_stores": e.provable_stores,
                    "est_cycles_post": e.est_cycles_post,
                } for e in region.exports],
            })
        return doc

    def render_analysis(self):
        """Text rendering of bounds + overhead (appended to lint text)."""
        lines = []
        if self.stack is not None:
            stack = self.stack
            lines.append("safe-stack occupancy bound: {} / {} bytes{}"
                         .format("unbounded" if stack.bound_bytes is None
                                 else stack.bound_bytes, stack.capacity,
                                 " (chain: {})".format(
                                     " -> ".join("d{}".format(d) for d
                                                 in stack.worst_chain))
                                 if stack.worst_chain else ""))
            for domain, bound in sorted(stack.per_domain.items()):
                lines.append(
                    "  domain {}: {} function(s), depth {}, {} bytes "
                    "local [{}]".format(
                        domain, bound.functions,
                        "unbounded" if bound.max_depth is None
                        else bound.max_depth,
                        "?" if bound.local_bytes is None
                        else bound.local_bytes,
                        ", ".join(bound.regions)))
        for _name, rep in sorted(self.concurrency.items()):
            lines.append(rep.render())
        for region in self.overhead:
            lines.append(
                "overhead {}: {} checked-store site(s), {} xdom site(s), "
                "{} save / {} restore; {} provably-safe check(s), "
                "{} already elided".format(
                    region.region, region.store_sites, region.xdom_sites,
                    region.save_sites, region.restore_sites,
                    region.provable_sites, region.elided_sites))
            for export in region.exports:
                lines.append(
                    "  export {}: worst path {} checked store(s), "
                    "{} xdom call(s), {} activation(s){} "
                    "(~{} overhead cycles, ~{} post-elision)".format(
                        export.name, export.checked_stores,
                        export.xdom_calls, export.activations,
                        " [loops elided]" if export.has_loops else "",
                        export.est_cycles, export.est_cycles_post))
        return "\n".join(lines)


# =====================================================================
# The analyzer
# =====================================================================
class ImageAnalyzer:
    """Runs the four analyses over an :class:`ImageModel`."""

    def __init__(self, model, latency_budget=None):
        self.model = model
        self.latency_budget = latency_budget
        self.diags = DiagnosticsEngine()
        self.symbols_by_addr = model.symbols_by_addr()
        syms = model.symbols
        self.runtime_entry_addrs = {
            syms[name] for name in RUNTIME_ENTRIES if name in syms}
        self.restore_addr = syms.get("hb_restore_ret")
        self.xdom_addr = syms.get("hb_xdom_call")
        self.store_stub_addrs = {
            syms[name] for name in
            list(STORE_STUBS.values()) + ["hb_st_sts"] if name in syms}
        self.save_addr = syms.get("hb_save_ret")
        # runtime entries a module may legitimately target; the UMPU
        # system additionally allows any call into the trusted region
        self.callable_runtime = set(self.runtime_entry_addrs)
        if model.runtime is not None:
            self.callable_runtime.update(model.runtime.entries.values())
        #: cross-domain edges discovered while scanning: (from_domain,
        #: to_domain, site_addr)
        self.xdom_edges = []
        self.unresolved_sites = 0
        #: absint models of the runtime stubs' pointer side effects
        self.call_models = runtime_call_models(syms)
        self._proofs = {}          # region name -> {pc: StoreProof}

    def _region_entries(self, region):
        """Addresses execution can enter the region at (exports plus
        jump-table targets) — absint/prover fixpoint seeds."""
        return sorted(set(region.entries.values()) |
                      set(self.model.jt_targets_into(region)))

    def region_proofs(self, region):
        """(Cached) :class:`StoreProver` classification of every store
        site in an SFI region."""
        proofs = self._proofs.get(region.name)
        if proofs is None:
            prover = StoreProver(self.model.layout, self.model.symbols,
                                 region.domain)
            proofs = prover.prove_cfg(self.model.cfg_for(region),
                                      entries=self._region_entries(region))
            self._proofs[region.name] = proofs
        return proofs

    def _name(self, byte_addr):
        return self.symbols_by_addr.get(
            byte_addr, "0x{:04x}".format(byte_addr))

    # ------------------------------------------------------------------
    def run(self, dead_code=True):
        report = ImageReport(diagnostics=self.diags)
        for region in self.model.modules:
            if region.policy == "sfi":
                self._check_sfi_region(region)
            else:
                self._check_umpu_region(region)
            if dead_code:
                dead = self._dead_blocks(region)
                if dead:
                    report.dead_blocks[region.name] = dead
            if region.policy == "sfi":
                report.overhead.append(self._overhead(region))
        self._check_jump_table()
        report.stack = self._stack_bounds()
        # Analysis 5: interrupt-aware concurrency, for any region that
        # declares interrupt handlers (no existing system image does by
        # default, so lint output is unchanged without ISRs).
        from repro.analysis.static.concurrency import (
            analyze_region_concurrency,
        )
        for region in self.model.regions:
            isrs = self.model.isr_handlers(region)
            if not isrs:
                continue
            report.concurrency[region.name] = analyze_region_concurrency(
                self.model, region, engine=self.diags,
                budget=self.latency_budget, isrs=isrs,
                call_models=self.call_models)
        return report

    # ------------------------------------------------------------------
    # Analysis 1: whole-image protection verification
    # ------------------------------------------------------------------
    def _check_sfi_region(self, region):
        model = self.model
        cfg = model.cfg_for(region)
        for addr in cfg.undecodable:
            self.diags.emit(
                "HL011", "flash word does not decode", byte_addr=addr,
                region=region.name, domain=region.domain)
        for target, source in cfg.bad_targets:
            self.diags.emit(
                "HL004",
                "control transfer into the middle of an instruction "
                "(target 0x{:04x})".format(target),
                byte_addr=source, region=region.name, domain=region.domain)
        entry_states = {a: {} for a in self._region_entries(region)
                        if a in cfg.blocks}
        in_states = absint.analyze_cfg(cfg, entry_states=entry_states
                                       or None,
                                       call_models=self.call_models)
        manifest_sites = self._check_manifest(region, cfg)
        # internal branch/jump/skip targets: a ret reached this way must
        # still be preceded by the restore stub on *that* path
        branched_to = set()
        for block in cfg.blocks.values():
            if block.terminator in ("jump", "branch", "skip"):
                branched_to.update(block.succs)
        prev_line = {}
        previous = None
        for line in cfg.lines:
            prev_line[line.byte_addr] = previous
            previous = line
        for block in cfg.blocks.values():
            state = dict(in_states.get(block.start) or {})
            for line in block.lines:
                if line.instr is not None:
                    self._check_sfi_line(region, cfg, line, state,
                                         prev_line, branched_to,
                                         manifest_sites)
                absint.transfer(state, line, self.call_models)

    def _check_manifest(self, region, cfg):
        """Validate the region's elision manifest (if it carries one)
        against the live flash; returns ``{pc: site}`` of the admitted
        raw-store sites (empty when absent or rejected — rejection emits
        HL014 per problem and *every* raw store reverts to HL001)."""
        manifest = getattr(region, "manifest", None)
        if manifest is None:
            return {}
        problems = verify_manifest(
            self.model.read_word, self.model.layout, self.model.symbols,
            manifest, entries=self._region_entries(region),
            proofs=self.region_proofs(region), cfg=cfg)
        for message, byte_addr in problems:
            self.diags.emit("HL014", message, byte_addr=byte_addr,
                            region=region.name, domain=region.domain)
        if problems:
            return {}
        return {site.pc: site for site in manifest.sites}

    def _check_sfi_line(self, region, cfg, line, state, prev_line,
                        branched_to, manifest_sites):
        key = line.instr.key
        addr = line.byte_addr
        diags = self.diags
        if key in STORE_KEYS:
            site = manifest_sites.get(addr)
            if site is not None and site.key == key:
                pass   # proof-carrying raw store: manifest re-proved it
            else:
                diags.emit(
                    "HL001",
                    "raw store ({}) not routed through a check stub{}"
                    .format(line.text,
                            self._store_target_note(line, state)),
                    byte_addr=addr, region=region.name,
                    domain=region.domain)
        elif key in FORBIDDEN_KEYS:
            diags.emit(
                "HL005", "forbidden instruction {!r}".format(key),
                byte_addr=addr, region=region.name, domain=region.domain)
        self._check_io(region, line)
        if key in CALL_KEYS:
            target = static_target(line)
            self._check_call_target(region, line, target, state)
        elif key in JUMP_KEYS or key in BRANCH_KEYS:
            target = static_target(line)
            if not region.start <= target < region.end:
                self._escape(region, line, target, transfer="jump"
                             if key in JUMP_KEYS else "branch")
        elif key == "ret":
            before = prev_line.get(addr)
            restored = (
                before is not None and before.instr is not None and
                before.instr.key in ("call", "rcall") and
                static_target(before) == self.restore_addr)
            if not restored:
                diags.emit(
                    "HL003",
                    "ret not preceded by call hb_restore_ret",
                    byte_addr=addr, region=region.name,
                    domain=region.domain)
            elif addr in branched_to:
                # the linear pair exists, but a branch lands on the ret
                # itself and skips the restore call — invisible to the
                # linear verifier's one-boolean state
                diags.emit(
                    "HL003",
                    "a control transfer reaches this ret without running "
                    "the restore stub", byte_addr=addr,
                    region=region.name, domain=region.domain)

    def _store_target_note(self, line, state):
        modes = line.instr.spec.modes
        value = None
        if line.instr.key == "sts":
            value = line.instr.operands[0]
        elif modes.get("ptr"):
            lo_reg = {"X": 26, "Y": 28, "Z": 30}[modes["ptr"]]
            value = absint.get_pair(state, lo_reg)
        label = absint.classify_data_address(self.model.layout, value)
        if label == "unknown":
            return ""
        if isinstance(value, int):
            return " targeting {} (0x{:04x})".format(label, value)
        return " targeting {}".format(label)

    def _check_call_target(self, region, line, target, state):
        model = self.model
        addr = line.byte_addr
        if target in self.callable_runtime:
            if target == self.xdom_addr:
                self._record_xdom(region, line, state)
            return
        if region.start <= target < region.end:
            return
        if model.jump_table.contains(target):
            try:
                domain, _index = model.jump_table.classify(target)
                note = " into domain {}'s page".format(domain)
            except JumpTableFault:
                note = ""
            self.diags.emit(
                "HL002",
                "direct call into the jump table{} bypasses hb_xdom_call "
                "(target {})".format(note, self._name(target)),
                byte_addr=addr, region=region.name, domain=region.domain)
            return
        other = model.region_of(target)
        if other is not None and other.name != region.name and \
                other.policy != "trusted":
            self.diags.emit(
                "HL002",
                "direct module-to-module call (target {} in {})".format(
                    self._name(target), other.name),
                byte_addr=addr, region=region.name, domain=region.domain)
            return
        self._escape(region, line, target, transfer="call")

    def _escape(self, region, line, target, transfer):
        self.diags.emit(
            "HL006",
            "{} escapes the sandbox (target {})".format(
                transfer, self._name(target)),
            byte_addr=line.byte_addr, region=region.name,
            domain=region.domain)

    def _check_io(self, region, line):
        key = line.instr.key
        if key == "out":
            io = line.instr.operands[0]
            if io in (IoReg.SPL, IoReg.SPH, IoReg.SREG) or \
                    io in IoReg.UMPU_REGISTERS:
                what = "protected"
            elif io not in self.model.allowed_io:
                what = "unapproved"
            else:
                return
            self.diags.emit(
                "HL007",
                "write to {} I/O register 0x{:02x}".format(what, io),
                byte_addr=line.byte_addr, region=region.name,
                domain=region.domain)
        elif key in ("sbi", "cbi"):
            io = line.instr.operands[0]
            if io not in self.model.allowed_io:
                self.diags.emit(
                    "HL007",
                    "bit write to unapproved I/O register 0x{:02x}"
                    .format(io), byte_addr=line.byte_addr,
                    region=region.name, domain=region.domain)

    def _record_xdom(self, region, line, state):
        """Resolve Z at a ``call hb_xdom_call`` site through the jump
        table (the rewriter materializes it with an ldi pair)."""
        z = absint.get_pair(state, 30)
        model = self.model
        if isinstance(z, int):
            entry_byte = z * 2
            try:
                domain, _index = model.jump_table.classify(entry_byte)
            except JumpTableFault:
                self.diags.emit(
                    "HL002",
                    "hb_xdom_call with Z outside the jump table "
                    "(0x{:04x})".format(entry_byte),
                    byte_addr=line.byte_addr, region=region.name,
                    domain=region.domain)
                return
            self.xdom_edges.append((region.domain, domain,
                                    line.byte_addr))
            return
        self.unresolved_sites += 1
        self.diags.emit(
            "HL012",
            "hb_xdom_call target not statically resolvable "
            "(Z unknown); assuming any domain",
            byte_addr=line.byte_addr, region=region.name,
            domain=region.domain)
        self.xdom_edges.append((region.domain, None, line.byte_addr))

    # ------------------------------------------------------------------
    def _check_umpu_region(self, region):
        """Unrewritten module on the hardware system: raw stores are
        legal (the MMC checks them at run time); static checks cover
        control-flow discipline only."""
        model = self.model
        cfg = model.cfg_for(region)
        for target, source in cfg.bad_targets:
            self.diags.emit(
                "HL004",
                "control transfer into the middle of an instruction "
                "(target 0x{:04x})".format(target),
                byte_addr=source, region=region.name, domain=region.domain)
        for block in cfg.blocks.values():
            for line in block.lines:
                if line.instr is None:
                    continue
                if line.instr.key in CALL_KEYS:
                    target = static_target(line)
                    if region.start <= target < region.end or \
                            model.jump_table.contains(target) or \
                            target in self.callable_runtime:
                        if model.jump_table.contains(target):
                            try:
                                domain, _i = model.jump_table.classify(
                                    target)
                                self.xdom_edges.append(
                                    (region.domain, domain,
                                     line.byte_addr))
                            except JumpTableFault:
                                pass
                        continue
                    other = model.region_of(target)
                    if other is not None and other.name != region.name \
                            and other.policy != "trusted":
                        self.diags.emit(
                            "HL002",
                            "direct module-to-module call (target {} in "
                            "{})".format(self._name(target), other.name),
                            byte_addr=line.byte_addr, region=region.name,
                            domain=region.domain)
                elif line.instr.key == "icall":
                    self.xdom_edges.append(
                        (region.domain, None, line.byte_addr))
                    self.unresolved_sites += 1

    # ------------------------------------------------------------------
    # Jump-table verification
    # ------------------------------------------------------------------
    def _check_jump_table(self):
        model = self.model
        for entry in model.jt_entries():
            if not entry.ok:
                if entry.words and all(w in _ERASED_WORDS
                                       for w in entry.words):
                    continue   # never-linked slot (erased flash)
                self.diags.emit(
                    "HL013",
                    "jump-table slot d{}[{}] does not decode to a jmp"
                    .format(entry.domain, entry.index),
                    byte_addr=entry.addr)
                continue
            target = entry.target
            region = model.region_of(target)
            if region is None:
                self.diags.emit(
                    "HL013",
                    "jump-table slot d{}[{}] targets 0x{:04x} outside "
                    "every code region".format(entry.domain, entry.index,
                                               target),
                    byte_addr=entry.addr)
            elif region.policy != "trusted" and \
                    region.domain != entry.domain:
                self.diags.emit(
                    "HL013",
                    "jump-table slot d{}[{}] targets {} owned by domain "
                    "{}".format(entry.domain, entry.index,
                                self._name(target), region.domain),
                    byte_addr=entry.addr)

    # ------------------------------------------------------------------
    # Analysis 2: call depth and safe-stack occupancy bounds
    # ------------------------------------------------------------------
    def _region_depth(self, region):
        """(functions, max_depth|None, cycles) of one region."""
        cfg = self.model.cfg_for(region)
        roots = set(region.entries.values())
        roots.update(self.model.jt_targets_into(region))
        functions = partition_functions(cfg, roots)
        graph = build_call_graph(functions)
        cycles = find_cycles(graph)
        cyclic = {node for scc in cycles for node in scc}
        if not roots:
            roots = set(functions)
        depth = 0
        for root in sorted(roots):
            if root not in functions:
                continue
            d = max_call_depth(graph, root, cyclic)
            if d is None:
                return len(functions), None, cycles
            depth = max(depth, d)
        return len(functions), max(depth, 1), cycles

    def _stack_bounds(self):
        model = self.model
        report = StackBoundReport(
            capacity=(model.layout.safe_stack_limit -
                      model.layout.safe_stack_base),
            unresolved_sites=self.unresolved_sites)
        # group regions by domain; the runtime is the trusted domain
        regions_by_domain = {}
        for region in model.regions:
            domain = TRUSTED_DOMAIN if region.policy == "trusted" \
                else region.domain
            regions_by_domain.setdefault(domain, []).append(region)
        for domain, regions in sorted(regions_by_domain.items()):
            bound = DomainBound(domain=domain,
                                regions=[r.name for r in regions])
            depths = []
            unbounded = False
            for region in regions:
                nfun, depth, cycles = self._region_depth(region)
                bound.functions += nfun
                for scc in cycles:
                    names = ", ".join(self._name(a) for a in scc)
                    bound.cycles.append(names)
                    self.diags.emit(
                        "HL008",
                        "call-graph cycle ({}): static call depth is "
                        "unbounded".format(names),
                        byte_addr=min(scc), region=region.name,
                        domain=region.domain)
                if depth is None:
                    unbounded = True
                else:
                    depths.append(depth)
            bound.max_depth = None if unbounded else max(depths or [1])
            frames_on_safe_stack = (
                model.mode == "umpu" or domain != TRUSTED_DOMAIN)
            if bound.max_depth is None:
                bound.local_bytes = None
            elif frames_on_safe_stack:
                bound.local_bytes = LOCAL_FRAME_BYTES * bound.max_depth
            else:
                # SFI trusted code runs on the run-time stack; only the
                # modules' hb_save_ret frames land on the safe stack
                bound.local_bytes = 0
            report.per_domain[domain] = bound
        # a chain hop into the trusted domain lands in a kernel service
        # exported through the trusted jump-table page; those are
        # terminal unless the runtime code reachable from that page
        # itself re-dispatches (icall/ijmp or a call to hb_xdom_call) —
        # check that statically rather than assume it
        if model.runtime is not None and self._trusted_redispatches():
            self.xdom_edges.append(
                (TRUSTED_DOMAIN, None,
                 self.xdom_addr if self.xdom_addr is not None
                 else model.runtime.start))
        self._chain_bound(report, regions_by_domain)
        if report.bound_bytes is None:
            self.diags.emit(
                "HL009",
                "worst-case safe-stack occupancy is statically unbounded "
                "(recursion in the call or domain graph)")
        elif report.bound_bytes > report.capacity:
            self.diags.emit(
                "HL009",
                "worst-case safe-stack occupancy {} bytes exceeds the "
                "{}-byte safe-stack region".format(report.bound_bytes,
                                                   report.capacity))
        return report

    def _trusted_redispatches(self):
        """Does runtime code reachable from the trusted jump-table page
        perform a further cross-domain dispatch?  (The dispatcher's own
        icall in ``hb_xdom_call``/``hb_dispatch`` is *not* reachable
        from the service entries, so a clean image answers no and hops
        into the trusted domain are terminal.)"""
        model = self.model
        cfg = model.cfg_for(model.runtime)
        roots = set(model.jt_targets_into(model.runtime))
        roots &= set(cfg.blocks)
        if not roots:
            return False
        for block_start in cfg.reachable_from(roots):
            block = cfg.blocks.get(block_start)
            if block is None:
                continue
            for line in block.lines:
                if line.instr is None:
                    continue
                key = line.instr.key
                if key in ("icall", "ijmp"):
                    return True
                if key in CALL_KEYS and \
                        static_target(line) == self.xdom_addr:
                    return True
        return False

    def _chain_bound(self, report, regions_by_domain):
        """Longest inter-domain chain.  Every chain starts with the
        kernel dispatching into some domain (one cross-domain frame +
        that domain's local frames); each further hop adds another
        cross-domain frame plus the callee domain's local frames."""
        domains = sorted(regions_by_domain)
        edges = {}
        for src, dst, site in self.xdom_edges:
            targets = [dst] if dst is not None else \
                [d for d in domains if d != src]
            for target in targets:
                if target in regions_by_domain:
                    edges.setdefault(src, set()).add(target)
                    label = self._name(site)
                    report.edges.append((src, target, label))
        if any(bound.local_bytes is None
               for bound in report.per_domain.values()):
            report.bound_bytes = None
            return

        def local(domain):
            return report.per_domain[domain].local_bytes

        best = {"bytes": -1, "chain": []}

        def walk(domain, visited, total, chain):
            if best["bytes"] is None:
                return
            if total > best["bytes"]:
                best["bytes"] = total
                best["chain"] = list(chain)
            for succ in sorted(edges.get(domain, ())):
                if succ in visited:
                    # a cross-domain cycle: unbounded nesting is
                    # possible (each round trip pushes fresh frames),
                    # so give up soundly
                    best["bytes"] = None
                    return
                walk(succ, visited | {succ},
                     total + XDOM_FRAME_BYTES + local(succ),
                     chain + [succ])
                if best["bytes"] is None:
                    return

        for start in domains:
            walk(start, {start}, XDOM_FRAME_BYTES + local(start), [start])
            if best["bytes"] is None:
                report.bound_bytes = None
                report.worst_chain = []
                return
        report.bound_bytes = max(best["bytes"], 0)
        report.worst_chain = best["chain"]

    # ------------------------------------------------------------------
    # Analysis 3: static protection-overhead estimation
    # ------------------------------------------------------------------
    def _overhead(self, region):
        cfg = self.model.cfg_for(region)
        over = RegionOverhead(region=region.name)
        proofs = self.region_proofs(region)
        provable = set()
        for pc, proof in proofs.items():
            if proof.kind != PROOF_IN_DOMAIN:
                continue
            if proof.key.startswith("stub:"):
                over.provable_sites += 1
                provable.add(pc)
            else:
                over.elided_sites += 1
        for site in cfg.calls:
            if site.target in self.store_stub_addrs:
                over.store_sites += 1
            elif site.target == self.xdom_addr:
                over.xdom_sites += 1
            elif site.target == self.save_addr:
                over.save_sites += 1
            elif site.target == self.restore_addr:
                over.restore_sites += 1
        roots = dict(region.entries)
        functions = partition_functions(
            cfg, set(roots.values()) |
            set(self.model.jt_targets_into(region)))
        graph = build_call_graph(functions)
        cyclic = {n for scc in find_cycles(graph) for n in scc}
        memo = {}
        for name, entry in sorted(roots.items()):
            stores, prov, xdoms, acts, loops = self._worst_path(
                cfg, functions, graph, cyclic, entry, memo, provable)
            over.exports.append(ExportOverhead(
                name=name, checked_stores=stores, provable_stores=prov,
                xdom_calls=xdoms, activations=acts, has_loops=loops))
        return over

    def _worst_path(self, cfg, functions, graph, cyclic, entry, memo,
                    provable=frozenset()):
        """Worst-case (checked stores, provable stores, xdom calls,
        activations, loops?) over any acyclic CFG path of the function
        at *entry*, callee totals included (memoized; call-graph cycles
        contribute their own HL008 and are skipped here).  *provable*
        holds the byte addresses of check-stub sites the prover showed
        elidable."""
        if entry in memo:
            return memo[entry]
        if entry in cyclic or entry not in functions:
            memo[entry] = (0, 0, 0, 1, True)
            return memo[entry]
        memo[entry] = (0, 0, 0, 1, True)   # placeholder for safety
        info = functions[entry]
        sites_by_block = {}
        for site in info.calls:
            sites_by_block.setdefault(site.block, []).append(site)
        visited = set()
        loops = [False]

        def block_weight(block_start):
            stores = prov = xdoms = acts = 0
            for site in sites_by_block.get(block_start, ()):
                if site.target in self.store_stub_addrs:
                    stores += 1
                    if site.byte_addr in provable:
                        prov += 1
                elif site.target == self.xdom_addr:
                    xdoms += 1
                elif site.target in functions:
                    sub = self._worst_path(cfg, functions, graph, cyclic,
                                           site.target, memo, provable)
                    stores += sub[0]
                    prov += sub[1]
                    xdoms += sub[2]
                    acts += sub[3]
                    loops[0] = loops[0] or sub[4]
            return stores, prov, xdoms, acts

        block_memo = {}

        def walk(block_start):
            if block_start in block_memo:
                return block_memo[block_start]
            if block_start in visited:
                loops[0] = True         # back edge: elide the cycle
                return (0, 0, 0, 0)
            block = cfg.blocks.get(block_start)
            if block is None or block_start not in info.blocks:
                return (0, 0, 0, 0)
            visited.add(block_start)
            stores, prov, xdoms, acts = block_weight(block_start)
            best = (0, 0, 0, 0)
            for succ in block.succs:
                sub = walk(succ)
                if sub > best:
                    best = sub
            visited.discard(block_start)
            result = (stores + best[0], prov + best[1], xdoms + best[2],
                      acts + best[3])
            block_memo[block_start] = result
            return result

        stores, prov, xdoms, acts = walk(entry)
        memo[entry] = (stores, prov, xdoms, acts + 1, loops[0])
        return memo[entry]

    # ------------------------------------------------------------------
    # Analysis 4: dead code
    # ------------------------------------------------------------------
    def _dead_blocks(self, region):
        if region.policy != "sfi":
            return []
        cfg = self.model.cfg_for(region)
        roots = set(region.entries.values())
        roots.update(self.model.jt_targets_into(region))
        if not roots:
            roots = {region.start}
        reachable = cfg.reachable_from(roots)
        dead = []
        for start in sorted(cfg.blocks):
            if start in reachable:
                continue
            block = cfg.blocks[start]
            if all(line.instr is None and line.words[0] in _ERASED_WORDS
                   for line in block.lines):
                continue   # padding, not code
            dead.append(start)
            self.diags.emit(
                "HL010",
                "basic block unreachable from any export or jump-table "
                "entry ({} instruction(s))".format(len(block.lines)),
                byte_addr=start, region=region.name, domain=region.domain)
        return dead


# =====================================================================
# Entry points
# =====================================================================
def analyze_image(model, dead_code=True, latency_budget=None):
    """Run all analyses; returns an :class:`ImageReport`."""
    return ImageAnalyzer(model, latency_budget=latency_budget).run(
        dead_code=dead_code)


def lint_system(system, dead_code=True, extra_modules=()):
    """Model and analyze a live SfiSystem/UmpuSystem; returns
    ``(ImageModel, ImageReport)``."""
    from repro.analysis.static.image import ImageModel
    model = ImageModel.from_system(system, extra_modules=extra_modules)
    return model, analyze_image(model, dead_code=dead_code)
