"""Micro-benchmark measurement harness (paper Tables 3 and 4).

Measures the CPU-cycle overhead of every protection routine on both
systems:

* **AVR extension** (UMPU): cycles the hardware units add, measured by
  running the same binary with the units enabled and disabled;
* **AVR binary rewrite** (SFI): cycles of the runtime check routines
  plus the module-side marshaling the rewriter emits, measured with a
  step-level PC/cycle trace between marker labels that the rewriter's
  address map translates to the rewritten image.

All numbers are *overheads relative to the unprotected instruction*
(a 2-cycle ``st``, a 4-cycle ``call``, a 4-cycle ``ret``), which is what
the paper tabulates.
"""

from dataclasses import dataclass

from repro.asm import assemble
from repro.sfi.system import SfiSystem
from repro.sim.machine import CALL_SENTINEL_WORD
from repro.umpu import HarborLayout, UmpuMachine

#: Paper Table 3 (cycles): routine -> (AVR extension, binary rewrite).
PAPER_TABLE3 = {
    "Memmap Checker": (1, 65),
    "Cross Domain Call": (5, 65),
    "Cross Domain Ret": (5, 28),
    "Save Ret Addr": (0, 38),
    "Restore Ret Addr": (0, 38),
}

#: Paper Table 4 (cycles): routine -> (normal, protected).
PAPER_TABLE4 = {
    "malloc": (343, 610),
    "free": (138, 425),
    "change_own": (55, 365),
}


@dataclass(frozen=True)
class StepRecord:
    pc_byte: int
    cycles: int


def step_trace(machine, target, args=(), max_steps=100000):
    """Run subroutine *target* one step at a time; returns (pc, cycles)
    records for every executed instruction."""
    machine.set_args(*args)
    machine.core.push_return_address(CALL_SENTINEL_WORD)
    machine.core.pc = machine.resolve(target) // 2
    records = []
    for _ in range(max_steps):
        if machine.core.pc == CALL_SENTINEL_WORD or machine.core.halted:
            return records
        pc = machine.core.pc * 2
        cycles = machine.core.step()
        records.append(StepRecord(pc, cycles))
    raise RuntimeError("step trace did not terminate")


def window_cycles(records, start_byte, end_byte):
    """Cycles from the first execution at *start_byte* up to (not
    including) the first later execution at *end_byte*."""
    total = 0
    active = False
    for rec in records:
        if not active and rec.pc_byte == start_byte:
            active = True
        elif active and rec.pc_byte == end_byte:
            return total
        if active:
            total += rec.cycles
    raise ValueError("window [{:#x}, {:#x}) not found in trace".format(
        start_byte, end_byte))


# =====================================================================
# UMPU measurements (Table 3, "AVR Extension")
# =====================================================================
_UMPU_BENCH_SRC = """
store_fn:                   ; sts into the probe address
    sts {probe:#x}, r18
    ret
local_fn:
    ret
local_call_fn:              ; a plain call/ret pair
    call local_fn
    ret
xcall_fn:                   ; a cross-domain call through the jump table
m_xcall:
    call {jt_entry:#x}
m_after_call:
    ret
.org {jt_entry:#x}
    jmp remote_fn
.org {module_code:#x}
remote_fn:
    ret
"""


def build_umpu_bench(layout=None):
    """An UmpuMachine set up for the Table 3 measurements."""
    layout = layout or HarborLayout()
    probe = layout.prot_bottom + 0x40
    jt_entry = layout.jt_base + 1 * 512  # domain 1's first entry
    src = _UMPU_BENCH_SRC.format(probe=probe, jt_entry=jt_entry,
                                 module_code=layout.jt_base + 8 * 512)
    machine = UmpuMachine(assemble(src, "umpu_bench"), layout=layout)
    machine.memmap.set_segment(probe, 8, 0)  # domain 0 owns the probe
    machine.tracker.register_code_region(0, 0, layout.jt_base)
    machine.tracker.register_code_region(1, layout.jt_base + 8 * 512,
                                         layout.jt_base + 9 * 512)
    return machine, probe, jt_entry


def measure_umpu():
    """Table 3, 'AVR Extension' column (measured)."""
    machine, _probe, _jt = build_umpu_bench()
    syms = machine.program.symbols

    # -- memmap checker: store by an untrusted domain vs MMC disabled
    machine.enter_domain(0)
    protected = machine.call("store_fn")
    with machine.protection_disabled():
        machine.reset()
        baseline = machine.call("store_fn")
    checker = protected - baseline

    # -- cross-domain call/ret: step trace through the jump table
    machine.reset()
    machine.enter_trusted()
    records = step_trace(machine, "xcall_fn")
    call_side = window_cycles(records, syms["m_xcall"], syms["remote_fn"])
    ret_side = window_cycles(records, syms["remote_fn"],
                             syms["m_after_call"])
    machine.reset()
    machine.enter_trusted()
    base = step_trace(machine, "local_call_fn")
    base_call = window_cycles(base, syms["local_call_fn"],
                              syms["local_fn"])
    base_ret = window_cycles(base, syms["local_fn"],
                             syms["local_call_fn"] + 4)

    # -- save/restore ret addr: plain call/ret pair with units on vs off
    machine.reset()
    machine.enter_trusted()
    pair_on = machine.call("local_call_fn")
    with machine.protection_disabled():
        machine.reset()
        pair_off = machine.call("local_call_fn")
    save_restore = pair_on - pair_off  # expected 0

    return {
        "Memmap Checker": checker,
        "Cross Domain Call": call_side - base_call,
        "Cross Domain Ret": ret_side - base_ret,
        "Save Ret Addr": save_restore,
        "Restore Ret Addr": save_restore,
    }


# =====================================================================
# SFI measurements (Table 3, "AVR Binary Rewrite")
# =====================================================================
_SFI_MODULE_SRC = """
do_store:                   ; one store, value not in r18 (typical case)
    movw r26, r24
m_st_begin:
    st X, r22
m_st_end:
    ret
do_xcall:                   ; one cross-domain call to the kernel noop
    nop
m_x_begin:
    call {KERNEL_NOOP:#x}
m_x_end:
    ret
leaf_fn:                    ; pure call/ret (prologue/epilogue only)
    nop
m_leaf_ret:
    ret
"""


def build_sfi_bench():
    """An SfiSystem with the measurement module loaded; returns
    (system, module record, rewritten symbol table)."""
    system = SfiSystem()
    src = _SFI_MODULE_SRC.format(**system.kernel_symbols())
    program = assemble(src, "bench_mod")
    module = system.load_module(
        program, "bench_mod", exports=("do_store", "do_xcall", "leaf_fn"))
    # re-run the (deterministic) rewriter to obtain the translated
    # marker symbols of the loaded image
    rewritten = system.rewriter.rewrite(
        program, module.start, exports=("do_store", "do_xcall", "leaf_fn"))
    return system, module, rewritten.program.symbols


def measure_sfi():
    """Table 3, 'AVR Binary Rewrite' column (measured)."""
    system, module, syms = build_sfi_bench()
    machine = system.machine
    rt = system.runtime.symbols
    probe = system.malloc(8, domain=module.domain)

    def as_module():
        machine.memory.write_data(system.layout.cur_dom, module.domain)

    # -- memmap checker: the whole rewritten store sequence vs native st
    as_module()
    records = step_trace(machine, syms["do_store"],
                         args=(probe, ("u8", 0x42)))
    checker = window_cycles(records, syms["m_st_begin"],
                            syms["m_st_end"]) - 2
    # decomposition: cycles spent inside hb_check_x's body (what an
    # inlined check would still pay) vs call/marshal overhead
    body_lo = rt["hb_check_x"]
    body_hi = rt["hb_st_x"]
    measure_sfi.checker_body = sum(
        r.cycles for r in records if body_lo <= r.pc_byte < body_hi)
    measure_sfi.checker_dispatch = checker - measure_sfi.checker_body

    # -- cross-domain call/ret via hb_xdom_call to the kernel noop
    system.boot()
    as_module()
    records = step_trace(machine, syms["do_xcall"])
    call_side = window_cycles(records, syms["m_x_begin"],
                              rt["hb_noop"]) - 4
    ret_side = window_cycles(records, rt["hb_noop"], syms["m_x_end"]) - 4

    # -- save/restore stubs: prologue/epilogue of the leaf function
    system.boot()
    as_module()
    records = step_trace(machine, syms["leaf_fn"])
    # prologue window includes the separating nop (1 cycle)
    save = window_cycles(records, syms["leaf_fn"],
                         syms["m_leaf_ret"]) - 1
    total_fn = sum(r.cycles for r in records)
    # epilogue = everything after the nop, minus the final 4-cycle ret
    restore = total_fn - (save + 1) - 4

    return {
        "Memmap Checker": checker,
        "Cross Domain Call": call_side,
        "Cross Domain Ret": ret_side,
        "Save Ret Addr": save,
        "Restore Ret Addr": restore,
    }


def measure_table3():
    """Both columns of Table 3, measured."""
    umpu = measure_umpu()
    sfi = measure_sfi()
    return {name: (umpu[name], sfi[name]) for name in PAPER_TABLE3}


def attribution_breakdown(iterations=16):
    """Run the Table-3 UMPU workload with the observability layer on.

    Drives checked stores (domain 0) and cross-domain call/ret pairs
    (trusted -> domain 1) *iterations* times with a
    :class:`repro.trace.DomainProfiler` and :class:`repro.trace.
    TraceSink` attached, asserts the attribution balances against the
    core's cycle counter, and returns ``(machine, profiler, sink)``.
    Used by ``benchmarks/run_all.py --attribution`` and the
    observability docs/tests.
    """
    from repro.trace import install_profiler, install_tracing

    machine, _probe, _jt = build_umpu_bench()
    sink = install_tracing(machine)
    profiler = install_profiler(machine)
    for _ in range(iterations):
        machine.enter_domain(0)
        machine.call("store_fn")
        machine.enter_trusted()
        machine.call("xcall_fn")
    profiler.assert_balanced(machine.core)
    return machine, profiler, sink


# =====================================================================
# Table 4: the dynamic-memory library
# =====================================================================
def measure_table4(alloc_bytes=16, warmup_allocs=4):
    """Cycles of malloc/free/change_own, normal vs protected.

    *warmup_allocs* populates the heap first so the free list walk is
    non-trivial (a fresh heap would flatter malloc).
    """
    system = SfiSystem()
    machine = system.machine

    def measure(variant):
        system.boot()
        held = []
        for _ in range(warmup_allocs):
            machine.call("hb_malloc" if variant == "protected"
                         else "malloc_unprot", alloc_bytes)
            held.append(machine.result16())
        if variant == "protected":
            m_cycles = machine.call("hb_malloc", alloc_bytes)
            ptr = machine.result16()
            c_cycles = machine.call("hb_change_own", ptr, ("u8", 2))
            f_cycles = machine.call("hb_free", ptr)
        else:
            m_cycles = machine.call("malloc_unprot", alloc_bytes)
            ptr = machine.result16()
            c_cycles = machine.call("chown_unprot", ptr, ("u8", 2))
            f_cycles = machine.call("free_unprot", ptr)
        assert ptr, "allocation failed during measurement"
        return m_cycles, f_cycles, c_cycles

    nm, nf, nc = measure("normal")
    pm, pf, pc = measure("protected")
    return {
        "malloc": (nm, pm),
        "free": (nf, pf),
        "change_own": (nc, pc),
    }
