"""AVR instruction-set definition: geometry, opcodes, binary encoding.

This subpackage is a self-contained description of the subset of the AVR
(ATmega103-class) instruction set used throughout the reproduction.  It
knows nothing about simulation; :mod:`repro.sim` interprets these
definitions and :mod:`repro.asm` assembles text into them.
"""

from repro.isa.registers import (
    SREG_BITS,
    AvrGeometry,
    ATMEGA103,
    IoReg,
    pair_name,
)
from repro.isa.opcodes import (
    InstrSpec,
    Operand,
    OperandKind,
    SPEC_BY_MNEMONIC,
    SPECS,
    spec_for,
)
from repro.isa.encoding import (
    DecodedInstr,
    DecodeError,
    EncodeError,
    decode_at,
    decode_words,
    encode,
)

__all__ = [
    "SREG_BITS",
    "AvrGeometry",
    "ATMEGA103",
    "IoReg",
    "pair_name",
    "InstrSpec",
    "Operand",
    "OperandKind",
    "SPEC_BY_MNEMONIC",
    "SPECS",
    "spec_for",
    "DecodedInstr",
    "DecodeError",
    "EncodeError",
    "decode_at",
    "decode_words",
    "encode",
]
