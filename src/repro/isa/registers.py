"""Register file, status register and memory geometry of the target MCU.

The paper implements its hardware extensions on a VHDL model of the
ATmega103, an AVR microcontroller with 128 KiB of flash, a 4 KiB data
address space and no MMU.  All addresses in this module are *data-space*
addresses unless noted: the AVR maps the 32 general-purpose registers to
data addresses ``0x00-0x1F``, the 64 I/O registers to ``0x20-0x5F`` and
internal SRAM from ``0x60`` upward.
"""

from dataclasses import dataclass


class SREG_BITS:
    """Bit positions within the AVR status register (SREG)."""

    C = 0  #: carry
    Z = 1  #: zero
    N = 2  #: negative
    V = 3  #: two's-complement overflow
    S = 4  #: sign (N xor V)
    H = 5  #: half carry
    T = 6  #: bit-copy storage
    I = 7  #: global interrupt enable

    NAMES = "CZNVSHTI"

    @classmethod
    def name(cls, bit):
        """Return the canonical one-letter name of SREG bit *bit*."""
        return cls.NAMES[bit]

    @classmethod
    def bit(cls, name):
        """Return the bit position of the SREG flag called *name*."""
        return cls.NAMES.index(name.upper())


class IoReg:
    """I/O-space addresses (``in``/``out`` operand space, 0..63) of the
    core registers the simulator implements.

    Data-space address = I/O address + 0x20.
    """

    SPL = 0x3D
    SPH = 0x3E
    SREG = 0x3F
    RAMPZ = 0x3B  # flash page register for elpm (128 KiB parts)

    # --- UMPU extension registers (Table `mmap_config` of the paper, plus
    # the stack-bound / safe-stack state of Sections 3.3-3.4).  The real
    # design adds these to extended I/O; we place them in otherwise unused
    # I/O slots so that `in`/`out` reach them directly.
    MEM_MAP_BASE_L = 0x20
    MEM_MAP_BASE_H = 0x21
    MEM_PROT_BOT_L = 0x22
    MEM_PROT_BOT_H = 0x23
    MEM_PROT_TOP_L = 0x24
    MEM_PROT_TOP_H = 0x25
    MEM_MAP_CONFIG = 0x26
    STACK_BOUND_L = 0x27
    STACK_BOUND_H = 0x28
    SAFE_STACK_PTR_L = 0x29
    SAFE_STACK_PTR_H = 0x2A
    CUR_DOMAIN = 0x2B
    JT_BASE_L = 0x2C
    JT_BASE_H = 0x2D
    UMPU_CTRL = 0x2E

    UMPU_REGISTERS = tuple(range(0x20, 0x2F))


@dataclass(frozen=True)
class AvrGeometry:
    """Memory geometry of an AVR part.

    Attributes
    ----------
    flash_bytes:
        Size of program flash in bytes (code addresses are byte
        addresses; the program counter holds *word* addresses).
    sram_start:
        First data-space address of internal SRAM (0x60 on the
        ATmega103: below it live the register file and I/O space).
    data_end:
        Last valid data-space address (inclusive).  The run-time stack
        is initialized here and grows down.
    io_start:
        First data-space address of the I/O window.
    """

    name: str
    flash_bytes: int
    sram_start: int
    data_end: int
    io_start: int = 0x20

    @property
    def flash_words(self):
        return self.flash_bytes // 2

    @property
    def sram_bytes(self):
        return self.data_end - self.sram_start + 1

    @property
    def data_space_bytes(self):
        """Total data address space covered (0 .. data_end)."""
        return self.data_end + 1

    @property
    def ramend(self):
        return self.data_end

    def is_register(self, addr):
        return 0 <= addr < self.io_start

    def is_io(self, addr):
        return self.io_start <= addr < self.sram_start

    def is_sram(self, addr):
        return self.sram_start <= addr <= self.data_end


#: Geometry of the ATmega103, the part modelled in the paper: 128 KiB
#: flash and a 4 KiB data space (regs + I/O + SRAM), matching the paper's
#: "maximum memory map size is 256 bytes" (512 eight-byte blocks at four
#: bits each) and "3674 bytes (2.8%)" of 128 KiB flash.
ATMEGA103 = AvrGeometry(
    name="atmega103",
    flash_bytes=128 * 1024,
    sram_start=0x60,
    data_end=0x0FFF,
)


_PAIR_NAMES = {26: "X", 28: "Y", 30: "Z"}


def pair_name(lo_reg):
    """Human name of the 16-bit pointer pair starting at register *lo_reg*
    (``X``/``Y``/``Z`` for r26/r28/r30, otherwise ``r<n>:r<n+1>``)."""
    if lo_reg in _PAIR_NAMES:
        return _PAIR_NAMES[lo_reg]
    return "r{}:r{}".format(lo_reg + 1, lo_reg)
