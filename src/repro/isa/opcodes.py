"""Instruction specifications for the supported AVR subset.

Each :class:`InstrSpec` couples a mnemonic with its binary encoding
pattern, operand kinds, base cycle cost and a short description.  The
encoding pattern is written the way AVR datasheets write it: a string of
16 (or 32) characters, MSB first, where ``0``/``1`` are fixed bits and a
letter names a field; all positions carrying the same letter form that
field, MSB first in order of appearance.

Example: ``ADD`` is ``0000 11rd dddd rrrr`` -- field ``d`` is the 5-bit
destination register, field ``r`` the 5-bit source register whose high
bit sits at bit 9.

The subset covers everything the Harbor runtime, the SFI rewriter and
the benchmark workloads need: the full ALU, all load/store addressing
modes, the call/return family, conditional branches and skips, bit and
I/O operations.
"""

import enum
from dataclasses import dataclass, field


class OperandKind(enum.Enum):
    """How an operand value maps onto its encoding field."""

    REG = "reg"            # r0..r31
    REG_HI = "reg_hi"      # r16..r31 (4-bit field = reg - 16)
    REG_PAIR = "reg_pair"  # even register, field = reg / 2  (movw)
    REG_PAIR_W = "reg_pair_w"  # r24/r26/r28/r30, field = (reg - 24) / 2
    IMM8 = "imm8"          # 0..255
    IMM6 = "imm6"          # 0..63 (adiw/sbiw)
    IO6 = "io6"            # I/O address 0..63
    IO5 = "io5"            # I/O address 0..31 (sbi/cbi/sbic/sbis)
    BIT = "bit"            # bit number 0..7
    DISP6 = "disp6"        # load/store displacement 0..63
    REL7 = "rel7"          # signed word offset -64..63 (branches)
    REL12 = "rel12"        # signed word offset -2048..2047 (rjmp/rcall)
    ADDR16 = "addr16"      # data-space address 0..65535 (lds/sts)
    ADDR22 = "addr22"      # flash *word* address (jmp/call)
    SREG_BIT = "sreg_bit"  # SREG flag index 0..7 (bset/bclr/brbs/brbc)

    def to_field(self, value):
        """Translate an operand *value* to its raw encoding-field value."""
        if self is OperandKind.REG_HI:
            return value - 16
        if self is OperandKind.REG_PAIR:
            return value // 2
        if self is OperandKind.REG_PAIR_W:
            return (value - 24) // 2
        return value

    def from_field(self, raw, width):
        """Translate a raw field value back to the operand value."""
        if self is OperandKind.REG_HI:
            return raw + 16
        if self is OperandKind.REG_PAIR:
            return raw * 2
        if self is OperandKind.REG_PAIR_W:
            return raw * 2 + 24
        if self in (OperandKind.REL7, OperandKind.REL12):
            sign = 1 << (width - 1)
            return (raw ^ sign) - sign
        return raw

    def check(self, value):
        """Return an error string if *value* is out of range, else None."""
        lo, hi = _RANGES[self]
        if not lo <= value <= hi:
            return "{} out of range [{}, {}]: {}".format(
                self.value, lo, hi, value
            )
        if self is OperandKind.REG_PAIR and value % 2:
            return "register pair must start at an even register: r{}".format(value)
        if self is OperandKind.REG_PAIR_W and value not in (24, 26, 28, 30):
            return "adiw/sbiw pair must be r24/r26/r28/r30: r{}".format(value)
        return None


_RANGES = {
    OperandKind.REG: (0, 31),
    OperandKind.REG_HI: (16, 31),
    OperandKind.REG_PAIR: (0, 30),
    OperandKind.REG_PAIR_W: (24, 30),
    OperandKind.IMM8: (0, 255),
    OperandKind.IMM6: (0, 63),
    OperandKind.IO6: (0, 63),
    OperandKind.IO5: (0, 31),
    OperandKind.BIT: (0, 7),
    OperandKind.DISP6: (0, 63),
    OperandKind.REL7: (-64, 63),
    OperandKind.REL12: (-2048, 2047),
    OperandKind.ADDR16: (0, 0xFFFF),
    OperandKind.ADDR22: (0, (1 << 22) - 1),
    OperandKind.SREG_BIT: (0, 7),
}


@dataclass(frozen=True)
class Operand:
    """One operand slot of an instruction: its field letter and kind."""

    letter: str
    kind: OperandKind


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction form.

    Attributes
    ----------
    key:
        Unique identifier; distinguishes addressing-mode variants that
        share a mnemonic (``ld_xp`` is ``ld Rd, X+``).
    mnemonic:
        Assembly mnemonic (``ld``).
    pattern:
        Datasheet bit pattern, spaces ignored, 16 or 32 chars.
    operands:
        Ordered operand slots as written in assembly.
    cycles:
        Base cycle cost on a classic AVR core with a 16-bit PC.  Control
        transfer extras (branch taken, skip length) are added by the
        simulator.
    kind:
        Coarse class used by the rewriter/verifier: ``alu``, ``load``,
        ``store``, ``branch``, ``call``, ``ret``, ``jump``, ``skip``,
        ``io``, ``stack``, ``misc``.
    modes:
        Extra semantic tags, e.g. pointer register and increment mode
        for load/store variants.
    """

    key: str
    mnemonic: str
    pattern: str
    operands: tuple
    cycles: int
    kind: str
    description: str = ""
    modes: dict = field(default_factory=dict)

    @property
    def size_words(self):
        return len(self.pattern.replace(" ", "")) // 16

    @property
    def size_bytes(self):
        return self.size_words * 2


def _op(letter, kind):
    return Operand(letter, kind)


_R = OperandKind.REG
_RH = OperandKind.REG_HI


def _two_reg(key, pattern, desc, kind="alu", cycles=1):
    return InstrSpec(key, key, pattern, (_op("d", _R), _op("r", _R)),
                     cycles, kind, desc)


def _imm(key, pattern, desc, kind="alu"):
    return InstrSpec(key, key, pattern,
                     (_op("d", _RH), _op("K", OperandKind.IMM8)),
                     1, kind, desc)


def _one_reg(key, pattern, desc, kind="alu", cycles=1):
    return InstrSpec(key, key, pattern, (_op("d", _R),), cycles, kind, desc)


def _ldst(key, mnemonic, pattern, is_store, ptr, post_inc=False,
          pre_dec=False, disp=False):
    ops = [_op("r" if is_store else "d", _R)]
    if disp:
        ops.append(_op("q", OperandKind.DISP6))
        if is_store:
            # assembly order for `std Y+q, Rr` is (displacement, register)
            ops.reverse()
    modes = {"ptr": ptr, "post_inc": post_inc, "pre_dec": pre_dec,
             "disp": disp}
    return InstrSpec(key, mnemonic, pattern, tuple(ops), 2,
                     "store" if is_store else "load",
                     "{} via {}".format("store" if is_store else "load", ptr),
                     modes)


SPECS = (
    # --- register-register ALU -------------------------------------------
    _two_reg("add", "000011rdddddrrrr", "add without carry"),
    _two_reg("adc", "000111rdddddrrrr", "add with carry"),
    _two_reg("sub", "000110rdddddrrrr", "subtract"),
    _two_reg("sbc", "000010rdddddrrrr", "subtract with carry"),
    _two_reg("and", "001000rdddddrrrr", "logical and"),
    _two_reg("eor", "001001rdddddrrrr", "exclusive or"),
    _two_reg("or", "001010rdddddrrrr", "logical or"),
    _two_reg("mov", "001011rdddddrrrr", "copy register"),
    _two_reg("cp", "000101rdddddrrrr", "compare"),
    _two_reg("cpc", "000001rdddddrrrr", "compare with carry"),
    _two_reg("cpse", "000100rdddddrrrr", "compare, skip if equal",
             kind="skip"),
    _two_reg("mul", "100111rdddddrrrr", "unsigned multiply -> r1:r0",
             cycles=2),
    InstrSpec("movw", "movw", "00000001ddddrrrr",
              (_op("d", OperandKind.REG_PAIR), _op("r", OperandKind.REG_PAIR)),
              1, "alu", "copy register pair"),
    # --- immediate ALU ----------------------------------------------------
    _imm("cpi", "0011KKKKddddKKKK", "compare with immediate"),
    _imm("sbci", "0100KKKKddddKKKK", "subtract immediate with carry"),
    _imm("subi", "0101KKKKddddKKKK", "subtract immediate"),
    _imm("ori", "0110KKKKddddKKKK", "logical or with immediate"),
    _imm("andi", "0111KKKKddddKKKK", "logical and with immediate"),
    _imm("ldi", "1110KKKKddddKKKK", "load immediate"),
    # --- single register --------------------------------------------------
    _one_reg("com", "1001010ddddd0000", "one's complement"),
    _one_reg("neg", "1001010ddddd0001", "two's complement"),
    _one_reg("swap", "1001010ddddd0010", "swap nibbles"),
    _one_reg("inc", "1001010ddddd0011", "increment"),
    _one_reg("asr", "1001010ddddd0101", "arithmetic shift right"),
    _one_reg("lsr", "1001010ddddd0110", "logical shift right"),
    _one_reg("ror", "1001010ddddd0111", "rotate right through carry"),
    _one_reg("dec", "1001010ddddd1010", "decrement"),
    # --- word arithmetic ---------------------------------------------------
    InstrSpec("adiw", "adiw", "10010110KKddKKKK",
              (_op("d", OperandKind.REG_PAIR_W), _op("K", OperandKind.IMM6)),
              2, "alu", "add immediate to word"),
    InstrSpec("sbiw", "sbiw", "10010111KKddKKKK",
              (_op("d", OperandKind.REG_PAIR_W), _op("K", OperandKind.IMM6)),
              2, "alu", "subtract immediate from word"),
    # --- SREG flag / bit ----------------------------------------------------
    InstrSpec("bset", "bset", "100101000sss1000",
              (_op("s", OperandKind.SREG_BIT),), 1, "alu", "set SREG flag"),
    InstrSpec("bclr", "bclr", "100101001sss1000",
              (_op("s", OperandKind.SREG_BIT),), 1, "alu", "clear SREG flag"),
    InstrSpec("bst", "bst", "1111101ddddd0bbb",
              (_op("d", _R), _op("b", OperandKind.BIT)),
              1, "alu", "store register bit to T"),
    InstrSpec("bld", "bld", "1111100ddddd0bbb",
              (_op("d", _R), _op("b", OperandKind.BIT)),
              1, "alu", "load register bit from T"),
    # --- control transfer ---------------------------------------------------
    InstrSpec("rjmp", "rjmp", "1100kkkkkkkkkkkk",
              (_op("k", OperandKind.REL12),), 2, "jump", "relative jump"),
    InstrSpec("rcall", "rcall", "1101kkkkkkkkkkkk",
              (_op("k", OperandKind.REL12),), 3, "call", "relative call"),
    InstrSpec("jmp", "jmp", "1001010kkkkk110k" "kkkkkkkkkkkkkkkk",
              (_op("k", OperandKind.ADDR22),), 3, "jump", "absolute jump"),
    InstrSpec("call", "call", "1001010kkkkk111k" "kkkkkkkkkkkkkkkk",
              (_op("k", OperandKind.ADDR22),), 4, "call", "absolute call"),
    InstrSpec("ijmp", "ijmp", "1001010000001001", (), 2, "jump",
              "indirect jump via Z"),
    InstrSpec("icall", "icall", "1001010100001001", (), 3, "call",
              "indirect call via Z"),
    InstrSpec("ret", "ret", "1001010100001000", (), 4, "ret",
              "return from subroutine"),
    InstrSpec("reti", "reti", "1001010100011000", (), 4, "ret",
              "return from interrupt"),
    InstrSpec("brbs", "brbs", "111100kkkkkkksss",
              (_op("s", OperandKind.SREG_BIT), _op("k", OperandKind.REL7)),
              1, "branch", "branch if SREG flag set"),
    InstrSpec("brbc", "brbc", "111101kkkkkkksss",
              (_op("s", OperandKind.SREG_BIT), _op("k", OperandKind.REL7)),
              1, "branch", "branch if SREG flag clear"),
    InstrSpec("sbrc", "sbrc", "1111110rrrrr0bbb",
              (_op("r", _R), _op("b", OperandKind.BIT)),
              1, "skip", "skip if register bit clear"),
    InstrSpec("sbrs", "sbrs", "1111111rrrrr0bbb",
              (_op("r", _R), _op("b", OperandKind.BIT)),
              1, "skip", "skip if register bit set"),
    InstrSpec("sbic", "sbic", "10011001AAAAAbbb",
              (_op("A", OperandKind.IO5), _op("b", OperandKind.BIT)),
              1, "skip", "skip if I/O bit clear"),
    InstrSpec("sbis", "sbis", "10011011AAAAAbbb",
              (_op("A", OperandKind.IO5), _op("b", OperandKind.BIT)),
              1, "skip", "skip if I/O bit set"),
    # --- loads --------------------------------------------------------------
    InstrSpec("lds", "lds", "1001000ddddd0000" "kkkkkkkkkkkkkkkk",
              (_op("d", _R), _op("k", OperandKind.ADDR16)),
              2, "load", "load direct from data space"),
    _ldst("ld_x", "ld", "1001000ddddd1100", False, "X"),
    _ldst("ld_xp", "ld", "1001000ddddd1101", False, "X", post_inc=True),
    _ldst("ld_mx", "ld", "1001000ddddd1110", False, "X", pre_dec=True),
    _ldst("ld_yp", "ld", "1001000ddddd1001", False, "Y", post_inc=True),
    _ldst("ld_my", "ld", "1001000ddddd1010", False, "Y", pre_dec=True),
    _ldst("ld_zp", "ld", "1001000ddddd0001", False, "Z", post_inc=True),
    _ldst("ld_mz", "ld", "1001000ddddd0010", False, "Z", pre_dec=True),
    _ldst("ldd_y", "ldd", "10q0qq0ddddd1qqq", False, "Y", disp=True),
    _ldst("ldd_z", "ldd", "10q0qq0ddddd0qqq", False, "Z", disp=True),
    # --- stores -------------------------------------------------------------
    InstrSpec("sts", "sts", "1001001ddddd0000" "kkkkkkkkkkkkkkkk",
              (_op("k", OperandKind.ADDR16), _op("d", _R)),
              2, "store", "store direct to data space"),
    _ldst("st_x", "st", "1001001rrrrr1100", True, "X"),
    _ldst("st_xp", "st", "1001001rrrrr1101", True, "X", post_inc=True),
    _ldst("st_mx", "st", "1001001rrrrr1110", True, "X", pre_dec=True),
    _ldst("st_yp", "st", "1001001rrrrr1001", True, "Y", post_inc=True),
    _ldst("st_my", "st", "1001001rrrrr1010", True, "Y", pre_dec=True),
    _ldst("st_zp", "st", "1001001rrrrr0001", True, "Z", post_inc=True),
    _ldst("st_mz", "st", "1001001rrrrr0010", True, "Z", pre_dec=True),
    _ldst("std_y", "std", "10q0qq1rrrrr1qqq", True, "Y", disp=True),
    _ldst("std_z", "std", "10q0qq1rrrrr0qqq", True, "Z", disp=True),
    # --- stack ----------------------------------------------------------------
    InstrSpec("push", "push", "1001001ddddd1111", (_op("d", _R),),
              2, "stack", "push register"),
    InstrSpec("pop", "pop", "1001000ddddd1111", (_op("d", _R),),
              2, "stack", "pop register"),
    # --- I/O ------------------------------------------------------------------
    InstrSpec("in", "in", "10110AAdddddAAAA",
              (_op("d", _R), _op("A", OperandKind.IO6)),
              1, "io", "read I/O register"),
    InstrSpec("out", "out", "10111AAdddddAAAA",
              (_op("A", OperandKind.IO6), _op("d", _R)),
              1, "io", "write I/O register"),
    InstrSpec("sbi", "sbi", "10011010AAAAAbbb",
              (_op("A", OperandKind.IO5), _op("b", OperandKind.BIT)),
              2, "io", "set I/O bit"),
    InstrSpec("cbi", "cbi", "10011000AAAAAbbb",
              (_op("A", OperandKind.IO5), _op("b", OperandKind.BIT)),
              2, "io", "clear I/O bit"),
    # --- program memory ---------------------------------------------------------
    InstrSpec("lpm_r0", "lpm", "1001010111001000", (), 3, "load",
              "load r0 from flash at Z"),
    InstrSpec("lpm", "lpm", "1001000ddddd0100", (_op("d", _R),),
              3, "load", "load register from flash at Z",
              {"ptr": "Z", "post_inc": False}),
    InstrSpec("lpm_zp", "lpm", "1001000ddddd0101", (_op("d", _R),),
              3, "load", "load register from flash at Z+",
              {"ptr": "Z", "post_inc": True}),
    InstrSpec("elpm_r0", "elpm", "1001010111011000", (), 3, "load",
              "load r0 from flash at RAMPZ:Z"),
    InstrSpec("elpm", "elpm", "1001000ddddd0110", (_op("d", _R),),
              3, "load", "load register from flash at RAMPZ:Z",
              {"ptr": "Z", "post_inc": False}),
    InstrSpec("elpm_zp", "elpm", "1001000ddddd0111", (_op("d", _R),),
              3, "load", "load register from flash at RAMPZ:Z+",
              {"ptr": "Z", "post_inc": True}),
    # --- MCU ----------------------------------------------------------------------
    InstrSpec("nop", "nop", "0000000000000000", (), 1, "misc", "no operation"),
    InstrSpec("sleep", "sleep", "1001010110001000", (), 1, "misc", "sleep"),
    InstrSpec("wdr", "wdr", "1001010110101000", (), 1, "misc",
              "watchdog reset"),
    InstrSpec("break", "break", "1001010110011000", (), 1, "misc",
              "halt for debugger"),
)


SPEC_BY_KEY = {s.key: s for s in SPECS}

#: Mnemonic -> list of specs sharing it (addressing-mode variants).
SPEC_BY_MNEMONIC = {}
for _s in SPECS:
    SPEC_BY_MNEMONIC.setdefault(_s.mnemonic, []).append(_s)


def spec_for(key):
    """Return the :class:`InstrSpec` with unique *key* (raises KeyError)."""
    return SPEC_BY_KEY[key]


#: SREG-flag aliases of brbs/brbc: mnemonic -> (canonical key, flag, set?).
BRANCH_ALIASES = {
    "breq": ("brbs", 1), "brne": ("brbc", 1),
    "brcs": ("brbs", 0), "brcc": ("brbc", 0),
    "brlo": ("brbs", 0), "brsh": ("brbc", 0),
    "brmi": ("brbs", 2), "brpl": ("brbc", 2),
    "brvs": ("brbs", 3), "brvc": ("brbc", 3),
    "brlt": ("brbs", 4), "brge": ("brbc", 4),
    "brhs": ("brbs", 5), "brhc": ("brbc", 5),
    "brts": ("brbs", 6), "brtc": ("brbc", 6),
    "brie": ("brbs", 7), "brid": ("brbc", 7),
}

#: SREG set/clear aliases of bset/bclr: mnemonic -> (canonical, flag).
FLAG_ALIASES = {
    "sec": ("bset", 0), "clc": ("bclr", 0),
    "sez": ("bset", 1), "clz": ("bclr", 1),
    "sen": ("bset", 2), "cln": ("bclr", 2),
    "sev": ("bset", 3), "clv": ("bclr", 3),
    "ses": ("bset", 4), "cls": ("bclr", 4),
    "seh": ("bset", 5), "clh": ("bclr", 5),
    "set": ("bset", 6), "clt": ("bclr", 6),
    "sei": ("bset", 7), "cli": ("bclr", 7),
}

#: One-register aliases expanding to a canonical two-operand form.
REG_ALIASES = {
    "lsl": "add",   # lsl d == add d, d
    "rol": "adc",   # rol d == adc d, d
    "tst": "and",   # tst d == and d, d
    "clr": "eor",   # clr d == eor d, d
}
