"""Binary encode/decode of the AVR subset.

The pattern compiler turns the datasheet bit strings of
:mod:`repro.isa.opcodes` into (mask, value, field-position) triples once
at import time; encoding and decoding are then plain bit manipulation.

Flash is modelled as a sequence of 16-bit little-endian words; 32-bit
instructions occupy two consecutive words with the operand field spread
across both, exactly as on real silicon.
"""

from dataclasses import dataclass, field

from repro.isa.opcodes import SPECS, SPEC_BY_KEY


class EncodeError(ValueError):
    """An operand does not fit its encoding field."""


class DecodeError(ValueError):
    """A flash word does not decode to any supported instruction."""


@dataclass(frozen=True)
class _CompiledPattern:
    mask: int
    value: int
    nbits: int
    # letter -> tuple of bit positions, MSB of the field first
    fields: dict


def _compile(pattern):
    bits = pattern.replace(" ", "")
    if len(bits) not in (16, 32):
        raise ValueError("bad pattern length: {!r}".format(pattern))
    nbits = len(bits)
    mask = 0
    value = 0
    fields = {}
    for i, ch in enumerate(bits):
        pos = nbits - 1 - i
        if ch == "0":
            mask |= 1 << pos
        elif ch == "1":
            mask |= 1 << pos
            value |= 1 << pos
        else:
            fields.setdefault(ch, []).append(pos)
    return _CompiledPattern(mask, value,
                            nbits, {k: tuple(v) for k, v in fields.items()})


_COMPILED = {spec.key: _compile(spec.pattern) for spec in SPECS}

# Decode table ordered most-specific first so fully fixed encodings (ret,
# nop, ...) win over field-bearing patterns they could alias.
_DECODE_ORDER_16 = sorted(
    (s for s in SPECS if s.size_words == 1),
    key=lambda s: bin(_COMPILED[s.key].mask).count("1"),
    reverse=True,
)
_DECODE_ORDER_32 = sorted(
    (s for s in SPECS if s.size_words == 2),
    key=lambda s: bin(_COMPILED[s.key].mask).count("1") - 16,
    reverse=True,
)

# Precomputed first-word width probe: a flat 64 Ki table indexed by the
# raw flash word, true iff it opens a 32-bit instruction.  Built by
# enumerating the free bits of each 32-bit pattern's first word (a few
# hundred entries), so the hot fetch path never scans pattern lists.
_IS_32BIT = bytearray(1 << 16)


def _enumerate_matches(mask16, value16):
    free = [bit for bit in range(16) if not (mask16 >> bit) & 1]
    for combo in range(1 << len(free)):
        word = value16
        for i, bit in enumerate(free):
            if (combo >> i) & 1:
                word |= 1 << bit
        yield word


for _spec in _DECODE_ORDER_32:
    _pat = _COMPILED[_spec.key]
    for _word in _enumerate_matches((_pat.mask >> 16) & 0xFFFF,
                                    (_pat.value >> 16) & 0xFFFF):
        _IS_32BIT[_word] = 1


@dataclass(frozen=True)
class DecodedInstr:
    """A decoded instruction: its spec and concrete operand values.

    ``operands`` are in assembly order and already translated out of
    field encoding (register numbers are real register numbers, branch
    offsets are signed word offsets).

    ``key``, ``size_words`` and ``size_bytes`` are materialized once at
    construction (not spec-chasing properties): the simulator reads them
    on every retired instruction, so a decoded instruction answers them
    with a plain attribute load.
    """

    spec: object
    operands: tuple
    key: str = field(init=False, repr=False, compare=False)
    size_words: int = field(init=False, repr=False, compare=False)
    size_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        spec = self.spec
        object.__setattr__(self, "key", spec.key)
        object.__setattr__(self, "size_words", spec.size_words)
        object.__setattr__(self, "size_bytes", spec.size_bytes)

    @property
    def mnemonic(self):
        return self.spec.mnemonic

    def operand(self, letter):
        """Return the value of the operand with field letter *letter*."""
        for op, val in zip(self.spec.operands, self.operands):
            if op.letter == letter:
                return val
        raise KeyError(letter)

    def __str__(self):
        if not self.operands:
            return self.mnemonic
        return "{} {}".format(
            self.mnemonic, ", ".join(str(v) for v in self.operands))


def encode(key, operands=()):
    """Encode instruction *key* with *operands* into a tuple of words.

    Operands are given in assembly order (matching ``spec.operands``).
    Raises :class:`EncodeError` on range violations.
    """
    spec = SPEC_BY_KEY[key]
    pat = _COMPILED[key]
    if len(operands) != len(spec.operands):
        raise EncodeError(
            "{} takes {} operand(s), got {}".format(
                key, len(spec.operands), len(operands)))
    word = pat.value
    for op, val in zip(spec.operands, operands):
        err = op.kind.check(val)
        if err:
            raise EncodeError("{}: {}".format(key, err))
        raw = op.kind.to_field(val)
        positions = pat.fields[op.letter]
        width = len(positions)
        raw &= (1 << width) - 1
        for i, pos in enumerate(positions):
            bit = (raw >> (width - 1 - i)) & 1
            word |= bit << pos
    if pat.nbits == 16:
        return (word,)
    return (word >> 16, word & 0xFFFF)


def decode_words(word0, word1=None):
    """Decode one instruction from *word0* (and *word1* for 32-bit forms).

    Returns a :class:`DecodedInstr`.  Raises :class:`DecodeError` if no
    pattern matches.
    """
    for spec in _DECODE_ORDER_32:
        pat = _COMPILED[spec.key]
        if (word0 & (pat.mask >> 16)) == (pat.value >> 16):
            if word1 is None:
                raise DecodeError(
                    "truncated 32-bit instruction {:04x}".format(word0))
            full = (word0 << 16) | word1
            return _extract(spec, pat, full)
    for spec in _DECODE_ORDER_16:
        pat = _COMPILED[spec.key]
        if (word0 & pat.mask) == pat.value:
            return _extract(spec, pat, word0)
    raise DecodeError("cannot decode word {:04x}".format(word0))


def _extract(spec, pat, word):
    operands = []
    for op in spec.operands:
        positions = pat.fields[op.letter]
        width = len(positions)
        raw = 0
        for pos in positions:
            raw = (raw << 1) | ((word >> pos) & 1)
        operands.append(op.kind.from_field(raw, width))
    return DecodedInstr(spec, tuple(operands))


def decode_at(words, index):
    """Decode the instruction starting at word *index* of sequence *words*.

    Returns ``(DecodedInstr, size_words)``.
    """
    w0 = words[index]
    w1 = words[index + 1] if index + 1 < len(words) else None
    instr = decode_words(w0, w1)
    return instr, instr.size_words


def is_32bit_opcode(word0):
    """True if *word0* is the first word of a 32-bit instruction."""
    return bool(_IS_32BIT[word0 & 0xFFFF])
