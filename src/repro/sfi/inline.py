"""Inlined checks: the other end of the verifier design space (paper §4:
"exploring the design space of verifiers and evaluating their impact on
performance is a challenge that remains to be addressed").

The shipped design keeps module code small by *calling* the check
routines.  This module implements the opposite point:

* :class:`InlineRewriter` pastes the whole store check **inline** before
  a raw ``st`` instruction — saving the call/marshal dispatch cycles at
  a large per-site size cost;
* :class:`TemplateVerifier` admits such binaries: a raw store is legal
  iff it is immediately preceded by the *byte-exact check template* and
  no control transfer can land between the template and the store
  (otherwise a branch could skip the check).

The template is not hand-counted: it is assembled from the same source
fragments as the runtime checker and decoded back into rewriter items,
so the two rewriters can never drift apart semantically.

Every inline store compiles to::

    [push r18, mov r18,Rr]?   value marshal (as in call mode)
    push r0 ; in r0,SREG      flag save
    <mode EA items>           materialize the target address in X
    <CHECK CORE>              the fixed template (verifier matches this)
    st X(+), r18              the raw store (checked X)
    <mode commit items>       pointer side effects, X restore
    out SREG,r0 ; pop r0      flag restore
    [pop r18]?
"""

from repro.asm.assembler import Assembler
from repro.asm.disassembler import disassemble
from repro.isa.registers import IoReg
from repro.sfi.layout import (
    FAULT_MEMMAP,
    FAULT_OUTSIDE,
    FAULT_STACK_BOUND,
    SfiLayout,
)
from repro.sfi.rewriter import RewriteError, Rewriter, _Item
from repro.sfi.verifier import Verifier

#: the check core: validates a store to [X] for the current domain.
#: Saves/restores r20/r21/r30/r31 itself; SREG is saved by the caller
#: frame around it.  Identical logic to hb_check_x (kept in lockstep by
#: tests/test_sfi_inline.py::test_template_matches_runtime_checker).
_CORE_SRC = f"""
    push r20
    push r21
    push r30
    push r31
    lds r20, HB_CUR_DOM
    cpi r20, HB_TRUSTED
    breq ic_ok
    lds r30, HB_SB_LO
    lds r31, HB_SB_HI
    cp r30, r26
    cpc r31, r27
    brlo ic_sb_fault
    ldi r30, lo8(HB_PROT_BOT)
    ldi r31, hi8(HB_PROT_BOT)
    cp r26, r30
    cpc r27, r31
    brlo ic_out_fault
    ldi r30, lo8(HB_PROT_TOP)
    ldi r31, hi8(HB_PROT_TOP)
    cp r30, r26
    cpc r31, r27
    brlo ic_ok
    movw r30, r26
    subi r30, lo8(HB_PROT_BOT)
    sbci r31, hi8(HB_PROT_BOT)
    lsr r31
    ror r30
    lsr r31
    ror r30
    lsr r31
    ror r30
    bst r30, 0
    lsr r31
    ror r30
    subi r30, lo8(-HB_MMAP_TABLE)
    sbci r31, hi8(-HB_MMAP_TABLE)
    ld r21, Z
    brtc ic_low
    swap r21
ic_low:
    andi r21, 0x0F
    lsr r21
    cp r21, r20
    brne ic_mm_fault
    rjmp ic_ok
ic_sb_fault:
    ldi r20, {FAULT_STACK_BOUND}
    jmp HB_FAULT_ENTRY
ic_out_fault:
    ldi r20, {FAULT_OUTSIDE}
    jmp HB_FAULT_ENTRY
ic_mm_fault:
    ldi r20, {FAULT_MEMMAP}
    jmp HB_FAULT_ENTRY
ic_ok:
    pop r31
    pop r30
    pop r21
    pop r20
"""


def build_core(runtime_symbols, layout=None):
    """Assemble the check core; returns ``(items, words)``.

    *items* are position-independent rewriter items (internal branches
    are relative; the fault exits are absolute jumps into the runtime);
    *words* is the exact word sequence the verifier matches.
    """
    layout = layout or SfiLayout()
    symbols = dict(layout.symbols())
    symbols["HB_FAULT_ENTRY"] = runtime_symbols["hb_fault_r20"]
    program = Assembler(symbols=symbols).assemble(_CORE_SRC, "inline_core")
    items = []
    words = []
    for line in disassemble(program):
        if line.instr is None:
            raise RewriteError("check template contains data")
        items.append(_Item(line.instr.key, line.instr.operands))
        words.extend(line.words)
    return items, tuple(words)


class InlineRewriter(Rewriter):
    """Rewriter variant that inlines the store checks."""

    def __init__(self, runtime_symbols, layout=None):
        super().__init__(runtime_symbols, layout)
        self.core_items, self.core_words = build_core(runtime_symbols,
                                                      self.layout)

    def _rewrite_store(self, instr, old):
        spec = instr.spec
        items = []

        def ins(key, *ops):
            items.append(_Item(key, tuple(ops),
                               old_addr=old if not items else None))

        reg = instr.operands[-1]
        marshal = reg != 18
        if marshal:
            ins("push", 18)
            ins("mov", 18, reg)
        ins("push", 0)
        ins("in", 0, IoReg.SREG)

        # --- materialize the effective address in X, pick the store form
        store_key = "st_x"
        commit = []
        if instr.key == "sts":
            addr = instr.operands[0]
            ins("push", 26)
            ins("push", 27)
            ins("ldi", 26, addr & 0xFF)
            ins("ldi", 27, (addr >> 8) & 0xFF)
            commit = [("pop", 27), ("pop", 26)]
        else:
            ptr = spec.modes["ptr"]
            post_inc = spec.modes.get("post_inc", False)
            pre_dec = spec.modes.get("pre_dec", False)
            q = instr.operand("q") if spec.modes.get("disp") else 0
            if ptr == "X":
                if pre_dec:
                    ins("sbiw", 26, 1)
                if post_inc:
                    store_key = "st_xp"
            else:
                preg = 28 if ptr == "Y" else 30
                ins("push", 26)
                ins("push", 27)
                if pre_dec:
                    ins("sbiw", preg, 1)
                ins("movw", 26, preg)
                if q:
                    ins("adiw", 26, q)
                if post_inc:
                    commit = [("adiw", preg, 1)]
                commit = commit + [("pop", 27), ("pop", 26)]

        for core in self.core_items:
            items.append(_Item(core.key, core.operands))
        ins(store_key, 18)
        for key, *ops in commit:
            ins(key, *ops)
        ins("out", IoReg.SREG, 0)
        ins("pop", 0)
        if marshal:
            ins("pop", 18)
        return items


class TemplateVerifier(Verifier):
    """Verifier for inline-checked binaries.

    Accepts a raw X-based store of r18 iff the immediately preceding
    words are exactly the check template and no control transfer (branch,
    jump, call, or skip) targets any instruction between the template's
    start and the store itself.
    """

    def __init__(self, runtime_symbols, layout=None, allowed_io=()):
        super().__init__(runtime_symbols, layout, allowed_io)
        _items, self.core_words = build_core(runtime_symbols, self.layout)
        self._fault_entry = runtime_symbols["hb_fault_r20"]

    def _allowed_jump_exits(self):
        # the template's fault exits jump straight into the runtime's
        # fault handler; that is the one legal jump out of the sandbox
        return frozenset((self._fault_entry,))

    ALLOWED_STORE_KEYS = frozenset({"st_x", "st_xp"})

    def _check_io(self, line, addr):
        # the inline frames save/restore SREG around the check; writing
        # one's own flags is no more powerful than the always-allowed
        # bset/bclr (sei/cli) instructions
        if line.instr.key == "out" and                 line.instr.operands[0] == IoReg.SREG:
            return
        super()._check_io(line, addr)

    def verify(self, flash_words, start, end, manifest=None):
        if hasattr(flash_words, "word"):
            hi = end // 2
            flash_words = [flash_words.word(i) for i in range(hi)]
        self._words = flash_words
        self._protected_ranges = []
        report = super().verify(flash_words, start, end, manifest=manifest)
        # skip instructions can leap over one instruction: collect their
        # landing points as implicit control-transfer targets
        from repro.asm.disassembler import disassemble as dis
        lines = dis(flash_words, start_word=start // 2,
                    count_words=(end - start) // 2)
        targets = []
        for i, line in enumerate(lines):
            if line.instr is not None and line.instr.spec.kind == "skip" \
                    and i + 2 < len(lines):
                targets.append(lines[i + 2].byte_addr)
        for lo, hi_addr in self._protected_ranges:
            for target in targets:
                if lo < target <= hi_addr:
                    self._violation(
                        "HL004",
                        "skip lands between an inline check and its "
                        "store", target)
        return report

    def _store_is_templated(self, line):
        n = len(self.core_words)
        first = line.byte_addr // 2 - n
        if first < 0:
            return False
        actual = tuple(self._words[first:first + n])
        return actual == self.core_words

    # the base class raises on forbidden keys inside its scan loop; we
    # intercept stores there by overriding the hook it calls
    def _forbidden_key(self, key, line, branch_targets):
        if key in self.ALLOWED_STORE_KEYS and line.instr.operands[-1] == 18:
            if self._store_is_templated(line):
                core_start = line.byte_addr - 2 * len(self.core_words)
                self._protected_ranges.append(
                    (core_start, line.byte_addr))
                self._guards = getattr(self, "_guards", 0) + 1
                return  # admitted
            self._violation(
                "HL001", "raw store without the inline check template",
                line.byte_addr)
            return
        super()._forbidden_key(key, line, branch_targets)

    def _check_protected_targets(self, branch_targets):
        for target, addr in branch_targets:
            for lo, hi in self._protected_ranges:
                if lo < target <= hi and not lo <= addr <= hi:
                    # transfers *within* a matched template are its own
                    # (byte-exact) control flow; anything from outside
                    # would bypass the check
                    self._violation(
                        "HL004",
                        "control transfer into an inline check "
                        "(target 0x{:04x})".format(target), addr)
