"""SFI: the software-only Harbor system (binary rewriter + verifier +
assembly runtime)."""

from repro.sfi.layout import (
    FAULT_NAMES,
    SfiLayout,
)
from repro.sfi.inline import InlineRewriter, TemplateVerifier, build_core
from repro.sfi.rewriter import RewriteError, Rewriter, RewrittenModule
from repro.sfi.runtime_asm import (
    RUNTIME_ENTRIES,
    STORE_STUBS,
    build_runtime,
    runtime_code_bytes,
    runtime_source,
)
from repro.sfi.system import KERNEL_EXPORTS, LoadedModule, SfiSystem
from repro.sfi.verifier import Verifier, VerifyError, VerifyReport

__all__ = [
    "FAULT_NAMES",
    "SfiLayout",
    "InlineRewriter",
    "TemplateVerifier",
    "build_core",
    "RewriteError",
    "Rewriter",
    "RewrittenModule",
    "RUNTIME_ENTRIES",
    "STORE_STUBS",
    "build_runtime",
    "runtime_code_bytes",
    "runtime_source",
    "KERNEL_EXPORTS",
    "LoadedModule",
    "SfiSystem",
    "Verifier",
    "VerifyError",
    "VerifyReport",
]
