"""Binary rewriter: sandbox a compiled module (paper §4).

The rewriter consumes an assembled module image and produces an
equivalent image in which every potentially unsafe operation is replaced
by a call into the Harbor runtime:

* store instructions (``st``/``std``/``sts``) become marshaling
  sequences + calls to the per-addressing-mode check stubs;
* direct calls into the jump-table region, and all computed calls
  (``icall``), become cross-domain call sequences through
  ``hb_xdom_call``;
* every function entry gains a ``call hb_save_ret`` prologue and every
  ``ret`` a ``call hb_restore_ret`` epilogue (return addresses live on
  the safe stack);
* ``ijmp``, ``break``, writes to SPL/SPH and other unsandboxable
  operations are rejected outright.

Because replacements change instruction sizes, the rewriter re-lays the
code out and fixes every relative branch, with classic branch
*relaxation*: a conditional branch whose target moves out of the ±64
word range is rewritten as an inverted branch over an ``rjmp``, and an
out-of-range ``rjmp``/``rcall`` is promoted to ``jmp``/``call``.  The
loop iterates to a fixpoint (each relaxation can push other branches out
of range).

Note the asymmetry the paper relies on: *the rewriter is untrusted*.
A buggy or malicious rewriter can produce garbage, but the on-node
:mod:`repro.sfi.verifier` independently accepts only properly sandboxed
binaries, so Harbor's correctness "depends only upon the correctness of
the verifier and the Harbor runtime, and not on the rewriter".
"""

from dataclasses import dataclass, field

from repro.asm.disassembler import disassemble
from repro.asm.program import Program
from repro.isa.encoding import encode
from repro.isa.registers import IoReg
from repro.sfi.layout import SfiLayout
from repro.sfi.runtime_asm import STORE_STUBS


class RewriteError(Exception):
    """The module contains an operation the sandbox cannot express."""


# Operand placeholders resolved at layout time:
#   ("old", byte_addr)     - a location in the original module; resolves
#                            to the inserted prologue when the location
#                            is a function entry (calls enter through it)
#   ("oldbody", byte_addr) - same location, but resolving *past* any
#                            inserted prologue: jumps and branches must
#                            not re-execute hb_save_ret (it reads the
#                            frame a call just pushed — entering it any
#                            other way desyncs the safe stack)
#   ("sym", name)          - a runtime symbol (stub entry)
#   ("abs", byte_addr)     - an absolute, non-moving address (jump table)
def _is_placeholder(op):
    return isinstance(op, tuple) and op and \
        op[0] in ("old", "oldbody", "sym", "abs")


@dataclass
class _Item:
    """One output instruction (or data word) during layout."""

    key: str            # spec key, or "data"
    operands: tuple
    old_addr: int = None    # original byte address (first item of a group)
    new_addr: int = None
    size_words: int = 1
    #: this item is an inserted ``call hb_save_ret`` prologue: it
    #: shadows its old address for calls but not for jumps/branches
    prologue: bool = False
    #: original byte address of the store this item realizes: set on
    #: the check-stub ``call`` (checked store) or on the raw store
    #: instruction itself (elided store), so the elision pass can map
    #: proof sites across re-layout rounds.
    store_site: int = None

    def compute_size(self):
        if self.key == "data":
            self.size_words = 1
        else:
            from repro.isa.opcodes import SPEC_BY_KEY
            self.size_words = SPEC_BY_KEY[self.key].size_words
        return self.size_words


@dataclass
class RewrittenModule:
    """Result of rewriting: image + address maps."""

    program: Program
    start: int                  # byte address of the rewritten code
    end: int                    # first byte past it
    addr_map: dict              # old byte addr -> new byte addr
    exports: dict               # name -> new byte addr
    stats: dict = field(default_factory=dict)
    #: old store byte addr -> new byte addr of its check-stub call
    store_sites: dict = field(default_factory=dict)
    #: old store byte addr -> new byte addr of the raw (elided) store
    elided_sites: dict = field(default_factory=dict)

    @property
    def size_bytes(self):
        return self.end - self.start


class Rewriter:
    """Sandboxes module images against a Harbor runtime."""

    #: instructions that can never appear in a sandboxed module
    FORBIDDEN = {"break", "ijmp", "reti", "sleep", "wdr"}

    _elide = frozenset()

    def __init__(self, runtime_symbols, layout=None):
        """*runtime_symbols*: symbol table of the assembled runtime
        (entry-point name -> byte address)."""
        self.layout = layout or SfiLayout()
        self.runtime = runtime_symbols

    # ------------------------------------------------------------------
    def rewrite(self, module, new_origin, exports=(), entries=(),
                elide=()):
        """Rewrite *module* (a Program) to run at *new_origin*.

        ``exports`` are names of functions other domains may call (their
        rewritten addresses are reported for the linker); ``entries``
        are additional known function-entry labels.  Function entries
        (prologue insertion points) are the union of exports, entries
        and every target of an internal call.

        ``elide`` is a set of *original* store byte addresses to emit as
        raw stores instead of check-stub sequences.  The rewriter does
        not judge whether that is safe — it is untrusted; the elision
        proofs live in :mod:`repro.analysis.static.elision` and the
        verifier re-checks them via the :class:`ElisionManifest`.
        """
        lines = disassemble(module)
        entry_addrs = self._find_entries(module, lines, exports, entries)
        self._check_stack_discipline(lines)
        self._elide = frozenset(elide)
        items = []
        stats = {"stores": 0, "cross_calls": 0, "rets": 0, "icalls": 0,
                 "prologues": 0, "elided_stores": 0, "entry_guards": 0}
        prev_key = None
        for line in lines:
            if line.instr is None:
                raise RewriteError(
                    "undecodable word 0x{:04x} at 0x{:04x}: modules must "
                    "be pure code".format(line.words[0], line.byte_addr))
            if line.byte_addr in entry_addrs:
                if prev_key is not None and \
                        prev_key not in ("ret", "rjmp", "jmp"):
                    # the entry is also reachable by fall-through (e.g.
                    # a called loop head): hop the sequential path over
                    # the prologue — hb_save_ret must only ever run on
                    # the frame a call just pushed
                    items.append(_Item(
                        "rjmp", (("oldbody", line.byte_addr),)))
                    stats["entry_guards"] += 1
                items.append(_Item("call", (("sym", "hb_save_ret"),),
                                   old_addr=line.byte_addr,
                                   prologue=True))
                stats["prologues"] += 1
            items.extend(self._transform(line, stats))
            prev_key = line.instr.key
        layout_items = self._layout(items, new_origin)
        return self._emit(module, layout_items, new_origin, exports, stats)

    # ------------------------------------------------------------------
    def _check_stack_discipline(self, lines):
        """Reject sources whose push/pop traffic the sandbox cannot keep
        sound: ``hb_restore_ret`` rewrites the return-address slot at a
        fixed SP offset, so the module must reach every ``ret`` with the
        stack pointer exactly where the entering call left it.  A pop
        past the frame (or a branch whose target sits at a different
        push depth) drifts SP into the caller's frames; the verifier
        rejects such images outright (rule HL016), so error here with a
        source-level message instead of emitting a doomed binary."""
        depth = 0
        depth_in = {}
        edges = []
        for line in lines:
            if line.instr is None:
                continue
            addr = line.byte_addr
            depth_in[addr] = depth
            key = line.instr.key
            if key == "push":
                depth += 1
            elif key == "pop":
                if depth == 0:
                    raise RewriteError(
                        "pop without a matching push at 0x{:04x}: the "
                        "module would pop its caller's frame"
                        .format(addr))
                depth -= 1
            elif key in ("brbs", "brbc"):
                target = addr + 2 + 2 * line.instr.operands[1]
                edges.append((target, addr, depth))
            elif key in ("jmp", "rjmp"):
                edges.append((self._static_target(line), addr, depth))
            elif key == "ret" and depth != 0:
                raise RewriteError(
                    "ret at 0x{:04x} with {} unmatched push(es)"
                    .format(addr, depth))
        for target, addr, edge_depth in edges:
            if depth_in.get(target, edge_depth) != edge_depth:
                raise RewriteError(
                    "branch at 0x{:04x} changes the push depth ({} -> "
                    "{} at 0x{:04x})".format(
                        addr, edge_depth, depth_in.get(target), target))

    def _find_entries(self, module, lines, exports, entries):
        addrs = set()
        for name in list(exports) + list(entries):
            addrs.add(module.symbol(name))
        lo, hi = module.extent()
        lo *= 2
        hi = hi * 2 + 1
        for line in lines:
            if line.instr is None:
                continue
            key = line.instr.key
            if key in ("call", "rcall"):
                target = self._static_target(line)
                if lo <= target <= hi:
                    addrs.add(target)
        return addrs

    @staticmethod
    def _static_target(line):
        instr = line.instr
        if instr.key in ("rcall", "rjmp"):
            return line.byte_addr + 2 + 2 * instr.operands[0]
        if instr.key in ("call", "jmp"):
            return instr.operands[0] * 2
        raise ValueError(instr.key)

    # ------------------------------------------------------------------
    def _transform(self, line, stats):
        """Map one original instruction to its sandboxed item sequence."""
        instr = line.instr
        key = instr.key
        spec = instr.spec
        old = line.byte_addr

        if key in self.FORBIDDEN:
            raise RewriteError("forbidden instruction {!r} at 0x{:04x}"
                               .format(key, old))
        if key == "out" and instr.operands[0] in (IoReg.SPL, IoReg.SPH):
            raise RewriteError(
                "module writes the stack pointer at 0x{:04x}".format(old))
        if key == "out" and instr.operands[0] in IoReg.UMPU_REGISTERS:
            raise RewriteError(
                "module writes a protection register at 0x{:04x}".format(old))

        if spec.kind == "store" or key == "sts":
            stats["stores"] += 1
            if old in self._elide:
                stats["elided_stores"] += 1
                return [_Item(key, instr.operands, old_addr=old,
                              store_site=old)]
            return self._rewrite_store(instr, old)
        if key == "icall":
            stats["icalls"] += 1
            return [_Item("call", (("sym", "hb_xdom_call"),), old_addr=old)]
        if key in ("call", "rcall"):
            target = self._static_target(line)
            if self.layout.jt_base <= target < self.layout.jt_end:
                stats["cross_calls"] += 1
                return self._rewrite_cross_call(target, old)
            # internal (or runtime) call: map the target at layout time
            return [_Item("call", (("old", target),), old_addr=old)]
        if key in ("jmp", "rjmp"):
            target = self._static_target(line)
            return [_Item("rjmp", (("oldbody", target),), old_addr=old)]
        if key == "ret":
            stats["rets"] += 1
            return [
                _Item("call", (("sym", "hb_restore_ret"),), old_addr=old),
                _Item("ret", ()),
            ]
        if key in ("brbs", "brbc"):
            target = old + 2 + 2 * instr.operands[1]
            return [_Item(key, (instr.operands[0], ("oldbody", target)),
                          old_addr=old)]
        # everything else is safe and position-independent
        return [_Item(key, instr.operands, old_addr=old)]

    # ------------------------------------------------------------------
    def _rewrite_store(self, instr, old):
        spec = instr.spec
        items = []

        def ins(key, *ops):
            items.append(_Item(key, tuple(ops),
                               old_addr=old if not items else None,
                               store_site=old if key == "call" else None))

        if instr.key == "sts":
            addr, reg = instr.operands
            if reg != 18:
                ins("push", 18)
                ins("mov", 18, reg)
            ins("push", 26)
            ins("push", 27)
            ins("ldi", 26, addr & 0xFF)
            ins("ldi", 27, (addr >> 8) & 0xFF)
            ins("call", ("sym", "hb_st_sts"))
            ins("pop", 27)
            ins("pop", 26)
            if reg != 18:
                ins("pop", 18)
            return items

        ptr = spec.modes["ptr"]
        displaced = spec.modes.get("disp", False)
        post_inc = spec.modes.get("post_inc", False)
        pre_dec = spec.modes.get("pre_dec", False)
        reg = instr.operands[-1]
        q = instr.operand("q") if displaced else 0
        if ptr == "X" and displaced:
            raise RewriteError("st X with displacement cannot exist")
        if ptr != "X" and not (post_inc or pre_dec):
            displaced = True  # plain st Y/Z is the q=0 displaced form
        stub = STORE_STUBS[(ptr, post_inc, pre_dec, displaced)]

        if reg != 18:
            ins("push", 18)
            ins("mov", 18, reg)
        if displaced:
            ins("push", 19)
            ins("ldi", 19, q)
        ins("call", ("sym", stub))
        if displaced:
            ins("pop", 19)
        if reg != 18:
            ins("pop", 18)
        return items

    def _rewrite_cross_call(self, target, old):
        word = target // 2
        return [
            _Item("push", (30,), old_addr=old),
            _Item("push", (31,)),
            _Item("ldi", (30, word & 0xFF)),
            _Item("ldi", (31, (word >> 8) & 0xFF)),
            _Item("call", (("sym", "hb_xdom_call"),)),
            _Item("pop", (31,)),
            _Item("pop", (30,)),
        ]

    # ------------------------------------------------------------------
    def _layout(self, items, new_origin):
        """Assign addresses and relax out-of-range branches to fixpoint."""
        for _round in range(64):
            addr = new_origin
            addr_map = {}
            body_map = {}
            for item in items:
                item.compute_size()
                item.new_addr = addr
                if item.old_addr is not None:
                    # first item claiming an old address wins: an
                    # inserted prologue must shadow the instruction it
                    # precedes so that calls enter through it...
                    if item.old_addr not in addr_map:
                        addr_map[item.old_addr] = addr
                    # ...but jumps and branches resolve past the
                    # prologue (re-executing hb_save_ret without a call
                    # frame would desync the safe stack)
                    if not item.prologue and item.old_addr not in \
                            body_map:
                        body_map[item.old_addr] = addr
                addr += item.size_words * 2
            self._body_map = body_map
            relaxed = self._relax(items, addr_map)
            if not relaxed:
                self._addr_map = addr_map
                return items
            items = relaxed
        raise RewriteError("branch relaxation did not converge")

    def _resolve(self, op, addr_map):
        if not _is_placeholder(op):
            return op
        kind, value = op
        if kind == "sym":
            return self.runtime[value]
        if kind == "abs":
            return value
        if kind in ("old", "oldbody"):
            table = self._body_map if kind == "oldbody" else addr_map
            if value not in table:
                raise RewriteError(
                    "branch/call into unmapped address 0x{:04x} "
                    "(outside the module?)".format(value))
            return table[value]
        raise ValueError(op)

    def _relax(self, items, addr_map):
        """Return a new item list if any branch needed relaxation."""
        out = []
        changed = False
        for item in items:
            if item.key in ("brbs", "brbc") and _is_placeholder(
                    item.operands[1]):
                target = self._resolve(item.operands[1], addr_map)
                off = (target - (item.new_addr + 2)) // 2
                if not -64 <= off <= 63:
                    # invert the branch over an rjmp
                    inv = "brbc" if item.key == "brbs" else "brbs"
                    out.append(_Item(inv, (item.operands[0], ("skip", 1)),
                                     old_addr=item.old_addr))
                    out.append(_Item("rjmp", (item.operands[1],)))
                    changed = True
                    continue
            if item.key == "rjmp" and _is_placeholder(item.operands[0]):
                target = self._resolve(item.operands[0], addr_map)
                off = (target - (item.new_addr + 2)) // 2
                if not -2048 <= off <= 2047:
                    out.append(_Item("jmp", item.operands,
                                     old_addr=item.old_addr))
                    changed = True
                    continue
            out.append(item)
        return out if changed else None

    # ------------------------------------------------------------------
    def _emit(self, module, items, new_origin, exports, stats):
        addr_map = self._addr_map
        program = Program(source_name="{}@rewritten".format(
            module.source_name))
        end = new_origin
        for index, item in enumerate(items):
            operands = []
            for op in item.operands:
                if isinstance(op, tuple) and op[0] == "skip":
                    # branch over the next instruction (the relaxation
                    # rjmp/jmp); offset = its size in words
                    operands.append(items[index + 1].size_words)
                elif _is_placeholder(op):
                    target = self._resolve(op, addr_map)
                    operands.append(
                        self._encode_target(item, target))
                else:
                    operands.append(op)
            if item.key == "data":
                program.set_word(item.new_addr // 2, operands[0])
                end = item.new_addr + 2
                continue
            words = encode(item.key, tuple(operands))
            for i, w in enumerate(words):
                program.set_word(item.new_addr // 2 + i, w)
            end = item.new_addr + 2 * len(words)
        # translate symbols
        lo, hi = module.extent()
        for name, old in module.symbols.items():
            if old in addr_map:
                program.symbols[name] = addr_map[old]
        export_map = {name: addr_map[module.symbol(name)]
                      for name in exports}
        stats["size_in"] = module.code_bytes
        stats["size_out"] = end - new_origin
        store_sites = {}
        elided_sites = {}
        for item in items:
            if item.store_site is None:
                continue
            if item.key == "call":
                store_sites[item.store_site] = item.new_addr
            else:
                elided_sites[item.store_site] = item.new_addr
        return RewrittenModule(program=program, start=new_origin, end=end,
                               addr_map=dict(addr_map),
                               exports=export_map, stats=stats,
                               store_sites=store_sites,
                               elided_sites=elided_sites)

    @staticmethod
    def _encode_target(item, target_byte):
        if item.key in ("brbs", "brbc", "rjmp", "rcall"):
            return (target_byte - (item.new_addr + 2)) // 2
        if item.key in ("jmp", "call"):
            return target_byte // 2
        raise ValueError(item.key)
