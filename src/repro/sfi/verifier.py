"""On-node binary verifier (paper §1.2, §4).

The verifier runs on every sensor node and independently checks that a
module binary is properly sandboxed *before* it is admitted; Harbor's
safety rests on it (and the runtime), not on the rewriter.  It is a
single linear scan needing only *constant state* — the design point the
paper calls out: a few booleans/registers carried across instructions,
no per-instruction tables.

Accepted modules satisfy:

1. every word decodes to a known instruction (pure code);
2. no store instructions (``st``/``std``/``sts``), no ``ijmp``/``icall``,
   no ``break``/``reti``/``sleep``/``wdr``, no writes to SPL/SPH, SREG
   or protection state, no ``sbi``/``cbi``/``out`` outside the allowed
   I/O set;
3. every static call targets either the module itself or a runtime
   check entry point (never the jump table directly — cross-domain
   transfers must go through ``hb_xdom_call``);
4. every static jump/branch stays inside the module;
5. every ``ret`` is immediately preceded by ``call hb_restore_ret``
   (the constant state: one "just saw the restore stub" flag);
6. a 32-bit instruction is never branched into the middle of — enforced
   structurally by linear decode plus (3)/(4) confining targets to
   decoded instruction boundaries;
7. the save/restore protocol sites are entered the one way the runtime
   assumes: a ``call hb_save_ret`` prologue is reached **only by a
   call** (never by fall-through, jump, branch or skip — it reads the
   caller frame the call just pushed), every internal call enters
   through such a prologue, and no jump/branch/skip lands directly on
   a ``ret`` (which would bypass the restore stub rule (5) checked
   statically).  Violations are the save/restore *desync* family: an
   unpaired save spools a garbage word to the safe stack, and once the
   pop order is off by one a later cross-domain return reinterprets
   module-controlled words as a saved domain/stack-bound frame;
8. push/pop traffic is *depth-consistent*: the net push depth along the
   linear scan never goes negative, is zero at every ``call
   hb_restore_ret`` and every prologue, and every jump/branch/skip edge
   lands at its own depth.  ``hb_restore_ret`` rewrites the return-
   address slot at a fixed offset from SP, so any stack-pointer drift
   the module smuggles past this rule would point the rewrite (and the
   following ``ret``) at a module-controlled slot.  The bookkeeping is
   one counter plus a per-boundary depth record — the same class of
   state as the boundary set of rule 6.
"""

from dataclasses import dataclass, field

from repro.asm.disassembler import disassemble
from repro.isa.registers import IoReg
from repro.sfi.layout import SfiLayout
from repro.sfi.runtime_asm import RUNTIME_ENTRIES


class VerifyError(Exception):
    """The module failed verification.

    Carries the offending address and the stable harbor-lint rule code
    (``HL0xx``, see :mod:`repro.analysis.static.diagnostics`) naming the
    violated rule — the same codes the whole-image analyzer emits.
    """

    def __init__(self, message, byte_addr=None, rule=None):
        self.byte_addr = byte_addr
        self.rule = rule
        if byte_addr is not None:
            message = "{} (at 0x{:04x})".format(message, byte_addr)
        super().__init__(message)


@dataclass
class VerifyReport:
    """Outcome of a successful verification."""

    start: int
    end: int
    instructions: int = 0
    calls_to_runtime: int = 0
    internal_calls: int = 0
    rets: int = 0
    elided_stores: int = 0
    boundaries: set = field(default_factory=set)


class Verifier:
    """Constant-state linear verifier for rewritten modules."""

    FORBIDDEN_KEYS = frozenset({
        "st_x", "st_xp", "st_mx", "st_yp", "st_my", "st_zp", "st_mz",
        "std_y", "std_z", "sts",
        "ijmp", "icall", "break", "reti", "sleep", "wdr",
    })

    #: store keys within FORBIDDEN_KEYS (their violations are HL001,
    #: everything else HL005)
    STORE_KEYS = frozenset({
        "st_x", "st_xp", "st_mx", "st_yp", "st_my", "st_zp", "st_mz",
        "std_y", "std_z", "sts",
    })

    #: keys after which execution cannot fall through to the next
    #: instruction (rule 7: the only ones allowed to precede a
    #: ``call hb_save_ret`` prologue)
    NO_FALL_THROUGH_KEYS = frozenset({"ret", "rjmp", "jmp"})

    def __init__(self, runtime_symbols, layout=None, allowed_io=()):
        self.layout = layout or SfiLayout()
        self.entry_addrs = {runtime_symbols[name]
                            for name in RUNTIME_ENTRIES
                            if name in runtime_symbols}
        self.restore_addr = runtime_symbols.get("hb_restore_ret")
        self.save_addr = runtime_symbols.get("hb_save_ret")
        self.allowed_io = frozenset(allowed_io)
        self._collector = None

    # ------------------------------------------------------------------
    def _violation(self, rule, message, byte_addr=None):
        """Report one violation: raise (default, fail-fast) or collect
        into the multi-diagnostic engine when scanning via verify_all."""
        if self._collector is not None:
            self._collector.emit(rule, message, byte_addr=byte_addr)
            return
        raise VerifyError(message, byte_addr, rule=rule)

    def verify_all(self, flash_words, start, end, manifest=None):
        """Scan the whole module and collect *every* violation instead
        of stopping at the first — returns a
        :class:`~repro.analysis.static.diagnostics.DiagnosticsEngine`
        (empty when the module verifies).  The fail-fast :meth:`verify`
        stays the admission default; this mode serves toolchain
        diagnostics (``harbor-lint``)."""
        from repro.analysis.static.diagnostics import DiagnosticsEngine
        engine = DiagnosticsEngine()
        self._collector = engine
        try:
            self.verify(flash_words, start, end, manifest=manifest)
        finally:
            self._collector = None
        return engine

    # ------------------------------------------------------------------
    def verify(self, flash_words, start, end, manifest=None):
        """Verify the module occupying byte range [start, end).

        *flash_words* is the word image (list or Program).  Returns a
        :class:`VerifyReport`; raises :class:`VerifyError` on rejection.

        *manifest* is an optional
        :class:`~repro.analysis.static.elision.ElisionManifest`: a raw
        store is admitted iff the manifest's checksum matches the image
        byte-for-byte and the store's address/key is listed as a proved
        site.  The linear verifier deliberately checks only the binding
        (checksum + site membership) — re-proving the interval facts is
        the whole-image analyzer's job (it re-runs the prover), keeping
        this scan constant-state as the paper requires.
        """
        if hasattr(flash_words, "word"):
            hi = end // 2
            flash_words = [flash_words.word(i) for i in range(hi)]
        self._manifest_sites = {}
        if manifest is not None:
            from repro.analysis.static.elision import image_checksum
            limit = len(flash_words)
            actual = image_checksum(
                lambda i: flash_words[i] if i < limit else 0xFFFF,
                start, end)
            if manifest.start != start or manifest.end != end or \
                    actual != manifest.checksum:
                self._violation(
                    "HL014",
                    "elision manifest does not match the image "
                    "(stale manifest or patched image)", start)
            else:
                self._manifest_sites = {site.pc: site
                                        for site in manifest.sites}
        lines = disassemble(flash_words, start_word=start // 2,
                            count_words=(end - start) // 2)
        report = VerifyReport(start=start, end=end)
        self._report = report
        saw_restore_call = False
        branch_targets = []
        jump_targets = []    # (target, addr, depth): no call edges
        internal_calls = []
        save_sites = []      # (addr, key of the preceding instruction)
        ret_addrs = set()
        prev_key = None
        skip_addr = None     # pending skip instruction, if any
        depth = 0            # net push depth along the linear scan
        depth_in = {}        # byte addr -> depth on entry (rule 8)
        for line in lines:
            addr = line.byte_addr
            report.boundaries.add(addr)
            depth_in[addr] = depth
            if line.instr is None:
                self._violation(
                    "HL011", "undecodable word 0x{:04x}"
                    .format(line.words[0]), addr)
                prev_key = None
                skip_addr = None
                continue
            key = line.instr.key
            if skip_addr is not None:
                # a skip leaps over exactly this instruction: its
                # landing point is an implicit control-transfer target
                landing = addr + 2 * len(line.words)
                if landing < end:
                    jump_targets.append((landing, skip_addr, depth))
                else:
                    self._violation(
                        "HL006",
                        "skip over the last instruction escapes the "
                        "sandbox", skip_addr)
                skip_addr = None
            report.instructions += 1
            if key in self.FORBIDDEN_KEYS:
                self._forbidden_key(key, line, branch_targets)
            self._check_io(line, addr)
            was_restore = saw_restore_call
            saw_restore_call = False
            if key in ("call", "rcall"):
                target = self._static_target(line)
                if target in self.entry_addrs:
                    report.calls_to_runtime += 1
                    if target == self.restore_addr:
                        saw_restore_call = True
                        if depth != 0:
                            self._violation(
                                "HL016",
                                "call hb_restore_ret with {} unmatched "
                                "push(es): the restore stub would "
                                "rewrite the wrong stack slot"
                                .format(depth), addr)
                    if target == self.save_addr:
                        save_sites.append((addr, prev_key))
                elif start <= target < end:
                    report.internal_calls += 1
                    branch_targets.append((target, addr))
                    internal_calls.append((target, addr))
                else:
                    self._violation(
                        "HL002" if self._in_jump_table(target)
                        else "HL006",
                        "call escapes the sandbox (target 0x{:04x})"
                        .format(target), addr)
            elif key in ("jmp", "rjmp"):
                target = self._static_target(line)
                if target in self._allowed_jump_exits():
                    pass  # e.g. the fault entry inside an inline check
                elif not start <= target < end:
                    self._violation(
                        "HL002" if self._in_jump_table(target)
                        else "HL006",
                        "jump escapes the sandbox (target 0x{:04x})"
                        .format(target), addr)
                else:
                    branch_targets.append((target, addr))
                    jump_targets.append((target, addr, depth))
            elif key in ("brbs", "brbc"):
                target = addr + 2 + 2 * line.instr.operands[-1]
                if not start <= target < end:
                    self._violation(
                        "HL006",
                        "branch escapes the sandbox (target 0x{:04x})"
                        .format(target), addr)
                else:
                    branch_targets.append((target, addr))
                    jump_targets.append((target, addr, depth))
            elif line.instr.spec.kind == "skip":
                skip_addr = addr
            elif key == "push":
                depth += 1
            elif key == "pop":
                if depth == 0:
                    self._violation(
                        "HL016",
                        "pop without a matching push pops the caller's "
                        "frame (stack-pointer drift)", addr)
                else:
                    depth -= 1
            elif key == "ret":
                report.rets += 1
                ret_addrs.add(addr)
                if not was_restore:
                    self._violation(
                        "HL003",
                        "ret not preceded by call hb_restore_ret", addr)
            prev_key = key
        if skip_addr is not None:
            self._violation(
                "HL006",
                "skip as the last instruction escapes the sandbox",
                skip_addr)
        # second half of the constant-state scan: every internal control
        # transfer must land on an instruction boundary
        for target, addr in branch_targets:
            if target not in report.boundaries:
                self._violation(
                    "HL004",
                    "control transfer into the middle of an instruction "
                    "(target 0x{:04x})".format(target), addr)
        self._check_save_restore_discipline(
            save_sites, internal_calls, jump_targets, ret_addrs,
            depth_in, start)
        self._check_protected_targets(branch_targets)
        return report

    def _check_save_restore_discipline(self, save_sites, internal_calls,
                                       jump_targets, ret_addrs,
                                       depth_in, start):
        """Rule 7: the safe-stack protocol sites must only be reachable
        the way the runtime assumes (see the module docstring).

        ``hb_save_ret`` reads the return address out of the frame the
        entering ``call`` just pushed; executing it on any other path
        spools a garbage word onto the safe stack, and an off-by-one in
        the pop order later hands module-controlled words back as a
        saved domain/stack-bound frame — a full isolation escape (found
        by the hostile-module fuzzer, ``repro.soundness``)."""
        save_set = {addr for addr, _ in save_sites}
        for addr, prev in save_sites:
            if addr != start and prev not in self.NO_FALL_THROUGH_KEYS:
                self._violation(
                    "HL015",
                    "hb_save_ret prologue reachable by fall-through "
                    "(would run without a call frame)", addr)
            if depth_in.get(addr, 0) != 0:
                self._violation(
                    "HL016",
                    "hb_save_ret prologue at nonzero push depth",
                    addr)
        for target, addr in internal_calls:
            if target not in save_set:
                self._violation(
                    "HL015",
                    "internal call bypasses the hb_save_ret prologue "
                    "(target 0x{:04x})".format(target), addr)
        for target, addr, edge_depth in jump_targets:
            if target in save_set:
                self._violation(
                    "HL015",
                    "jump, branch or skip into a hb_save_ret prologue "
                    "(target 0x{:04x})".format(target), addr)
            if target in ret_addrs:
                self._violation(
                    "HL003",
                    "jump, branch or skip to ret bypasses "
                    "hb_restore_ret (target 0x{:04x})".format(target),
                    addr)
            if depth_in.get(target, edge_depth) != edge_depth:
                self._violation(
                    "HL016",
                    "control transfer changes the push depth ({} -> {} "
                    "at target 0x{:04x})".format(
                        edge_depth, depth_in.get(target), target),
                    addr)

    def _in_jump_table(self, target):
        return self.layout.jt_base <= target < self.layout.jt_end

    # --- extension hooks (the verifier design space, see
    # repro.sfi.inline.TemplateVerifier) --------------------------------
    def _forbidden_key(self, key, line, branch_targets):
        if key in self.STORE_KEYS:
            site = getattr(self, "_manifest_sites", {}).get(line.byte_addr)
            if site is not None and site.key == key:
                # proof-carrying image: the manifest (checksum-bound to
                # this exact image) lists this raw store as proved
                self._report.elided_stores += 1
                return
            self._violation(
                "HL001", "forbidden instruction {!r}".format(key),
                line.byte_addr)
            return
        self._violation(
            "HL005", "forbidden instruction {!r}".format(key),
            line.byte_addr)

    def _check_protected_targets(self, branch_targets):
        """No protected ranges in the constant-state verifier."""

    def _allowed_jump_exits(self):
        """Jump targets outside the module a variant may admit."""
        return frozenset()

    # ------------------------------------------------------------------
    def _check_io(self, line, addr):
        key = line.instr.key
        if key == "out":
            io = line.instr.operands[0]
            if io in (IoReg.SPL, IoReg.SPH, IoReg.SREG):
                self._violation(
                    "HL007",
                    "write to protected I/O register 0x{:02x}".format(io),
                    addr)
            elif io in IoReg.UMPU_REGISTERS:
                self._violation(
                    "HL007",
                    "write to protection register 0x{:02x}".format(io),
                    addr)
            elif io not in self.allowed_io:
                self._violation(
                    "HL007",
                    "write to unapproved I/O register 0x{:02x}".format(io),
                    addr)
        if key in ("sbi", "cbi"):
            io = line.instr.operands[0]
            if io not in self.allowed_io:
                self._violation(
                    "HL007",
                    "bit write to unapproved I/O register 0x{:02x}"
                    .format(io), addr)

    @staticmethod
    def _static_target(line):
        instr = line.instr
        if instr.key in ("rcall", "rjmp"):
            return line.byte_addr + 2 + 2 * instr.operands[0]
        return instr.operands[0] * 2
