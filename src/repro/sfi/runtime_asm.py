"""The Harbor runtime, written in AVR assembly (software-only system).

These are the run-time check routines the paper's binary rewriter makes
modules call: the memory-map checker, the cross-domain call stub, the
safe-stack save/restore stubs, and the protected dynamic-memory library
(`malloc`/`free`/`change_own`), plus unprotected baselines for the
Table 4 comparison.  They live in the trusted domain; "modules invoke
the run-time checks by calling or jumping into the appropriate routines
located in the trusted domain" — the checks are deliberately *not*
inlined to keep module code small.

Protection state lives in trusted SRAM globals (see
:class:`~repro.sfi.layout.SfiLayout`); faults store a code + address and
execute ``break``, which the host harness maps back to the typed
exceptions.

Register conventions (documented for the rewriter):

* value to store: r18; displacement: r19 (store stubs)
* cross-domain target (flash word address): Z
* r1 is always zero (gcc convention; the verifier enforces that module
  code never leaves it dirty)
* all store/save/restore stubs preserve every register and SREG,
  *except* the architectural pointer side effect of the addressed mode:
  ``hb_st_*_plus`` leaves the pointer pair incremented and
  ``hb_st_*_dec`` leaves it decremented, exactly as the raw instruction
  would have.  The static analyzer's call models
  (:data:`repro.analysis.static.elision.STUB_EFFECTS`) encode this
  contract; keep them in sync when touching stub bodies.
* the allocator entry points follow the avr-gcc ABI (args/result in
  r24:25, r22; r18-r27/r30/r31 caller-saved)
"""

from repro.asm.assembler import Assembler
from repro.sfi.layout import (
    FAULT_JT,
    FAULT_MEMMAP,
    FAULT_OUTSIDE,
    FAULT_OWNERSHIP,
    FAULT_SS_OVERFLOW,
    FAULT_STACK_BOUND,
    SfiLayout,
)

#: Store-stub entry points by (pointer, post_inc, pre_dec, displaced).
STORE_STUBS = {
    ("X", False, False, False): "hb_st_x",
    ("X", True, False, False): "hb_st_x_plus",
    ("X", False, True, False): "hb_st_x_dec",
    ("Y", True, False, False): "hb_st_y_plus",
    ("Y", False, True, False): "hb_st_y_dec",
    ("Y", False, False, True): "hb_st_y_q",
    ("Z", True, False, False): "hb_st_z_plus",
    ("Z", False, True, False): "hb_st_z_dec",
    ("Z", False, False, True): "hb_st_z_q",
}

#: All runtime entry points a rewritten module may call into.
RUNTIME_ENTRIES = sorted(set(STORE_STUBS.values()) | {
    "hb_st_sts",
    "hb_xdom_call",
    "hb_save_ret",
    "hb_restore_ret",
    "hb_malloc",
    "hb_free",
    "hb_change_own",
})


def _fault_handlers():
    return f"""
; ---------------------------------------------------------------- faults
; fault code in r20, faulting address in X (where meaningful); the
; node halts and the host harness raises the typed exception.
hb_fault_r20:
    sts HB_FAULT_CODE, r20
    sts HB_FAULT_ADDR, r26
    sts HB_FAULT_ADDR + 1, r27
    break
    rjmp hb_fault_r20          ; not reached
"""


def _checker():
    """The software memory-map checker (paper Table 3: 65 cycles)."""
    return f"""
; ---------------------------------------------------------- hb_check_x
; Validate a store to [X] by the current domain.  Preserves all
; registers and SREG; falls into hb_fault_r20 on violation.
;
; Rule (golden model: repro.core.checker.WriteChecker):
;   trusted -> ok
;   X > stack_bound -> stack-bound fault
;   X in [PROT_BOT, PROT_TOP] -> memory-map ownership check
;   X > PROT_TOP (own stack window) -> ok
;   else -> outside-region fault
hb_check_x:
    push r0
    in r0, SREG
    push r20
    push r21
    push r30
    push r31
    lds r20, HB_CUR_DOM
    cpi r20, HB_TRUSTED
    breq hbc_ok
    ; stack bound: fault if SB < X
    lds r30, HB_SB_LO
    lds r31, HB_SB_HI
    cp r30, r26
    cpc r31, r27
    brlo hbc_sb_fault
    ; below protected region?
    ldi r30, lo8(HB_PROT_BOT)
    ldi r31, hi8(HB_PROT_BOT)
    cp r26, r30
    cpc r27, r31
    brlo hbc_outside
    ; above protected region (own stack window)?
    ldi r30, lo8(HB_PROT_TOP)
    ldi r31, hi8(HB_PROT_TOP)
    cp r30, r26
    cpc r31, r27
    brlo hbc_ok
    ; --- memory map lookup (Figure: Addr Translate) ---
    movw r30, r26
    subi r30, lo8(HB_PROT_BOT)
    sbci r31, hi8(HB_PROT_BOT)
    lsr r31                    ; block = offset >> BLOCK_LOG2 (3)
    ror r30
    lsr r31
    ror r30
    lsr r31
    ror r30
    bst r30, 0                 ; T = odd block -> high nibble
    lsr r31                    ; index = block >> 1
    ror r30
    subi r30, lo8(-HB_MMAP_TABLE)
    sbci r31, hi8(-HB_MMAP_TABLE)
    ld r21, Z                  ; permission byte
    brtc hbc_low_nibble
    swap r21
hbc_low_nibble:
    andi r21, 0x0F
    lsr r21                    ; owner = code >> 1
    cp r21, r20
    brne hbc_mm_fault
hbc_ok:
    pop r31
    pop r30
    pop r21
    pop r20
    out SREG, r0
    pop r0
    ret
hbc_sb_fault:
    ldi r20, {FAULT_STACK_BOUND}
    rjmp hb_fault_r20
hbc_mm_fault:
    ldi r20, {FAULT_MEMMAP}
    rjmp hb_fault_r20
hbc_outside:
    ldi r20, {FAULT_OUTSIDE}
    rjmp hb_fault_r20
"""


def _store_stubs():
    """One stub per addressing-mode family (value in r18, disp in r19).

    Each performs exactly the original instruction's effect (including
    pointer side effects) after the check, and preserves everything
    else.
    """
    return """
; ------------------------------------------------------------ store stubs
hb_st_x:                       ; st X, r18
    call hb_check_x
    st X, r18
    ret
hb_st_x_plus:                  ; st X+, r18
    call hb_check_x
    st X+, r18
    ret
hb_st_x_dec:                   ; st -X, r18
    push r0
    in r0, SREG
    sbiw r26, 1
    call hb_check_x
    st X, r18
    out SREG, r0
    pop r0
    ret
hb_st_y_plus:                  ; st Y+, r18
    push r0
    in r0, SREG
    push r26
    push r27
    movw r26, r28
    call hb_check_x
    st X, r18
    adiw r28, 1
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hb_st_y_dec:                   ; st -Y, r18
    push r0
    in r0, SREG
    push r26
    push r27
    sbiw r28, 1
    movw r26, r28
    call hb_check_x
    st X, r18
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hb_st_y_q:                     ; std Y+r19, r18
    push r0
    in r0, SREG
    push r26
    push r27
    movw r26, r28
    add r26, r19
    adc r27, r1
    call hb_check_x
    st X, r18
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hb_st_z_plus:                  ; st Z+, r18
    push r0
    in r0, SREG
    push r26
    push r27
    movw r26, r30
    call hb_check_x
    st X, r18
    adiw r30, 1
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hb_st_z_dec:                   ; st -Z, r18
    push r0
    in r0, SREG
    push r26
    push r27
    sbiw r30, 1
    movw r26, r30
    call hb_check_x
    st X, r18
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hb_st_z_q:                     ; std Z+r19, r18
    push r0
    in r0, SREG
    push r26
    push r27
    movw r26, r30
    add r26, r19
    adc r27, r1
    call hb_check_x
    st X, r18
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hb_st_sts:                     ; sts <X preloaded by rewriter>, r18
    call hb_check_x
    st X, r18
    ret
"""


def _safe_stack_stubs():
    """Function prologue/epilogue stubs (paper Table 3: 38/38 cycles).

    ``hb_save_ret`` copies the caller's return address (2 bytes above
    our own frame on the run-time stack) to the safe stack;
    ``hb_restore_ret`` pops it back and *overwrites* the run-time-stack
    slot just before the function's ``ret`` consumes it — the run-time
    stack layout is never changed, only re-validated.
    """
    return f"""
; ----------------------------------------------------------- safe stack
hb_save_ret:
    push r0
    in r0, SREG
    push r26
    push r27
    push r30
    push r31
    in r26, SPL
    in r27, SPH
    adiw r26, 8                ; -> caller ret hi byte
    ld r30, X+                 ; ret_hi
    ld r31, X                  ; ret_lo
    lds r26, HB_SS_LO
    lds r27, HB_SS_HI
    cpi r27, hi8(HB_SS_LIMIT)
    brsh hbs_ss_fault
    st X+, r31                 ; frame: ret_lo then ret_hi, growing up
    st X+, r30
    sts HB_SS_LO, r26
    sts HB_SS_HI, r27
    pop r31
    pop r30
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
hbs_ss_fault:
    push r20
    ldi r20, {FAULT_SS_OVERFLOW}
    rjmp hb_fault_r20

hb_restore_ret:
    push r0
    in r0, SREG
    push r26
    push r27
    push r30
    push r31
    lds r26, HB_SS_LO
    lds r27, HB_SS_HI
    sbiw r26, 2
    cpi r27, hi8(HB_SS_BASE)
    brlo hbs_ss_fault
    sts HB_SS_LO, r26
    sts HB_SS_HI, r27
    ld r30, X+                 ; ret_lo
    ld r31, X                  ; ret_hi
    in r26, SPL
    in r27, SPH
    adiw r26, 8                ; -> caller ret hi slot
    st X+, r31                 ; overwrite hi
    st X, r30                  ; overwrite lo
    pop r31
    pop r30
    pop r27
    pop r26
    out SREG, r0
    pop r0
    ret
"""


def _cross_domain(layout):
    """Cross-domain call/return stub (paper Table 3: 65/28 cycles).

    Entered with Z = target flash *word* address (a jump-table entry).
    Verifies the target, pushes the 5-byte frame, activates the callee
    domain, ``icall``s through the jump table; on the way back restores
    the caller's domain and stack bound from the safe stack.
    """
    if layout.jt_page_log2 != 9:
        raise ValueError("the assembly stub is generated for 512-byte "
                         "jump-table pages (one shift-free divide)")
    return f"""
; ----------------------------------------------------- cross-domain call
hb_xdom_call:
    pop r19                    ; module return address, hi
    pop r18                    ; lo
    sts HB_SCRATCH, r18
    sts HB_SCRATCH + 1, r19
    push r0
    in r0, SREG
    ; verify Z in [JT_BASE/2, JT_END/2)
    ldi r18, lo8(HB_JT_BASE >> 1)
    ldi r19, hi8(HB_JT_BASE >> 1)
    cp r30, r18
    cpc r31, r19
    brsh hbx_base_ok
    rjmp hbx_jt_fault
hbx_base_ok:
    ldi r18, lo8(HB_JT_END >> 1)
    ldi r19, hi8(HB_JT_END >> 1)
    cp r30, r18
    cpc r31, r19
    brlo hbx_end_ok
    rjmp hbx_jt_fault
hbx_end_ok:
    ; callee domain = (Z - JT_BASE/2) >> 8   (512-byte page = 256 words)
    movw r18, r30
    subi r18, lo8(HB_JT_BASE >> 1)
    sbci r19, hi8(HB_JT_BASE >> 1)
    mov r18, r19               ; r18 = callee domain id
    ; safe stack frame: [prev_dom][sb_lo][sb_hi][ret_lo][ret_hi]
    lds r26, HB_SS_LO
    lds r27, HB_SS_HI
    cpi r27, hi8(HB_SS_LIMIT)
    brlo hbx_room_ok
    rjmp hbx_ss_fault
hbx_room_ok:
    lds r19, HB_CUR_DOM
    st X+, r19
    lds r19, HB_SB_LO
    st X+, r19
    lds r19, HB_SB_HI
    st X+, r19
    lds r19, HB_SCRATCH
    st X+, r19
    lds r19, HB_SCRATCH + 1
    st X+, r19
    sts HB_SS_LO, r26
    sts HB_SS_HI, r27
    ; activate callee: cur_dom = callee, stack_bound = SP
    sts HB_CUR_DOM, r18
    in r26, SPL
    in r27, SPH
    sts HB_SB_LO, r26
    sts HB_SB_HI, r27
    out SREG, r0
    pop r0
    icall
    ; ------------------------------------------------ cross-domain return
    push r0
    in r0, SREG
    lds r26, HB_SS_LO
    lds r27, HB_SS_HI
    sbiw r26, 5
    cpi r27, hi8(HB_SS_BASE)
    brsh hbx_pop_ok
    rjmp hbx_ss_fault
hbx_pop_ok:
    sts HB_SS_LO, r26
    sts HB_SS_HI, r27
    ld r18, X+                 ; prev domain
    sts HB_CUR_DOM, r18
    ld r18, X+                 ; prev stack bound
    sts HB_SB_LO, r18
    ld r18, X+
    sts HB_SB_HI, r18
    ld r19, X+                 ; ret_lo
    ld r18, X                  ; ret_hi
    out SREG, r0
    pop r0
    push r19                   ; rebuild run-time-stack return address
    push r18
    ret
hbx_jt_fault:
    movw r26, r30
    ldi r20, {FAULT_JT}
    rjmp hb_fault_r20
hbx_ss_fault:
    ldi r20, {FAULT_SS_OVERFLOW}
    rjmp hb_fault_r20
"""


def _memmap_mark():
    """Mark a run of blocks in the memory map.

    in: X = segment base address, r20:21 = length in bytes (block
    multiple), r18 = code for the first block, r19 = code for the rest.
    clobbers r18-r23, r26, r27, r30, r31.
    """
    return """
; -------------------------------------------------------- hb_mmap_mark
hb_mmap_mark:
    movw r30, r26
    subi r30, lo8(HB_PROT_BOT)
    sbci r31, hi8(HB_PROT_BOT)
    lsr r31                    ; block number
    ror r30
    lsr r31
    ror r30
    lsr r31
    ror r30
    lsr r21                    ; block count
    ror r20
    lsr r21
    ror r20
    lsr r21
    ror r20
    mov r23, r18               ; r23 = swap(first code) for odd blocks
    swap r23
mmk_loop:
    movw r26, r30
    lsr r27                    ; byte index = block >> 1
    ror r26
    subi r26, lo8(-HB_MMAP_TABLE)
    sbci r27, hi8(-HB_MMAP_TABLE)
    ld r22, X
    sbrc r30, 0
    rjmp mmk_high
    andi r22, 0xF0
    or r22, r18
    rjmp mmk_store
mmk_high:
    andi r22, 0x0F
    or r22, r23
mmk_store:
    st X, r22
    mov r18, r19               ; subsequent blocks use the rest code
    mov r23, r19
    swap r23
    adiw r30, 1
    subi r20, 1
    sbci r21, 0
    brne mmk_loop
    ret
"""


def _owner_check():
    """Ownership check of the segment whose base is in X.

    Faults (ownership) unless the current domain is trusted or owns the
    block at X.  clobbers r20, r21, r30, r31.
    """
    return f"""
; ------------------------------------------------------- hb_owner_check
hb_owner_check:
    lds r20, HB_CUR_DOM
    cpi r20, HB_TRUSTED
    breq hoc_ok
    movw r30, r26
    subi r30, lo8(HB_PROT_BOT)
    sbci r31, hi8(HB_PROT_BOT)
    lsr r31
    ror r30
    lsr r31
    ror r30
    lsr r31
    ror r30
    bst r30, 0
    lsr r31
    ror r30
    subi r30, lo8(-HB_MMAP_TABLE)
    sbci r31, hi8(-HB_MMAP_TABLE)
    ld r21, Z
    brtc hoc_low
    swap r21
hoc_low:
    andi r21, 0x0F
    lsr r21
    cp r21, r20
    brne hoc_fault
hoc_ok:
    ret
hoc_fault:
    ldi r20, {FAULT_OWNERSHIP}
    rjmp hb_fault_r20
"""


def _allocator(layout):
    """First-fit allocator, unprotected and protected variants.

    Heap layout: every allocation is preceded by a 4-byte SOS-style
    header [size_lo][size_hi][owner][flags]; free-list nodes reuse the
    first four bytes as [size_lo][size_hi][next_lo][next_hi].  Sizes are
    in bytes, include the header and are block multiples.

    When the layout carves static data spans from the heap top, ``hb_free``
    and ``hb_change_own`` additionally range-check the segment base
    against ``HB_HEAP_DYN_END``: spans are pinned at boot and their
    ownership must stay a build-time constant (the check-elision proofs
    rely on it), so releasing or re-owning one is an ownership fault even
    for the trusted domain.  The guard is only emitted when spans are
    configured, keeping the default runtime image byte-identical.
    """
    if layout.static_data_total:
        free_guard = """
    ldi r30, lo8(HB_HEAP_DYN_END)
    ldi r31, hi8(HB_HEAP_DYN_END)
    cp r26, r30
    cpc r27, r31
    brsh hf_pin_fault"""
        chown_guard = free_guard.replace("hf_pin_fault", "hco_pin_fault")
        free_fault = f"""
hf_pin_fault:
    ldi r20, {FAULT_OWNERSHIP}
    rjmp hb_fault_r20"""
        chown_fault = free_fault.replace("hf_pin_fault", "hco_pin_fault")
    else:
        free_guard = chown_guard = free_fault = chown_fault = ""
    return f"""
; ---------------------------------------------------------- allocator
; hb_malloc_core: r24:25 = user size.
; out: X = segment base (0 on failure), r20:21 = rounded gross size.
; Allocations split from the *tail* of the first fitting free node, so
; a split updates only the node's size field (no pointer surgery).
; clobbers r18, r19, r30, r31.
hb_malloc_core:
    adiw r24, HB_HDR + 7       ; gross = round_to_block(size + header)
    andi r24, 0xF8
    movw r20, r24
    ldi r26, lo8(HB_FREE_LO)   ; X = address of the prev "next" cell
    ldi r27, hi8(HB_FREE_LO)
mc_loop:
    ld r30, X+                 ; Z = candidate node
    ld r31, X
    sbiw r26, 1
    cp r30, r1
    cpc r31, r1
    breq mc_fail               ; Z == 0: out of memory
    ld r18, Z                  ; node size
    ldd r19, Z+1
    cp r18, r20
    cpc r19, r21
    brcc mc_take               ; size >= gross
    movw r26, r30              ; prev cell = &node.next
    adiw r26, 2
    rjmp mc_loop
mc_take:
    sub r18, r20               ; remainder
    sbc r19, r21
    cpi r18, 8
    cpc r19, r1
    brcs mc_whole              ; remainder < one block: take whole node
    st Z, r18                  ; node.size = remainder (node stays free)
    std Z+1, r19
    add r30, r18               ; allocation = node + remainder
    adc r31, r19
    rjmp mc_ret
mc_whole:
    add r20, r18               ; gross = full node size
    adc r21, r19
    ldd r18, Z+2               ; *prev = node.next
    ldd r19, Z+3
    st X+, r18
    st X, r19
mc_ret:
    movw r26, r30              ; X = allocation base
    ret
mc_fail:
    ldi r26, 0
    ldi r27, 0
    ret

; hb_write_header: X = base, r20:21 = gross size; leaves X at base.
hb_write_header:
    st X+, r20                 ; header: size
    st X+, r21
    lds r18, HB_CUR_DOM        ; header: owner
    st X+, r18
    ldi r19, 1                 ; header: flags = allocated
    st X+, r19
    sbiw r26, 4
    ret

; malloc_unprot: r24:25 = size -> r24:25 = user pointer (0 on failure)
malloc_unprot:
    call hb_malloc_core
    cp r26, r1
    cpc r27, r1
    breq mu_fail
    call hb_write_header
    movw r24, r26
    adiw r24, HB_HDR
    ret
mu_fail:
    ldi r24, 0
    ldi r25, 0
    ret

; hb_malloc: protected malloc -> also marks the memory map
hb_malloc:
    call hb_malloc_core
    cp r26, r1
    cpc r27, r1
    breq mu_fail
    call hb_write_header       ; leaves owner in r18
    push r26
    push r27
    ; codes: first = (dom << 1) | 1, rest = dom << 1
    lsl r18
    mov r19, r18
    ori r18, 1
    call hb_mmap_mark
    pop r27
    pop r26
    movw r24, r26
    adiw r24, HB_HDR
    ret

; free_unprot: r24:25 = user pointer
free_unprot:
    sbiw r24, HB_HDR
    movw r26, r24
    adiw r26, 2
    lds r18, HB_FREE_LO        ; node.next = old head
    st X+, r18
    lds r18, HB_FREE_HI
    st X, r18
    sts HB_FREE_LO, r24        ; head = node (node.size = header size)
    sts HB_FREE_HI, r25
    ret

; hb_free: ownership check + mark blocks free + free list insert
hb_free:
    sbiw r24, HB_HDR
    movw r26, r24{free_guard}
    call hb_owner_check
    ld r20, X+                 ; gross size from header
    ld r21, X
    sbiw r26, 1
    ldi r18, 0x0F              ; free code for every block
    ldi r19, 0x0F
    call hb_mmap_mark
    movw r26, r24
    adiw r26, 2
    lds r18, HB_FREE_LO
    st X+, r18
    lds r18, HB_FREE_HI
    st X, r18
    sts HB_FREE_LO, r24
    sts HB_FREE_HI, r25
    ret{free_fault}

; chown_unprot: r24:25 = user pointer, r22 = new owner
chown_unprot:
    sbiw r24, HB_HDR
    movw r26, r24
    adiw r26, 2
    ld r18, X                  ; light header-owner check
    lds r19, HB_CUR_DOM
    cpi r19, HB_TRUSTED
    breq cu_store
    cp r18, r19
    brne cu_fail
cu_store:
    st X, r22
    ldi r24, 1
    ret
cu_fail:
    ldi r24, 0
    ret

; hb_change_own: memmap ownership check + nibble rewrite + header update
hb_change_own:
    sbiw r24, HB_HDR
    movw r26, r24{chown_guard}
    call hb_owner_check
    adiw r26, 2
    st X, r22                  ; header owner
    sbiw r26, 2
    ld r20, X+                 ; gross size
    ld r21, X
    sbiw r26, 1
    mov r18, r22               ; codes from the new owner
    lsl r18
    mov r19, r18
    ori r18, 1
    call hb_mmap_mark
    ldi r24, 1
    ret{chown_fault}
"""


def _services():
    """Kernel memory services as jump-table targets.

    Modules reach ``malloc``/``free``/``change_own`` through the trusted
    domain's jump table, i.e. via a cross-domain call — so when the
    library runs, ``cur_dom`` is already the trusted domain.  For
    correct *attribution* ("the software library reads the identity of
    the current active domain"), each service reads the caller's domain
    from the cross-domain frame on top of the safe stack and performs
    the operation on the caller's behalf.
    """
    return """
; hb_noop: the empty exported function micro-benchmarks call across
; domains (isolates the cross-domain mechanism from callee work).
hb_noop:
    ret

; ----------------------------------------------------- kernel services
; hb_caller_dom: r18 = caller domain from the top cross-domain frame.
hb_caller_dom:
    lds r30, HB_SS_LO
    lds r31, HB_SS_HI
    sbiw r30, 5
    ld r18, Z
    ret

hb_malloc_svc:                 ; r24:25 = size -> r24:25 = ptr
    call hb_caller_dom
    lds r19, HB_CUR_DOM
    push r19
    sts HB_CUR_DOM, r18
    call hb_malloc
    pop r19
    sts HB_CUR_DOM, r19
    ret

hb_free_svc:                   ; r24:25 = ptr
    call hb_caller_dom
    lds r19, HB_CUR_DOM
    push r19
    sts HB_CUR_DOM, r18
    call hb_free
    pop r19
    sts HB_CUR_DOM, r19
    ret

hb_change_own_svc:             ; r24:25 = ptr, r22 = new owner
    call hb_caller_dom
    lds r19, HB_CUR_DOM
    push r19
    sts HB_CUR_DOM, r18
    call hb_change_own
    pop r19
    sts HB_CUR_DOM, r19
    ret
"""


def _init(layout):
    table_bytes = layout.memmap_config.table_bytes
    # the free list only ever covers the *dynamic* heap; pinned static
    # data spans above HB_HEAP_DYN_END are never on it
    heap_bytes = layout.heap_dynamic_end - layout.heap_start
    pin_spans = []
    for dom in range(layout.static_data_domains):
        base, _end = layout.static_data_span(dom)
        pin_spans.append(f"""
    ; pin domain {dom}'s static data span at {base:#06x}
    ldi r26, lo8({base})
    ldi r27, hi8({base})
    ldi r20, lo8({layout.static_data_bytes})
    ldi r21, hi8({layout.static_data_bytes})
    ldi r18, {(dom << 1) | 1}
    ldi r19, {dom << 1}
    call hb_mmap_mark""")
    pin_static = "".join(pin_spans)
    return f"""
; -------------------------------------------------------------- hb_init
; Boot-time initialization by the trusted domain: protection state,
; memory map all-free, heap free list = one node spanning the heap.
hb_init:
    ldi r24, HB_TRUSTED
    sts HB_CUR_DOM, r24
    ldi r24, lo8(RAMEND)
    sts HB_SB_LO, r24
    ldi r24, hi8(RAMEND)
    sts HB_SB_HI, r24
    ldi r24, lo8(HB_SS_BASE)
    sts HB_SS_LO, r24
    ldi r24, hi8(HB_SS_BASE)
    sts HB_SS_HI, r24
    ldi r24, 0
    sts HB_FAULT_CODE, r24
    ; memory map: all free (0xFF)
    ldi r26, lo8(HB_MMAP_TABLE)
    ldi r27, hi8(HB_MMAP_TABLE)
    ldi r18, 0xFF
    ldi r20, lo8({table_bytes})
    ldi r21, hi8({table_bytes})
hi_mm_loop:
    st X+, r18
    subi r20, 1
    sbci r21, 0
    brne hi_mm_loop
    ; heap: one free node covering [HEAP_START, HEAP_END)
    ldi r26, lo8(HB_HEAP_START)
    ldi r27, hi8(HB_HEAP_START)
    ldi r18, lo8({heap_bytes})
    st X+, r18
    ldi r18, hi8({heap_bytes})
    st X+, r18
    st X+, r1                  ; next = 0
    st X+, r1
    ldi r24, lo8(HB_HEAP_START)
    sts HB_FREE_LO, r24
    ldi r24, hi8(HB_HEAP_START)
    sts HB_FREE_HI, r24
    ; mark the safe stack region as a trusted segment
    ldi r26, lo8(HB_SS_BASE)
    ldi r27, hi8(HB_SS_BASE)
    ldi r20, lo8(HB_SS_LIMIT - HB_SS_BASE)
    ldi r21, hi8(HB_SS_LIMIT - HB_SS_BASE)
    ldi r18, 0x0F
    ldi r19, 0x0E              ; later portion of trusted segment
    call hb_mmap_mark{pin_static}
    ret
"""


def runtime_source(layout=None):
    """Full assembly source of the Harbor runtime."""
    layout = layout or SfiLayout()
    parts = [
        "; Harbor SFI runtime (generated by repro.sfi.runtime_asm)",
        "rt_begin:",
        _fault_handlers(),
        _checker(),
        _store_stubs(),
        _safe_stack_stubs(),
        _cross_domain(layout),
        _memmap_mark(),
        _owner_check(),
        _allocator(layout),
        _services(),
        _init(layout),
        "rt_end:",
    ]
    return "\n".join(parts)


def build_runtime(layout=None, origin=0):
    """Assemble the runtime at byte address *origin*; returns a Program."""
    layout = layout or SfiLayout()
    src = ".org {}\n".format(origin) + runtime_source(layout)
    asm = Assembler(symbols=layout.symbols())
    return asm.assemble(src, name="harbor_runtime")


def runtime_code_bytes(layout=None):
    """FLASH bytes the runtime occupies (Table 5 measurements)."""
    program = build_runtime(layout)
    return program.code_bytes
