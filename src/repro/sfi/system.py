"""SfiSystem: a complete software-only Harbor node.

Assembles the runtime, lays out the jump tables, loads modules through
the rewriter + verifier pipeline, and exposes a host-side API that maps
on-node faults (fault code + ``break``) back into the typed exceptions
of :mod:`repro.core.faults`.

This is the first of the paper's two systems; the second
(:class:`repro.umpu.UmpuMachine`) runs the *same module binaries
unrewritten* with the checks in hardware.
"""

from dataclasses import dataclass

from repro.core.control_flow import JumpTable
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    JumpTableFault,
    MemMapFault,
    OwnershipFault,
    ProtectionFault,
    SafeStackOverflow,
    StackBoundFault,
    UntrustedAccessFault,
)
from repro.core.memmap import MemoryBackedStorage, MemoryMap
from repro.sfi.layout import (
    FAULT_JT,
    FAULT_MEMMAP,
    FAULT_OUTSIDE,
    FAULT_OWNERSHIP,
    FAULT_SS_OVERFLOW,
    FAULT_STACK_BOUND,
    SfiLayout,
)
from repro.sfi.rewriter import Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier, VerifyError
from repro.sim import Machine
from repro.sos.linker import CrossDomainLinker

#: kernel services exported through the trusted domain's jump table
KERNEL_EXPORTS = (
    ("malloc", "hb_malloc_svc"),
    ("free", "hb_free_svc"),
    ("change_own", "hb_change_own_svc"),
    ("noop", "hb_noop"),
)


@dataclass
class LoadedModule:
    """A module admitted into the system."""

    name: str
    domain: int
    start: int
    end: int
    exports: dict           # name -> jump-table entry byte address
    rewrite_stats: dict
    verify_report: object
    #: ElisionManifest when the module was loaded with ``elide=True``
    #: and at least one check was proved away, else None
    manifest: object = None
    #: TranslationReport when the module was loaded with
    #: ``certify=True``, else None
    certification: object = None


class SfiSystem:
    """A simulated node running the software-only Harbor system."""

    def __init__(self, layout=None, allowed_io=(), strict_lint=False):
        self.layout = layout or SfiLayout()
        #: when set, every load additionally runs the whole-image static
        #: analyzer and refuses admission on any error-severity finding
        self.strict_lint = strict_lint
        self.runtime = build_runtime(self.layout)
        self.machine = Machine(self.runtime)
        self.machine.attach_forensics(layout=self.layout,
                                      memmap=lambda: self.memmap,
                                      symbols=self.symbol_map)
        self.jump_table = JumpTable(
            base=self.layout.jt_base,
            ndomains=self.layout.ndomains,
            entries_per_domain=self.layout.jt_page_bytes // 4,
            entry_bytes=4)
        self.linker = CrossDomainLinker(
            self.jump_table,
            exception_target=self.runtime.symbol("hb_fault_r20"))
        self.rewriter = Rewriter(self.runtime.symbols, self.layout)
        self.verifier = Verifier(self.runtime.symbols, self.layout,
                                 allowed_io=allowed_io)
        self.modules = {}
        self._next_load = self.layout.jt_end
        self._next_domain = 0
        self._free_domains = []
        # kernel services live in the trusted domain's jump table page
        for name, entry in KERNEL_EXPORTS:
            self.linker.export(TRUSTED_DOMAIN, name,
                               self.runtime.symbol(entry))
        self._flush_jump_table()
        self.boot()

    # ------------------------------------------------------------------
    def boot(self):
        """Run hb_init: protection state, memory map, heap free list."""
        self.machine.reset()
        self._checked_call("hb_init", max_cycles=100000)
        return self

    def _flush_jump_table(self):
        self.linker.emit(self.machine.memory.write_flash_word)
        self.machine.core.invalidate_decode_cache()

    # ------------------------------------------------------------------
    @property
    def memmap(self):
        """Host-side view of the in-SRAM memory map table."""
        return MemoryMap(self.layout.memmap_config,
                         MemoryBackedStorage(self.machine.memory,
                                             self.layout.memmap_table),
                         initialize=False)

    @property
    def cur_domain(self):
        return self.machine.memory.read_data(self.layout.cur_dom)

    def kernel_symbols(self):
        """Symbols module sources assemble against: kernel jump-table
        entries (KERNEL_MALLOC, ...) plus already-loaded module exports
        (JT_<module>_<export>)."""
        syms = {}
        for name, _entry in KERNEL_EXPORTS:
            syms["KERNEL_" + name.upper()] = self.linker.entry_for(
                TRUSTED_DOMAIN, name)
        for module in self.modules.values():
            for export, addr in module.exports.items():
                syms["JT_{}_{}".format(module.name.upper(),
                                       export.upper())] = addr
        for dom in range(self.layout.static_data_domains):
            base, end = self.layout.static_data_span(dom)
            syms["SDATA_D{}".format(dom)] = base
            syms["SDATA_D{}_END".format(dom)] = end
        return syms

    def static_data_addr(self, domain):
        """Base of *domain*'s pinned static data span, or None."""
        span = self.layout.static_data_span(domain)
        return span[0] if span else None

    def symbol_map(self):
        """Whole-image symbol map: runtime labels, jump-table slot
        labels (``jt_d<n>_<export>``) and module export code addresses
        (``<module>.<export>``) — what the disassembler, the fault
        forensics windows and harbor-lint symbolize against."""
        syms = dict(self.runtime.symbols)
        syms.update(self.linker.symbols())
        for module in self.modules.values():
            for export in module.exports:
                target = self.linker.export_target(module.domain, export)
                if target is not None:
                    syms.setdefault(
                        "{}.{}".format(module.name, export), target)
        return syms

    # ------------------------------------------------------------------
    def load_module(self, program, name, exports=(), entries=(),
                    lint=None, elide=False, certify=False):
        """Admit a module: rewrite, verify, link, install.

        *program* is the module's assembled image (unsandboxed).
        Returns the :class:`LoadedModule`; raises
        :class:`~repro.sfi.verifier.VerifyError` if the rewritten binary
        does not verify (correctness depends on the verifier, not the
        rewriter).

        *lint* (default: the system's ``strict_lint`` flag) additionally
        runs the whole-image static analyzer after installation and
        unloads + rejects the module on any error-severity finding —
        catching whole-image properties (jump-table sanity, cross-region
        edges, unbounded safe-stack occupancy) the per-module linear
        scan cannot see.

        *elide* runs the proof-directed check-elision pass
        (:mod:`repro.analysis.static.elision`): stores proved to stay
        inside the domain's static data span keep their raw form, and
        the resulting :class:`ElisionManifest` accompanies the image
        through verification (and is re-proved against the installed
        flash).  With no provable sites this degrades to a normal load.

        *certify* additionally runs translation validation
        (:mod:`repro.analysis.static.transval`): the installed flash is
        proved to be a sanctioned translation of *program* (checked or
        manifest-covered stores, frame discipline, control-edge
        correspondence), the ``certified_blocks`` /
        ``translatable_blocks`` / ``transval_mismatches`` gauges are
        published, and the load is rolled back with an HL017
        :class:`VerifyError` on any mismatch.  The report lands on
        ``module.certification``.
        """
        if self._free_domains:
            domain = self._free_domains.pop(0)
        elif self._next_domain < self.layout.ndomains - 1:
            domain = self._next_domain
        else:
            raise ValueError("no free protection domain")
        rewritten = self.rewriter.rewrite(program, self._next_load,
                                          exports=exports, entries=entries)
        manifest = None
        if elide:
            rewritten, manifest = self._elide_pass(
                program, name, domain, exports, entries, rewritten)
        self.verifier.verify(rewritten.program, rewritten.start,
                             rewritten.end, manifest=manifest)
        for word_addr, value in rewritten.program.words.items():
            self.machine.memory.write_flash_word(word_addr, value)
        self.machine.core.invalidate_decode_cache()
        if manifest is not None:
            self._check_installed_manifest(rewritten, manifest)
        jt_exports = {}
        for export in exports:
            jt_exports[export] = self.linker.export(
                domain, export, rewritten.exports[export])
        self._flush_jump_table()
        module = LoadedModule(
            name=name, domain=domain, start=rewritten.start,
            end=rewritten.end, exports=jt_exports,
            rewrite_stats=rewritten.stats,
            verify_report=None, manifest=manifest)
        self.modules[name] = module
        if domain == self._next_domain:
            self._next_domain += 1
        self._next_load = (rewritten.end + 0xFF) & ~0xFF
        if lint if lint is not None else self.strict_lint:
            self._lint_gate(name)
        if certify:
            self._certify_gate(name, program, exports, entries)
        return module

    # ------------------------------------------------------------------
    def _elide_pass(self, program, name, domain, exports, entries,
                    rewritten):
        """Prove and elide redundant store checks; returns the final
        (possibly re-rewritten) module and its manifest (or None).

        Elision changes the layout, which can change which facts hold
        (stub calls push/pop marshaling registers that raw stores leave
        alone), so rewrite→prove iterates to a fixpoint; a final
        validation round keeps only sites that still prove on the image
        that will actually be installed.
        """
        from repro.analysis.static.cfg import RegionCFG
        from repro.analysis.static.elision import (
            PROOF_IN_DOMAIN,
            StoreProver,
            build_manifest,
        )
        prover = StoreProver(self.layout, self.runtime.symbols, domain)

        def prove(rw):
            read = lambda i: rw.program.words.get(i, 0xFFFF)  # noqa: E731
            entry_addrs = sorted(set(rw.exports.values()) |
                                 {rw.addr_map[program.symbol(e)]
                                  for e in entries})
            cfg = RegionCFG.build(read, rw.start, rw.end, name=name,
                                  extra_leaders=entry_addrs)
            return prover.prove_cfg(cfg, entries=entry_addrs)

        def provable(rw, proofs):
            sites = set()
            for mapping in (rw.store_sites, rw.elided_sites):
                for old, pc in mapping.items():
                    proof = proofs.get(pc)
                    if proof is not None and proof.kind == PROOF_IN_DOMAIN:
                        sites.add(old)
            return sites

        elide = set()
        proofs = prove(rewritten)
        for _round in range(4):
            target = provable(rewritten, proofs)
            if target == elide:
                break
            elide = target
            rewritten = self.rewriter.rewrite(
                program, rewritten.start, exports=exports,
                entries=entries, elide=tuple(sorted(elide)))
            proofs = prove(rewritten)
        # keep only elided sites that prove on the final image
        still = {old for old, pc in rewritten.elided_sites.items()
                 if proofs.get(pc) is not None and
                 proofs[pc].kind == PROOF_IN_DOMAIN}
        if still != set(rewritten.elided_sites):
            rewritten = self.rewriter.rewrite(
                program, rewritten.start, exports=exports,
                entries=entries, elide=tuple(sorted(still)))
            proofs = prove(rewritten)
            still = {old for old, pc in rewritten.elided_sites.items()
                     if proofs.get(pc) is not None and
                     proofs[pc].kind == PROOF_IN_DOMAIN}
            if still != set(rewritten.elided_sites):
                # did not stabilize: fall back to the fully checked image
                return self.rewriter.rewrite(program, rewritten.start,
                                             exports=exports,
                                             entries=entries), None
        if not rewritten.elided_sites:
            return rewritten, None
        return rewritten, build_manifest(name, domain, rewritten, proofs)

    def _check_installed_manifest(self, rewritten, manifest):
        """Defense in depth: re-prove the manifest against the flash
        image that was actually installed, and publish the metrics."""
        from repro.analysis.static.elision import verify_manifest
        problems = verify_manifest(
            self.machine.memory.read_flash_word, self.layout,
            self.runtime.symbols, manifest,
            entries=sorted(set(rewritten.exports.values())))
        if problems:
            message, byte_addr = problems[0]
            raise VerifyError(message, byte_addr=byte_addr, rule="HL014")
        metrics = getattr(self.machine.core, "metrics", None)
        if metrics is not None:
            metrics.counter("elided_checks",
                            module=manifest.module).inc(
                                manifest.elided_checks)
            metrics.counter("elided_cycles_saved",
                            module=manifest.module).inc(
                                manifest.elided_cycles_saved)

    def _lint_gate(self, name):
        """Strict-mode admission: run the whole-image analyzer and back
        the load out on any error-severity finding."""
        from repro.analysis.static import lint_system
        _model, report = lint_system(self)
        if report.diagnostics.has_errors:
            codes = sorted({d.rule.code
                            for d in report.diagnostics.errors})
            first = report.diagnostics.errors[0]
            self.unload_module(name)
            raise VerifyError(
                "whole-image lint rejected module {!r} ({}): {}".format(
                    name, ", ".join(codes), first.message),
                byte_addr=first.byte_addr, rule=first.rule.code)


    def _certify_gate(self, name, program, exports, entries):
        """Translation validation admission: prove the installed flash
        is a sanctioned translation of the source, publish the
        JIT-readiness gauges, and back the load out on any HL017."""
        from repro.analysis.static.transval import validate_translation
        module = self.modules[name]
        export_targets = {
            e: self.linker.export_target(module.domain, e)
            for e in module.exports}
        report = validate_translation(
            program, self.machine.memory.read_flash_word,
            module.start, module.end, self.layout,
            self.runtime.symbols, exports=exports, entries=entries,
            manifest=module.manifest, export_targets=export_targets,
            region=name, domain=module.domain, module=name)
        module.certification = report
        metrics = getattr(self.machine.core, "metrics", None)
        if metrics is not None:
            metrics.gauge("certified_blocks", module=name).set(
                report.certified_blocks)
            metrics.gauge("translatable_blocks", module=name).set(
                report.translatable_blocks)
            metrics.gauge("transval_mismatches", module=name).set(
                report.mismatches)
        if not report.ok:
            first = next(f for f in report.engine.findings
                         if f.rule.code == "HL017")
            self.unload_module(name)
            raise VerifyError(
                "translation validation rejected module {!r}: "
                "{}".format(name, first.message),
                byte_addr=first.byte_addr, rule="HL017")
        return report

    def unload_module(self, name):
        """Unload a module: free every heap segment its domain owns,
        drop its jump-table entries (slots revert to the exception
        routine), and release the domain id for reuse.  The module's
        flash stays behind (as on a real node) but is no longer
        reachable through any jump table."""
        module = self.modules.pop(name)
        memmap = self.memmap
        # only dynamic heap segments are allocator blocks; pinned static
        # data spans above heap_dynamic_end stay owned forever (hb_free
        # would fault on them, and elision proofs depend on the pinning)
        heap_start = self.layout.heap_start
        heap_end = self.layout.heap_dynamic_end
        for start, _nblocks, owner in memmap.segments():
            if owner == module.domain and heap_start <= start < heap_end:
                self.free(start + self.layout.heap_header)
        self.linker.unlink_domain(module.domain)
        self._flush_jump_table()
        self._free_domains.append(module.domain)
        return module

    def attach_timeline(self, interval=None, keep_flash=True):
        """Attach a :class:`~repro.trace.timeline.Timeline` recorder to
        the node (keyframes span every subsequent ``call_export`` /
        kernel-call run; see ``docs/observability.md``)."""
        return self.machine.attach_timeline(interval=interval,
                                            keep_flash=keep_flash)

    # --- snapshot/restore ---------------------------------------------
    def snapshot(self):
        """Capture machine + loader state for :meth:`restore`.

        All protection state of the software system lives in trusted
        SRAM cells, so the machine snapshot already carries it; the
        system layer only adds the host-side loader bookkeeping (loaded
        modules, next load address, free domains, linker exports)."""
        from repro.sim.snapshot import MachineSnapshot
        return MachineSnapshot.capture_system(self)

    def restore(self, snap):
        """Restore a :meth:`snapshot`; the memmap/cur_domain views read
        the restored SRAM directly, so no rebuild is needed."""
        snap.apply_system(self)
        return self

    # ------------------------------------------------------------------
    def _fault_exception(self):
        mem = self.machine.memory
        code = mem.read_data(self.layout.fault_code)
        if not code:
            return None
        addr = mem.read_word_data(self.layout.fault_addr)
        domain = self.cur_domain
        if code == FAULT_MEMMAP:
            owner = self.memmap.owner_of(addr) \
                if self.layout.memmap_config.contains(addr) else None
            return MemMapFault(addr, domain, owner)
        if code == FAULT_STACK_BOUND:
            bound = mem.read_word_data(self.layout.stack_bound)
            return StackBoundFault(addr, domain, bound)
        if code == FAULT_OUTSIDE:
            return UntrustedAccessFault(addr, domain)
        if code == FAULT_JT:
            return JumpTableFault(addr, domain=domain)
        if code == FAULT_SS_OVERFLOW:
            return SafeStackOverflow(
                mem.read_word_data(self.layout.ss_ptr),
                self.layout.safe_stack_limit)
        if code == FAULT_OWNERSHIP:
            return OwnershipFault(addr, domain, None, "free/change_own")
        return ProtectionFault("fault code {}".format(code), domain=domain)

    def clear_fault(self):
        self.machine.memory.write_data(self.layout.fault_code, 0)
        self.machine.core.halted = False

    def recover(self):
        """Kernel-side recovery after a contained fault: restore the
        protection state so the node keeps dispatching ("a stable kernel
        can always ensure a clean re-start of user modules")."""
        self.clear_fault()
        mem = self.machine.memory
        mem.write_data(self.layout.cur_dom, TRUSTED_DOMAIN)
        mem.write_word_data(self.layout.stack_bound,
                            self.machine.geometry.ramend)
        mem.write_word_data(self.layout.ss_ptr,
                            self.layout.safe_stack_base)
        mem.sp = self.machine.geometry.ramend
        return self

    def _checked_call(self, target, *args, max_cycles=1_000_000):
        cycles = self.machine.call(target, *args, max_cycles=max_cycles)
        exc = self._fault_exception()
        if exc is not None:
            self.clear_fault()
            raise self.machine.record_fault(exc)
        return cycles

    # ------------------------------------------------------------------
    def call_export(self, module, export, *args, max_cycles=1_000_000):
        """Host-side dispatch into a module export via a cross-domain
        call (what the kernel scheduler does to deliver a message)."""
        entry = self.modules[module].exports[export]
        m = self.machine
        m.set_args(*args)
        m.core.set_reg_pair(30, entry // 2)  # Z = target word address
        cycles = self._checked_call_regs("hb_xdom_call",
                                         max_cycles=max_cycles)
        return m.result16(), cycles

    def _checked_call_regs(self, target, max_cycles=1_000_000):
        """Like _checked_call but without touching argument registers."""
        m = self.machine
        m.core.push_return_address(0xFFFE)
        m.core.pc = self.runtime.symbol(target) // 2
        if m.timeline is not None:
            m.timeline.begin_run()
        start = m.core.cycles
        try:
            m.core.run(max_cycles=max_cycles, until_pc=0xFFFE)
        except ProtectionFault as fault:
            raise m.record_fault(fault)
        exc = self._fault_exception()
        if exc is not None:
            self.clear_fault()
            raise self.machine.record_fault(exc)
        return m.core.cycles - start

    # --- trusted host-side memory API -------------------------------------------
    def malloc(self, nbytes, domain=TRUSTED_DOMAIN):
        prev = self.cur_domain
        self.machine.memory.write_data(self.layout.cur_dom, domain)
        try:
            self._checked_call("hb_malloc", nbytes)
        finally:
            self.machine.memory.write_data(self.layout.cur_dom, prev)
        ptr = self.machine.result16()
        return ptr or None

    def free(self, ptr, domain=TRUSTED_DOMAIN):
        prev = self.cur_domain
        self.machine.memory.write_data(self.layout.cur_dom, domain)
        try:
            self._checked_call("hb_free", ptr)
        finally:
            self.machine.memory.write_data(self.layout.cur_dom, prev)

    def change_own(self, ptr, new_domain, domain=TRUSTED_DOMAIN):
        prev = self.cur_domain
        self.machine.memory.write_data(self.layout.cur_dom, domain)
        try:
            self._checked_call("hb_change_own", ptr, ("u8", new_domain))
        finally:
            self.machine.memory.write_data(self.layout.cur_dom, prev)
