"""SfiSystem: a complete software-only Harbor node.

Assembles the runtime, lays out the jump tables, loads modules through
the rewriter + verifier pipeline, and exposes a host-side API that maps
on-node faults (fault code + ``break``) back into the typed exceptions
of :mod:`repro.core.faults`.

This is the first of the paper's two systems; the second
(:class:`repro.umpu.UmpuMachine`) runs the *same module binaries
unrewritten* with the checks in hardware.
"""

from dataclasses import dataclass

from repro.core.control_flow import JumpTable
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import (
    JumpTableFault,
    MemMapFault,
    OwnershipFault,
    ProtectionFault,
    SafeStackOverflow,
    StackBoundFault,
    UntrustedAccessFault,
)
from repro.core.memmap import MemoryBackedStorage, MemoryMap
from repro.sfi.layout import (
    FAULT_JT,
    FAULT_MEMMAP,
    FAULT_OUTSIDE,
    FAULT_OWNERSHIP,
    FAULT_SS_OVERFLOW,
    FAULT_STACK_BOUND,
    SfiLayout,
)
from repro.sfi.rewriter import Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier, VerifyError
from repro.sim import Machine
from repro.sos.linker import CrossDomainLinker

#: kernel services exported through the trusted domain's jump table
KERNEL_EXPORTS = (
    ("malloc", "hb_malloc_svc"),
    ("free", "hb_free_svc"),
    ("change_own", "hb_change_own_svc"),
    ("noop", "hb_noop"),
)


@dataclass
class LoadedModule:
    """A module admitted into the system."""

    name: str
    domain: int
    start: int
    end: int
    exports: dict           # name -> jump-table entry byte address
    rewrite_stats: dict
    verify_report: object


class SfiSystem:
    """A simulated node running the software-only Harbor system."""

    def __init__(self, layout=None, allowed_io=(), strict_lint=False):
        self.layout = layout or SfiLayout()
        #: when set, every load additionally runs the whole-image static
        #: analyzer and refuses admission on any error-severity finding
        self.strict_lint = strict_lint
        self.runtime = build_runtime(self.layout)
        self.machine = Machine(self.runtime)
        self.machine.attach_forensics(layout=self.layout,
                                      memmap=lambda: self.memmap,
                                      symbols=self.symbol_map)
        self.jump_table = JumpTable(
            base=self.layout.jt_base,
            ndomains=self.layout.ndomains,
            entries_per_domain=self.layout.jt_page_bytes // 4,
            entry_bytes=4)
        self.linker = CrossDomainLinker(
            self.jump_table,
            exception_target=self.runtime.symbol("hb_fault_r20"))
        self.rewriter = Rewriter(self.runtime.symbols, self.layout)
        self.verifier = Verifier(self.runtime.symbols, self.layout,
                                 allowed_io=allowed_io)
        self.modules = {}
        self._next_load = self.layout.jt_end
        self._next_domain = 0
        self._free_domains = []
        # kernel services live in the trusted domain's jump table page
        for name, entry in KERNEL_EXPORTS:
            self.linker.export(TRUSTED_DOMAIN, name,
                               self.runtime.symbol(entry))
        self._flush_jump_table()
        self.boot()

    # ------------------------------------------------------------------
    def boot(self):
        """Run hb_init: protection state, memory map, heap free list."""
        self.machine.reset()
        self._checked_call("hb_init", max_cycles=100000)
        return self

    def _flush_jump_table(self):
        self.linker.emit(self.machine.memory.write_flash_word)
        self.machine.core.invalidate_decode_cache()

    # ------------------------------------------------------------------
    @property
    def memmap(self):
        """Host-side view of the in-SRAM memory map table."""
        return MemoryMap(self.layout.memmap_config,
                         MemoryBackedStorage(self.machine.memory,
                                             self.layout.memmap_table),
                         initialize=False)

    @property
    def cur_domain(self):
        return self.machine.memory.read_data(self.layout.cur_dom)

    def kernel_symbols(self):
        """Symbols module sources assemble against: kernel jump-table
        entries (KERNEL_MALLOC, ...) plus already-loaded module exports
        (JT_<module>_<export>)."""
        syms = {}
        for name, _entry in KERNEL_EXPORTS:
            syms["KERNEL_" + name.upper()] = self.linker.entry_for(
                TRUSTED_DOMAIN, name)
        for module in self.modules.values():
            for export, addr in module.exports.items():
                syms["JT_{}_{}".format(module.name.upper(),
                                       export.upper())] = addr
        return syms

    def symbol_map(self):
        """Whole-image symbol map: runtime labels, jump-table slot
        labels (``jt_d<n>_<export>``) and module export code addresses
        (``<module>.<export>``) — what the disassembler, the fault
        forensics windows and harbor-lint symbolize against."""
        syms = dict(self.runtime.symbols)
        syms.update(self.linker.symbols())
        for module in self.modules.values():
            for export in module.exports:
                target = self.linker.export_target(module.domain, export)
                if target is not None:
                    syms.setdefault(
                        "{}.{}".format(module.name, export), target)
        return syms

    # ------------------------------------------------------------------
    def load_module(self, program, name, exports=(), entries=(),
                    lint=None):
        """Admit a module: rewrite, verify, link, install.

        *program* is the module's assembled image (unsandboxed).
        Returns the :class:`LoadedModule`; raises
        :class:`~repro.sfi.verifier.VerifyError` if the rewritten binary
        does not verify (correctness depends on the verifier, not the
        rewriter).

        *lint* (default: the system's ``strict_lint`` flag) additionally
        runs the whole-image static analyzer after installation and
        unloads + rejects the module on any error-severity finding —
        catching whole-image properties (jump-table sanity, cross-region
        edges, unbounded safe-stack occupancy) the per-module linear
        scan cannot see.
        """
        if self._free_domains:
            domain = self._free_domains.pop(0)
        elif self._next_domain < self.layout.ndomains - 1:
            domain = self._next_domain
        else:
            raise ValueError("no free protection domain")
        rewritten = self.rewriter.rewrite(program, self._next_load,
                                          exports=exports, entries=entries)
        self.verifier.verify(rewritten.program, rewritten.start,
                             rewritten.end)
        for word_addr, value in rewritten.program.words.items():
            self.machine.memory.write_flash_word(word_addr, value)
        self.machine.core.invalidate_decode_cache()
        jt_exports = {}
        for export in exports:
            jt_exports[export] = self.linker.export(
                domain, export, rewritten.exports[export])
        self._flush_jump_table()
        module = LoadedModule(
            name=name, domain=domain, start=rewritten.start,
            end=rewritten.end, exports=jt_exports,
            rewrite_stats=rewritten.stats,
            verify_report=None)
        self.modules[name] = module
        if domain == self._next_domain:
            self._next_domain += 1
        self._next_load = (rewritten.end + 0xFF) & ~0xFF
        if lint if lint is not None else self.strict_lint:
            self._lint_gate(name)
        return module

    def _lint_gate(self, name):
        """Strict-mode admission: run the whole-image analyzer and back
        the load out on any error-severity finding."""
        from repro.analysis.static import lint_system
        _model, report = lint_system(self)
        if report.diagnostics.has_errors:
            codes = sorted({d.rule.code
                            for d in report.diagnostics.errors})
            first = report.diagnostics.errors[0]
            self.unload_module(name)
            raise VerifyError(
                "whole-image lint rejected module {!r} ({}): {}".format(
                    name, ", ".join(codes), first.message),
                byte_addr=first.byte_addr, rule=first.rule.code)


    def unload_module(self, name):
        """Unload a module: free every heap segment its domain owns,
        drop its jump-table entries (slots revert to the exception
        routine), and release the domain id for reuse.  The module's
        flash stays behind (as on a real node) but is no longer
        reachable through any jump table."""
        module = self.modules.pop(name)
        memmap = self.memmap
        heap_start, heap_end = self.layout.heap_start, self.layout.heap_end
        for start, _nblocks, owner in memmap.segments():
            if owner == module.domain and heap_start <= start < heap_end:
                self.free(start + self.layout.heap_header)
        self.linker.unlink_domain(module.domain)
        self._flush_jump_table()
        self._free_domains.append(module.domain)
        return module

    # ------------------------------------------------------------------
    def _fault_exception(self):
        mem = self.machine.memory
        code = mem.read_data(self.layout.fault_code)
        if not code:
            return None
        addr = mem.read_word_data(self.layout.fault_addr)
        domain = self.cur_domain
        if code == FAULT_MEMMAP:
            owner = self.memmap.owner_of(addr) \
                if self.layout.memmap_config.contains(addr) else None
            return MemMapFault(addr, domain, owner)
        if code == FAULT_STACK_BOUND:
            bound = mem.read_word_data(self.layout.stack_bound)
            return StackBoundFault(addr, domain, bound)
        if code == FAULT_OUTSIDE:
            return UntrustedAccessFault(addr, domain)
        if code == FAULT_JT:
            return JumpTableFault(addr, domain=domain)
        if code == FAULT_SS_OVERFLOW:
            return SafeStackOverflow(
                mem.read_word_data(self.layout.ss_ptr),
                self.layout.safe_stack_limit)
        if code == FAULT_OWNERSHIP:
            return OwnershipFault(addr, domain, None, "free/change_own")
        return ProtectionFault("fault code {}".format(code), domain=domain)

    def clear_fault(self):
        self.machine.memory.write_data(self.layout.fault_code, 0)
        self.machine.core.halted = False

    def recover(self):
        """Kernel-side recovery after a contained fault: restore the
        protection state so the node keeps dispatching ("a stable kernel
        can always ensure a clean re-start of user modules")."""
        self.clear_fault()
        mem = self.machine.memory
        mem.write_data(self.layout.cur_dom, TRUSTED_DOMAIN)
        mem.write_word_data(self.layout.stack_bound,
                            self.machine.geometry.ramend)
        mem.write_word_data(self.layout.ss_ptr,
                            self.layout.safe_stack_base)
        mem.sp = self.machine.geometry.ramend
        return self

    def _checked_call(self, target, *args, max_cycles=1_000_000):
        cycles = self.machine.call(target, *args, max_cycles=max_cycles)
        exc = self._fault_exception()
        if exc is not None:
            self.clear_fault()
            raise self.machine.record_fault(exc)
        return cycles

    # ------------------------------------------------------------------
    def call_export(self, module, export, *args, max_cycles=1_000_000):
        """Host-side dispatch into a module export via a cross-domain
        call (what the kernel scheduler does to deliver a message)."""
        entry = self.modules[module].exports[export]
        m = self.machine
        m.set_args(*args)
        m.core.set_reg_pair(30, entry // 2)  # Z = target word address
        cycles = self._checked_call_regs("hb_xdom_call",
                                         max_cycles=max_cycles)
        return m.result16(), cycles

    def _checked_call_regs(self, target, max_cycles=1_000_000):
        """Like _checked_call but without touching argument registers."""
        m = self.machine
        m.core.push_return_address(0xFFFE)
        m.core.pc = self.runtime.symbol(target) // 2
        start = m.core.cycles
        try:
            m.core.run(max_cycles=max_cycles, until_pc=0xFFFE)
        except ProtectionFault as fault:
            raise m.record_fault(fault)
        exc = self._fault_exception()
        if exc is not None:
            self.clear_fault()
            raise self.machine.record_fault(exc)
        return m.core.cycles - start

    # --- trusted host-side memory API -------------------------------------------
    def malloc(self, nbytes, domain=TRUSTED_DOMAIN):
        prev = self.cur_domain
        self.machine.memory.write_data(self.layout.cur_dom, domain)
        try:
            self._checked_call("hb_malloc", nbytes)
        finally:
            self.machine.memory.write_data(self.layout.cur_dom, prev)
        ptr = self.machine.result16()
        return ptr or None

    def free(self, ptr, domain=TRUSTED_DOMAIN):
        prev = self.cur_domain
        self.machine.memory.write_data(self.layout.cur_dom, domain)
        try:
            self._checked_call("hb_free", ptr)
        finally:
            self.machine.memory.write_data(self.layout.cur_dom, prev)

    def change_own(self, ptr, new_domain, domain=TRUSTED_DOMAIN):
        prev = self.cur_domain
        self.machine.memory.write_data(self.layout.cur_dom, domain)
        try:
            self._checked_call("hb_change_own", ptr, ("u8", new_domain))
        finally:
            self.machine.memory.write_data(self.layout.cur_dom, prev)
