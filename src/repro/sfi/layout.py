"""Memory layout and assembly-time configuration of the SFI runtime.

The software-only Harbor keeps all protection state in trusted SRAM
globals (there are no UMPU registers to hold it).  The layout mirrors
the paper's: trusted globals + memory map table low, the heap (memory
map protected) in the middle, the safe stack above it growing up, the
run-time stack at RAMEND growing down.

Everything here is an *assembly-time* constant: the paper's software
library is compiled for a given configuration, and fixing block size and
bounds at build time is what keeps the software checker at tens (not
hundreds) of cycles.
"""

from dataclasses import dataclass

from repro.core.memmap import MemMapConfig


@dataclass(frozen=True)
class SfiLayout:
    """Build-time configuration for the SFI runtime."""

    # trusted state cells (SRAM, below the protected region)
    cur_dom: int = 0x0060
    stack_bound: int = 0x0061   # 2 bytes (lo, hi)
    ss_ptr: int = 0x0063        # safe stack pointer, 2 bytes
    freelist: int = 0x0065      # free list head, 2 bytes
    fault_code: int = 0x0067
    fault_addr: int = 0x0068    # 2 bytes; faulting store address
    scratch: int = 0x006A       # 2 bytes of runtime scratch

    # memory map table
    memmap_table: int = 0x0100

    # protected region (heap + safe stack)
    prot_bottom: int = 0x0200
    prot_top: int = 0x0CFF
    block_size: int = 8
    mode: str = "multi"

    heap_start: int = 0x0200
    heap_end: int = 0x0C00

    safe_stack_base: int = 0x0C00
    safe_stack_limit: int = 0x0D00

    # jump tables in flash
    jt_base: int = 0x1000
    jt_page_bytes: int = 512    # 128 entries x 4-byte jmp
    ndomains: int = 8

    #: header bytes preceding every heap allocation: size (2) + owner (1)
    #: + flags (1), the SOS-style block header both allocator variants
    #: share so that "normal" and "protected" are comparable.
    heap_header: int = 4

    #: per-domain *static data span* size in bytes (0 disables spans).
    #: Spans are carved from the top of the heap, pinned to their owning
    #: domain by ``hb_init`` and never released by ``hb_free`` /
    #: ``hb_change_own``, so their ownership is a build-time constant the
    #: static analyzer may rely on for check elision.  Must be a multiple
    #: of 256 so a span covers whole 256-byte pages: interval widening in
    #: the abstract interpreter stabilizes a post-incremented pointer to
    #: "one page" (constant high byte, widened low byte), and page-sized
    #: spans make that fact sufficient for an in-domain proof.
    static_data_bytes: int = 0
    #: how many domains (0..N-1) receive a static data span.
    static_data_domains: int = 0

    def __post_init__(self):
        if self.static_data_bytes < 0 or self.static_data_domains < 0:
            raise ValueError("static data configuration must be >= 0")
        if self.static_data_bytes % 256:
            raise ValueError("static_data_bytes must be a multiple of 256")
        total = self.static_data_total
        if total:
            if self.static_data_domains >= self.ndomains:
                raise ValueError(
                    "static data spans limited to untrusted domains "
                    "(< ndomains - 1)")
            if self.heap_end - total <= self.heap_start:
                raise ValueError("static data spans exceed the heap")

    @property
    def static_data_total(self):
        return self.static_data_bytes * self.static_data_domains

    @property
    def heap_dynamic_end(self):
        """End of the heap region the allocator may hand out.

        Everything in ``[heap_dynamic_end, heap_end)`` is a pinned
        static data span.
        """
        return self.heap_end - self.static_data_total

    def static_data_span(self, domain):
        """``(base, end)`` of *domain*'s pinned span, or ``None``."""
        if self.static_data_bytes <= 0 or \
                not 0 <= domain < self.static_data_domains:
            return None
        end = self.heap_end - domain * self.static_data_bytes
        return (end - self.static_data_bytes, end)

    @property
    def block_log2(self):
        return self.block_size.bit_length() - 1

    @property
    def memmap_config(self):
        return MemMapConfig(prot_bottom=self.prot_bottom,
                            prot_top=self.prot_top,
                            block_size=self.block_size,
                            mode=self.mode)

    @property
    def jt_end(self):
        return self.jt_base + self.ndomains * self.jt_page_bytes

    @property
    def jt_page_log2(self):
        if self.jt_page_bytes & (self.jt_page_bytes - 1):
            raise ValueError("jump table page size must be a power of two")
        return self.jt_page_bytes.bit_length() - 1

    def symbols(self):
        """Assembler symbol definitions for the runtime source."""
        return {
            "HB_CUR_DOM": self.cur_dom,
            "HB_SB_LO": self.stack_bound,
            "HB_SB_HI": self.stack_bound + 1,
            "HB_SS_LO": self.ss_ptr,
            "HB_SS_HI": self.ss_ptr + 1,
            "HB_FREE_LO": self.freelist,
            "HB_FREE_HI": self.freelist + 1,
            "HB_FAULT_CODE": self.fault_code,
            "HB_FAULT_ADDR": self.fault_addr,
            "HB_SCRATCH": self.scratch,
            "HB_MMAP_TABLE": self.memmap_table,
            "HB_PROT_BOT": self.prot_bottom,
            "HB_PROT_TOP": self.prot_top,
            "HB_BLOCK_LOG2": self.block_log2,
            "HB_HEAP_START": self.heap_start,
            "HB_HEAP_END": self.heap_end,
            "HB_HEAP_DYN_END": self.heap_dynamic_end,
            "HB_SS_BASE": self.safe_stack_base,
            "HB_SS_LIMIT": self.safe_stack_limit,
            "HB_JT_BASE": self.jt_base,
            "HB_JT_END": self.jt_end,
            "HB_JT_PAGE_LOG2": self.jt_page_log2,
            "HB_NDOMAINS": self.ndomains,
            "HB_HDR": self.heap_header,
            "HB_TRUSTED": 7,
        }


#: Fault codes written to ``fault_code`` before halting (the on-node
#: equivalent of raising; the host harness maps them back to the typed
#: exceptions of :mod:`repro.core.faults`).
FAULT_NONE = 0
FAULT_MEMMAP = 1
FAULT_STACK_BOUND = 2
FAULT_OUTSIDE = 3
FAULT_JT = 4
FAULT_SS_OVERFLOW = 5
FAULT_OWNERSHIP = 6

FAULT_NAMES = {
    FAULT_MEMMAP: "memmap",
    FAULT_STACK_BOUND: "stack_bound",
    FAULT_OUTSIDE: "outside_region",
    FAULT_JT: "jump_table",
    FAULT_SS_OVERFLOW: "safe_stack_overflow",
    FAULT_OWNERSHIP: "ownership",
}
