"""Harbor / UMPU: coarse-grained memory protection for tiny embedded
processors.

Reproduction of Kumar et al., "A System For Coarse Grained Memory
Protection In Tiny Embedded Processors" (DAC 2007).

Subpackages
-----------
``repro.isa``
    AVR (ATmega103-class) instruction-set definition and binary coding.
``repro.asm``
    Two-pass assembler / disassembler toolchain.
``repro.sim``
    Cycle-counting instruction-level simulator with a hookable data bus.
``repro.core``
    The Harbor protection primitives: memory map, protection domains,
    safe stack, cross-domain control flow, protected heap (golden model).
``repro.sfi``
    The software-only system: binary rewriter + on-node verifier +
    assembly runtime (run-time checks as routines in the trusted domain).
``repro.umpu``
    The hardware system: MMC, safe-stack unit, domain tracker and
    configuration registers as bus functional units, plus the gate-count
    area model.
``repro.sos``
    Mini SOS-like operating system substrate: loadable modules,
    messaging, dynamic memory, cross-domain linker (jump tables).
``repro.analysis``
    Table rendering and sizing models used by the benchmarks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
