"""Assembler error types."""


class AsmError(Exception):
    """An error in assembly source, carrying the offending line number."""

    def __init__(self, message, line=None, source_name=None):
        self.message = message
        self.line = line
        self.source_name = source_name
        where = ""
        if source_name or line is not None:
            where = " ({}:{})".format(source_name or "<asm>",
                                      line if line is not None else "?")
        super().__init__(message + where)


class ExprError(AsmError):
    """A malformed or unevaluable expression."""


class SymbolError(AsmError):
    """Reference to an undefined or redefined symbol."""
