"""Assembled program image: flash words, symbols, relocations, listing."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Reloc:
    """A relocation: instruction operand that refers to a symbol.

    Recorded by the assembler so that tools which re-layout code (the SFI
    binary rewriter) can patch references after moving instructions.

    Attributes
    ----------
    byte_addr:
        Flash byte address of the instruction carrying the reference.
    func:
        How the value was folded into the operand: ``rel7``/``rel12``
        (signed word offsets), ``addr22`` (word address of jmp/call),
        ``addr16`` (data address of lds/sts), ``lo8``/``hi8``/
        ``pm_lo8``/``pm_hi8`` (ldi immediates).
    symbol:
        Referenced symbol name.
    addend:
        Constant added to the symbol before folding.
    """

    byte_addr: int
    func: str
    symbol: str
    addend: int = 0


@dataclass
class Program:
    """An assembled flash image plus its metadata.

    ``words`` maps *word* addresses to 16-bit values; unwritten flash
    reads as 0xFFFF (erased), like a real part.
    """

    words: dict = field(default_factory=dict)
    symbols: dict = field(default_factory=dict)
    relocs: list = field(default_factory=list)
    listing: dict = field(default_factory=dict)  # word addr -> source line
    source_name: str = "<asm>"

    def word(self, word_addr):
        return self.words.get(word_addr, 0xFFFF)

    def set_word(self, word_addr, value):
        self.words[word_addr] = value & 0xFFFF

    @property
    def size_bytes(self):
        """Bytes of flash actually occupied (highest written word)."""
        if not self.words:
            return 0
        return 2 * (max(self.words) + 1)

    @property
    def code_bytes(self):
        """Bytes of flash written (sparse count, ignoring gaps)."""
        return 2 * len(self.words)

    def symbol(self, name):
        """Byte address of symbol *name* (raises KeyError)."""
        return self.symbols[name]

    def label_at(self, byte_addr):
        """Return a symbol defined exactly at *byte_addr*, if any."""
        for name, addr in self.symbols.items():
            if addr == byte_addr:
                return name
        return None

    def to_flash(self, flash_words):
        """Render the image into a flat list of *flash_words* words."""
        image = [0xFFFF] * flash_words
        for addr, value in self.words.items():
            if addr >= flash_words:
                raise ValueError(
                    "program word at 0x{:05x} beyond flash".format(addr))
            image[addr] = value
        return image

    def extent(self):
        """(first, last) occupied word addresses, or (0, -1) if empty."""
        if not self.words:
            return 0, -1
        return min(self.words), max(self.words)
