"""Two-pass AVR assembler.

Accepts GNU-as-flavoured syntax for the instruction subset defined in
:mod:`repro.isa`:

* labels (``name:``), ``.equ``/``.set`` constants, ``.org``, ``.db``,
  ``.dw``, ``.space``, ``.align`` directives;
* expressions with symbols and ``lo8``/``hi8``/``pm_lo8``/``pm_hi8``;
* all load/store addressing modes (``X+``, ``-Y``, ``Z+12`` ...);
* the usual alias mnemonics (``clr``, ``lsl``, ``breq``, ``sei``,
  ``ser``, ``cbr``, ``sbr``, ...).

Pass 1 assigns addresses to labels; pass 2 encodes instructions and
records relocations for symbol-referring operands so binary-rewriting
tools can re-layout the code.
"""

import re

from repro.asm import expr as expr_mod
from repro.asm.errors import AsmError, SymbolError
from repro.asm.program import Program, Reloc
from repro.isa.encoding import encode
from repro.isa.opcodes import (
    BRANCH_ALIASES,
    FLAG_ALIASES,
    REG_ALIASES,
    SPEC_BY_KEY,
    SPEC_BY_MNEMONIC,
    OperandKind,
)
from repro.isa.registers import ATMEGA103, IoReg

_REG_NAMES = {"xl": 26, "xh": 27, "yl": 28, "yh": 29, "zl": 30, "zh": 31}
_PTR_BASE = {"x": 26, "y": 28, "z": 30}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:")
_SYMREF_RE = re.compile(
    r"^([A-Za-z_.$][\w.$]*)\s*(?:([+-])\s*(\d+|0[xX][0-9a-fA-F]+))?$")
_FUNCREF_RE = re.compile(
    r"^(lo8|hi8|pm_lo8|pm_hi8)\(\s*([A-Za-z_.$][\w.$]*)\s*"
    r"(?:([+-])\s*(\d+|0[xX][0-9a-fA-F]+))?\s*\)$")


def default_symbols(geometry=ATMEGA103):
    """Symbols every program gets for free: geometry and I/O addresses."""
    return {
        "RAMEND": geometry.ramend,
        "SRAM_START": geometry.sram_start,
        "FLASHEND": geometry.flash_bytes - 1,
        "SPL": IoReg.SPL,
        "SPH": IoReg.SPH,
        "SREG": IoReg.SREG,
    }


class _Statement:
    __slots__ = ("line_no", "labels", "op", "args", "text")

    def __init__(self, line_no, labels, op, args, text):
        self.line_no = line_no
        self.labels = labels
        self.op = op
        self.args = args
        self.text = text


def _strip_comment(line):
    out = []
    in_str = None
    i = 0
    while i < len(line):
        ch = line[i]
        if in_str:
            out.append(ch)
            if ch == "\\" and i + 1 < len(line):
                out.append(line[i + 1])
                i += 2
                continue
            if ch == in_str:
                in_str = None
        elif ch in "'\"":
            in_str = ch
            out.append(ch)
        elif ch == ";" or (ch == "/" and line[i:i + 2] == "//"):
            break
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def _split_args(text):
    """Split an operand list on commas not inside quotes or parens."""
    args = []
    depth = 0
    in_str = None
    cur = []
    i = 0
    while i < len(text):
        ch = text[i]
        if in_str:
            cur.append(ch)
            if ch == "\\" and i + 1 < len(text):
                cur.append(text[i + 1])
                i += 2
                continue
            if ch == in_str:
                in_str = None
        elif ch in "'\"":
            in_str = ch
            cur.append(ch)
        elif ch == "(":
            depth += 1
            cur.append(ch)
        elif ch == ")":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
        i += 1
    last = "".join(cur).strip()
    if last:
        args.append(last)
    return args


def parse_register(text):
    """Parse a register operand; returns the register number or None."""
    t = text.strip().lower()
    if t in _REG_NAMES:
        return _REG_NAMES[t]
    m = re.match(r"^r(\d{1,2})$", t)
    if m:
        n = int(m.group(1))
        if 0 <= n <= 31:
            return n
    return None


def _parse_ptr_operand(text):
    """Parse a pointer operand like ``X``, ``X+``, ``-Y``, ``Z+12``.

    Returns ``(ptr, post_inc, pre_dec, disp)`` where disp is the
    displacement expression text (None when absent), or None if the text
    is not a pointer operand.
    """
    t = text.strip()
    low = t.lower()
    if low in _PTR_BASE:
        return low.upper(), False, False, None
    if len(low) == 2 and low[1] == "+" and low[0] in _PTR_BASE:
        return low[0].upper(), True, False, None
    if len(low) == 2 and low[0] == "-" and low[1] in _PTR_BASE:
        return low[1].upper(), False, True, None
    m = re.match(r"^([xyzXYZ])\s*\+\s*(.+)$", t)
    if m:
        return m.group(1).upper(), False, False, m.group(2)
    return None


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, geometry=ATMEGA103, symbols=None):
        self.geometry = geometry
        self.predefined = default_symbols(geometry)
        if symbols:
            self.predefined.update(symbols)

    # ------------------------------------------------------------------
    def assemble(self, source, name="<asm>"):
        statements = self._parse(source, name)
        symbols = dict(self.predefined)
        self._pass1(statements, symbols, name)
        return self._pass2(statements, symbols, name)

    # ------------------------------------------------------------------
    def _parse(self, source, name):
        statements = []
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            labels = []
            while True:
                m = _LABEL_RE.match(line)
                if not m:
                    break
                labels.append(m.group(1))
                line = line[m.end():].strip()
            if not line and not labels:
                continue
            op = None
            args = []
            if line:
                # `NAME = expr` constant definition
                m = re.match(r"^([A-Za-z_.$][\w.$]*)\s*=\s*(.+)$", line)
                if m and not line.startswith("."):
                    op = ".equ"
                    args = [m.group(1), m.group(2)]
                else:
                    parts = line.split(None, 1)
                    op = parts[0].lower()
                    args = _split_args(parts[1]) if len(parts) > 1 else []
            statements.append(_Statement(line_no, labels, op, args, line))
        return statements

    # ------------------------------------------------------------------
    def _size_of(self, st, name):
        """Size in bytes of statement *st* (pass 1)."""
        op = st.op
        if op is None:
            return 0
        if op.startswith("."):
            return self._directive_size(st, name)
        key = self._resolve_key(st, name)
        return SPEC_BY_KEY[key].size_bytes

    def _directive_size(self, st, name):
        op = st.op
        if op in (".equ", ".set", ".org", ".global", ".globl", ".text",
                  ".section", ".type", ".size"):
            return 0
        if op == ".db" or op == ".byte":
            total = 0
            for arg in st.args:
                if arg.startswith('"'):
                    total += len(self._string_bytes(arg, st, name))
                else:
                    total += 1
            return total
        if op == ".dw" or op == ".word":
            return 2 * len(st.args)
        if op in (".space", ".skip"):
            return self._const_expr(st.args[0], st, name)
        if op == ".align":
            return -1  # variable; handled specially
        raise AsmError("unknown directive {!r}".format(op), st.line_no, name)

    def _string_bytes(self, arg, st, name):
        if not (arg.startswith('"') and arg.endswith('"')):
            raise AsmError("bad string literal {!r}".format(arg),
                           st.line_no, name)
        return arg[1:-1].encode().decode("unicode_escape").encode("latin-1")

    def _const_expr(self, text, st, name, symbols=None):
        try:
            return expr_mod.evaluate(text, symbols or self.predefined)
        except AsmError as exc:
            raise AsmError(str(exc.message), st.line_no, name)

    # ------------------------------------------------------------------
    def _pass1(self, statements, symbols, name):
        lc = 0  # location counter, flash byte address
        for st in statements:
            for label in st.labels:
                if label in symbols:
                    raise SymbolError("redefined symbol {!r}".format(label),
                                      st.line_no, name)
                symbols[label] = lc
            if st.op is None:
                continue
            if st.op in (".equ", ".set"):
                args = st.args
                if len(args) == 1 and "=" in args[0]:
                    lhs, _, rhs = args[0].partition("=")
                    args = [lhs.strip(), rhs.strip()]
                if len(args) != 2:
                    raise AsmError(".equ takes NAME, VALUE", st.line_no, name)
                symbols[args[0]] = self._const_expr(
                    args[1], st, name, symbols)
                continue
            if st.op == ".org":
                lc = self._const_expr(st.args[0], st, name, symbols)
                continue
            if st.op == ".align":
                n = self._const_expr(st.args[0], st, name, symbols)
                lc = (lc + n - 1) // n * n
                continue
            size = self._size_of(st, name)
            if size and not st.op.startswith(".") and lc % 2:
                raise AsmError("instruction at odd address 0x{:x}".format(lc),
                               st.line_no, name)
            lc += size

    # ------------------------------------------------------------------
    def _pass2(self, statements, symbols, name):
        program = Program(source_name=name)
        program.symbols = symbols
        byte_image = {}
        lc = 0

        def emit_byte(value):
            nonlocal lc
            byte_image[lc] = value & 0xFF
            lc += 1

        for st in statements:
            if st.op is None:
                continue
            if st.op in (".equ", ".set", ".global", ".globl", ".text",
                         ".section", ".type", ".size"):
                continue
            if st.op == ".org":
                lc = expr_mod.evaluate(st.args[0], symbols)
                continue
            if st.op == ".align":
                n = expr_mod.evaluate(st.args[0], symbols)
                while lc % n:
                    emit_byte(0)
                continue
            if st.op in (".db", ".byte"):
                for arg in st.args:
                    if arg.startswith('"'):
                        for b in self._string_bytes(arg, st, name):
                            emit_byte(b)
                    else:
                        emit_byte(self._const_expr(arg, st, name, symbols))
                continue
            if st.op in (".dw", ".word"):
                for arg in st.args:
                    val = self._const_expr(arg, st, name, symbols)
                    emit_byte(val & 0xFF)
                    emit_byte((val >> 8) & 0xFF)
                continue
            if st.op in (".space", ".skip"):
                n = self._const_expr(st.args[0], st, name, symbols)
                fill = (self._const_expr(st.args[1], st, name, symbols)
                        if len(st.args) > 1 else 0)
                for _ in range(n):
                    emit_byte(fill)
                continue
            # instruction
            key = self._resolve_key(st, name)
            operands = self._operand_values(st, key, lc, symbols, name,
                                            program)
            try:
                words = encode(key, operands)
            except ValueError as exc:
                raise AsmError(str(exc), st.line_no, name)
            program.listing[lc // 2] = st.line_no
            for w in words:
                emit_byte(w & 0xFF)
                emit_byte(w >> 8)

        # pack bytes into little-endian words
        for addr, value in byte_image.items():
            widx = addr // 2
            word = program.words.get(widx, 0x0000)
            if addr % 2:
                word = (word & 0x00FF) | (value << 8)
            else:
                word = (word & 0xFF00) | value
            program.words[widx] = word
        return program

    # ------------------------------------------------------------------
    def _resolve_key(self, st, name):
        """Map a source mnemonic + operand shapes to a unique spec key."""
        op = st.op
        args = st.args
        err = lambda msg: AsmError(msg, st.line_no, name)

        if op in BRANCH_ALIASES or op in FLAG_ALIASES:
            return BRANCH_ALIASES.get(op, FLAG_ALIASES.get(op))[0]
        if op in REG_ALIASES:
            return REG_ALIASES[op]
        if op in ("ser", "cbr", "sbr"):
            return {"ser": "ldi", "cbr": "andi", "sbr": "ori"}[op]
        if op in ("lpm", "elpm"):
            if not args:
                return op + "_r0"
            ptr = _parse_ptr_operand(args[1]) if len(args) == 2 else None
            if ptr and ptr[0] == "Z":
                return op + ("_zp" if ptr[1] else "")
            raise err("{} takes no operands or `Rd, Z[+]`".format(op))
        if op in ("ld", "ldd"):
            if len(args) != 2:
                raise err("{} takes `Rd, <ptr>`".format(op))
            ptr = _parse_ptr_operand(args[1])
            if ptr is None:
                raise err("bad pointer operand {!r}".format(args[1]))
            return self._ldst_key(False, ptr, err)
        if op in ("st", "std"):
            if len(args) != 2:
                raise err("{} takes `<ptr>, Rr`".format(op))
            ptr = _parse_ptr_operand(args[0])
            if ptr is None:
                raise err("bad pointer operand {!r}".format(args[0]))
            return self._ldst_key(True, ptr, err)
        specs = SPEC_BY_MNEMONIC.get(op)
        if not specs:
            raise err("unknown mnemonic {!r}".format(op))
        if len(specs) > 1:
            raise err("ambiguous mnemonic {!r}".format(op))
        return specs[0].key

    @staticmethod
    def _ldst_key(is_store, ptr, err):
        base, post_inc, pre_dec, disp = ptr
        side = "st" if is_store else "ld"
        if disp is not None:
            if base == "X":
                raise err("X does not support displacement")
            return "{}d_{}".format(side, base.lower())
        if post_inc:
            return "{}_{}p".format(side, base.lower())
        if pre_dec:
            return "{}_m{}".format(side, base.lower())
        if base == "X":
            return "{}_x".format(side)
        # plain Y/Z are the q=0 displaced forms
        return "{}d_{}".format(side, base.lower())

    # ------------------------------------------------------------------
    def _operand_values(self, st, key, lc, symbols, name, program):
        spec = SPEC_BY_KEY[key]
        op = st.op
        args = list(st.args)
        err = lambda msg: AsmError(msg, st.line_no, name)

        # expand aliases to canonical operand lists
        if op in BRANCH_ALIASES:
            flag = BRANCH_ALIASES[op][1]
            args = [str(flag)] + args
        elif op in FLAG_ALIASES:
            args = [str(FLAG_ALIASES[op][1])]
        elif op in REG_ALIASES:
            if len(args) != 1:
                raise err("{} takes one register".format(op))
            args = [args[0], args[0]]
        elif op == "ser":
            args = [args[0], "0xFF"]
        elif op == "cbr":
            val = expr_mod.evaluate(args[1], symbols)
            args = [args[0], str((~val) & 0xFF)]
        elif op in ("lpm", "elpm") and key in ("lpm", "lpm_zp", "elpm",
                                               "elpm_zp"):
            args = [args[0]]
        elif op in ("ld", "ldd"):
            ptr = _parse_ptr_operand(args[1])
            args = [args[0]] + ([ptr[3]] if ptr[3] is not None else
                                (["0"] if spec.modes.get("disp") else []))
        elif op in ("st", "std"):
            ptr = _parse_ptr_operand(args[0])
            disp = ([ptr[3]] if ptr[3] is not None else
                    (["0"] if spec.modes.get("disp") else []))
            args = disp + [args[1]]

        if len(args) != len(spec.operands):
            raise err("{} takes {} operand(s), got {}".format(
                spec.mnemonic, len(spec.operands), len(args)))

        values = []
        for slot, text in zip(spec.operands, args):
            values.append(self._operand_value(slot, text, st, lc, symbols,
                                              name, program, key))
        return values

    def _operand_value(self, slot, text, st, lc, symbols, name, program,
                       key):
        kind = slot.kind
        err = lambda msg: AsmError(msg, st.line_no, name)
        if kind in (OperandKind.REG, OperandKind.REG_HI, OperandKind.REG_PAIR,
                    OperandKind.REG_PAIR_W):
            reg = parse_register(text)
            if reg is None:
                raise err("expected register, got {!r}".format(text))
            return reg
        value = self._const_expr(text, st, name, symbols)
        if kind in (OperandKind.REL7, OperandKind.REL12):
            delta = value - (lc + 2)
            if delta % 2:
                raise err("branch target at odd byte offset")
            self._record_symref(program, text, lc, kind.value)
            return delta // 2
        if kind is OperandKind.ADDR22:
            if value % 2:
                raise err("jump/call target at odd byte address")
            self._record_symref(program, text, lc, "addr22")
            return value // 2
        if kind is OperandKind.ADDR16:
            self._record_symref(program, text, lc, "addr16")
            return value
        if kind is OperandKind.IMM8:
            self._record_symref(program, text, lc, "imm8")
            return value & 0xFF if -256 < value < 256 else value
        return value

    @staticmethod
    def _record_symref(program, text, lc, func):
        text = text.strip()
        m = _FUNCREF_RE.match(text)
        if m:
            addend = 0
            if m.group(3):
                addend = int(m.group(4), 0)
                if m.group(3) == "-":
                    addend = -addend
            program.relocs.append(
                Reloc(lc, m.group(1), m.group(2), addend))
            return
        m = _SYMREF_RE.match(text)
        if m and parse_register(m.group(1)) is None:
            name = m.group(1)
            if name in program.symbols or not name[0].isdigit():
                addend = 0
                if m.group(2):
                    addend = int(m.group(3), 0)
                    if m.group(2) == "-":
                        addend = -addend
                program.relocs.append(Reloc(lc, func, name, addend))


def assemble(source, name="<asm>", geometry=ATMEGA103, symbols=None):
    """Convenience one-shot assembly of *source* into a Program."""
    return Assembler(geometry, symbols).assemble(source, name)
