"""Assembler/disassembler toolchain for the AVR subset."""

from repro.asm.assembler import Assembler, assemble, default_symbols
from repro.asm.disassembler import disassemble, format_instr, listing
from repro.asm.errors import AsmError, ExprError, SymbolError
from repro.asm.program import Program, Reloc

__all__ = [
    "Assembler",
    "assemble",
    "default_symbols",
    "disassemble",
    "format_instr",
    "listing",
    "AsmError",
    "ExprError",
    "SymbolError",
    "Program",
    "Reloc",
]
