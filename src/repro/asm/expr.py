"""Tiny expression evaluator for assembler operands.

Supports integer literals (decimal, ``0x``, ``0b``, ``0o``, character
literals), symbols, the usual arithmetic/bitwise operators with C-like
precedence, parentheses, unary ``-``/``~``, and the AVR-toolchain byte
extraction functions ``lo8``/``hi8`` (data addresses and 16-bit values)
and ``pm_lo8``/``pm_hi8`` (program-memory *word* addresses, i.e. the
byte address divided by two first).
"""

import re

from repro.asm.errors import ExprError, SymbolError

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|0[oO][0-7]+|\d+)"
    r"|(?P<char>'(?:\\.|[^'\\])')"
    r"|(?P<name>[A-Za-z_.$][A-Za-z0-9_.$]*)"
    r"|(?P<op><<|>>|[-+*/%&|^~()!,])"
    r")"
)

_FUNCS = {
    "lo8": lambda v: v & 0xFF,
    "hi8": lambda v: (v >> 8) & 0xFF,
    "hh8": lambda v: (v >> 16) & 0xFF,
    "pm_lo8": lambda v: (v >> 1) & 0xFF,
    "pm_hi8": lambda v: (v >> 9) & 0xFF,
    "pm": lambda v: v >> 1,
}

# binary operator -> (precedence, function); higher binds tighter
_BINOPS = {
    "|": (1, lambda a, b: a | b),
    "^": (2, lambda a, b: a ^ b),
    "&": (3, lambda a, b: a & b),
    "<<": (4, lambda a, b: a << b),
    ">>": (4, lambda a, b: a >> b),
    "+": (5, lambda a, b: a + b),
    "-": (5, lambda a, b: a - b),
    "*": (6, lambda a, b: a * b),
    "/": (6, lambda a, b: _div(a, b)),
    "%": (6, lambda a, b: a % b),
}


def _div(a, b):
    if b == 0:
        raise ExprError("division by zero")
    return a // b


def tokenize(text):
    """Split *text* into expression tokens; raises ExprError on junk."""
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ExprError("bad token near {!r}".format(rest[:10]))
        pos = m.end()
        if m.group("num"):
            tokens.append(("num", int(m.group("num"), 0)))
        elif m.group("char"):
            body = m.group("char")[1:-1]
            tokens.append(("num", ord(body.encode().decode(
                "unicode_escape"))))
        elif m.group("name"):
            tokens.append(("name", m.group("name")))
        else:
            tokens.append(("op", m.group("op")))
    return tokens


class _Parser:
    def __init__(self, tokens, symbols):
        self.tokens = tokens
        self.symbols = symbols
        self.i = 0
        self.used_symbols = set()

    def peek(self):
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self):
        tok = self.peek()
        if tok is None:
            raise ExprError("unexpected end of expression")
        self.i += 1
        return tok

    def parse(self, min_prec=0):
        value = self.parse_unary()
        while True:
            tok = self.peek()
            if tok is None or tok[0] != "op" or tok[1] not in _BINOPS:
                return value
            prec, fn = _BINOPS[tok[1]]
            if prec < min_prec:
                return value
            self.next()
            rhs = self.parse(prec + 1)
            value = fn(value, rhs)

    def parse_unary(self):
        tok = self.next()
        if tok == ("op", "-"):
            return -self.parse_unary()
        if tok == ("op", "~"):
            return ~self.parse_unary()
        if tok == ("op", "+"):
            return self.parse_unary()
        if tok == ("op", "("):
            value = self.parse()
            self.expect(")")
            return value
        if tok[0] == "num":
            return tok[1]
        if tok[0] == "name":
            name = tok[1]
            if name in _FUNCS and self.peek() == ("op", "("):
                self.next()
                value = self.parse()
                self.expect(")")
                return _FUNCS[name](value)
            if name not in self.symbols:
                raise SymbolError("undefined symbol {!r}".format(name))
            self.used_symbols.add(name)
            return self.symbols[name]
        raise ExprError("unexpected token {!r}".format(tok[1]))

    def expect(self, op):
        tok = self.next()
        if tok != ("op", op):
            raise ExprError("expected {!r}".format(op))


def evaluate(text, symbols=None):
    """Evaluate expression *text* against the *symbols* mapping."""
    parser = _Parser(tokenize(text), symbols or {})
    value = parser.parse()
    if parser.peek() is not None:
        raise ExprError("trailing junk in expression {!r}".format(text))
    return value


def evaluate_with_refs(text, symbols=None):
    """Like :func:`evaluate` but also returns the set of symbols used."""
    parser = _Parser(tokenize(text), symbols or {})
    value = parser.parse()
    if parser.peek() is not None:
        raise ExprError("trailing junk in expression {!r}".format(text))
    return value, parser.used_symbols


def references(text):
    """Return the symbol names referenced by expression *text* without
    evaluating it (used by pass 1 to detect forward references)."""
    names = set()
    for kind, val in tokenize(text):
        if kind == "name" and val not in _FUNCS:
            names.add(val)
    return names
