"""Flash image disassembler.

Used by the SFI verifier (which must inspect every reachable
instruction), by tests, and for debugging.  The disassembler walks a
word image linearly, decoding 16- and 32-bit instructions, and renders
a listing with symbolic labels when a symbol table is supplied.
"""

from dataclasses import dataclass

from repro.isa.encoding import DecodeError, decode_words
from repro.isa.registers import pair_name


@dataclass(frozen=True)
class Line:
    """One disassembled instruction (or undecodable data word)."""

    byte_addr: int
    words: tuple
    instr: object  # DecodedInstr or None when undecodable
    text: str

    @property
    def size_words(self):
        return len(self.words)


_PTR_SUFFIX = {
    (False, False): "{p}",
    (True, False): "{p}+",
    (False, True): "-{p}",
}


def format_instr(instr, byte_addr=0, symbols_by_addr=None):
    """Render *instr* as assembly text.

    Branch/jump/call targets are resolved to ``label`` names when
    *symbols_by_addr* (byte address -> name) knows them, otherwise to
    absolute hex byte addresses.
    """
    spec = instr.spec
    symbols_by_addr = symbols_by_addr or {}

    def target_text(byte_target):
        if byte_target in symbols_by_addr:
            return symbols_by_addr[byte_target]
        return "0x{:04x}".format(byte_target)

    if spec.kind in ("load", "store") and "ptr" in spec.modes:
        ptr = spec.modes["ptr"]
        if spec.modes.get("disp"):
            q = instr.operand("q")
            ptext = "{}+{}".format(ptr, q) if q else ptr
        else:
            ptext = _PTR_SUFFIX[(spec.modes.get("post_inc", False),
                                 spec.modes.get("pre_dec", False))].format(
                                     p=ptr)
        reg = instr.operands[0] if spec.kind == "load" else \
            instr.operand("r" if "r" in {o.letter for o in spec.operands}
                          else "d")
        if spec.kind == "load":
            return "{} r{}, {}".format(spec.mnemonic, reg, ptext)
        return "{} {}, r{}".format(spec.mnemonic, ptext, reg)

    parts = []
    for op, val in zip(spec.operands, instr.operands):
        from repro.isa.opcodes import OperandKind
        if op.kind in (OperandKind.REG, OperandKind.REG_HI):
            parts.append("r{}".format(val))
        elif op.kind in (OperandKind.REG_PAIR, OperandKind.REG_PAIR_W):
            parts.append("r{}".format(val) if val not in (26, 28, 30)
                         else pair_name(val)[0] + "L")
        elif op.kind in (OperandKind.REL7, OperandKind.REL12):
            target = byte_addr + 2 + 2 * val
            parts.append(target_text(target))
        elif op.kind is OperandKind.ADDR22:
            parts.append(target_text(val * 2))
        elif op.kind is OperandKind.ADDR16:
            parts.append(target_text(val) if val in symbols_by_addr
                         else "0x{:04x}".format(val))
        else:
            parts.append(str(val))
    if parts:
        return "{} {}".format(spec.mnemonic, ", ".join(parts))
    return spec.mnemonic


def disassemble(words, start_word=0, count_words=None, symbols=None):
    """Disassemble *words* (a sequence or a Program-style dict of words).

    Returns a list of :class:`Line`.  Undecodable words become ``.dw``
    lines so the walk never aborts (flash data tables decode this way).
    """
    if hasattr(words, "words"):  # Program
        symbols = symbols or getattr(words, "symbols", None)
        lo, hi = words.extent()
        image = [words.word(i) for i in range(hi + 1)]
        if count_words is None:
            count_words = hi + 1 - start_word
        words = image
    elif count_words is None:
        count_words = len(words) - start_word

    symbols_by_addr = {}
    if symbols:
        for name, addr in symbols.items():
            symbols_by_addr.setdefault(addr, name)

    lines = []
    i = start_word
    end = start_word + count_words
    while i < end:
        w0 = words[i]
        w1 = words[i + 1] if i + 1 < len(words) else None
        byte_addr = i * 2
        try:
            instr = decode_words(w0, w1)
        except DecodeError:
            lines.append(Line(byte_addr, (w0,), None,
                              ".dw 0x{:04x}".format(w0)))
            i += 1
            continue
        used = words[i:i + instr.size_words]
        text = format_instr(instr, byte_addr, symbols_by_addr)
        lines.append(Line(byte_addr, tuple(used), instr, text))
        i += instr.size_words
    return lines


def disassemble_flash(read_word, start_word, count_words,
                      symbols_by_addr=None):
    """Disassemble a flash window through a word-read callable.

    The forensics flight recorder uses this to render instruction
    windows straight off :class:`repro.sim.memory.Memory` without
    materializing a Program.  *read_word* may raise for out-of-range
    addresses; the walk stops cleanly at the first unreadable word.
    Returns a list of :class:`Line` with true byte addresses (so
    relative-branch targets render correctly).
    """
    lines = []
    i = start_word
    end = start_word + count_words
    while i < end:
        try:
            w0 = read_word(i)
        except Exception:
            break
        try:
            w1 = read_word(i + 1)
        except Exception:
            w1 = None
        byte_addr = i * 2
        try:
            instr = decode_words(w0, w1)
        except DecodeError:
            lines.append(Line(byte_addr, (w0,), None,
                              ".dw 0x{:04x}".format(w0)))
            i += 1
            continue
        used = (w0,) if instr.size_words == 1 else (w0, w1)
        lines.append(Line(byte_addr, used, instr,
                          format_instr(instr, byte_addr, symbols_by_addr)))
        i += instr.size_words
    return lines


def disassemble_one(read_word, word_addr, symbols_by_addr=None):
    """Disassemble the single instruction at *word_addr*; returns a
    :class:`Line` or None when the word is unreadable."""
    lines = disassemble_flash(read_word, word_addr, 1,
                              symbols_by_addr=symbols_by_addr)
    return lines[0] if lines else None


def listing(words, symbols=None):
    """Return a printable listing string for *words*."""
    out = []
    symbols_by_addr = {}
    if hasattr(words, "symbols"):
        for name, addr in words.symbols.items():
            symbols_by_addr.setdefault(addr, name)
    for line in disassemble(words, symbols=symbols):
        label = symbols_by_addr.get(line.byte_addr)
        if label:
            out.append("{}:".format(label))
        raw = " ".join("{:04x}".format(w) for w in line.words)
        out.append("  {:05x}:  {:<12} {}".format(line.byte_addr, raw,
                                                 line.text))
    return "\n".join(out)
