"""Multi-node sensor network simulation (behavioural).

The paper motivates Harbor with sensor-network deployments: "bugs in any
part of the software can easily bring down an entire network", and the
Surge bug "would cause some of the nodes in the network to crash".  This
module wires several behavioural SOS nodes into a collection tree so
those claims run end to end: Surge samples on leaf nodes, Tree routing
forwards hop by hop toward the sink, and a crashing (or protected)
module's effect on *network-level* data yield is measurable.

The radio is ideal (lossless, instantaneous); the interesting failures
here are software ones, as in the paper.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.sos.kernel import SosKernel
from repro.sos.messaging import KERNEL_PID, MSG_PKT_SEND, Message
from repro.sos.surge import SurgeModule
from repro.sos.tree_routing import TreeRoutingModule


@dataclass
class DeliveredPacket:
    """A packet that arrived at the sink."""

    origin: int       # node id of the sample's source
    hops: int
    frame: bytes


@dataclass
class NetworkNode:
    node_id: int
    kernel: SosKernel
    parent: int = None    # next hop toward the sink (None = unrooted)
    is_sink: bool = False
    neighbors: set = field(default_factory=set)

    @property
    def tree(self):
        record = self.kernel.modules.get("tree_routing")
        return record.module if record else None


class SensorNetwork:
    """A static multi-hop collection network of SOS nodes."""

    def __init__(self, protected=True):
        self.protected = protected
        self.nodes = {}
        self.sink_id = None
        self.delivered = []
        self._in_flight = deque()

    # --- topology ------------------------------------------------------
    def add_node(self, node_id, sensor_series=()):
        kernel = SosKernel(protected=self.protected)
        if sensor_series:
            kernel.set_sensor_series(sensor_series)
        node = NetworkNode(node_id, kernel)
        self.nodes[node_id] = node
        return node

    def link(self, a, b):
        self.nodes[a].neighbors.add(b)
        self.nodes[b].neighbors.add(a)

    def build_tree(self, sink_id):
        """BFS from the sink: every node learns its parent (next hop)."""
        self.sink_id = sink_id
        sink = self.nodes[sink_id]
        sink.is_sink = True
        sink.parent = None
        visited = {sink_id}
        frontier = deque([sink_id])
        while frontier:
            here = frontier.popleft()
            for neighbor in sorted(self.nodes[here].neighbors):
                if neighbor not in visited:
                    visited.add(neighbor)
                    self.nodes[neighbor].parent = here
                    frontier.append(neighbor)
        return visited

    # --- software deployment ----------------------------------------------
    def install_collection(self, surge_cls=SurgeModule):
        """Load Tree routing everywhere and Surge on non-sink nodes.

        A node with a parent (or the sink itself) has a route; unrooted
        nodes' tree_routing reports no route — the Surge failure mode.
        """
        for node in self.nodes.values():
            has_route = node.is_sink or node.parent is not None
            node.kernel.load_module(TreeRoutingModule(
                has_parent=has_route))
            if not node.is_sink:
                node.kernel.load_module(surge_cls())

    # --- traffic --------------------------------------------------------------
    def sample_all(self):
        """Fire one timer tick at every Surge instance."""
        for node in self.nodes.values():
            if "surge" in node.kernel.modules:
                node.kernel.post_timer("surge")

    def step(self):
        """Run every kernel to quiescence, then move radio frames one
        hop.  Returns the number of frames moved."""
        for node in self.nodes.values():
            node.kernel.run(max_messages=50)
        moved = 0
        for node in self.nodes.values():
            for entry in node.kernel.radio_log:
                self._in_flight.append((node.node_id, entry))
                moved += 1
            node.kernel.radio_log.clear()
        while self._in_flight:
            src_id, entry = self._in_flight.popleft()
            self._forward(src_id, entry)
        return moved

    def _forward(self, src_id, entry):
        src = self.nodes[src_id]
        if src.parent is None and not src.is_sink:
            return  # unrooted node: the frame is lost
        dst_id = src.parent if not src.is_sink else None
        frame = entry.get("frame", b"")
        hops = entry.get("hops", 0) + 1
        if dst_id is None:
            return
        dst = self.nodes[dst_id]
        if dst.is_sink:
            self.delivered.append(DeliveredPacket(
                origin=entry.get("origin", 0), hops=hops, frame=frame))
            return
        # re-inject on the next hop: the kernel allocates a fresh buffer,
        # copies the frame, and hands it to tree_routing
        kernel = dst.kernel
        tree = kernel.modules.get("tree_routing")
        if tree is None or tree.state != "loaded":
            return  # crashed relay: the frame is lost
        payload = kernel.harbor.malloc(max(len(frame), 1),
                                       kernel.harbor.domains.trusted)
        if payload is None:
            return
        for i, byte in enumerate(frame):
            kernel.harbor.store_unchecked(payload + i, byte)
        message = Message(KERNEL_PID, "tree_routing", MSG_PKT_SEND,
                          payload=payload, length=len(frame),
                          data={"origin": entry.get("origin", 0),
                                "hops": hops})
        kernel.post(message)

    def run(self, rounds=4):
        """Enough steps for frames to cross the network diameter."""
        for _ in range(rounds):
            self.step()
        return len(self.delivered)

    # --- reporting -----------------------------------------------------------
    def fault_report(self):
        return {node_id: [str(log.fault) for log in node.kernel.fault_log]
                for node_id, node in self.nodes.items()
                if node.kernel.fault_log}

    def crashed_modules(self):
        out = {}
        for node_id, node in self.nodes.items():
            crashed = [name for name, rec in node.kernel.modules.items()
                       if rec.state == "crashed"]
            if crashed:
                out[node_id] = crashed
        return out
