"""Tree-routing module (the provider side of the paper's anecdote).

Models the SOS Tree Routing module~[woo03surge] far enough to exercise
the protection mechanism: it maintains a parent link and a routing
header, exports ``get_hdr_size`` (the function Surge calls across
domains) and forwards data packets toward the sink.
"""

from repro.sos.messaging import MSG_PKT_SEND, SOS_ERROR
from repro.sos.module import SosModule

#: bytes of routing header the module prepends to payloads
TREE_ROUTING_HDR_SIZE = 7


class TreeRoutingModule(SosModule):
    """Maintains the routing tree; exports the header-size query."""

    name = "tree_routing"

    def __init__(self, has_parent=True):
        self.has_parent = has_parent
        self.state_addr = None
        self.forwarded = 0

    # --- handlers -----------------------------------------------------
    def init(self, ctx):
        # a little routing state in our own domain: parent id, seq no
        self.state_addr = ctx.malloc(8)
        ctx.store(self.state_addr, 1 if self.has_parent else 0)
        ctx.store(self.state_addr + 1, 0)  # sequence number
        ctx.register_function("get_hdr_size", self._get_hdr_size)

    def _get_hdr_size(self, ctx, *_args):
        """Exported: header bytes callers must reserve.

        Returns the SOS error code when the node has no route yet —
        exactly the failure mode whose unchecked result broke Surge.
        """
        if not ctx.load(self.state_addr):
            return SOS_ERROR
        return TREE_ROUTING_HDR_SIZE

    def handle_message(self, ctx, msg):
        if msg.mtype != MSG_PKT_SEND or msg.payload is None:
            return
        # stamp the routing header (bytes 0..6 of the packet we now own)
        seq = ctx.load(self.state_addr + 1)
        ctx.store(self.state_addr + 1, (seq + 1) & 0xFF)
        ctx.store(msg.payload, 0x7E)              # frame marker
        ctx.store(msg.payload + 1, seq)           # sequence
        ctx.store(msg.payload + 2, msg.data.get("origin", 0) & 0xFF)
        self.forwarded += 1
        # snapshot the bytes for the radio before releasing the buffer
        frame = bytes(ctx.load(msg.payload + i)
                      for i in range(msg.length))
        ctx.post_net(MSG_PKT_SEND, payload=msg.payload,
                     length=msg.length, seq=seq,
                     origin=msg.data.get("origin", 0),
                     hops=msg.data.get("hops", 0), frame=frame)
        ctx.free(msg.payload)
