"""SOS-style messaging (substrate for the paper's workload).

SOS modules interact by exchanging asynchronous messages dispatched by
a cooperative scheduler; message payloads are heap buffers whose
*ownership moves with the message* (``change_own`` — the reason the
paper's memory map tracks ownership at block granularity rather than
statically partitioning the address space).
"""

import itertools
from collections import deque
from dataclasses import dataclass, field

# well-known message types (mirroring SOS)
MSG_INIT = 1
MSG_FINAL = 2
MSG_TIMER_TIMEOUT = 3
MSG_DATA_READY = 4
MSG_PKT_SEND = 5
MSG_PKT_SENT = 6
MSG_ERROR = 7

#: the SOS error sentinel a failed cross-domain call yields; using it
#: unchecked is the Surge bug the paper's Harbor deployment caught.
SOS_ERROR = 0xFF

KERNEL_PID = "kernel"


@dataclass
class Message:
    """One message in flight."""

    src: str
    dst: str
    mtype: int
    payload: int = None      # heap address of the payload buffer (or None)
    length: int = 0
    data: dict = field(default_factory=dict)  # host-level metadata
    seq: int = field(default_factory=itertools.count().__next__)

    def __str__(self):
        return "Message({}->{} type={} len={})".format(
            self.src, self.dst, self.mtype, self.length)


class MessageQueue:
    """FIFO scheduler queue with simple accounting."""

    def __init__(self, capacity=64):
        self.capacity = capacity
        self._queue = deque()
        self.posted = 0
        self.dropped = 0
        self.delivered = 0

    def post(self, message):
        """Enqueue; returns False (drop) when full, like SOS does."""
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(message)
        self.posted += 1
        return True

    def take(self):
        if not self._queue:
            return None
        self.delivered += 1
        return self._queue.popleft()

    def __len__(self):
        return len(self._queue)

    def pending_for(self, dst):
        return sum(1 for m in self._queue if m.dst == dst)
