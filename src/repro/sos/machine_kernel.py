"""Machine-level SOS kernel: message dispatch over a cycle-accurate
protected node.

:class:`repro.sos.SosKernel` is the behavioural substrate; this kernel
runs the same message-passing discipline against *real machine-code
modules* on either protected system (:class:`~repro.sfi.SfiSystem` or
:class:`~repro.umpu.UmpuSystem` — both expose the same loader/dispatch
surface).  Every message delivery is a genuine cross-domain call on the
simulated node, so cycles, faults and containment are all measured, not
modelled — the paper's "executing complex software systems such as SOS"
at instruction level.

Message ABI for module handlers (an exported function, by default
``handle_msg``):

* r25:r24 = message type
* r23:r22 = 16-bit argument (payload address or scalar)
* r25:r24 on return = handler result (0 if unused)
"""

from dataclasses import dataclass, field

from repro.core.faults import ProtectionFault
from repro.sos.messaging import KERNEL_PID, Message, MessageQueue


@dataclass
class MachineModuleRecord:
    name: str
    module: object          # LoadedModule / UmpuModule
    handler: str
    state: str = "loaded"
    messages_handled: int = 0
    cycles: int = 0
    faults: int = 0


@dataclass
class MachineFaultLog:
    module: str
    message: object
    fault: ProtectionFault


class MachineKernel:
    """Cycle-accurate SOS-style dispatcher over a protected system."""

    def __init__(self, system, max_cycles_per_message=200_000):
        self.system = system
        self.max_cycles = max_cycles_per_message
        self.queue = MessageQueue()
        self.records = {}
        self.fault_log = []
        self.total_cycles = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    def load_module(self, program, name, exports=("handle_msg",),
                    handler="handle_msg"):
        """Load an assembly module and register its message handler."""
        if handler not in exports:
            raise ValueError(
                "handler {!r} must be among the exports".format(handler))
        module = self.system.load_module(program, name, exports=exports)
        record = MachineModuleRecord(name=name, module=module,
                                     handler=handler)
        self.records[name] = record
        return record

    def kernel_symbols(self):
        return self.system.kernel_symbols()

    # ------------------------------------------------------------------
    def post(self, dst, mtype, arg=0, src=KERNEL_PID):
        return self.queue.post(Message(src, dst, mtype,
                                       data={"arg": arg & 0xFFFF}))

    def run(self, max_messages=100):
        """Dispatch until the queue drains (or the budget runs out).

        Protection faults raised while a module handles a message are
        contained: logged, the module marked crashed, the node's
        protection state recovered, and dispatch continues — the
        behaviour the paper's kernel guarantees.
        """
        count = 0
        while count < max_messages:
            message = self.queue.take()
            if message is None:
                break
            count += 1
            record = self.records.get(message.dst)
            if record is None or record.state != "loaded":
                continue
            try:
                _result, cycles = self.system.call_export(
                    record.name, record.handler,
                    message.mtype, message.data.get("arg", 0),
                    max_cycles=self.max_cycles)
                record.messages_handled += 1
                record.cycles += cycles
                self.total_cycles += cycles
            except ProtectionFault as fault:
                record.faults += 1
                record.state = "crashed"
                self.fault_log.append(
                    MachineFaultLog(record.name, message, fault))
                self.system.recover()
        self.delivered += count
        return count

    # ------------------------------------------------------------------
    def restart_module(self, name):
        """Re-arm a crashed module (state reset is the caller's business;
        a full SOS reload would re-run the module's init message)."""
        self.records[name].state = "loaded"

    def stats(self):
        return {name: {"messages": rec.messages_handled,
                       "cycles": rec.cycles,
                       "faults": rec.faults,
                       "state": rec.state}
                for name, rec in self.records.items()}
