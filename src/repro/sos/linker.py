"""Cross-domain linker: builds the per-domain jump tables (paper §3.1).

"A linker parses the set of functions exported by a domain and writes
them to a jump table in flash memory.  The jump table is similar in
design to the processor interrupt vector table.  Each entry ... is an
instruction to jump to a valid exported function."  Empty entries jump
to an exception routine so a call to an unpublished slot traps instead
of falling through.

The linker is independent of how subscription happens (static or
dynamic); here it emits ``jmp`` words directly into a flash image.
"""

from dataclasses import dataclass, field

from repro.core.control_flow import JumpTable
from repro.isa.encoding import encode


@dataclass
class ExportRecord:
    domain: int
    index: int
    name: str
    target: int  # byte address of the exported function

    @property
    def entry_label(self):
        return "jt_d{}_{}".format(self.domain, self.name)


@dataclass
class CrossDomainLinker:
    """Builds and maintains the co-located jump tables."""

    jump_table: JumpTable
    exception_target: int = 0  # where empty entries jump (trap routine)
    _exports: dict = field(default_factory=dict)   # (domain,index) -> rec
    _by_name: dict = field(default_factory=dict)   # (domain,name) -> rec

    def export(self, domain, name, target, index=None):
        """Publish *target* as exported function *name* of *domain*.

        Returns the jump-table entry byte address other domains call.
        """
        if index is None:
            index = self._next_index(domain)
        if index >= self.jump_table.entries_per_domain:
            raise ValueError(
                "domain {} exceeded its {} exported functions".format(
                    domain, self.jump_table.entries_per_domain))
        rec = ExportRecord(domain, index, name, target)
        self._exports[(domain, index)] = rec
        self._by_name[(domain, name)] = rec
        return self.jump_table.entry_addr(domain, index)

    def _next_index(self, domain):
        used = [i for (d, i) in self._exports if d == domain]
        return max(used) + 1 if used else 0

    def entry_for(self, domain, name):
        """Jump-table entry byte address of *domain*'s export *name*."""
        rec = self._by_name[(domain, name)]
        return self.jump_table.entry_addr(domain, rec.index)

    def subscriptions(self, domain):
        """All exports of *domain*: name -> entry byte address."""
        return {rec.name: self.jump_table.entry_addr(domain, rec.index)
                for (d, _i), rec in self._exports.items() if d == domain}

    def unlink_domain(self, domain):
        """Drop all exports of *domain* (module unload)."""
        for key in [k for k in self._exports if k[0] == domain]:
            rec = self._exports.pop(key)
            self._by_name.pop((rec.domain, rec.name), None)

    # ------------------------------------------------------------------
    def emit(self, write_word):
        """Write the full jump-table region via ``write_word(word_addr,
        value)``: real entries ``jmp target``, empty entries ``jmp
        exception_target``."""
        jt = self.jump_table
        for domain in range(jt.ndomains):
            for index in range(jt.entries_per_domain):
                rec = self._exports.get((domain, index))
                target = rec.target if rec else self.exception_target
                w0, w1 = encode("jmp", (target // 2,))
                entry = jt.entry_addr(domain, index) // 2
                write_word(entry, w0)
                write_word(entry + 1, w1)

    def emit_into_program(self, program):
        self.emit(program.set_word)
        for (domain, _i), rec in self._exports.items():
            program.symbols.setdefault(
                rec.entry_label, self.jump_table.entry_addr(domain,
                                                            rec.index))
        return program

    def symbols(self):
        """Entry-address symbols (for assembling subscriber modules)."""
        return {rec.entry_label: self.jump_table.entry_addr(d, rec.index)
                for (d, _i), rec in self._exports.items()
                for d in [rec.domain]}

    def export_target(self, domain, name):
        """Code byte address behind export *name* of *domain* (the jmp
        destination of its slot), or None if not exported."""
        rec = self._by_name.get((domain, name))
        return None if rec is None else rec.target
