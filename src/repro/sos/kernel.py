"""Mini SOS kernel (behavioural substrate, paper §1.2).

A statically "compiled" trusted kernel plus dynamically loadable
modules, each isolated in its own Harbor protection domain.  The kernel
provides what the paper's workload exercises:

* dynamic memory with ownership (``malloc``/``free``/``change_own``);
* message dispatch with payload ownership transfer;
* function export/subscription with cross-domain calls through the
  jump table;
* fault containment: a protection fault raised while a module handles
  a message is caught by the kernel, the module is marked crashed and
  (optionally) restarted — "a stable kernel can always ensure a clean
  re-start of user modules when corruption is detected".

The kernel can run **protected** (every module store checked, the
default) or **unprotected** (stores go straight to memory) — the latter
demonstrates what the paper's Surge bug does to a node without Harbor.
"""

from dataclasses import dataclass, field

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import ProtectionFault
from repro.core.harbor import HarborSystem
from repro.sos.messaging import (
    KERNEL_PID,
    MSG_FINAL,
    MSG_INIT,
    Message,
    MessageQueue,
    SOS_ERROR,
)
from repro.sos.module import (
    ExportedFunction,
    ModuleRecord,
    Subscription,
)


@dataclass
class FaultLog:
    """Record of a contained protection fault.

    ``report`` is the :class:`repro.trace.forensics.FaultReport`
    attached to the fault, when a flight recorder captured one — the
    kernel's recovery input and the exportable panic dump.
    """

    module: str
    message: object
    fault: ProtectionFault
    report: object = None


class ModuleContext:
    """The capability a module handler acts through.

    All memory traffic is attributed to (and checked against) the
    module's domain.
    """

    def __init__(self, kernel, record):
        self._kernel = kernel
        self._record = record

    @property
    def domain(self):
        return self._record.domain

    @property
    def name(self):
        return self._record.module.name

    # --- memory -----------------------------------------------------------
    def malloc(self, nbytes):
        return self._kernel.harbor.malloc(nbytes, self._record.domain)

    def free(self, addr):
        return self._kernel.harbor.free(addr, self._record.domain)

    def store(self, addr, value):
        """What a module's ``st`` does: checked under Harbor, a raw
        memory write on an unprotected node."""
        if self._kernel.protected:
            self._kernel.harbor.store(addr, value, self._record.domain)
        else:
            self._kernel.harbor.store_unchecked(addr, value)

    def store_word(self, addr, value):
        self.store(addr, value & 0xFF)
        self.store(addr + 1, (value >> 8) & 0xFF)

    def load(self, addr):
        return self._kernel.harbor.load(addr)

    def load_word(self, addr):
        return self.load(addr) | (self.load(addr + 1) << 8)

    # --- module interaction ---------------------------------------------------
    def register_function(self, name, fn):
        self._kernel.register_function(self.name, name, fn)

    def subscribe(self, provider, fn_name):
        sub = Subscription(self._kernel, self.name, provider, fn_name)
        self._record.subscriptions.append(sub)
        return sub

    def post(self, dst, mtype, payload=None, length=0, **data):
        """Post a message; payload buffers change owner to the receiver
        (zero-copy transfer, the SOS idiom change_own enables)."""
        return self._kernel.post(Message(self.name, dst, mtype,
                                         payload, length, data))

    def post_net(self, mtype, **data):
        """Hand a packet to the 'radio' (host-visible log)."""
        self._kernel.radio_log.append({"src": self.name, "mtype": mtype,
                                       **data})


class SosKernel:
    """The trusted domain: module loader + scheduler + services."""

    def __init__(self, harbor=None, protected=True, restart_crashed=False):
        self.harbor = harbor or HarborSystem()
        self.protected = protected
        self.restart_crashed = restart_crashed
        self.queue = MessageQueue()
        self.modules = {}
        self.functions = {}  # (provider, fn_name) -> ExportedFunction
        self.fault_log = []
        self.radio_log = []
        self.sensor_series = iter(())
        self._sensor_last = 0

    # --- module lifecycle -------------------------------------------------
    def load_module(self, module):
        """Load *module* into a fresh protection domain and deliver
        MSG_INIT into it."""
        if module.name in self.modules:
            raise ValueError("module {!r} already loaded".format(module.name))
        domain = self.harbor.create_domain(module.name)
        record = ModuleRecord(module=module, domain=domain)
        self.modules[module.name] = record
        self._dispatch_into(record, MSG_INIT,
                            Message(KERNEL_PID, module.name, MSG_INIT))
        return record

    def unload_module(self, name):
        """Deliver MSG_FINAL, free all memory the domain owns, drop its
        exports, release the domain."""
        record = self.modules.pop(name)
        if record.state == "loaded":
            self._dispatch_into(record, MSG_FINAL,
                                Message(KERNEL_PID, name, MSG_FINAL))
        self._reclaim_domain(record)
        record.state = "unloaded"
        return record

    def _reclaim_domain(self, record):
        did = record.domain.did
        for start, nblocks, owner in self.harbor.memmap.segments():
            if owner == did and self.harbor.heap.start <= start \
                    < self.harbor.heap.end:
                self.harbor.heap.free(start, TRUSTED_DOMAIN)
        for key in [k for k in self.functions if k[0] == record.module.name]:
            del self.functions[key]
        self.harbor.domains.destroy(did)

    def restart_module(self, name):
        """Clean restart of a crashed module (fresh state, same class)."""
        record = self.modules.pop(name)
        self._reclaim_domain(record)
        module = type(record.module)()
        return self.load_module(module)

    # --- functions ------------------------------------------------------------
    def register_function(self, provider, name, fn):
        export = ExportedFunction(provider, name, fn)
        self.functions[(provider, name)] = export
        return export

    def is_exported(self, provider, name):
        return (provider, name) in self.functions

    def cross_domain_invoke(self, subscriber, provider, fn_name, *args):
        """A cross-domain function call.

        Fails with SOS_ERROR when the provider is absent (not loaded or
        crashed) — the unchecked-error-code scenario.  Otherwise runs
        the provider's function *in the provider's domain*.
        """
        export = self.functions.get((provider, fn_name))
        record = self.modules.get(provider)
        if export is None or record is None or record.state != "loaded":
            return SOS_ERROR
        ctx = ModuleContext(self, record)
        jt_entry = self.harbor.jump_table.entry_addr(
            record.domain.did, 0)
        self.harbor.cross_domain_call(jt_entry)
        try:
            return export.fn(ctx, *args)
        finally:
            self.harbor.cross_domain_return()

    # --- messaging ------------------------------------------------------------
    def post(self, message):
        """Queue a message; transfer payload ownership to the receiver."""
        ok = self.queue.post(message)
        if ok and message.payload is not None:
            dst = self.modules.get(message.dst)
            new_owner = dst.domain if dst else TRUSTED_DOMAIN
            self.harbor.change_own(message.payload, new_owner,
                                   TRUSTED_DOMAIN)
        return ok

    def post_timer(self, dst, **data):
        from repro.sos.messaging import MSG_TIMER_TIMEOUT
        return self.post(Message(KERNEL_PID, dst, MSG_TIMER_TIMEOUT,
                                 data=data))

    def run(self, max_messages=100):
        """Dispatch queued messages until empty (or the budget runs
        out).  Returns the number of messages delivered."""
        delivered = 0
        while delivered < max_messages:
            message = self.queue.take()
            if message is None:
                break
            delivered += 1
            record = self.modules.get(message.dst)
            if record is None or record.state != "loaded":
                continue
            self._dispatch_into(record, message.mtype, message)
        return delivered

    def _dispatch_into(self, record, mtype, message):
        """Run a module handler inside its domain with fault containment."""
        ctx = ModuleContext(self, record)
        with self.harbor.as_domain(record.domain):
            try:
                if mtype == MSG_INIT:
                    record.module.init(ctx)
                elif mtype == MSG_FINAL:
                    record.module.final(ctx)
                else:
                    record.module.handle_message(ctx, message)
                record.messages_handled += 1
            except ProtectionFault as fault:
                if not self.protected:
                    raise  # unprotected nodes do not survive this
                record.faults += 1
                record.state = "crashed"
                self.fault_log.append(
                    FaultLog(record.module.name, message, fault,
                             report=getattr(fault, "report", None)))
                if self.restart_crashed:
                    self.restart_module(record.module.name)

    def fault_reports(self):
        """Captured :class:`FaultReport` objects of all contained
        faults (entries without forensics attached are skipped)."""
        return [entry.report for entry in self.fault_log
                if entry.report is not None]

    # --- devices ---------------------------------------------------------------
    def set_sensor_series(self, values):
        self.sensor_series = iter(values)

    def sensor_read(self):
        """Deterministic 'sensor': next value of the configured series."""
        try:
            self._sensor_last = next(self.sensor_series)
        except StopIteration:
            self._sensor_last = (self._sensor_last + 17) & 0xFF
        return self._sensor_last
