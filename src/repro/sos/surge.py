"""Surge data-collection module, with the bug Harbor caught (paper §1.2).

"A common programming mistake in SOS is to forget to check the error
code returned by a cross-domain function call.  In the Surge data
collection module, under certain conditions, the invalid result of a
failed function call to the Tree routing module was being used to
determine an offset into a buffer.  Subsequently, the data was being
written to an incorrect memory location, which would cause some of the
nodes in the network to crash.  Harbor was successfully able to prevent
the corruption and signal the invalid access."

``SurgeModule`` reproduces the buggy control flow faithfully: on each
timer tick it samples the sensor, allocates a packet, asks tree routing
for the header size **without checking for the error code**, and writes
the sample at ``packet + hdr_size``.  When tree routing answered
``SOS_ERROR`` (0xFF), the store lands ~255 bytes past the packet — in
somebody else's domain.  ``FixedSurgeModule`` is the corrected version.
"""

from repro.sos.messaging import (
    MSG_PKT_SEND,
    MSG_TIMER_TIMEOUT,
    SOS_ERROR,
)
from repro.sos.module import SosModule

SURGE_PKT_BYTES = 16


class SurgeModule(SosModule):
    """Periodic data collection with the unchecked-error-code bug."""

    name = "surge"
    check_error_code = False  # the bug

    def __init__(self):
        self.get_hdr_size = None
        self.samples = 0
        self.sent = 0
        self.skipped = 0

    def init(self, ctx):
        # subscribe to tree routing's exported function; if tree routing
        # is not loaded yet, calls will fail at run time
        self.get_hdr_size = ctx.subscribe("tree_routing", "get_hdr_size")

    def handle_message(self, ctx, msg):
        if msg.mtype != MSG_TIMER_TIMEOUT:
            return
        self.samples += 1
        value = self._sample(ctx)
        packet = ctx.malloc(SURGE_PKT_BYTES)
        if packet is None:
            return
        hdr = self.get_hdr_size()
        if self.check_error_code and hdr == SOS_ERROR:
            ctx.free(packet)
            self.skipped += 1
            return
        # BUG (when check_error_code is False): hdr may be SOS_ERROR
        # (0xFF); the store below then lands far outside the packet.
        ctx.store(packet + hdr, value)
        ctx.store(packet + hdr + 1, self.samples & 0xFF)
        ctx.post("tree_routing", MSG_PKT_SEND, payload=packet,
                 length=SURGE_PKT_BYTES, origin=value)
        self.sent += 1

    def _sample(self, ctx):
        return ctx._kernel.sensor_read()


class FixedSurgeModule(SurgeModule):
    """Surge with the error code checked (the correct behaviour)."""

    name = "surge"
    check_error_code = True
