"""Mini SOS operating-system substrate.

A behavioural model of the SOS sensor OS the paper evaluates on:
dynamically loadable modules in protection domains, message dispatch
with payload ownership transfer, function export/subscription with
cross-domain calls, and the cross-domain linker that builds the flash
jump tables for the two cycle-accurate systems.
"""

from repro.sos.kernel import FaultLog, ModuleContext, SosKernel
from repro.sos.linker import CrossDomainLinker, ExportRecord
from repro.sos.machine_kernel import (
    MachineFaultLog,
    MachineKernel,
    MachineModuleRecord,
)
from repro.sos.network import (
    DeliveredPacket,
    NetworkNode,
    SensorNetwork,
)
from repro.sos.messaging import (
    KERNEL_PID,
    MSG_DATA_READY,
    MSG_ERROR,
    MSG_FINAL,
    MSG_INIT,
    MSG_PKT_SEND,
    MSG_PKT_SENT,
    MSG_TIMER_TIMEOUT,
    Message,
    MessageQueue,
    SOS_ERROR,
)
from repro.sos.module import (
    ExportedFunction,
    ModuleRecord,
    SosModule,
    Subscription,
)
from repro.sos.surge import FixedSurgeModule, SURGE_PKT_BYTES, SurgeModule
from repro.sos.tree_routing import TREE_ROUTING_HDR_SIZE, TreeRoutingModule

__all__ = [
    "FaultLog",
    "ModuleContext",
    "SosKernel",
    "CrossDomainLinker",
    "ExportRecord",
    "MachineFaultLog",
    "MachineKernel",
    "MachineModuleRecord",
    "DeliveredPacket",
    "NetworkNode",
    "SensorNetwork",
    "KERNEL_PID",
    "MSG_DATA_READY",
    "MSG_ERROR",
    "MSG_FINAL",
    "MSG_INIT",
    "MSG_PKT_SEND",
    "MSG_PKT_SENT",
    "MSG_TIMER_TIMEOUT",
    "Message",
    "MessageQueue",
    "SOS_ERROR",
    "ExportedFunction",
    "ModuleRecord",
    "SosModule",
    "Subscription",
    "FixedSurgeModule",
    "SURGE_PKT_BYTES",
    "SurgeModule",
    "TREE_ROUTING_HDR_SIZE",
    "TreeRoutingModule",
]
