"""Loadable module abstraction (behavioural level).

An SOS module is a dynamically loadable unit of application code.  Here
a module is a Python class whose handlers run *inside its protection
domain*: every store it performs through its :class:`ModuleContext`
passes the Harbor write checker, and every call to another module's
function is a cross-domain call through the kernel's function registry.
"""

from dataclasses import dataclass, field

from repro.sos.messaging import SOS_ERROR


class SosModule:
    """Base class for behavioural SOS modules.

    Subclasses override the handlers; all interaction with the node
    (memory, messages, other modules) goes through the
    :class:`ModuleContext` the kernel passes in, which enforces the
    protection model.
    """

    name = "module"

    def init(self, ctx):
        """MSG_INIT handler: subscribe functions, allocate state."""

    def final(self, ctx):
        """MSG_FINAL handler: release what ``free``-ing the domain's
        memory does not already cover."""

    def handle_message(self, ctx, msg):
        """Any other message."""


@dataclass
class ExportedFunction:
    provider: str
    name: str
    fn: object           # callable(ctx, *args)
    jt_entry: int = None  # jump-table entry address (behavioural mirror)


@dataclass
class Subscription:
    """A module's handle on another module's exported function.

    Calling it performs a cross-domain call.  If the provider is not
    loaded (the paper's "Surge module is loaded on a node before the
    Tree routing module"), the call *fails* and yields the SOS error
    code — which the subscriber must check; forgetting to is the bug
    Harbor caught in deployment.
    """

    kernel: object
    subscriber: str
    provider: str
    fn_name: str
    calls: int = 0
    failures: int = 0

    def __call__(self, *args):
        self.calls += 1
        result = self.kernel.cross_domain_invoke(
            self.subscriber, self.provider, self.fn_name, *args)
        if result is SOS_ERROR:
            self.failures += 1
        return result

    @property
    def linked(self):
        return self.kernel.is_exported(self.provider, self.fn_name)


@dataclass
class ModuleRecord:
    """Kernel bookkeeping for one loaded module."""

    module: SosModule
    domain: object                 # repro.core.domains.Domain
    state: str = "loaded"          # loaded | crashed | unloaded
    exports: dict = field(default_factory=dict)
    subscriptions: list = field(default_factory=list)
    messages_handled: int = 0
    faults: int = 0
