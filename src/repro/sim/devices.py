"""Simple peripherals for the simulated node.

Only what the workloads need: a periodic timer that raises an interrupt
line (the heartbeat that drives SOS's timer messages), and a trivial
output port that collects bytes the program writes (a stand-in for the
UART/radio the examples "send" packets to).

Devices are ticked with elapsed cycles by the machine's run helpers;
they do not stall the CPU.
"""

from repro.sim.events import AccessKind


class PeriodicTimer:
    """Raises IRQ *line* every *period* CPU cycles.

    Attach with :meth:`install`; the machine ticks it from ``step``.
    """

    def __init__(self, interrupts, line=1, period=1000):
        if period <= 0:
            raise ValueError("timer period must be positive")
        self.interrupts = interrupts
        self.line = line
        self.period = period
        self._accumulated = 0
        self.fired = 0
        self.enabled = True

    def tick(self, cycles):
        if not self.enabled:
            return
        self._accumulated += cycles
        while self._accumulated >= self.period:
            self._accumulated -= self.period
            self.interrupts.raise_irq(self.line)
            self.fired += 1

    def install(self, core):
        core.devices.append(self)
        return self


class OutputPort:
    """An I/O-mapped byte sink: every write is recorded in order.

    Models the 'transmit register' of a UART/radio: the examples write
    packet bytes here and the host reads them back as the 'airwaves'.
    """

    def __init__(self, io_addr):
        self.io_addr = io_addr
        self.bytes = bytearray()

    def attach(self, memory):
        memory.io_devices[self.io_addr + 0x20] = self
        return self

    def io_read(self, data_addr):
        return len(self.bytes) & 0xFF  # a 'tx count' status

    def io_write(self, data_addr, value):
        self.bytes.append(value & 0xFF)

    def take(self):
        data = bytes(self.bytes)
        self.bytes.clear()
        return data
