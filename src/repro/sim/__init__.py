"""Instruction-level AVR simulator: memory, bus, core, machine."""

from repro.sim.bus import BusInterposer, DataBus, ReadAction, WriteAction
from repro.sim.core import AvrCore
from repro.sim.errors import (
    BadOpcode,
    CycleLimitExceeded,
    InvalidAccess,
    SimError,
)
from repro.sim.devices import OutputPort, PeriodicTimer
from repro.sim.events import AccessKind, BusEvent, BusTracer
from repro.sim.interrupts import InterruptController
from repro.sim.machine import CALL_SENTINEL_WORD, Machine
from repro.sim.memory import Memory
from repro.sim.snapshot import SNAPSHOT_SCHEMA, MachineSnapshot

__all__ = [
    "BusInterposer",
    "DataBus",
    "ReadAction",
    "WriteAction",
    "AvrCore",
    "BadOpcode",
    "CycleLimitExceeded",
    "InvalidAccess",
    "SimError",
    "AccessKind",
    "BusEvent",
    "BusTracer",
    "OutputPort",
    "PeriodicTimer",
    "InterruptController",
    "CALL_SENTINEL_WORD",
    "Machine",
    "MachineSnapshot",
    "SNAPSHOT_SCHEMA",
    "Memory",
]
