"""Interrupt controller for the simulated AVR core.

Classic AVR semantics: peripherals raise numbered interrupt lines; when
the global I flag is set, the highest-priority (lowest-numbered) pending
interrupt is taken between instructions — the return address is pushed,
I is cleared, and execution continues at the vector (vector *n* lives at
flash word ``n * vector_stride``).  ``reti`` returns and re-enables I.

Protection interaction (Harbor/UMPU): interrupt handlers are kernel
code, i.e. they run in the *trusted* domain regardless of which domain
was interrupted.  The domain tracker observes the ``irq``/``reti``
events the core emits and swaps the domain exactly like a cross-domain
call (frame on the safe stack, restored on ``reti``) — otherwise a
module's domain would leak into the kernel's interrupt handlers, or
worse, a handler's stores would be checked against module ownership.
"""

from repro.isa.registers import SREG_BITS


class InterruptController:
    """Pending-line bookkeeping + vectoring, attached to a core."""

    def __init__(self, core, nvectors=16, vector_stride_words=2):
        self.core = core
        self.nvectors = nvectors
        self.vector_stride_words = vector_stride_words
        self.pending = set()
        self.taken = 0
        core.interrupts = self

    def raise_irq(self, line):
        """A peripheral asserts interrupt *line* (0 = highest prio)."""
        if not 0 <= line < self.nvectors:
            raise ValueError("no interrupt line {}".format(line))
        self.pending.add(line)

    def vector_word(self, line):
        return line * self.vector_stride_words

    # called by the core between instructions
    def poll(self):
        """Take the highest-priority pending interrupt if I is set.

        Returns the cycles consumed (0 when nothing was taken).
        """
        core = self.core
        if not self.pending or not core.flag(SREG_BITS.I):
            return 0
        line = min(self.pending)
        self.pending.discard(line)
        self.taken += 1
        extra = 0
        for hook in core.call_hooks:
            result = hook(core, "irq", line=line,
                          target=self.vector_word(line))
            if result:
                extra += result
        extra += core.push_return_address(core.pc)
        core.set_flag(SREG_BITS.I, 0)
        core.pc = self.vector_word(line)
        # interrupt response time on AVR: four clock cycles minimum
        return 4 + extra
