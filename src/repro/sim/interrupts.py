"""Interrupt controller for the simulated AVR core.

Classic AVR semantics: peripherals raise numbered interrupt lines; when
the global I flag is set, the highest-priority (lowest-numbered) pending
interrupt is taken between instructions — the return address is pushed,
I is cleared, and execution continues at the vector (vector *n* lives at
flash word ``n * vector_stride``).  ``reti`` returns and re-enables I.

Protection interaction (Harbor/UMPU): interrupt handlers are kernel
code, i.e. they run in the *trusted* domain regardless of which domain
was interrupted.  The domain tracker observes the ``irq``/``reti``
events the core emits and swaps the domain exactly like a cross-domain
call (frame on the safe stack, restored on ``reti``) — otherwise a
module's domain would leak into the kernel's interrupt handlers, or
worse, a handler's stores would be checked against module ownership.
"""

from repro.isa.registers import SREG_BITS
from repro.trace.events import TraceEventKind
from repro.trace.metrics import LATENCY_BUCKETS

#: AVR interrupt response time: four clock cycles minimum.
IRQ_RESPONSE_CYCLES = 4


class InterruptController:
    """Pending-line bookkeeping + vectoring, attached to a core."""

    def __init__(self, core, nvectors=16, vector_stride_words=2):
        self.core = core
        self.nvectors = nvectors
        self.vector_stride_words = vector_stride_words
        self.pending = set()
        self.taken = 0
        self.raised = 0
        #: line -> raises swallowed because the line was already
        #: pending (a set can't queue; real hardware's one-bit flag
        #: behaves the same way, but here the loss is visible)
        self.coalesced = {}
        #: line -> cycle of the raise that made it pending (for the
        #: irq_entry_latency metric; popped when the line is taken)
        self._raised_at = {}
        core.interrupts = self

    @property
    def coalesced_total(self):
        return sum(self.coalesced.values())

    def raise_irq(self, line):
        """A peripheral asserts interrupt *line* (0 = highest prio).

        A raise on an already-pending line is coalesced (the pending
        flag is one bit); the loss is counted per line and surfaced as
        an ``IRQ_COALESCED`` trace event so ``fired``/``taken``
        divergence is attributable instead of silent.
        """
        if not 0 <= line < self.nvectors:
            raise ValueError("no interrupt line {}".format(line))
        self.raised += 1
        if line in self.pending:
            self.coalesced[line] = self.coalesced.get(line, 0) + 1
            trace = self.core.trace
            if trace is not None:
                trace.emit(self.core.cycles, TraceEventKind.IRQ_COALESCED,
                           pc=self.core.pc * 2,
                           domain=self.core._trace_domain(), line=line,
                           coalesced=self.coalesced[line])
            return
        self.pending.add(line)
        self._raised_at[line] = self.core.cycles

    def vector_word(self, line):
        return line * self.vector_stride_words

    # called by the core between instructions
    def poll(self):
        """Take the highest-priority pending interrupt if I is set.

        Returns the cycles consumed (0 when nothing was taken).
        """
        core = self.core
        if not self.pending or not core.flag(SREG_BITS.I):
            return 0
        line = min(self.pending)
        self.pending.discard(line)
        self.taken += 1
        raised = self._raised_at.pop(line, None)
        metrics = core.metrics
        if metrics is not None and raised is not None:
            metrics.histogram("irq_entry_latency", buckets=LATENCY_BUCKETS,
                              line=line).observe(core.cycles - raised)
        if core.trace is not None:
            core.trace.emit(core.cycles, TraceEventKind.IRQ_ENTER,
                            pc=core.pc * 2, domain=core._trace_domain(),
                            line=line,
                            target=self.vector_word(line) * 2)
        if core.profiler is not None:
            # the response cycles bill the interrupted domain
            core.profiler.charge("irq", IRQ_RESPONSE_CYCLES)
        extra = 0
        for hook in core.call_hooks:
            result = hook(core, "irq", line=line,
                          target=self.vector_word(line))
            if result:
                extra += result
        extra += core.push_return_address(core.pc)
        core.set_flag(SREG_BITS.I, 0)
        core.pc = self.vector_word(line)
        return IRQ_RESPONSE_CYCLES + extra
