"""Instruction-level AVR core with datasheet cycle accounting.

The core interprets decoded instructions from flash, updating the
register file, SREG and data memory.  Every data-space transaction goes
through the :class:`repro.sim.bus.DataBus` so that the UMPU functional
units can observe it; register-file and SREG manipulation by the ALU is
internal to the core (as on silicon) and does not appear on the bus.

Cycle counts follow the classic AVR (ATmega103) datasheet: 1 cycle for
ALU ops, 2 for loads/stores and taken branches, 3/4 for calls, 4 for
returns.  Functional units may add stall cycles per transaction; these
are returned by the bus and added to the core's cycle counter, which is
how the MMC's single-cycle store penalty is measured.

Dispatch is threaded: ``_fetch`` resolves each instruction's executor
once at decode time and caches ``(instr, handler, size_words,
base_cycles)``, so the steady-state step is a dict probe plus one
indirect call — no per-step name building.  :meth:`run` additionally
selects a fast loop that hoists the interrupt/trace/profiler/device
guards out of the loop entirely whenever none of those are attached;
the fast and instrumented paths execute the identical handlers and are
cycle-for-cycle identical (asserted by the differential tests).
"""

from repro.isa.encoding import DecodeError, decode_words, is_32bit_opcode
from repro.isa.opcodes import SPEC_BY_KEY
from repro.isa.registers import ATMEGA103, SREG_BITS, IoReg
from repro.sim.errors import BadOpcode, CycleLimitExceeded
from repro.sim.events import AccessKind
from repro.trace.events import TraceEventKind

_C = SREG_BITS.C
_Z = SREG_BITS.Z
_N = SREG_BITS.N
_V = SREG_BITS.V
_S = SREG_BITS.S
_H = SREG_BITS.H
_T = SREG_BITS.T

# SREG bit masks for the flattened flag updates
_MC = 1 << _C
_MZ = 1 << _Z
_MN = 1 << _N
_MV = 1 << _V
_MS = 1 << _S
_MH = 1 << _H
_MT = 1 << _T

# data-space addresses of the named I/O registers the core touches on
# nearly every instruction (SREG) or every call/push (SP)
_SREG_ADDR = IoReg.SREG + 0x20
_SPL_ADDR = IoReg.SPL + 0x20
_SPH_ADDR = IoReg.SPH + 0x20

_PTR_REG = {"X": 26, "Y": 28, "Z": 30}


class AvrCore:
    """Fetch/decode/execute interpreter for the AVR subset."""

    def __init__(self, memory, bus, geometry=ATMEGA103):
        self.memory = memory
        self.bus = bus
        self.geometry = geometry
        self.pc = 0  # word address
        self.cycles = 0
        #: retired-instruction counter (host-speed benchmarking; does
        #: not influence simulated state)
        self.instret = 0
        self.halted = False
        self._decode_cache = {}
        self._flash_words = geometry.flash_words
        #: hooks called around control transfers; the UMPU domain
        #: tracker installs itself here. Signature: (core, event, ...).
        self.call_hooks = []
        #: optional repro.sim.interrupts.InterruptController
        self.interrupts = None
        #: peripherals ticked with elapsed cycles after every step
        self.devices = []
        #: optional repro.trace.TraceSink; every emission site is
        #: guarded so a detached core pays nothing
        self.trace = None
        #: optional repro.trace.DomainProfiler
        self.profiler = None
        #: optional repro.trace.debug.Debugger (PC breakpoints); checked
        #: before each step on the instrumented path
        self.debug = None
        #: optional repro.trace.metrics.MetricsRegistry
        self.metrics = None
        #: cycle watermark (absolute cycle count) at which
        #: ``watermark_hook(core)`` fires, checked at instruction
        #: boundaries inside :meth:`run` on *both* loops.  The timeline
        #: recorder uses this to drop keyframe snapshots every N cycles;
        #: unlike the observers above, a set watermark does NOT opt the
        #: core out of the fast loop — the fast loop folds the check
        #: into its existing budget comparison, so an armed watermark
        #: costs nothing per step.  The hook must advance (or clear)
        #: ``watermark`` past the current cycle before returning.
        self.watermark = None
        self.watermark_hook = None
        #: callable returning the active protection domain (set by
        #: UmpuMachine); None on cores without protection hardware
        self.domain_provider = None
        bus.cycle_hook = lambda: self.cycles
        # runtime flash writes invalidate the decoded instructions they
        # overwrite, so no write path can execute stale decodes
        memory.flash_listeners.append(self._on_flash_write)

    # --- register / flag helpers ------------------------------------------
    def reg(self, n):
        return self.memory.data[n]

    def set_reg(self, n, value):
        self.memory.data[n] = value & 0xFF

    def reg_pair(self, n):
        data = self.memory.data
        return data[n] | (data[n + 1] << 8)

    def set_reg_pair(self, n, value):
        data = self.memory.data
        data[n] = value & 0xFF
        data[n + 1] = (value >> 8) & 0xFF

    @property
    def sp(self):
        data = self.memory.data
        return data[_SPL_ADDR] | (data[_SPH_ADDR] << 8)

    @sp.setter
    def sp(self, value):
        data = self.memory.data
        data[_SPL_ADDR] = value & 0xFF
        data[_SPH_ADDR] = (value >> 8) & 0xFF

    @property
    def sreg(self):
        return self.memory.data[_SREG_ADDR]

    @sreg.setter
    def sreg(self, value):
        self.memory.data[_SREG_ADDR] = value & 0xFF

    def flag(self, bit):
        return (self.memory.data[_SREG_ADDR] >> bit) & 1

    def set_flag(self, bit, value):
        data = self.memory.data
        if value:
            data[_SREG_ADDR] |= 1 << bit
        else:
            data[_SREG_ADDR] &= ~(1 << bit) & 0xFF

    # --- fetch/decode -------------------------------------------------------
    def _fetch(self):
        """Return the threaded decode-cache entry for the current PC:
        ``(instr, handler, size_words, base_cycles)``."""
        entry = self._decode_cache.get(self.pc)
        if entry is not None:
            return entry
        return self._decode_and_cache(self.pc)

    def _decode_and_cache(self, pc):
        """Decode the instruction at *pc*, bind its executor and cache
        the threaded entry.  A 16-bit opcode costs one flash read; the
        second word is only fetched for genuine 32-bit encodings."""
        w0 = self.memory.read_flash_word(pc)
        if is_32bit_opcode(w0):
            w1 = self.memory.read_flash_word(pc + 1) \
                if pc + 1 < self._flash_words else None
        else:
            w1 = None
        try:
            instr = decode_words(w0, w1)
        except DecodeError:
            raise BadOpcode(pc, w0)
        handler = _DISPATCH.get(instr.key)
        if handler is None:
            raise BadOpcode(pc, w0)
        entry = (instr, handler, instr.size_words, instr.spec.cycles)
        self._decode_cache[pc] = entry
        return entry

    def invalidate_decode_cache(self):
        """Call after rewriting flash at runtime."""
        self._decode_cache.clear()

    def _on_flash_write(self, word_addr):
        """Memory notified us of a flash write: drop any decode that
        covers the word (a 32-bit instruction starting one word earlier
        spans it too).  The cached entry carries the bound handler, so
        dropping it unbinds the stale executor as well."""
        cache = self._decode_cache
        if cache:
            cache.pop(word_addr, None)
            cache.pop(word_addr - 1, None)

    def _instr_size_at(self, word_addr):
        """Word size of the instruction at *word_addr* (for skips).

        Consults the decode cache first — skips are hot in the Table-3
        microbenchmarks and the skipped instruction has usually been
        decoded already — and falls back to a raw opcode-width probe
        (the skipped slot may hold data that never decodes).
        """
        cached = self._decode_cache.get(word_addr)
        if cached is not None:
            return cached[2]
        w0 = self.memory.read_flash_word(word_addr)
        return 2 if is_32bit_opcode(w0) else 1

    # --- stack helpers -------------------------------------------------------
    def _push_byte(self, value, kind):
        data = self.memory.data
        sp = data[_SPL_ADDR] | (data[_SPH_ADDR] << 8)
        extra = self.bus.write(sp, value, kind)
        sp = (sp - 1) & 0xFFFF
        data[_SPL_ADDR] = sp & 0xFF
        data[_SPH_ADDR] = sp >> 8
        return extra

    def _pop_byte(self, kind):
        data = self.memory.data
        sp = ((data[_SPL_ADDR] | (data[_SPH_ADDR] << 8)) + 1) & 0xFFFF
        data[_SPL_ADDR] = sp & 0xFF
        data[_SPH_ADDR] = sp >> 8
        value, extra = self.bus.read(sp, kind)
        return value, extra

    def push_return_address(self, word_addr):
        """Push a return address as the `call` family does: low byte
        first, high byte second (the safe-stack unit redirects these two
        transactions in the same order, completing the 5-byte frame
        layout ``[domain][sb_lo][sb_hi][ret_lo][ret_hi]``)."""
        extra = self._push_byte(word_addr & 0xFF, AccessKind.RET_PUSH)
        extra += self._push_byte((word_addr >> 8) & 0xFF, AccessKind.RET_PUSH)
        return extra

    def pop_return_address(self):
        hi, e0 = self._pop_byte(AccessKind.RET_POP)
        lo, e1 = self._pop_byte(AccessKind.RET_POP)
        return (hi << 8) | lo, e0 + e1

    # --- execution -------------------------------------------------------------
    def step(self):
        """Execute one instruction; returns cycles it consumed.

        Pending interrupts are taken between instructions (classic AVR
        timing) and their response cycles are attributed to this step.
        This is the fully instrumented path; :meth:`run` switches to an
        equivalent fast loop when no instrumentation is attached.
        """
        if self.halted:
            return 0
        debug = self.debug
        if debug is not None:
            debug.check_pc(self)
        before = self.cycles
        profiler = self.profiler
        if profiler is not None:
            profiler.begin_step(self)
        if self.interrupts is not None:
            self.cycles += self.interrupts.poll()
        pc0 = self.pc
        instr, handler, size, base = self._fetch()
        self.pc = pc0 + size  # handlers overwrite for control transfers
        extra = handler(self, instr)
        self.cycles += base + (extra or 0)
        self.instret += 1
        consumed = self.cycles - before
        if profiler is not None:
            profiler.end_step(self, consumed)
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.INSTR_RETIRE,
                            pc=pc0 * 2, domain=self._trace_domain(),
                            key=instr.key, cycles=consumed)
        for device in self.devices:
            device.tick(consumed)
        return consumed

    def _trace_domain(self):
        """Current protection domain for trace events (None when no
        provider knows about domains)."""
        provider = self.domain_provider
        return provider() if provider is not None else None

    def run(self, max_cycles=1_000_000, until_pc=None):
        """Run until halt, *until_pc* (word address) or the cycle budget.

        The budget is checked *before* each step, so the run never
        executes an instruction once ``max_cycles`` have been consumed;
        reaching *until_pc* at exactly the budget therefore succeeds
        deterministically, not by luck of the final step's cost.  The
        raised :class:`CycleLimitExceeded` carries how far the last
        executed step overshot the budget.

        When no trace sink, profiler, debugger, metrics registry or
        device is attached, the run executes on a fast loop with the
        per-step guards hoisted out; it is cycle-for-cycle identical to
        the instrumented path.  An interrupt controller alone does not
        force the instrumented path: the fast loop polls pending lines
        at the same instruction boundaries as :meth:`step` (but the
        ``irq_entry_latency`` metric needs a registry, which does).
        Attach instrumentation *before* calling ``run`` (as
        ``Machine.attach_*`` do) — the path is selected once per call.

        Returns cycles consumed in this call.
        """
        start = self.cycles
        if (self.trace is None
                and self.profiler is None and self.debug is None
                and self.metrics is None and not self.devices):
            return self._run_fast(start, max_cycles, until_pc)
        while not self.halted:
            if until_pc is not None and self.pc == until_pc:
                break
            spent = self.cycles - start
            if spent >= max_cycles:
                raise CycleLimitExceeded(max_cycles,
                                         overshoot=spent - max_cycles)
            watermark = self.watermark
            if watermark is not None and self.cycles >= watermark:
                self.watermark_hook(self)
            self.step()
        return self.cycles - start

    def _run_fast(self, start, max_cycles, until_pc):
        """Uninstrumented run loop: threaded dispatch straight off the
        decode cache.  State transitions (PC, SREG, registers, memory,
        cycle accounting, fault behaviour) are identical to repeated
        :meth:`step` calls minus the detached-instrumentation guards.

        The cycle watermark (timeline keyframes) is folded into the
        loop's existing budget comparison: ``bound`` is the nearer of
        the budget limit and the watermark, so an armed recorder adds
        zero comparisons to the per-step path and the hook fires at the
        exact same instruction boundaries as the instrumented loop.

        Interrupt polling costs one truthiness check on the pending-set
        per iteration: the set object is stable for the controller's
        lifetime, so the loop holds a direct reference and only calls
        :meth:`InterruptController.poll` (which re-checks the I flag and
        vectors) when a line is actually pending."""
        cache = self._decode_cache
        decode = self._decode_and_cache
        limit = start + max_cycles
        watermark = self.watermark
        bound = limit if watermark is None else min(limit, watermark)
        interrupts = self.interrupts
        pending = interrupts.pending if interrupts is not None else None
        instret = self.instret
        try:
            while not self.halted:
                pc = self.pc
                if pc == until_pc:
                    break
                cycles = self.cycles
                if cycles >= bound:
                    if cycles >= limit:
                        raise CycleLimitExceeded(
                            max_cycles, overshoot=cycles - limit)
                    # watermark reached: publish the loop-local counter,
                    # fire the hook (a snapshot capture — read-only) and
                    # re-derive the bound from the advanced watermark
                    self.instret = instret
                    self.watermark_hook(self)
                    watermark = self.watermark
                    bound = limit if watermark is None \
                        else min(limit, watermark)
                    continue
                if pending:
                    # same boundary step() polls at: after the budget
                    # check, before the fetch.  poll() re-checks the I
                    # flag; a taken interrupt redirects the PC, so
                    # re-read it before dispatch.
                    self.cycles = cycles
                    self.instret = instret
                    taken = interrupts.poll()
                    if taken:
                        cycles += taken
                        self.cycles = cycles
                        pc = self.pc
                entry = cache.get(pc)
                if entry is None:
                    entry = decode(pc)
                self.pc = pc + entry[2]
                extra = entry[1](self, entry[0])
                self.cycles = cycles + entry[3] + (extra or 0)
                instret += 1
        finally:
            self.instret = instret
        return self.cycles - start

    # ==================== ALU: add/sub family ============================
    def _add(self, d, r_val, carry):
        data = self.memory.data
        rd = data[d]
        result = rd + r_val + carry
        res8 = result & 0xFF
        sreg = data[_SREG_ADDR] & 0xC0  # keep I, T
        if ((rd & 0xF) + (r_val & 0xF) + carry) > 0xF:
            sreg |= _MH
        if result > 0xFF:
            sreg |= _MC
        v = (~(rd ^ r_val) & (rd ^ res8)) & 0x80
        if v:
            sreg |= _MV
        n = res8 & 0x80
        if n:
            sreg |= _MN
        if (n != 0) ^ (v != 0):
            sreg |= _MS
        if res8 == 0:
            sreg |= _MZ
        data[_SREG_ADDR] = sreg
        data[d] = res8

    def _sub(self, d, r_val, carry, store=True, keep_z=False):
        data = self.memory.data
        rd = data[d]
        result = rd - r_val - carry
        res8 = result & 0xFF
        sreg = data[_SREG_ADDR]
        z_prev = sreg & _MZ
        sreg &= 0xC0  # keep I, T
        if ((rd & 0xF) - (r_val & 0xF) - carry) < 0:
            sreg |= _MH
        if result < 0:
            sreg |= _MC
        v = ((rd ^ r_val) & (rd ^ res8)) & 0x80
        if v:
            sreg |= _MV
        n = res8 & 0x80
        if n:
            sreg |= _MN
        if (n != 0) ^ (v != 0):
            sreg |= _MS
        if res8 == 0 and (z_prev if keep_z else True):
            sreg |= _MZ
        data[_SREG_ADDR] = sreg
        if store:
            data[d] = res8
        return res8

    def _exec_add(self, i):
        self._add(i.operands[0], self.memory.data[i.operands[1]], 0)

    def _exec_adc(self, i):
        data = self.memory.data
        self._add(i.operands[0], data[i.operands[1]],
                  data[_SREG_ADDR] & _MC)

    def _exec_sub(self, i):
        self._sub(i.operands[0], self.memory.data[i.operands[1]], 0)

    def _exec_sbc(self, i):
        data = self.memory.data
        self._sub(i.operands[0], data[i.operands[1]],
                  data[_SREG_ADDR] & _MC, keep_z=True)

    def _exec_subi(self, i):
        self._sub(i.operands[0], i.operands[1], 0)

    def _exec_sbci(self, i):
        self._sub(i.operands[0], i.operands[1],
                  self.memory.data[_SREG_ADDR] & _MC, keep_z=True)

    def _exec_cp(self, i):
        self._sub(i.operands[0], self.memory.data[i.operands[1]], 0,
                  store=False)

    def _exec_cpc(self, i):
        data = self.memory.data
        self._sub(i.operands[0], data[i.operands[1]],
                  data[_SREG_ADDR] & _MC, store=False, keep_z=True)

    def _exec_cpi(self, i):
        self._sub(i.operands[0], i.operands[1], 0, store=False)

    # ==================== ALU: logic ====================================
    def _logic(self, d, result):
        # V cleared; Z/N/S from the result; C and H untouched
        data = self.memory.data
        sreg = data[_SREG_ADDR] & ~(_MV | _MZ | _MN | _MS) & 0xFF
        if result == 0:
            sreg |= _MZ
        if result & 0x80:
            sreg |= _MN | _MS  # V=0, so S = N
        data[_SREG_ADDR] = sreg
        data[d] = result

    def _exec_and(self, i):
        data = self.memory.data
        self._logic(i.operands[0], data[i.operands[0]] & data[i.operands[1]])

    def _exec_andi(self, i):
        self._logic(i.operands[0],
                    self.memory.data[i.operands[0]] & i.operands[1])

    def _exec_or(self, i):
        data = self.memory.data
        self._logic(i.operands[0], data[i.operands[0]] | data[i.operands[1]])

    def _exec_ori(self, i):
        self._logic(i.operands[0],
                    self.memory.data[i.operands[0]] | i.operands[1])

    def _exec_eor(self, i):
        data = self.memory.data
        self._logic(i.operands[0], data[i.operands[0]] ^ data[i.operands[1]])

    def _exec_com(self, i):
        d = i.operands[0]
        data = self.memory.data
        result = (~data[d]) & 0xFF
        # C set, V cleared, Z/N/S from the result; H untouched
        sreg = (data[_SREG_ADDR] & (0xC0 | _MH)) | _MC
        if result == 0:
            sreg |= _MZ
        if result & 0x80:
            sreg |= _MN | _MS
        data[_SREG_ADDR] = sreg
        data[d] = result

    def _exec_neg(self, i):
        d = i.operands[0]
        data = self.memory.data
        rd = data[d]
        result = (-rd) & 0xFF
        sreg = data[_SREG_ADDR] & 0xC0
        if (result | rd) & 0x8:
            sreg |= _MH
        if result != 0:
            sreg |= _MC
        v = result == 0x80
        if v:
            sreg |= _MV
        n = result & 0x80
        if n:
            sreg |= _MN
        if (n != 0) ^ v:
            sreg |= _MS
        if result == 0:
            sreg |= _MZ
        data[_SREG_ADDR] = sreg
        data[d] = result

    def _inc_dec_flags(self, data, result, overflow):
        # V from the operand, Z/N/S from the result; C and H untouched
        sreg = data[_SREG_ADDR] & ~(_MV | _MZ | _MN | _MS) & 0xFF
        if overflow:
            sreg |= _MV
        if result == 0:
            sreg |= _MZ
        if result & 0x80:
            sreg |= _MN
            if not overflow:
                sreg |= _MS
        elif overflow:
            sreg |= _MS
        data[_SREG_ADDR] = sreg

    def _exec_inc(self, i):
        d = i.operands[0]
        data = self.memory.data
        rd = data[d]
        result = (rd + 1) & 0xFF
        self._inc_dec_flags(data, result, rd == 0x7F)
        data[d] = result

    def _exec_dec(self, i):
        d = i.operands[0]
        data = self.memory.data
        rd = data[d]
        result = (rd - 1) & 0xFF
        self._inc_dec_flags(data, result, rd == 0x80)
        data[d] = result

    def _exec_swap(self, i):
        d = i.operands[0]
        data = self.memory.data
        rd = data[d]
        data[d] = ((rd << 4) | (rd >> 4)) & 0xFF

    def _shift(self, d, rd, result):
        # C from bit0 of the operand, V = N^C, Z/N/S from the result;
        # H untouched
        data = self.memory.data
        sreg = data[_SREG_ADDR] & (0xC0 | _MH)
        c = rd & 1
        n = result & 0x80
        if c:
            sreg |= _MC
        if n:
            sreg |= _MN
        v = (n != 0) ^ (c != 0)
        if v:
            sreg |= _MV
        if (n != 0) ^ v:
            sreg |= _MS
        if result == 0:
            sreg |= _MZ
        data[_SREG_ADDR] = sreg
        data[d] = result

    def _exec_asr(self, i):
        d = i.operands[0]
        rd = self.memory.data[d]
        self._shift(d, rd, (rd >> 1) | (rd & 0x80))

    def _exec_lsr(self, i):
        d = i.operands[0]
        rd = self.memory.data[d]
        self._shift(d, rd, rd >> 1)

    def _exec_ror(self, i):
        d = i.operands[0]
        data = self.memory.data
        rd = data[d]
        self._shift(d, rd, ((data[_SREG_ADDR] & _MC) << 7) | (rd >> 1))

    def _exec_mov(self, i):
        data = self.memory.data
        data[i.operands[0]] = data[i.operands[1]]

    def _exec_movw(self, i):
        d, r = i.operands
        data = self.memory.data
        data[d] = data[r]
        data[d + 1] = data[r + 1]

    def _exec_ldi(self, i):
        self.memory.data[i.operands[0]] = i.operands[1] & 0xFF

    def _exec_mul(self, i):
        data = self.memory.data
        product = data[i.operands[0]] * data[i.operands[1]]
        data[0] = product & 0xFF
        data[1] = (product >> 8) & 0xFF
        sreg = data[_SREG_ADDR] & ~(_MC | _MZ) & 0xFF
        if product & 0x8000:
            sreg |= _MC
        if product == 0:
            sreg |= _MZ
        data[_SREG_ADDR] = sreg

    def _adiw_sbiw_flags(self, data, result, v, c):
        sreg = data[_SREG_ADDR] & (0xC0 | _MH)
        if v:
            sreg |= _MV
        if c:
            sreg |= _MC
        n = result & 0x8000
        if n:
            sreg |= _MN
        if (n != 0) ^ (v != 0):
            sreg |= _MS
        if result == 0:
            sreg |= _MZ
        data[_SREG_ADDR] = sreg

    def _exec_adiw(self, i):
        d, k = i.operands
        data = self.memory.data
        rd = data[d] | (data[d + 1] << 8)
        result = (rd + k) & 0xFFFF
        self._adiw_sbiw_flags(data, result,
                              (~rd & result) & 0x8000,
                              (~result & rd) & 0x8000)
        data[d] = result & 0xFF
        data[d + 1] = result >> 8

    def _exec_sbiw(self, i):
        d, k = i.operands
        data = self.memory.data
        rd = data[d] | (data[d + 1] << 8)
        result = (rd - k) & 0xFFFF
        self._adiw_sbiw_flags(data, result,
                              (rd & ~result) & 0x8000,
                              (result & ~rd) & 0x8000)
        data[d] = result & 0xFF
        data[d + 1] = result >> 8

    # ==================== SREG / bit ops =================================
    def _exec_bset(self, i):
        self.set_flag(i.operands[0], 1)

    def _exec_bclr(self, i):
        self.set_flag(i.operands[0], 0)

    def _exec_bst(self, i):
        d, b = i.operands
        data = self.memory.data
        if (data[d] >> b) & 1:
            data[_SREG_ADDR] |= _MT
        else:
            data[_SREG_ADDR] &= ~_MT & 0xFF

    def _exec_bld(self, i):
        d, b = i.operands
        data = self.memory.data
        if data[_SREG_ADDR] & _MT:
            data[d] |= 1 << b
        else:
            data[d] &= ~(1 << b) & 0xFF

    # ==================== control transfer ================================
    def _notify(self, event, **kw):
        for hook in self.call_hooks:
            hook(self, event, **kw)

    def _exec_rjmp(self, i):
        self.pc = self.pc + i.operands[0]

    def _exec_jmp(self, i):
        self.pc = i.operands[0]

    def _exec_ijmp(self, i):
        target = self.reg_pair(30)
        extra = 0
        for hook in self.call_hooks:
            result = hook(self, "ijmp", target=target)
            if result:
                extra += result
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.CONTROL_TRANSFER,
                            pc=self.pc * 2, domain=self._trace_domain(),
                            transfer="ijmp", target=target * 2)
        self.pc = target
        return extra

    def _do_call(self, target_word):
        ret = self.pc  # already advanced past the call
        extra = 0
        for hook in self.call_hooks:
            result = hook(self, "call", target=target_word, ret=ret)
            if result:
                extra += result
        extra += self.push_return_address(ret)
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.CONTROL_TRANSFER,
                            pc=ret * 2, domain=self._trace_domain(),
                            transfer="call", target=target_word * 2,
                            ret=ret * 2)
        self.pc = target_word
        return extra

    def _exec_rcall(self, i):
        return self._do_call(self.pc + i.operands[0])

    def _exec_call(self, i):
        return self._do_call(i.operands[0])

    def _exec_icall(self, i):
        return self._do_call(self.reg_pair(30))

    def _exec_ret(self, i):
        target, extra = self.pop_return_address()
        for hook in self.call_hooks:
            result = hook(self, "ret", target=target)
            if result:
                extra += result
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.CONTROL_TRANSFER,
                            pc=self.pc * 2, domain=self._trace_domain(),
                            transfer="ret", target=target * 2)
        self.pc = target
        return extra

    def _exec_reti(self, i):
        extra = self._exec_ret(i)
        self.set_flag(SREG_BITS.I, 1)
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.IRQ_EXIT,
                            pc=self.pc * 2, domain=self._trace_domain())
        return extra

    def _branch(self, taken, offset):
        if taken:
            self.pc = self.pc + offset
            return 1
        return 0

    def _exec_brbs(self, i):
        s, k = i.operands
        if (self.memory.data[_SREG_ADDR] >> s) & 1:
            self.pc += k
            return 1
        return 0

    def _exec_brbc(self, i):
        s, k = i.operands
        if (self.memory.data[_SREG_ADDR] >> s) & 1:
            return 0
        self.pc += k
        return 1

    def _skip(self, condition):
        if not condition:
            return 0
        size = self._instr_size_at(self.pc)
        self.pc += size
        return size

    def _exec_cpse(self, i):
        data = self.memory.data
        return self._skip(data[i.operands[0]] == data[i.operands[1]])

    def _exec_sbrc(self, i):
        r, b = i.operands
        return self._skip(((self.memory.data[r] >> b) & 1) == 0)

    def _exec_sbrs(self, i):
        r, b = i.operands
        return self._skip(((self.memory.data[r] >> b) & 1) == 1)

    def _exec_sbic(self, i):
        a, b = i.operands
        value, extra = self.bus.read(a + 0x20, AccessKind.IO_READ)
        return self._skip(((value >> b) & 1) == 0) + extra

    def _exec_sbis(self, i):
        a, b = i.operands
        value, extra = self.bus.read(a + 0x20, AccessKind.IO_READ)
        return self._skip(((value >> b) & 1) == 1) + extra

    # ==================== loads/stores ======================================
    def _pointer(self, spec):
        return _PTR_REG[spec.modes["ptr"]]

    def _effective_addr(self, instr):
        """Resolve the address of a ld/st variant, applying inc/dec.

        (Kept for introspection; the generated ld/st handlers resolve
        their fixed addressing mode directly.)"""
        spec = instr.spec
        preg = self._pointer(spec)
        ptr = self.reg_pair(preg)
        if spec.modes.get("pre_dec"):
            ptr = (ptr - 1) & 0xFFFF
            self.set_reg_pair(preg, ptr)
            return ptr
        if spec.modes.get("post_inc"):
            self.set_reg_pair(preg, (ptr + 1) & 0xFFFF)
            return ptr
        if spec.modes.get("disp"):
            return (ptr + instr.operand("q")) & 0xFFFF
        return ptr

    def _load(self, d, addr):
        value, extra = self.bus.read(addr, AccessKind.DATA_LOAD)
        self.memory.data[d] = value & 0xFF
        return extra

    def _store(self, addr, r):
        return self.bus.write(addr, self.memory.data[r],
                              AccessKind.DATA_STORE)

    def _exec_lds(self, i):
        return self._load(i.operands[0], i.operands[1])

    def _exec_sts(self, i):
        return self._store(i.operands[0], i.operands[1])

    def _exec_push(self, i):
        return self._push_byte(self.memory.data[i.operands[0]],
                               AccessKind.STACK_PUSH)

    def _exec_pop(self, i):
        value, extra = self._pop_byte(AccessKind.STACK_POP)
        self.memory.data[i.operands[0]] = value & 0xFF
        return extra

    def _exec_in(self, i):
        d, a = i.operands
        value, extra = self.bus.read(a + 0x20, AccessKind.IO_READ)
        self.memory.data[d] = value & 0xFF
        return extra

    def _exec_out(self, i):
        a, r = i.operands
        return self.bus.write(a + 0x20, self.memory.data[r],
                              AccessKind.IO_WRITE)

    def _exec_sbi(self, i):
        a, b = i.operands
        value, e0 = self.bus.read(a + 0x20, AccessKind.IO_READ)
        e1 = self.bus.write(a + 0x20, value | (1 << b), AccessKind.IO_WRITE)
        return e0 + e1

    def _exec_cbi(self, i):
        a, b = i.operands
        value, e0 = self.bus.read(a + 0x20, AccessKind.IO_READ)
        e1 = self.bus.write(a + 0x20, value & ~(1 << b) & 0xFF,
                            AccessKind.IO_WRITE)
        return e0 + e1

    def _exec_lpm_r0(self, i):
        self.set_reg(0, self.memory.read_flash_byte(self.reg_pair(30)))

    def _exec_lpm(self, i):
        self.set_reg(i.operands[0],
                     self.memory.read_flash_byte(self.reg_pair(30)))

    def _exec_lpm_zp(self, i):
        z = self.reg_pair(30)
        self.set_reg(i.operands[0], self.memory.read_flash_byte(z))
        self.set_reg_pair(30, (z + 1) & 0xFFFF)

    def _rampz_addr(self):
        rampz = self.memory.read_data(IoReg.RAMPZ + 0x20) & 1
        return (rampz << 16) | self.reg_pair(30)

    def _exec_elpm_r0(self, i):
        self.set_reg(0, self.memory.read_flash_byte(self._rampz_addr()))

    def _exec_elpm(self, i):
        self.set_reg(i.operands[0],
                     self.memory.read_flash_byte(self._rampz_addr()))

    def _exec_elpm_zp(self, i):
        addr = self._rampz_addr()
        self.set_reg(i.operands[0], self.memory.read_flash_byte(addr))
        addr += 1
        self.memory.write_data(IoReg.RAMPZ + 0x20, (addr >> 16) & 1)
        self.set_reg_pair(30, addr & 0xFFFF)

    # ==================== MCU ====================================================
    def _exec_nop(self, i):
        pass

    def _exec_sleep(self, i):
        pass

    def _exec_wdr(self, i):
        pass

    def _exec_break(self, i):
        self.halted = True


# generate ld/st variant handlers: each spec's addressing mode is fixed,
# so the mode is resolved once here and the handler body is straight-line
def _make_ld(key):
    spec = SPEC_BY_KEY[key]
    modes = spec.modes
    preg = _PTR_REG[modes["ptr"]]

    if modes.get("pre_dec"):
        def handler(self, i):
            data = self.memory.data
            ptr = ((data[preg] | (data[preg + 1] << 8)) - 1) & 0xFFFF
            data[preg] = ptr & 0xFF
            data[preg + 1] = ptr >> 8
            return self._load(i.operands[0], ptr)
    elif modes.get("post_inc"):
        def handler(self, i):
            data = self.memory.data
            ptr = data[preg] | (data[preg + 1] << 8)
            nxt = (ptr + 1) & 0xFFFF
            data[preg] = nxt & 0xFF
            data[preg + 1] = nxt >> 8
            return self._load(i.operands[0], ptr)
    elif modes.get("disp"):
        def handler(self, i):
            data = self.memory.data
            addr = ((data[preg] | (data[preg + 1] << 8))
                    + i.operands[1]) & 0xFFFF  # ldd operands: (d, q)
            return self._load(i.operands[0], addr)
    else:
        def handler(self, i):
            data = self.memory.data
            return self._load(i.operands[0],
                              data[preg] | (data[preg + 1] << 8))
    handler.__name__ = "_exec_" + key
    return handler


def _make_st(key):
    spec = SPEC_BY_KEY[key]
    modes = spec.modes
    preg = _PTR_REG[modes["ptr"]]

    if modes.get("pre_dec"):
        def handler(self, i):
            data = self.memory.data
            ptr = ((data[preg] | (data[preg + 1] << 8)) - 1) & 0xFFFF
            data[preg] = ptr & 0xFF
            data[preg + 1] = ptr >> 8
            return self._store(ptr, i.operands[-1])
    elif modes.get("post_inc"):
        def handler(self, i):
            data = self.memory.data
            ptr = data[preg] | (data[preg + 1] << 8)
            nxt = (ptr + 1) & 0xFFFF
            data[preg] = nxt & 0xFF
            data[preg + 1] = nxt >> 8
            return self._store(ptr, i.operands[-1])
    elif modes.get("disp"):
        def handler(self, i):
            data = self.memory.data
            addr = ((data[preg] | (data[preg + 1] << 8))
                    + i.operands[0]) & 0xFFFF  # std operands: (q, r)
            return self._store(addr, i.operands[-1])
    else:
        def handler(self, i):
            data = self.memory.data
            return self._store(data[preg] | (data[preg + 1] << 8),
                               i.operands[-1])
    handler.__name__ = "_exec_" + key
    return handler


for _key in ("ld_x", "ld_xp", "ld_mx", "ld_yp", "ld_my", "ld_zp", "ld_mz",
             "ldd_y", "ldd_z"):
    setattr(AvrCore, "_exec_" + _key, _make_ld(_key))
for _key in ("st_x", "st_xp", "st_mx", "st_yp", "st_my", "st_zp", "st_mz",
             "std_y", "std_z"):
    setattr(AvrCore, "_exec_" + _key, _make_st(_key))

#: threaded-dispatch table: instruction key -> unbound executor.  Built
#: once after all handlers (including the generated ld/st variants)
#: exist; ``_decode_and_cache`` binds entries from here at decode time.
_DISPATCH = {
    _key: getattr(AvrCore, "_exec_" + _key)
    for _key in SPEC_BY_KEY
    if hasattr(AvrCore, "_exec_" + _key)
}
AvrCore._DISPATCH = _DISPATCH
