"""Instruction-level AVR core with datasheet cycle accounting.

The core interprets decoded instructions from flash, updating the
register file, SREG and data memory.  Every data-space transaction goes
through the :class:`repro.sim.bus.DataBus` so that the UMPU functional
units can observe it; register-file and SREG manipulation by the ALU is
internal to the core (as on silicon) and does not appear on the bus.

Cycle counts follow the classic AVR (ATmega103) datasheet: 1 cycle for
ALU ops, 2 for loads/stores and taken branches, 3/4 for calls, 4 for
returns.  Functional units may add stall cycles per transaction; these
are returned by the bus and added to the core's cycle counter, which is
how the MMC's single-cycle store penalty is measured.
"""

from repro.isa.encoding import DecodeError, decode_words, is_32bit_opcode
from repro.isa.registers import ATMEGA103, SREG_BITS, IoReg
from repro.sim.errors import BadOpcode, CycleLimitExceeded
from repro.sim.events import AccessKind
from repro.trace.events import TraceEventKind

_C = SREG_BITS.C
_Z = SREG_BITS.Z
_N = SREG_BITS.N
_V = SREG_BITS.V
_S = SREG_BITS.S
_H = SREG_BITS.H
_T = SREG_BITS.T

_PTR_REG = {"X": 26, "Y": 28, "Z": 30}


class AvrCore:
    """Fetch/decode/execute interpreter for the AVR subset."""

    def __init__(self, memory, bus, geometry=ATMEGA103):
        self.memory = memory
        self.bus = bus
        self.geometry = geometry
        self.pc = 0  # word address
        self.cycles = 0
        self.halted = False
        self._decode_cache = {}
        #: hooks called around control transfers; the UMPU domain
        #: tracker installs itself here. Signature: (core, event, ...).
        self.call_hooks = []
        #: optional repro.sim.interrupts.InterruptController
        self.interrupts = None
        #: peripherals ticked with elapsed cycles after every step
        self.devices = []
        #: optional repro.trace.TraceSink; every emission site is
        #: guarded so a detached core pays nothing
        self.trace = None
        #: optional repro.trace.DomainProfiler
        self.profiler = None
        #: callable returning the active protection domain (set by
        #: UmpuMachine); None on cores without protection hardware
        self.domain_provider = None
        bus.cycle_hook = lambda: self.cycles
        # runtime flash writes invalidate the decoded instructions they
        # overwrite, so no write path can execute stale decodes
        memory.flash_listeners.append(self._on_flash_write)

    # --- register / flag helpers ------------------------------------------
    def reg(self, n):
        return self.memory.reg(n)

    def set_reg(self, n, value):
        self.memory.set_reg(n, value)

    def reg_pair(self, n):
        return self.memory.reg_pair(n)

    def set_reg_pair(self, n, value):
        self.memory.set_reg_pair(n, value)

    @property
    def sp(self):
        return self.memory.sp

    @sp.setter
    def sp(self, value):
        self.memory.sp = value & 0xFFFF

    @property
    def sreg(self):
        return self.memory.sreg

    @sreg.setter
    def sreg(self, value):
        self.memory.sreg = value

    def flag(self, bit):
        return (self.sreg >> bit) & 1

    def set_flag(self, bit, value):
        if value:
            self.memory.sreg |= 1 << bit
        else:
            self.memory.sreg &= ~(1 << bit) & 0xFF

    def _set_zns(self, result):
        self.set_flag(_Z, result == 0)
        n = (result >> 7) & 1
        self.set_flag(_N, n)
        self.set_flag(_S, n ^ self.flag(_V))

    # --- fetch/decode -------------------------------------------------------
    def _fetch(self):
        pc = self.pc
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        w0 = self.memory.read_flash_word(pc)
        w1 = self.memory.read_flash_word(pc + 1) \
            if pc + 1 < self.geometry.flash_words else None
        try:
            instr = decode_words(w0, w1)
        except DecodeError:
            raise BadOpcode(pc, w0)
        self._decode_cache[pc] = instr
        return instr

    def invalidate_decode_cache(self):
        """Call after rewriting flash at runtime."""
        self._decode_cache.clear()

    def _on_flash_write(self, word_addr):
        """Memory notified us of a flash write: drop any decode that
        covers the word (a 32-bit instruction starting one word earlier
        spans it too)."""
        cache = self._decode_cache
        if cache:
            cache.pop(word_addr, None)
            cache.pop(word_addr - 1, None)

    def _instr_size_at(self, word_addr):
        """Word size of the instruction at *word_addr* (for skips).

        Consults the decode cache first — skips are hot in the Table-3
        microbenchmarks and the skipped instruction has usually been
        decoded already — and falls back to a raw opcode-width probe
        (the skipped slot may hold data that never decodes).
        """
        cached = self._decode_cache.get(word_addr)
        if cached is not None:
            return cached.size_words
        w0 = self.memory.read_flash_word(word_addr)
        return 2 if is_32bit_opcode(w0) else 1

    # --- stack helpers -------------------------------------------------------
    def _push_byte(self, value, kind):
        sp = self.sp
        extra = self.bus.write(sp, value, kind)
        self.sp = sp - 1
        return extra

    def _pop_byte(self, kind):
        sp = self.sp + 1
        self.sp = sp
        value, extra = self.bus.read(sp, kind)
        return value, extra

    def push_return_address(self, word_addr):
        """Push a return address as the `call` family does: low byte
        first, high byte second (the safe-stack unit redirects these two
        transactions in the same order, completing the 5-byte frame
        layout ``[domain][sb_lo][sb_hi][ret_lo][ret_hi]``)."""
        extra = self._push_byte(word_addr & 0xFF, AccessKind.RET_PUSH)
        extra += self._push_byte((word_addr >> 8) & 0xFF, AccessKind.RET_PUSH)
        return extra

    def pop_return_address(self):
        hi, e0 = self._pop_byte(AccessKind.RET_POP)
        lo, e1 = self._pop_byte(AccessKind.RET_POP)
        return (hi << 8) | lo, e0 + e1

    # --- execution -------------------------------------------------------------
    def step(self):
        """Execute one instruction; returns cycles it consumed.

        Pending interrupts are taken between instructions (classic AVR
        timing) and their response cycles are attributed to this step.
        """
        if self.halted:
            return 0
        before = self.cycles
        profiler = self.profiler
        if profiler is not None:
            profiler.begin_step(self)
        if self.interrupts is not None:
            self.cycles += self.interrupts.poll()
        pc0 = self.pc
        instr = self._fetch()
        handler = getattr(self, "_exec_" + instr.key, None)
        if handler is None:
            raise BadOpcode(self.pc, self.memory.read_flash_word(self.pc))
        next_pc = self.pc + instr.size_words
        self.pc = next_pc  # handlers overwrite for control transfers
        extra = handler(instr) or 0
        self.cycles += instr.spec.cycles + extra
        consumed = self.cycles - before
        if profiler is not None:
            profiler.end_step(self, consumed)
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.INSTR_RETIRE,
                            pc=pc0 * 2, domain=self._trace_domain(),
                            key=instr.key, cycles=consumed)
        for device in self.devices:
            device.tick(consumed)
        return consumed

    def _trace_domain(self):
        """Current protection domain for trace events (None when no
        provider knows about domains)."""
        provider = self.domain_provider
        return provider() if provider is not None else None

    def run(self, max_cycles=1_000_000, until_pc=None):
        """Run until halt, *until_pc* (word address) or the cycle budget.

        The budget is checked *before* each step, so the run never
        executes an instruction once ``max_cycles`` have been consumed;
        reaching *until_pc* at exactly the budget therefore succeeds
        deterministically, not by luck of the final step's cost.  The
        raised :class:`CycleLimitExceeded` carries how far the last
        executed step overshot the budget.

        Returns cycles consumed in this call.
        """
        start = self.cycles
        while not self.halted:
            if until_pc is not None and self.pc == until_pc:
                break
            spent = self.cycles - start
            if spent >= max_cycles:
                raise CycleLimitExceeded(max_cycles,
                                         overshoot=spent - max_cycles)
            self.step()
        return self.cycles - start

    # ==================== ALU: add/sub family ============================
    def _add(self, d, r_val, carry):
        rd = self.reg(d)
        result = rd + r_val + carry
        res8 = result & 0xFF
        self.set_flag(_H, ((rd & 0xF) + (r_val & 0xF) + carry) > 0xF)
        self.set_flag(_C, result > 0xFF)
        v = (~(rd ^ r_val) & (rd ^ res8) & 0x80) != 0
        self.set_flag(_V, v)
        self._set_zns(res8)
        self.set_reg(d, res8)

    def _sub(self, d, r_val, carry, store=True, keep_z=False):
        rd = self.reg(d)
        result = rd - r_val - carry
        res8 = result & 0xFF
        self.set_flag(_H, ((rd & 0xF) - (r_val & 0xF) - carry) < 0)
        self.set_flag(_C, result < 0)
        v = ((rd ^ r_val) & (rd ^ res8) & 0x80) != 0
        self.set_flag(_V, v)
        if keep_z:
            z_prev = self.flag(_Z)
            self._set_zns(res8)
            self.set_flag(_Z, (res8 == 0) and z_prev)
            n = (res8 >> 7) & 1
            self.set_flag(_S, n ^ self.flag(_V))
        else:
            self._set_zns(res8)
        if store:
            self.set_reg(d, res8)
        return res8

    def _exec_add(self, i):
        self._add(i.operands[0], self.reg(i.operands[1]), 0)

    def _exec_adc(self, i):
        self._add(i.operands[0], self.reg(i.operands[1]), self.flag(_C))

    def _exec_sub(self, i):
        self._sub(i.operands[0], self.reg(i.operands[1]), 0)

    def _exec_sbc(self, i):
        self._sub(i.operands[0], self.reg(i.operands[1]), self.flag(_C),
                  keep_z=True)

    def _exec_subi(self, i):
        self._sub(i.operands[0], i.operands[1], 0)

    def _exec_sbci(self, i):
        self._sub(i.operands[0], i.operands[1], self.flag(_C), keep_z=True)

    def _exec_cp(self, i):
        self._sub(i.operands[0], self.reg(i.operands[1]), 0, store=False)

    def _exec_cpc(self, i):
        self._sub(i.operands[0], self.reg(i.operands[1]), self.flag(_C),
                  store=False, keep_z=True)

    def _exec_cpi(self, i):
        self._sub(i.operands[0], i.operands[1], 0, store=False)

    # ==================== ALU: logic ====================================
    def _logic(self, d, result):
        self.set_flag(_V, 0)
        self._set_zns(result)
        self.set_reg(d, result)

    def _exec_and(self, i):
        self._logic(i.operands[0],
                    self.reg(i.operands[0]) & self.reg(i.operands[1]))

    def _exec_andi(self, i):
        self._logic(i.operands[0], self.reg(i.operands[0]) & i.operands[1])

    def _exec_or(self, i):
        self._logic(i.operands[0],
                    self.reg(i.operands[0]) | self.reg(i.operands[1]))

    def _exec_ori(self, i):
        self._logic(i.operands[0], self.reg(i.operands[0]) | i.operands[1])

    def _exec_eor(self, i):
        self._logic(i.operands[0],
                    self.reg(i.operands[0]) ^ self.reg(i.operands[1]))

    def _exec_com(self, i):
        d = i.operands[0]
        result = (~self.reg(d)) & 0xFF
        self.set_flag(_C, 1)
        self.set_flag(_V, 0)
        self._set_zns(result)
        self.set_reg(d, result)

    def _exec_neg(self, i):
        d = i.operands[0]
        rd = self.reg(d)
        result = (-rd) & 0xFF
        self.set_flag(_H, ((result & 0x8) | (rd & 0x8)) != 0)
        self.set_flag(_C, result != 0)
        self.set_flag(_V, result == 0x80)
        self._set_zns(result)
        self.set_reg(d, result)

    def _exec_inc(self, i):
        d = i.operands[0]
        result = (self.reg(d) + 1) & 0xFF
        self.set_flag(_V, self.reg(d) == 0x7F)
        self._set_zns(result)
        self.set_reg(d, result)

    def _exec_dec(self, i):
        d = i.operands[0]
        result = (self.reg(d) - 1) & 0xFF
        self.set_flag(_V, self.reg(d) == 0x80)
        self._set_zns(result)
        self.set_reg(d, result)

    def _exec_swap(self, i):
        d = i.operands[0]
        rd = self.reg(d)
        self.set_reg(d, ((rd << 4) | (rd >> 4)) & 0xFF)

    def _exec_asr(self, i):
        d = i.operands[0]
        rd = self.reg(d)
        result = (rd >> 1) | (rd & 0x80)
        self._shift_flags(rd, result)
        self.set_reg(d, result)

    def _exec_lsr(self, i):
        d = i.operands[0]
        rd = self.reg(d)
        result = rd >> 1
        self._shift_flags(rd, result)
        self.set_reg(d, result)

    def _exec_ror(self, i):
        d = i.operands[0]
        rd = self.reg(d)
        result = (self.flag(_C) << 7) | (rd >> 1)
        self._shift_flags(rd, result)
        self.set_reg(d, result)

    def _shift_flags(self, rd, result):
        self.set_flag(_C, rd & 1)
        n = (result >> 7) & 1
        self.set_flag(_N, n)
        self.set_flag(_V, n ^ (rd & 1))
        self.set_flag(_Z, result == 0)
        self.set_flag(_S, n ^ self.flag(_V))

    def _exec_mov(self, i):
        self.set_reg(i.operands[0], self.reg(i.operands[1]))

    def _exec_movw(self, i):
        self.set_reg_pair(i.operands[0], self.reg_pair(i.operands[1]))

    def _exec_ldi(self, i):
        self.set_reg(i.operands[0], i.operands[1])

    def _exec_mul(self, i):
        product = self.reg(i.operands[0]) * self.reg(i.operands[1])
        self.set_reg_pair(0, product)
        self.set_flag(_C, (product >> 15) & 1)
        self.set_flag(_Z, product == 0)

    def _exec_adiw(self, i):
        d, k = i.operands
        rd = self.reg_pair(d)
        result = (rd + k) & 0xFFFF
        self.set_flag(_V, (~rd & result & 0x8000) != 0)
        self.set_flag(_C, (~result & rd & 0x8000) != 0)
        n = (result >> 15) & 1
        self.set_flag(_N, n)
        self.set_flag(_Z, result == 0)
        self.set_flag(_S, n ^ self.flag(_V))
        self.set_reg_pair(d, result)

    def _exec_sbiw(self, i):
        d, k = i.operands
        rd = self.reg_pair(d)
        result = (rd - k) & 0xFFFF
        self.set_flag(_V, (rd & ~result & 0x8000) != 0)
        self.set_flag(_C, (result & ~rd & 0x8000) != 0)
        n = (result >> 15) & 1
        self.set_flag(_N, n)
        self.set_flag(_Z, result == 0)
        self.set_flag(_S, n ^ self.flag(_V))
        self.set_reg_pair(d, result)

    # ==================== SREG / bit ops =================================
    def _exec_bset(self, i):
        self.set_flag(i.operands[0], 1)

    def _exec_bclr(self, i):
        self.set_flag(i.operands[0], 0)

    def _exec_bst(self, i):
        d, b = i.operands
        self.set_flag(_T, (self.reg(d) >> b) & 1)

    def _exec_bld(self, i):
        d, b = i.operands
        if self.flag(_T):
            self.set_reg(d, self.reg(d) | (1 << b))
        else:
            self.set_reg(d, self.reg(d) & ~(1 << b) & 0xFF)

    # ==================== control transfer ================================
    def _notify(self, event, **kw):
        for hook in self.call_hooks:
            hook(self, event, **kw)

    def _exec_rjmp(self, i):
        self.pc = self.pc + i.operands[0]

    def _exec_jmp(self, i):
        self.pc = i.operands[0]

    def _exec_ijmp(self, i):
        target = self.reg_pair(30)
        extra = 0
        for hook in self.call_hooks:
            result = hook(self, "ijmp", target=target)
            if result:
                extra += result
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.CONTROL_TRANSFER,
                            pc=self.pc * 2, domain=self._trace_domain(),
                            transfer="ijmp", target=target * 2)
        self.pc = target
        return extra

    def _do_call(self, target_word):
        ret = self.pc  # already advanced past the call
        extra = 0
        for hook in self.call_hooks:
            result = hook(self, "call", target=target_word, ret=ret)
            if result:
                extra += result
        extra += self.push_return_address(ret)
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.CONTROL_TRANSFER,
                            pc=ret * 2, domain=self._trace_domain(),
                            transfer="call", target=target_word * 2,
                            ret=ret * 2)
        self.pc = target_word
        return extra

    def _exec_rcall(self, i):
        return self._do_call(self.pc + i.operands[0])

    def _exec_call(self, i):
        return self._do_call(i.operands[0])

    def _exec_icall(self, i):
        return self._do_call(self.reg_pair(30))

    def _exec_ret(self, i):
        target, extra = self.pop_return_address()
        for hook in self.call_hooks:
            result = hook(self, "ret", target=target)
            if result:
                extra += result
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.CONTROL_TRANSFER,
                            pc=self.pc * 2, domain=self._trace_domain(),
                            transfer="ret", target=target * 2)
        self.pc = target
        return extra

    def _exec_reti(self, i):
        extra = self._exec_ret(i)
        self.set_flag(SREG_BITS.I, 1)
        if self.trace is not None:
            self.trace.emit(self.cycles, TraceEventKind.IRQ_EXIT,
                            pc=self.pc * 2, domain=self._trace_domain())
        return extra

    def _branch(self, taken, offset):
        if taken:
            self.pc = self.pc + offset
            return 1
        return 0

    def _exec_brbs(self, i):
        s, k = i.operands
        return self._branch(self.flag(s) == 1, k)

    def _exec_brbc(self, i):
        s, k = i.operands
        return self._branch(self.flag(s) == 0, k)

    def _skip(self, condition):
        if not condition:
            return 0
        size = self._instr_size_at(self.pc)
        self.pc += size
        return size

    def _exec_cpse(self, i):
        return self._skip(self.reg(i.operands[0]) == self.reg(i.operands[1]))

    def _exec_sbrc(self, i):
        r, b = i.operands
        return self._skip(((self.reg(r) >> b) & 1) == 0)

    def _exec_sbrs(self, i):
        r, b = i.operands
        return self._skip(((self.reg(r) >> b) & 1) == 1)

    def _exec_sbic(self, i):
        a, b = i.operands
        value, extra = self.bus.read(a + 0x20, AccessKind.IO_READ)
        return self._skip(((value >> b) & 1) == 0) + extra

    def _exec_sbis(self, i):
        a, b = i.operands
        value, extra = self.bus.read(a + 0x20, AccessKind.IO_READ)
        return self._skip(((value >> b) & 1) == 1) + extra

    # ==================== loads/stores ======================================
    def _pointer(self, spec):
        return _PTR_REG[spec.modes["ptr"]]

    def _effective_addr(self, instr):
        """Resolve the address of a ld/st variant, applying inc/dec."""
        spec = instr.spec
        preg = self._pointer(spec)
        ptr = self.reg_pair(preg)
        if spec.modes.get("pre_dec"):
            ptr = (ptr - 1) & 0xFFFF
            self.set_reg_pair(preg, ptr)
            return ptr
        if spec.modes.get("post_inc"):
            self.set_reg_pair(preg, (ptr + 1) & 0xFFFF)
            return ptr
        if spec.modes.get("disp"):
            return (ptr + instr.operand("q")) & 0xFFFF
        return ptr

    def _load(self, d, addr):
        value, extra = self.bus.read(addr, AccessKind.DATA_LOAD)
        self.set_reg(d, value)
        return extra

    def _store(self, addr, r):
        return self.bus.write(addr, self.reg(r), AccessKind.DATA_STORE)

    def _exec_lds(self, i):
        return self._load(i.operands[0], i.operands[1])

    def _exec_sts(self, i):
        return self._store(i.operands[0], i.operands[1])

    def _exec_push(self, i):
        return self._push_byte(self.reg(i.operands[0]),
                               AccessKind.STACK_PUSH)

    def _exec_pop(self, i):
        value, extra = self._pop_byte(AccessKind.STACK_POP)
        self.set_reg(i.operands[0], value)
        return extra

    def _exec_in(self, i):
        d, a = i.operands
        value, extra = self.bus.read(a + 0x20, AccessKind.IO_READ)
        self.set_reg(d, value)
        return extra

    def _exec_out(self, i):
        a, r = i.operands
        return self.bus.write(a + 0x20, self.reg(r), AccessKind.IO_WRITE)

    def _exec_sbi(self, i):
        a, b = i.operands
        value, e0 = self.bus.read(a + 0x20, AccessKind.IO_READ)
        e1 = self.bus.write(a + 0x20, value | (1 << b), AccessKind.IO_WRITE)
        return e0 + e1

    def _exec_cbi(self, i):
        a, b = i.operands
        value, e0 = self.bus.read(a + 0x20, AccessKind.IO_READ)
        e1 = self.bus.write(a + 0x20, value & ~(1 << b) & 0xFF,
                            AccessKind.IO_WRITE)
        return e0 + e1

    def _exec_lpm_r0(self, i):
        self.set_reg(0, self.memory.read_flash_byte(self.reg_pair(30)))

    def _exec_lpm(self, i):
        self.set_reg(i.operands[0],
                     self.memory.read_flash_byte(self.reg_pair(30)))

    def _exec_lpm_zp(self, i):
        z = self.reg_pair(30)
        self.set_reg(i.operands[0], self.memory.read_flash_byte(z))
        self.set_reg_pair(30, (z + 1) & 0xFFFF)

    def _rampz_addr(self):
        rampz = self.memory.read_data(IoReg.RAMPZ + 0x20) & 1
        return (rampz << 16) | self.reg_pair(30)

    def _exec_elpm_r0(self, i):
        self.set_reg(0, self.memory.read_flash_byte(self._rampz_addr()))

    def _exec_elpm(self, i):
        self.set_reg(i.operands[0],
                     self.memory.read_flash_byte(self._rampz_addr()))

    def _exec_elpm_zp(self, i):
        addr = self._rampz_addr()
        self.set_reg(i.operands[0], self.memory.read_flash_byte(addr))
        addr += 1
        self.memory.write_data(IoReg.RAMPZ + 0x20, (addr >> 16) & 1)
        self.set_reg_pair(30, addr & 0xFFFF)

    # ==================== MCU ====================================================
    def _exec_nop(self, i):
        pass

    def _exec_sleep(self, i):
        pass

    def _exec_wdr(self, i):
        pass

    def _exec_break(self, i):
        self.halted = True


# generate ld/st variant handlers (they only differ in addressing mode,
# which _effective_addr resolves from the spec)
def _make_ld(key):
    def handler(self, i):
        return self._load(i.operands[0], self._effective_addr(i))
    handler.__name__ = "_exec_" + key
    return handler


def _make_st(key):
    def handler(self, i):
        # value register is the last operand for st/std
        return self._store(self._effective_addr(i), i.operands[-1])
    handler.__name__ = "_exec_" + key
    return handler


for _key in ("ld_x", "ld_xp", "ld_mx", "ld_yp", "ld_my", "ld_zp", "ld_mz",
             "ldd_y", "ldd_z"):
    setattr(AvrCore, "_exec_" + _key, _make_ld(_key))
for _key in ("st_x", "st_xp", "st_mx", "st_yp", "st_my", "st_zp", "st_mz",
             "std_y", "std_z"):
    setattr(AvrCore, "_exec_" + _key, _make_st(_key))
