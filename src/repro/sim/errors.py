"""Simulator error types.

Protection faults raised by the Harbor/UMPU checking machinery derive
from :class:`repro.core.faults.ProtectionFault`; the types here are
faults of the *simulation substrate itself* (bad opcodes, runaway
programs), which would be hardware exceptions or bugs on a real part.
"""


class SimError(Exception):
    """Base class for simulator errors."""


class BadOpcode(SimError):
    """The PC reached a word that does not decode to an instruction."""

    def __init__(self, pc_word, word):
        self.pc_word = pc_word
        self.word = word
        super().__init__(
            "undecodable word 0x{:04x} at pc 0x{:05x}".format(
                word, pc_word * 2))


class CycleLimitExceeded(SimError):
    """The run exceeded its cycle budget (runaway program guard).

    ``overshoot`` is how many cycles past the budget the last executed
    step landed (0 when the budget was exhausted exactly).
    """

    def __init__(self, limit, overshoot=0):
        self.limit = limit
        self.overshoot = overshoot
        message = "exceeded cycle limit of {}".format(limit)
        if overshoot:
            message += " by {} cycle(s)".format(overshoot)
        super().__init__(message)


class InvalidAccess(SimError):
    """A data-space access fell outside the part's address space."""

    def __init__(self, addr):
        self.addr = addr
        super().__init__("data access outside address space: 0x{:04x}"
                         .format(addr))
