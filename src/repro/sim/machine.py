"""Top-level simulation harness: program + memory + bus + core.

:class:`Machine` is what tests, benchmarks and the OS substrate use:
it loads an assembled :class:`~repro.asm.Program`, wires up the bus and
exposes call-level helpers (set up arguments, call a label, measure the
cycles it took) following the avr-gcc calling convention used by the
Harbor runtime:

* 8-bit args in r24, r22, r20, ...; 16-bit args in r25:r24, r23:r22, ...
* 8/16-bit results in r24 / r25:r24
* r18-r27, r30, r31 caller-saved; r2-r17, r28, r29 callee-saved
"""

from repro.asm.program import Program
from repro.core.faults import ProtectionFault
from repro.isa.registers import ATMEGA103
from repro.sim.core import AvrCore
from repro.sim.bus import DataBus
from repro.sim.events import BusTracer
from repro.sim.memory import Memory

#: Sentinel return address (word addr) used by Machine.call: running code
#: returns here, which the run loop treats as completion.  It lies in the
#: last flash words, far from any program.
CALL_SENTINEL_WORD = 0xFFFE


class Machine:
    """A simulated AVR node running one flash image."""

    def __init__(self, program=None, geometry=ATMEGA103):
        self.geometry = geometry
        self.memory = Memory(geometry)
        self.bus = DataBus(self.memory)
        self.core = AvrCore(self.memory, self.bus, geometry)
        self.program = None
        #: optional repro.trace.forensics.FlightRecorder
        self.forensics = None
        #: optional repro.trace.timeline.Timeline (cycle-indexed
        #: record/replay; attach with :meth:`attach_timeline`)
        self.timeline = None
        if program is not None:
            self.load(program)
        self.reset()

    # ------------------------------------------------------------------
    def load(self, program):
        """Load an assembled program into flash."""
        if not isinstance(program, Program):
            raise TypeError("expected an assembled Program")
        self.program = program
        self.memory.load_program(program)
        self.core.invalidate_decode_cache()
        return self

    def reset(self, sp=None):
        """Reset CPU state: PC=0, SP=RAMEND (or *sp*), SREG=0."""
        self.core.pc = 0
        self.core.halted = False
        self.memory.sp = self.geometry.ramend if sp is None else sp
        self.memory.sreg = 0
        return self

    def attach_tracer(self, limit=100000):
        tracer = BusTracer(limit)
        self.bus.tracer = tracer
        return tracer

    def attach_trace(self, sink=None, capacity=65536):
        """Attach a structured :class:`repro.trace.TraceSink`."""
        from repro.trace import install_tracing
        return install_tracing(self, sink=sink, capacity=capacity)

    def attach_profiler(self, runtime_region=None):
        """Attach a :class:`repro.trace.DomainProfiler`."""
        from repro.trace import install_profiler
        return install_profiler(self, runtime_region=runtime_region)

    def attach_forensics(self, window=16, layout=None, memmap=None,
                         symbols=None):
        """Attach a :class:`repro.trace.forensics.FlightRecorder` so
        every propagating :class:`ProtectionFault` carries a
        :class:`~repro.trace.forensics.FaultReport`.  *layout* drives
        region classification / software call-stack reconstruction;
        *memmap* is a :class:`~repro.core.memmap.MemoryMap` (or a
        zero-arg callable returning one) for owner annotation;
        *symbols* is an extra ``name -> byte address`` map (or a
        zero-arg callable returning one, e.g. ``system.symbol_map``)
        merged into the instruction-window symbolization."""
        from repro.trace.forensics import FlightRecorder
        if self.forensics is None:
            self.forensics = FlightRecorder(self, window=window)
        else:
            self.forensics.window = window
        if layout is not None:
            self.forensics.layout = layout
        if memmap is not None:
            self.forensics.memmap_provider = memmap
        if symbols is not None:
            self.forensics.symbols = symbols
        return self.forensics

    def attach_metrics(self, registry=None):
        """Attach a :class:`repro.trace.metrics.MetricsRegistry` (opts
        the core out of the fast loop; cycle counts are unchanged)."""
        from repro.trace.metrics import install_metrics
        return install_metrics(self, registry)

    def attach_debugger(self):
        """Attach a :class:`repro.trace.debug.Debugger` for watchpoints
        and PC breakpoints (opts the core out of the fast loop)."""
        from repro.trace.debug import Debugger
        if self.core.debug is None:
            Debugger(self)
        return self.core.debug

    def attach_timeline(self, interval=None, keep_flash=True):
        """Attach a :class:`repro.trace.timeline.Timeline` recorder:
        keyframe :class:`~repro.sim.snapshot.MachineSnapshot`\\ s are
        captured every *interval* cycles during :meth:`run`/:meth:`call`
        (fast path included — the check rides the run loop's existing
        budget comparison), enabling ``seek``/``window``/replay,
        reverse-step in the debugger and replay-backed forensics.
        Re-attaching returns the existing timeline."""
        from repro.trace.timeline import Timeline
        if self.timeline is None:
            Timeline(self, interval=interval, keep_flash=keep_flash)
        return self.timeline

    def record_fault(self, fault):
        """Capture forensics for *fault* (idempotent) and count it.

        The single funnel every propagating protection fault passes
        through: ``Machine.call``/``run`` and the system harnesses
        (:class:`~repro.umpu.system.UmpuSystem`, software runtime) all
        route faults here, so a fault is reported exactly once no
        matter how many layers re-raise it.  Returns *fault*.
        """
        if getattr(fault, "report", None) is not None:
            return fault
        metrics = self.core.metrics
        if metrics is not None:
            metrics.counter("protection_faults",
                            code=getattr(fault, "code", "protection"),
                            domain=getattr(fault, "domain", None)).inc()
        if self.timeline is not None:
            # pin the at-fault state as a keyframe (before forensics so
            # the flight recorder can build a replay-backed window)
            self.timeline.note_fault(fault)
        if self.forensics is not None:
            self.forensics.capture(fault)
        return fault

    # --- snapshot/restore ---------------------------------------------
    def snapshot(self):
        """Capture the complete architectural state (memory, flash,
        core counters) as a :class:`~repro.sim.snapshot.MachineSnapshot`
        for later :meth:`restore` — record-replay, fuzzing from a
        common post-load state, bisection."""
        from repro.sim.snapshot import MachineSnapshot
        return MachineSnapshot.capture(self)

    def restore(self, snap):
        """Restore a state captured by :meth:`snapshot`.  Attached
        observers (trace/profiler/metrics/debugger) are left in place;
        the decode cache is invalidated."""
        snap.apply(self)
        return self

    def _snapshot_extra(self):
        """Machine-subclass architectural state beyond the memory
        arrays; the base machine keeps everything in memory/core.  The
        interrupt controller's pending lines ride along when one is
        attached."""
        extra = {}
        interrupts = self.core.interrupts
        if interrupts is not None:
            extra["irq_pending"] = frozenset(interrupts.pending)
            extra["irq_raised_at"] = dict(interrupts._raised_at)
        return extra

    def _restore_extra(self, extra):
        interrupts = self.core.interrupts
        if interrupts is not None and "irq_pending" in extra:
            interrupts.pending = set(extra["irq_pending"])
            interrupts._raised_at = dict(extra["irq_raised_at"])

    # ------------------------------------------------------------------
    def resolve(self, target):
        """Resolve *target* (label name or byte address) to a byte addr."""
        if isinstance(target, str):
            if self.program is None:
                raise ValueError("no program loaded")
            return self.program.symbol(target)
        return target

    # --- ABI helpers -----------------------------------------------------
    def set_args(self, *args):
        """Place *args* in registers per the calling convention.

        Each arg is either an int (16-bit slot) or ``("u8", value)`` for
        an 8-bit slot.  Slots are r25:r24 downward, two registers each.
        """
        reg = 24
        for arg in args:
            if reg < 8:
                raise ValueError("too many register arguments")
            if isinstance(arg, tuple) and arg[0] == "u8":
                self.core.set_reg(reg, arg[1] & 0xFF)
                self.core.set_reg(reg + 1, 0)
            else:
                self.core.set_reg_pair(reg, arg & 0xFFFF)
            reg -= 2
        return self

    def result16(self):
        return self.core.reg_pair(24)

    def result8(self):
        return self.core.reg(24)

    # ------------------------------------------------------------------
    def call(self, target, *args, max_cycles=1_000_000):
        """Call subroutine *target* and run it to completion.

        Sets up arguments, pushes a sentinel return address, runs until
        the subroutine returns (PC reaches the sentinel) and returns the
        number of cycles consumed (including the final ``ret``).
        """
        self.set_args(*args)
        byte_addr = self.resolve(target)
        self.core.push_return_address(CALL_SENTINEL_WORD)
        self.core.pc = byte_addr // 2
        if self.timeline is not None:
            self.timeline.begin_run()
        start = self.core.cycles
        try:
            self.core.run(max_cycles=max_cycles,
                          until_pc=CALL_SENTINEL_WORD)
        except ProtectionFault as fault:
            raise self.record_fault(fault)
        return self.core.cycles - start

    def run(self, entry=None, max_cycles=1_000_000):
        """Run from *entry* (default: current PC) until halt (`break`)."""
        if entry is not None:
            self.core.pc = self.resolve(entry) // 2
        if self.timeline is not None:
            self.timeline.begin_run()
        try:
            return self.core.run(max_cycles=max_cycles)
        except ProtectionFault as fault:
            raise self.record_fault(fault)

    # --- memory inspection helpers ------------------------------------------
    def read_bytes(self, addr, n):
        return bytes(self.memory.read_data(addr + i) for i in range(n))

    def write_bytes(self, addr, data):
        self.memory.fill_data(addr, data)

    def read_word(self, addr):
        return self.memory.read_word_data(addr)

    def write_word(self, addr, value):
        self.memory.write_word_data(addr, value)
