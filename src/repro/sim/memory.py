"""Raw memory model: unified data space (registers + I/O + SRAM) and flash.

This layer has no protection logic; it is the physical memory array the
bus and the functional units operate on.  The AVR maps its 32 registers
and 64 I/O registers into the bottom of the data space, which is why a
single byte array covers everything from r0 to RAMEND.
"""

from repro.isa.registers import ATMEGA103, IoReg
from repro.sim.errors import InvalidAccess


class Memory:
    """Physical memory of the part: data space bytes + flash words."""

    def __init__(self, geometry=ATMEGA103):
        self.geometry = geometry
        self.data = bytearray(geometry.data_end + 1)
        self.flash = [0xFFFF] * geometry.flash_words
        #: data-space address -> device; devices observe/override the raw
        #: byte at that address (used for the UMPU configuration
        #: registers, which live in the I/O window).
        self.io_devices = {}
        #: callables notified with the word address of every flash
        #: write; the core registers one to drop stale decode-cache
        #: entries, so runtime flash patching (relocation, jump-table
        #: flushes, self-modification) can never execute stale decodes.
        self.flash_listeners = []

    # --- data space --------------------------------------------------
    def read_data(self, addr):
        if not 0 <= addr <= self.geometry.data_end:
            raise InvalidAccess(addr)
        return self.data[addr]

    def write_data(self, addr, value):
        if not 0 <= addr <= self.geometry.data_end:
            raise InvalidAccess(addr)
        self.data[addr] = value & 0xFF

    def read_word_data(self, addr):
        """Little-endian 16-bit read (low byte at *addr*)."""
        return self.read_data(addr) | (self.read_data(addr + 1) << 8)

    def write_word_data(self, addr, value):
        """Little-endian 16-bit write (low byte at *addr*).

        All-or-nothing like :meth:`fill_data`: both addresses are
        bounds-checked before either byte lands, so a word straddling
        the end of the data space writes nothing at all (instead of
        tearing: low byte written, then the high-byte check raises).
        """
        if not 0 <= addr <= self.geometry.data_end:
            raise InvalidAccess(addr)
        if addr + 1 > self.geometry.data_end:
            raise InvalidAccess(addr + 1)
        self.data[addr] = value & 0xFF
        self.data[addr + 1] = (value >> 8) & 0xFF

    def fill_data(self, addr, data):
        """Bulk-load *data* bytes starting at data address *addr*.

        One bounds check for the whole block, then a slice assignment —
        all-or-nothing: an out-of-range block writes no bytes at all."""
        buf = bytes(b & 0xFF for b in data)
        if not buf:
            return
        if not 0 <= addr <= self.geometry.data_end:
            raise InvalidAccess(addr)
        if addr + len(buf) - 1 > self.geometry.data_end:
            raise InvalidAccess(self.geometry.data_end + 1)
        self.data[addr:addr + len(buf)] = buf

    # --- register file ------------------------------------------------
    def reg(self, n):
        return self.data[n]

    def set_reg(self, n, value):
        self.data[n] = value & 0xFF

    def reg_pair(self, n):
        return self.data[n] | (self.data[n + 1] << 8)

    def set_reg_pair(self, n, value):
        # callers reach this with data-space addresses too (the sp/sreg
        # properties address the I/O window through it), so it needs the
        # same all-or-nothing guard as write_word_data: a pair at
        # data_end must not write the low byte before an IndexError
        if not 0 <= n or n + 1 > self.geometry.data_end:
            raise InvalidAccess(n if n < 0 else n + 1)
        self.data[n] = value & 0xFF
        self.data[n + 1] = (value >> 8) & 0xFF

    # --- named I/O ------------------------------------------------------
    @property
    def sp(self):
        return self.reg_pair(IoReg.SPL + 0x20)

    @sp.setter
    def sp(self, value):
        self.set_reg_pair(IoReg.SPL + 0x20, value)

    @property
    def sreg(self):
        return self.data[IoReg.SREG + 0x20]

    @sreg.setter
    def sreg(self, value):
        self.data[IoReg.SREG + 0x20] = value & 0xFF

    # --- flash -----------------------------------------------------------
    def read_flash_word(self, word_addr):
        if not 0 <= word_addr < len(self.flash):
            raise InvalidAccess(word_addr * 2)
        return self.flash[word_addr]

    def write_flash_word(self, word_addr, value):
        if not 0 <= word_addr < len(self.flash):
            raise InvalidAccess(word_addr * 2)
        self.flash[word_addr] = value & 0xFFFF
        for listener in self.flash_listeners:
            listener(word_addr)

    def read_flash_byte(self, byte_addr):
        word = self.read_flash_word(byte_addr >> 1)
        return (word >> 8) & 0xFF if byte_addr & 1 else word & 0xFF

    def load_program(self, program):
        """Copy an assembled :class:`repro.asm.Program` into flash.

        Bulk path: one bounds check over the image's extent, direct word
        stores, then the flash listeners are notified per written word —
        the same invalidation the per-word write path performs, so no
        stale decode can survive a (re)load."""
        words = program.words
        if not words:
            return
        lo, hi = min(words), max(words)
        if lo < 0:
            raise InvalidAccess(lo * 2)
        if hi >= len(self.flash):
            raise InvalidAccess(hi * 2)
        flash = self.flash
        for word_addr, value in words.items():
            flash[word_addr] = value & 0xFFFF
        for listener in self.flash_listeners:
            for word_addr in words:
                listener(word_addr)
