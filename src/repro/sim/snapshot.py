"""Machine snapshot/restore: record-replay for the simulator.

A :class:`MachineSnapshot` is a deep copy of everything that defines a
machine's architectural state: the unified data space (registers, I/O,
SRAM), flash, and the core's PC/cycle/instret/halted fields.  Machines
with extra architectural state beyond the memory arrays (the UMPU
register file, the domain tracker's call-depth bookkeeping, the
safe-stack unit's counters) contribute it through the
``Machine._snapshot_extra()`` / ``_restore_extra()`` hooks, and the
system harnesses (:class:`~repro.sfi.system.SfiSystem`,
:class:`~repro.umpu.system.UmpuSystem`) layer their loader/linker state
on top via the snapshot's ``system`` slot.

Guarantees (pinned by ``tests/test_soundness.py``):

* ``restore(snapshot(m))`` followed by N steps is state- and
  write-log-identical to running the N steps directly, on both the
  instrumented ``step()`` path and the threaded-dispatch fast loop;
* restore invalidates the decode cache, so a snapshot taken before a
  flash write can never replay stale decodes;
* observers (trace sinks, profilers, debuggers, metrics) are *not*
  part of the snapshot — they are measurement equipment, not machine
  state, and survive a restore unchanged.

The fuzzer (:mod:`repro.soundness`) leans on this: one expensive system
construction (runtime assembly, boot), then thousands of candidate
modules each explored from the same restored post-boot state.
"""

#: snapshot format version (bump on incompatible changes)
SNAPSHOT_SCHEMA = 1


class MachineSnapshot:
    """Immutable-by-convention copy of a machine's architectural state."""

    __slots__ = ("data", "flash", "pc", "cycles", "instret", "halted",
                 "extra", "system")

    def __init__(self, data, flash, pc, cycles, instret, halted,
                 extra=None, system=None):
        self.data = data          # bytes: full data space
        self.flash = flash        # tuple of flash words
        self.pc = pc              # word address
        self.cycles = cycles
        self.instret = instret
        self.halted = halted
        #: machine-subclass state (UMPU registers, tracker, safe stack)
        self.extra = extra or {}
        #: system-harness state (loader bookkeeping, linker exports)
        self.system = system

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, machine):
        core = machine.core
        return cls(data=bytes(machine.memory.data),
                   flash=tuple(machine.memory.flash),
                   pc=core.pc, cycles=core.cycles, instret=core.instret,
                   halted=core.halted,
                   extra=machine._snapshot_extra())

    # ------------------------------------------------------------------
    @classmethod
    def capture_system(cls, system):
        """Capture a system harness (machine + loader/linker state).

        Works for any harness with the shared loader shape
        (``modules`` / ``_next_load`` / ``_next_domain`` /
        ``_free_domains`` and a :class:`~repro.sos.linker.
        CrossDomainLinker`): both :class:`~repro.sfi.system.SfiSystem`
        and :class:`~repro.umpu.system.UmpuSystem`.  Module/export
        records are treated as immutable and shared, not copied.
        """
        snap = cls.capture(system.machine)
        linker = system.linker
        snap.system = {
            "modules": dict(system.modules),
            "next_load": system._next_load,
            "next_domain": system._next_domain,
            "free_domains": list(system._free_domains),
            "linker_exports": dict(linker._exports),
            "linker_by_name": dict(linker._by_name),
        }
        return snap

    def apply_system(self, system):
        if self.system is None:
            raise ValueError("not a system snapshot (use Machine.restore)")
        self.apply(system.machine)
        state = self.system
        system.modules = dict(state["modules"])
        system._next_load = state["next_load"]
        system._next_domain = state["next_domain"]
        system._free_domains = list(state["free_domains"])
        linker = system.linker
        linker._exports = dict(state["linker_exports"])
        linker._by_name = dict(state["linker_by_name"])
        return system

    def apply(self, machine):
        mem = machine.memory
        mem.data[:] = self.data
        mem.flash[:] = self.flash
        core = machine.core
        core.pc = self.pc
        core.cycles = self.cycles
        core.instret = self.instret
        core.halted = self.halted
        # flash was replaced wholesale without per-word listener
        # notification; dropping the whole decode cache restores the
        # same no-stale-decode invariant
        core.invalidate_decode_cache()
        machine._restore_extra(self.extra)
        return machine
