"""Command-line tools for the Harbor toolchain.

Installed as console scripts (see ``pyproject.toml``):

* ``harbor-asm SOURCE [-o OUT.hex] [--listing]`` — assemble AVR source
  to a flash image (simple hex word dump) and/or a listing.
* ``harbor-disasm IMAGE.hex`` — disassemble an image.
* ``harbor-rewrite SOURCE --export NAME [...]`` — run the binary
  rewriter and print the sandboxed listing + statistics.
* ``harbor-verify SOURCE`` — run the on-node verifier over an image and
  report accept/reject.
* ``harbor-run SOURCE --entry LABEL`` — execute a program on the
  simulator (plain, or with UMPU protection via ``--umpu``).
* ``harbor-trace SOURCE -o OUT.json`` — execute with the structured
  trace attached and export a Chrome ``about://tracing`` JSON.
* ``harbor-profile SOURCE`` — execute with the per-domain cycle
  profiler attached and print the attribution breakdown (optionally
  also exporting the Chrome trace); see ``docs/observability.md``.
* ``harbor-replay SOURCE [--to-cycle C | --to-fault] [--window K]`` —
  record a run as a cycle-indexed timeline (keyframe snapshots), then
  seek it: deterministically replay to any cycle or to the fault and
  show the machine state plus a replay-derived instruction window with
  live register/SREG values; ``-o`` exports the timeline index and
  ``--speedscope`` the per-block heat profile.
* ``harbor-explain-fault SOURCE`` — execute with tracing + the fault
  forensics flight recorder attached; on a protection fault, print the
  structured panic dump (text or ``--json``).
* ``harbor-metrics SOURCE`` — execute with the metrics registry
  attached and print/export the counters, gauges and histograms.
* ``harbor-lint MODULE[:EXPORTS] [...]`` — build a whole node image
  from module sources (through the rewriter/verifier pipeline, or raw
  with ``--unchecked``) and run the whole-image static analyzer: CFG +
  abstract-interpretation protection verification, safe-stack bounds,
  overhead estimation and dead-code detection, reported with stable
  ``HLxxx`` rule codes (text, JSON or SARIF); see
  ``docs/static-analysis.md``.
* ``harbor-fuzz [--system sfi|umpu|both] [--count N] [--seed S]`` —
  adversarial soundness campaign: generate seeded hostile modules,
  drive them through the admission pipeline, execute the admitted ones
  on both execution paths under a write oracle and exit non-zero on
  any isolation escape; ``--index`` replays one candidate,
  ``--artifacts`` dumps escape records; see ``docs/soundness.md``.
* ``harbor-opt MODULE[:EXPORTS] [...]`` — proof-directed check elision:
  load modules with the prover enabled, strip run-time store checks it
  proves redundant against the layout's static data spans, write the
  ``ElisionManifest`` proof records and re-lint the elided image; see
  the "Check elision" section of ``docs/static-analysis.md``.
* ``harbor-certify MODULE[:EXPORTS] [...]`` — translation validation:
  load modules through the rewrite→(elide)→verify pipeline, then prove
  the installed flash is a sanctioned translation of each source
  (checked/manifest-covered stores, frame discipline, control-edge
  correspondence; ``HL017`` on any mismatch) and classify every
  installed block for the planned block JIT (``HL018`` notes);
  ``--report`` writes the JIT-readiness JSON; see the "Translation
  validation" section of ``docs/static-analysis.md``.

The image format is deliberately trivial: one ``ADDR: WORD`` hex pair
per line (word addresses), so images are diffable and editable.
"""

import argparse
import sys

from repro.asm import AsmError, Assembler, assemble, listing
from repro.asm.disassembler import disassemble
from repro.asm.program import Program
from repro.core.faults import ProtectionFault
from repro.sfi.layout import SfiLayout
from repro.sfi.inline import InlineRewriter, TemplateVerifier
from repro.sfi.rewriter import RewriteError, Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier, VerifyError
from repro.sim import Machine
from repro.umpu import HarborLayout, UmpuMachine


def _read_source(path):
    with open(path) as handle:
        return handle.read()


def _load_image(path):
    program = Program(source_name=path)
    with open(path) as handle:
        for line in handle:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            addr, _, word = line.partition(":")
            program.set_word(int(addr, 16), int(word, 16))
    return program


def _dump_image(program, out):
    for word_addr in sorted(program.words):
        out.write("{:05x}: {:04x}\n".format(word_addr,
                                            program.words[word_addr]))


def _assemble_arg(path):
    if path.endswith(".hex"):
        return _load_image(path)
    return assemble(_read_source(path), name=path)


# ---------------------------------------------------------------------
def cmd_asm(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-asm", description="assemble AVR source")
    parser.add_argument("source")
    parser.add_argument("-o", "--output", help="write hex image here")
    parser.add_argument("--listing", action="store_true",
                        help="print a disassembly listing")
    args = parser.parse_args(argv)
    try:
        program = assemble(_read_source(args.source), name=args.source)
    except AsmError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as out:
            _dump_image(program, out)
    if args.listing or not args.output:
        print(listing(program))
    print("; {} bytes of code, {} symbols".format(
        program.code_bytes, len(program.symbols)), file=sys.stderr)
    return 0


def cmd_disasm(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-disasm", description="disassemble a flash image")
    parser.add_argument("image", help=".hex image or .s source")
    args = parser.parse_args(argv)
    program = _assemble_arg(args.image)
    print(listing(program))
    return 0


def cmd_rewrite(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-rewrite",
        description="sandbox a module with the binary rewriter")
    parser.add_argument("source")
    parser.add_argument("--export", action="append", default=[],
                        help="exported function (repeatable)")
    parser.add_argument("--origin", type=lambda v: int(v, 0), default=None,
                        help="load address (default: after jump tables)")
    parser.add_argument("--inline", action="store_true",
                        help="inline the check templates instead of "
                             "calling the runtime stubs")
    parser.add_argument("-o", "--output", help="write hex image here")
    args = parser.parse_args(argv)
    layout = SfiLayout()
    runtime = build_runtime(layout)
    rewriter_cls = InlineRewriter if args.inline else Rewriter
    rewriter = rewriter_cls(runtime.symbols, layout)
    module = _assemble_arg(args.source)
    origin = args.origin if args.origin is not None else layout.jt_end
    try:
        result = rewriter.rewrite(module, origin, exports=args.export)
    except RewriteError as exc:
        print("rewrite error: {}".format(exc), file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as out:
            _dump_image(result.program, out)
    else:
        print(listing(result.program))
    stats = result.stats
    print("; {} -> {} bytes; stores={} xcalls={} prologues={} rets={}"
          .format(stats["size_in"], stats["size_out"], stats["stores"],
                  stats["cross_calls"], stats["prologues"],
                  stats["rets"]), file=sys.stderr)
    for name, addr in sorted(result.exports.items()):
        print("; export {} at 0x{:04x}".format(name, addr),
              file=sys.stderr)
    return 0


def cmd_verify(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-verify",
        description="run the on-node verifier over a module image")
    parser.add_argument("image", help=".hex image or .s source")
    parser.add_argument("--allow-io", action="append", default=[],
                        type=lambda v: int(v, 0),
                        help="whitelisted I/O address (repeatable)")
    parser.add_argument("--inline", action="store_true",
                        help="use the template verifier (accepts "
                             "inline-checked binaries)")
    args = parser.parse_args(argv)
    layout = SfiLayout()
    runtime = build_runtime(layout)
    verifier_cls = TemplateVerifier if args.inline else Verifier
    verifier = verifier_cls(runtime.symbols, layout,
                            allowed_io=tuple(args.allow_io))
    program = _assemble_arg(args.image)
    lo, hi = program.extent()
    try:
        report = verifier.verify(program, lo * 2, (hi + 1) * 2)
    except VerifyError as exc:
        print("REJECTED: {}".format(exc))
        return 1
    print("ACCEPTED: {} instructions, {} runtime calls, {} internal "
          "calls, {} rets".format(report.instructions,
                                  report.calls_to_runtime,
                                  report.internal_calls, report.rets))
    return 0


def _add_run_arguments(parser):
    parser.add_argument("source")
    parser.add_argument("--entry", default=None,
                        help="label to call (default: run from reset)")
    parser.add_argument("--umpu", action="store_true",
                        help="enable the UMPU protection units")
    parser.add_argument("--domain", type=int, default=None,
                        help="run as this protection domain (with --umpu)")
    parser.add_argument("--max-cycles", type=int, default=1_000_000)


def _build_machine(args):
    program = _assemble_arg(args.source)
    if args.umpu:
        machine = UmpuMachine(program, layout=HarborLayout())
        if args.domain is not None:
            machine.enter_domain(args.domain)
    else:
        machine = Machine(program)
    return machine


def _execute(machine, args):
    """Run per the shared run arguments; returns (cycles, fault)."""
    try:
        if args.entry:
            cycles = machine.call(args.entry, max_cycles=args.max_cycles)
        else:
            cycles = machine.run(max_cycles=args.max_cycles)
    except ProtectionFault as exc:
        return machine.core.cycles, exc
    return cycles, None


def cmd_run(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-run", description="run a program on the simulator")
    _add_run_arguments(parser)
    parser.add_argument("--dump", action="append", default=[],
                        help="ADDR[:LEN] memory ranges to print after")
    args = parser.parse_args(argv)
    machine = _build_machine(args)
    try:
        if args.entry:
            cycles = machine.call(args.entry, max_cycles=args.max_cycles)
        else:
            cycles = machine.run(max_cycles=args.max_cycles)
    except ProtectionFault as exc:
        print("protection fault: {}".format(exc))
        return 2
    print("halted after {} cycles; r24:25 = 0x{:04x}".format(
        cycles, machine.result16()))
    for spec in args.dump:
        addr_text, _, len_text = spec.partition(":")
        addr = int(addr_text, 0)
        length = int(len_text, 0) if len_text else 16
        data = machine.read_bytes(addr, length)
        print("0x{:04x}: {}".format(
            addr, " ".join("{:02x}".format(b) for b in data)))
    return 0


# ---------------------------------------------------------------------
def cmd_trace(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-trace",
        description="run a program with the structured trace attached "
                    "and export Chrome trace_event JSON "
                    "(load in about://tracing or ui.perfetto.dev)")
    _add_run_arguments(parser)
    parser.add_argument("-o", "--output", default="trace.json",
                        help="Chrome trace output path (default: "
                             "trace.json)")
    parser.add_argument("--capacity", type=int, default=65536,
                        help="trace ring-buffer capacity (events)")
    parser.add_argument("--text", action="store_true",
                        help="also dump the raw events as text")
    args = parser.parse_args(argv)
    from repro.trace import write_chrome_trace
    machine = _build_machine(args)
    sink = machine.attach_trace(capacity=args.capacity)
    cycles, fault = _execute(machine, args)
    write_chrome_trace(args.output, sink)
    if args.text:
        for event in sink:
            print("{:>8}  {:<20} pc={} domain={} {}".format(
                event.cycle, event.kind.value,
                "-" if event.pc is None else "0x{:04x}".format(event.pc),
                "-" if event.domain is None else event.domain,
                event.data))
    print("; {} cycles, {} events ({} dropped) -> {}".format(
        cycles, sink.emitted, sink.dropped, args.output),
        file=sys.stderr)
    if fault is not None:
        print("protection fault: {}".format(fault), file=sys.stderr)
        return 2
    return 0


def cmd_profile(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-profile",
        description="run a program with the per-domain cycle profiler "
                    "and print the attribution breakdown")
    _add_run_arguments(parser)
    parser.add_argument("--chrome", default=None, metavar="OUT.json",
                        help="also export the Chrome trace here")
    parser.add_argument("--capacity", type=int, default=65536,
                        help="trace ring-buffer capacity (events)")
    parser.add_argument("--blocks", action="store_true",
                        help="also rank per-basic-block execution heat "
                             "(records a timeline and replays it)")
    parser.add_argument("--top", type=int, default=20,
                        help="blocks to list with --blocks (default 20)")
    parser.add_argument("--speedscope", default=None, metavar="OUT.json",
                        help="export the block heat as a speedscope "
                             "profile (implies --blocks)")
    parser.add_argument("--interval", type=int, default=None,
                        help="timeline keyframe interval in cycles "
                             "(with --blocks)")
    args = parser.parse_args(argv)
    from repro.trace import flat_report, write_chrome_trace
    machine = _build_machine(args)
    sink = machine.attach_trace(capacity=args.capacity)
    profiler = machine.attach_profiler()
    blocks = args.blocks or args.speedscope
    timeline = machine.attach_timeline(interval=args.interval) \
        if blocks else None
    cycles, fault = _execute(machine, args)
    print(flat_report(profiler, sink,
                      title="Cycle attribution: {}".format(args.source)))
    if fault is None:
        profiler.assert_balanced(machine.core)
        print("; attribution balanced: {} cycles == core.cycles delta"
              .format(profiler.total()), file=sys.stderr)
    if blocks:
        from repro.trace import BlockHeat, write_speedscope
        heat = BlockHeat.from_machine(machine).feed(timeline)
        print()
        print(heat.render(top=args.top))
        if args.speedscope:
            write_speedscope(args.speedscope, heat,
                             name="profile:{}".format(args.source))
            print("; speedscope profile -> {}".format(args.speedscope),
                  file=sys.stderr)
    if args.chrome:
        write_chrome_trace(args.chrome, sink)
        print("; chrome trace -> {}".format(args.chrome),
              file=sys.stderr)
    if fault is not None:
        print("protection fault: {}".format(fault), file=sys.stderr)
        return 2
    return 0


def cmd_replay(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-replay",
        description="record a run with keyframe snapshots, then seek "
                    "the time-travel timeline: replay to a cycle or to "
                    "the fault and show the machine state plus a "
                    "replay-derived instruction window with live "
                    "register/SREG values")
    _add_run_arguments(parser)
    parser.add_argument("--interval", type=int, default=None,
                        help="keyframe interval in cycles (default {})"
                        .format(10_000))
    parser.add_argument("--to-cycle", type=int, default=None, metavar="C",
                        help="seek to cycle C after the run")
    parser.add_argument("--to-fault", action="store_true",
                        help="seek to the recorded protection fault")
    parser.add_argument("--window", type=int, default=8, metavar="K",
                        help="instructions of replayed history to show")
    parser.add_argument("-o", "--output", default=None,
                        metavar="TIMELINE.json",
                        help="write the timeline index (keyframes, "
                             "segments, faults, stats) here")
    parser.add_argument("--speedscope", default=None, metavar="OUT.json",
                        help="replay the whole recording and export the "
                             "block heat as a speedscope profile")
    args = parser.parse_args(argv)
    from repro.trace import BlockHeat, write_speedscope
    machine = _build_machine(args)
    timeline = machine.attach_timeline(interval=args.interval)
    cycles, fault = _execute(machine, args)
    timeline.finalize()
    print("; recorded {} cycles, {} keyframes (interval {})".format(
        cycles, len(timeline.keyframes), timeline.interval),
        file=sys.stderr)
    if fault is not None:
        print("; protection fault at cycle {}: {}".format(
            timeline.fault_cycle, fault), file=sys.stderr)

    status = 0
    target = None
    if args.to_fault:
        if not timeline.faults:
            print("no protection fault recorded", file=sys.stderr)
            status = 1
        else:
            target = timeline.fault_cycle
    elif args.to_cycle is not None:
        target = args.to_cycle

    if target is not None:
        core = machine.core
        timeline.seek(target)
        print("state at cycle {} (seek target {}):".format(
            core.cycles, target))
        print("  pc=0x{:05x}  instret={}  SREG=0x{:02x}  SP=0x{:04x}"
              "  halted={}".format(core.pc * 2, core.instret,
                                   machine.memory.sreg, machine.memory.sp,
                                   core.halted))
        for row in range(0, 32, 8):
            cells = " ".join("{:02x}".format(machine.memory.data[r])
                             for r in range(row, row + 8))
            print("  r{:<2}-r{:<2} {}".format(row, row + 7, cells))
        window = timeline.window(
            cycle=None if args.to_fault else target, before=args.window,
            symbols=None if machine.program is None
            else {a: n for n, a in machine.program.symbols.items()})
        print("  replayed window ({} instructions):".format(len(window)))
        for entry in window:
            mark = "  <-- FAULT" if entry["fault"] else ""
            print("    0x{:05x}  {:<28} [SREG=0x{:02x} SP=0x{:04x}]{}"
                  .format(entry["pc"], entry["text"], entry["sreg"],
                          entry["sp"], mark))
        timeline.seek(target)  # leave the machine at the seek target

    if args.speedscope:
        heat = BlockHeat.from_machine(machine).feed(timeline)
        write_speedscope(args.speedscope, heat,
                         name="replay:{}".format(args.source))
        print("; speedscope profile -> {}".format(args.speedscope),
              file=sys.stderr)
    if args.output:
        timeline.write(args.output)
        print("; timeline -> {}".format(args.output), file=sys.stderr)
    if target is None and fault is not None:
        return 2
    return status


def cmd_explain_fault(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-explain-fault",
        description="run a program with fault forensics attached and "
                    "explain any protection fault: registers, annotated "
                    "faulting address, cross-domain call stack, and the "
                    "last retired instructions")
    _add_run_arguments(parser)
    parser.add_argument("--window", type=int, default=16,
                        help="instructions of history to disassemble")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of text")
    parser.add_argument("-o", "--output", default=None, metavar="OUT.json",
                        help="also write the JSON report here")
    args = parser.parse_args(argv)
    machine = _build_machine(args)
    machine.attach_trace()
    machine.attach_forensics(window=args.window)
    cycles, fault = _execute(machine, args)
    if fault is None:
        print("no protection fault after {} cycles".format(cycles))
        return 0
    report = getattr(fault, "report", None)
    if report is None:  # fault from a layer outside the machine funnel
        machine.record_fault(fault)
        report = fault.report
    if args.json:
        print(report.to_json())
    else:
        print(report.text())
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report.to_json())
        print("; fault report -> {}".format(args.output), file=sys.stderr)
    return 2


def cmd_metrics(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-metrics",
        description="run a program with the metrics registry attached "
                    "and print the counters/gauges/histograms")
    _add_run_arguments(parser)
    parser.add_argument("--json", action="store_true",
                        help="print the registry as JSON instead of text")
    parser.add_argument("-o", "--output", default=None, metavar="OUT.json",
                        help="also write the JSON export here")
    args = parser.parse_args(argv)
    import json as json_mod

    from repro.trace import write_metrics
    machine = _build_machine(args)
    registry = machine.attach_metrics()
    cycles, fault = _execute(machine, args)
    registry.sample(machine)
    if args.json:
        print(json_mod.dumps(registry.to_dict(), indent=1, sort_keys=True))
    else:
        print(registry.render())
    if args.output:
        write_metrics(args.output, registry)
        print("; metrics -> {}".format(args.output), file=sys.stderr)
    print("; {} cycles, {} metrics".format(cycles, len(registry)),
          file=sys.stderr)
    if fault is not None:
        print("protection fault: {}".format(fault), file=sys.stderr)
        return 2
    return 0


def cmd_lint(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-lint",
        description="whole-image static analyzer: build a node image "
                    "from module sources and run the CFG + abstract-"
                    "interpretation analyses (protection verification, "
                    "safe-stack bounds, overhead estimation, dead code); "
                    "findings carry stable HLxxx rule codes")
    parser.add_argument("modules", nargs="+", metavar="MODULE[:EXPORTS]",
                        help="module source (.s) or image (.hex); "
                             "EXPORTS is a comma-separated export list "
                             "(default: every label)")
    parser.add_argument("--umpu", action="store_true",
                        help="model the hardware-protected system "
                             "(modules load unrewritten)")
    parser.add_argument("--unchecked", action="store_true",
                        help="place the raw images without the rewriter/"
                             "verifier pipeline — lint miscompiled or "
                             "hand-written binaries the loader would "
                             "reject")
    parser.add_argument("--allow-io", action="append", default=[],
                        type=lambda v: int(v, 0),
                        help="whitelisted I/O address (repeatable)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("-o", "--output", default=None,
                        help="write the report here (in --format)")
    parser.add_argument("--no-dead-code", action="store_true",
                        help="skip the dead/unreachable-block analysis")
    parser.add_argument("--fail-on", choices=("error", "warning", "note"),
                        default="error",
                        help="exit 1 when a finding at or above this "
                             "severity exists (default: error)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULES",
                        help="only report these rules (comma-separated "
                             "HL codes or slugs, repeatable); also "
                             "narrows the --fail-on gate")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="RULES",
                        help="drop these rules from the report and the "
                             "--fail-on gate (comma-separated HL codes "
                             "or slugs, repeatable)")
    parser.add_argument("--data-span", action="append", default=[],
                        metavar="MODULE:LO-HI",
                        help="declare [LO, HI] (module-relative byte "
                             "offsets, with --unchecked) as data words "
                             "— excluded from decode/dead-code analysis "
                             "(repeatable)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="JSON suppression file: findings matching "
                             "a (rule, pc, fingerprint) entry are "
                             "dropped from the report and the --fail-on "
                             "gate, so CI fails only on new findings")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write the current findings as a baseline "
                             "suppression file (exit 0 — the next run "
                             "with --baseline FILE gates on new "
                             "findings only)")
    args = parser.parse_args(argv)
    import json as json_mod

    from repro.analysis.static import (
        ModuleRegion,
        lint_system,
        write_report,
    )
    from repro.asm.assembler import default_symbols
    from repro.sfi.system import SfiSystem
    from repro.umpu.system import UmpuSystem

    data_spans = {}
    try:
        for spec in args.data_span:
            name, _, span_text = spec.rpartition(":")
            lo_text, _, hi_text = span_text.partition("-")
            data_spans.setdefault(name, []).append(
                (int(lo_text, 0), int(hi_text, 0)))
    except ValueError as exc:
        print("error: bad --data-span: {}".format(exc), file=sys.stderr)
        return 2
    try:
        selected = _parse_rule_filter(args.select)
        ignored = _parse_rule_filter(args.ignore)
    except KeyError as exc:
        print("error: {}".format(exc.args[0]), file=sys.stderr)
        return 2

    if args.umpu:
        system = UmpuSystem()
    else:
        system = SfiSystem(allowed_io=tuple(args.allow_io))
    predefined = set(default_symbols())
    extra_regions = []
    try:
        for index, spec in enumerate(args.modules):
            path, _, exports_text = spec.partition(":")
            if path.endswith(".hex"):
                program = _load_image(path)
            else:
                asm = Assembler(symbols=system.kernel_symbols())
                program = asm.assemble(_read_source(path), name=path)
            lo, hi = program.extent()
            labels = {n: a for n, a in program.symbols.items()
                      if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
            exports = tuple(e for e in exports_text.split(",") if e) \
                or tuple(sorted(labels))
            name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            if args.unchecked:
                base = system._next_load
                for word_addr, value in program.words.items():
                    system.machine.memory.write_flash_word(
                        base // 2 + word_addr - lo, value)
                system.machine.core.invalidate_decode_cache()
                end = base + (hi - lo + 1) * 2
                entries = {e: base + labels[e] - lo * 2
                           for e in exports if e in labels}
                extra_regions.append(ModuleRegion(
                    name=name, domain=index, start=base, end=end,
                    policy="umpu" if args.umpu else "sfi",
                    entries=entries,
                    data_spans=tuple(
                        (base + lo_off, base + hi_off)
                        for lo_off, hi_off in data_spans.get(name, ()))))
                system._next_load = (end + 0xFF) & ~0xFF
            else:
                system.load_module(program, name, exports=exports)
    except (AsmError, OSError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    except (RewriteError, VerifyError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    model, report = lint_system(system,
                                dead_code=not args.no_dead_code,
                                extra_modules=extra_regions)
    engine = report.diagnostics
    if selected or ignored:
        engine.findings[:] = [
            d for d in engine.findings
            if (not selected or d.rule.code in selected)
            and d.rule.code not in ignored]
    if args.baseline:
        from repro.analysis.static.diagnostics import (
            apply_baseline,
            load_baseline,
        )
        try:
            suppressions = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print("error: bad baseline {}: {}".format(args.baseline, exc),
                  file=sys.stderr)
            return 2
        suppressed = apply_baseline(engine, suppressions)
        if suppressed:
            print("; {} finding(s) suppressed by baseline {}".format(
                suppressed, args.baseline), file=sys.stderr)
    if args.write_baseline:
        from repro.analysis.static.diagnostics import write_baseline
        write_baseline(args.write_baseline, engine)
        print("; baseline ({} finding(s)) -> {}".format(
            len(engine), args.write_baseline), file=sys.stderr)
    analysis = report.analysis_dict()
    if args.format == "text":
        text = engine.render_text()
        tail = report.render_analysis()
        if tail:
            text += "\n\n" + tail
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
    else:
        if args.output:
            write_report(args.output, engine, fmt=args.format,
                         analysis=analysis)
        doc = engine.to_sarif() if args.format == "sarif" \
            else engine.to_dict(analysis=analysis)
        print(json_mod.dumps(doc, indent=1, sort_keys=True))
    if args.output:
        print("; lint report -> {}".format(args.output), file=sys.stderr)
    if args.write_baseline:
        return 0        # baselining acknowledges the current findings
    return 1 if _findings_at_or_above(engine, args.fail_on) else 0


def _parse_rule_filter(specs):
    """Resolve repeatable comma-separated HL codes / slugs to a code
    set (harbor-lint ``--select`` / ``--ignore``); unknown tokens raise
    the diagnostics catalog's KeyError."""
    from repro.analysis.static.diagnostics import rule
    codes = set()
    for spec in specs:
        for token in spec.split(","):
            token = token.strip()
            if token:
                codes.add(rule(token).code)
    return codes


def _findings_at_or_above(engine, threshold):
    """Count findings at or above *threshold* severity (harbor-lint's
    ``--fail-on`` gate; severities order most-severe-first)."""
    from repro.analysis.static.diagnostics import SEVERITIES
    rank = SEVERITIES.index(threshold)
    return sum(1 for d in engine.findings
               if SEVERITIES.index(d.severity) <= rank)


def cmd_race(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-race",
        description="interrupt-aware static race detector and latency "
                    "certifier: I-bit dataflow partitions the module "
                    "into interrupt-atomic/interruptible regions, "
                    "mainline store/load intervals are intersected "
                    "against each ISR's access set (HL019 unprotected "
                    "shared writes, HL020 torn multi-byte accesses, "
                    "with two-site witnesses), and each ISR gets a "
                    "static WCET / interrupt-latency bound (HL021)")
    parser.add_argument("modules", nargs="+", metavar="MODULE[:ENTRIES]",
                        help="module source (.s) or image (.hex); "
                             "ENTRIES is a comma-separated list of "
                             "mainline entry labels (default: every "
                             "non-ISR label)")
    parser.add_argument("--isr", action="append", default=[],
                        metavar="LINE:LABEL",
                        help="register LABEL as the vector-LINE "
                             "interrupt handler (repeatable; "
                             "__vector_N / isr_* / *_isr labels are "
                             "auto-detected)")
    parser.add_argument("--latency-budget", type=lambda v: int(v, 0),
                        default=None, metavar="CYCLES",
                        help="emit HL021 when the static interrupt-"
                             "latency bound exceeds this many cycles")
    parser.add_argument("--static-data", type=lambda v: int(v, 0),
                        default=0, metavar="BYTES",
                        help="per-domain static data span size, so "
                             "modules referencing SDATA_D* symbols "
                             "assemble (multiple of 256; default 0)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("-o", "--output", default=None,
                        help="write the report here (in --format)")
    parser.add_argument("--latency-report", default=None, metavar="FILE",
                        help="write the per-ISR WCET / latency-bound "
                             "certificate here as JSON")
    parser.add_argument("--fail-on", choices=("error", "warning", "note"),
                        default="error",
                        help="exit 1 when a finding at or above this "
                             "severity exists (default: error)")
    args = parser.parse_args(argv)
    import json as json_mod

    from repro.analysis.static.cfg import RegionCFG
    from repro.analysis.static.concurrency import (
        ConcurrencyAnalysis,
        IsrInfo,
        find_isr_labels,
    )
    from repro.analysis.static.diagnostics import (
        DiagnosticsEngine,
        write_report,
    )
    from repro.asm.assembler import default_symbols
    from repro.sfi.layout import SfiLayout
    from repro.sfi.system import SfiSystem

    engine = DiagnosticsEngine()
    reports = []
    # kernel symbols so lintable modules (KERNEL_* service calls,
    # SDATA_D* spans) assemble standalone; the analysis needs no system
    try:
        layout = SfiLayout(static_data_bytes=args.static_data,
                           static_data_domains=min(
                               len(args.modules),
                               SfiLayout().ndomains - 1)
                           if args.static_data else 0)
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    kernel_symbols = SfiSystem(layout=layout).kernel_symbols()
    predefined = set(default_symbols()) | set(kernel_symbols)
    for spec in args.modules:
        path, _, entries_text = spec.partition(":")
        try:
            if path.endswith(".hex"):
                program = _load_image(path)
            else:
                program = Assembler(symbols=kernel_symbols).assemble(
                    _read_source(path), name=path)
        except (AsmError, OSError) as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return 2
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        lo, hi = program.extent()
        labels = {n: a for n, a in program.symbols.items()
                  if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
        words = dict(program.words)

        def read_word(word_addr, _words=words):
            return _words.get(word_addr, 0xFFFF)

        isrs = find_isr_labels(labels)
        taken = {i.entry for i in isrs}
        for isr_spec in args.isr:
            line_text, _, label = isr_spec.partition(":")
            try:
                line = int(line_text, 0)
                entry = labels[label]
            except (ValueError, KeyError):
                print("error: bad --isr {!r} (want LINE:LABEL with a "
                      "label of the module)".format(isr_spec),
                      file=sys.stderr)
                return 2
            isrs = [i for i in isrs if i.entry != entry and
                    i.line != line]
            isrs.append(IsrInfo(line, entry, label))
            taken.add(entry)
        entries = tuple(e for e in entries_text.split(",") if e)
        try:
            mainline = {labels[e] for e in entries} if entries \
                else set(labels.values()) - taken
        except KeyError as exc:
            print("error: unknown entry label {}".format(exc),
                  file=sys.stderr)
            return 2
        cfg = RegionCFG.build(read_word, lo * 2, (hi + 1) * 2, name=name,
                              extra_leaders=sorted(labels.values()))
        analysis = ConcurrencyAnalysis(
            cfg, mainline_entries=mainline, isrs=sorted(
                isrs, key=lambda i: i.line))
        reports.append(analysis.run(engine=engine,
                                    budget=args.latency_budget))

    analysis_doc = {"concurrency": {rep.region: rep.to_dict()
                                    for rep in reports}}
    if args.format == "text":
        text = engine.render_text()
        tail = "\n".join(rep.render() for rep in reports)
        if tail:
            text += "\n\n" + tail
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
    else:
        if args.output:
            write_report(args.output, engine, fmt=args.format,
                         analysis=analysis_doc)
        doc = engine.to_sarif() if args.format == "sarif" \
            else engine.to_dict(analysis=analysis_doc)
        print(json_mod.dumps(doc, indent=1, sort_keys=True))
    if args.output:
        print("; race report -> {}".format(args.output), file=sys.stderr)
    if args.latency_report:
        with open(args.latency_report, "w") as handle:
            json_mod.dump(
                {"schema": 1, "regions": {
                    rep.region: rep.latency.to_dict() if rep.latency
                    else None for rep in reports}},
                handle, indent=1, sort_keys=True)
        print("; latency report -> {}".format(args.latency_report),
              file=sys.stderr)
    return 1 if _findings_at_or_above(engine, args.fail_on) else 0


def cmd_opt(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-opt",
        description="proof-directed check elision: load modules with "
                    "the whole-image prover enabled, elide run-time "
                    "store checks proved redundant against the static "
                    "data spans, emit the ElisionManifest(s) and "
                    "re-lint the elided image")
    parser.add_argument("modules", nargs="+", metavar="MODULE[:EXPORTS]",
                        help="module source (.s) or image (.hex); "
                             "EXPORTS is a comma-separated export list "
                             "(default: every label)")
    parser.add_argument("--allow-io", action="append", default=[],
                        type=lambda v: int(v, 0),
                        help="whitelisted I/O address (repeatable)")
    parser.add_argument("--static-data", type=lambda v: int(v, 0),
                        default=256, metavar="BYTES",
                        help="per-domain static data span size "
                             "(multiple of 256; 0 disables; default "
                             "256)")
    parser.add_argument("--static-domains", type=int, default=None,
                        help="domains that get a span (default: one "
                             "per module)")
    parser.add_argument("-o", "--output", default=None, metavar="OUT.json",
                        help="write the manifest(s) here (module name "
                             "is inserted before the extension when "
                             "several modules elide)")
    parser.add_argument("--fail-on", choices=("error", "warning", "note"),
                        default="error",
                        help="exit 1 when the re-lint finds an issue at "
                             "or above this severity (default: error)")
    args = parser.parse_args(argv)

    from repro.analysis.static import lint_system
    from repro.asm.assembler import default_symbols
    from repro.sfi.system import SfiSystem

    static_domains = args.static_domains if args.static_domains is not None \
        else min(len(args.modules), SfiLayout().ndomains - 1)
    try:
        layout = SfiLayout(static_data_bytes=args.static_data,
                           static_data_domains=static_domains
                           if args.static_data else 0)
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    system = SfiSystem(layout=layout, allowed_io=tuple(args.allow_io))
    predefined = set(default_symbols())
    summaries = []
    try:
        for spec in args.modules:
            path, _, exports_text = spec.partition(":")
            if path.endswith(".hex"):
                program = _load_image(path)
            else:
                asm = Assembler(symbols=system.kernel_symbols())
                program = asm.assemble(_read_source(path), name=path)
            lo, hi = program.extent()
            labels = {n: a for n, a in program.symbols.items()
                      if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
            exports = tuple(e for e in exports_text.split(",") if e) \
                or tuple(sorted(labels))
            name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            module = system.load_module(program, name, exports=exports,
                                        elide=True)
            summaries.append(module)
    except (AsmError, OSError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    except (RewriteError, VerifyError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    multiple = sum(1 for m in summaries if m.manifest is not None) > 1
    for module in summaries:
        stats = module.rewrite_stats
        total = stats.get("stores", 0)
        if module.manifest is None:
            print("{}: 0/{} checked store(s) elided".format(
                module.name, total))
            continue
        manifest = module.manifest
        print("{}: {}/{} checked store(s) elided "
              "(~{} cycles/pass saved, Table 3)".format(
                  module.name, manifest.elided_checks, total,
                  manifest.elided_cycles_saved))
        for site in manifest.sites:
            print("  0x{:04x} {} [{}] ea=0x{:04x}..0x{:04x}".format(
                site.pc, site.key, site.rule, site.lo, site.hi))
        if args.output:
            path = args.output
            if multiple:
                stem, dot, ext = path.rpartition(".")
                path = "{}.{}{}{}".format(stem, module.name, dot, ext) \
                    if dot else "{}.{}".format(path, module.name)
            manifest.write(path)
            print("; manifest -> {}".format(path), file=sys.stderr)
    _model, report = lint_system(system)
    engine = report.diagnostics
    print(engine.render_text())
    return 1 if _findings_at_or_above(engine, args.fail_on) else 0


def cmd_certify(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-certify",
        description="translation validation: load modules through the "
                    "rewrite/(elide)/verify pipeline, prove the "
                    "installed flash is a sanctioned translation of "
                    "each source (HL017 on mismatch) and classify "
                    "every installed block for the planned block JIT "
                    "(HL018 notes)")
    parser.add_argument("modules", nargs="+", metavar="MODULE[:EXPORTS]",
                        help="module source (.s) or image (.hex); "
                             "EXPORTS is a comma-separated export list "
                             "(default: every label)")
    parser.add_argument("--elide", action="store_true",
                        help="run the proof-directed check-elision "
                             "pass; the resulting manifest is part of "
                             "what certification re-proves")
    parser.add_argument("--static-data", type=lambda v: int(v, 0),
                        default=0, metavar="BYTES",
                        help="per-domain static data span size "
                             "(multiple of 256; implies a span per "
                             "module; default 0)")
    parser.add_argument("--unchecked", action="store_true",
                        help="place the raw images without the "
                             "rewriter pipeline and certify them as "
                             "installed — a miscompiled or hand-"
                             "patched image fails with HL017")
    parser.add_argument("--allow-io", action="append", default=[],
                        type=lambda v: int(v, 0),
                        help="whitelisted I/O address (repeatable)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("-o", "--output", default=None,
                        help="write the diagnostics report here "
                             "(in --format)")
    parser.add_argument("--report", default=None, metavar="OUT.json",
                        help="write the JIT-readiness JSON (per-module "
                             "block classification + counts) here")
    parser.add_argument("--fail-on", choices=("error", "warning", "note"),
                        default="error",
                        help="exit 1 when a finding at or above this "
                             "severity exists (default: error)")
    args = parser.parse_args(argv)
    import json as json_mod

    from repro.analysis.static import write_report
    from repro.analysis.static.diagnostics import DiagnosticsEngine
    from repro.analysis.static.transval import validate_translation
    from repro.asm.assembler import default_symbols
    from repro.sfi.layout import SfiLayout
    from repro.sfi.system import SfiSystem

    try:
        layout = SfiLayout(static_data_bytes=args.static_data,
                           static_data_domains=min(
                               len(args.modules),
                               SfiLayout().ndomains - 1)
                           if args.static_data else 0)
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    system = SfiSystem(layout=layout, allowed_io=tuple(args.allow_io))
    predefined = set(default_symbols())
    engine = DiagnosticsEngine()
    reports = []
    try:
        for spec in args.modules:
            path, _, exports_text = spec.partition(":")
            if path.endswith(".hex"):
                program = _load_image(path)
            else:
                asm = Assembler(symbols=system.kernel_symbols())
                program = asm.assemble(_read_source(path), name=path)
            lo, hi = program.extent()
            labels = {n: a for n, a in program.symbols.items()
                      if n not in predefined and lo * 2 <= a <= hi * 2 + 1}
            exports = tuple(e for e in exports_text.split(",") if e) \
                or tuple(sorted(labels))
            name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
            if args.unchecked:
                base = system._next_load
                for word_addr, value in program.words.items():
                    system.machine.memory.write_flash_word(
                        base // 2 + word_addr - lo, value)
                system.machine.core.invalidate_decode_cache()
                end = base + (hi - lo + 1) * 2
                system._next_load = (end + 0xFF) & ~0xFF
                report = validate_translation(
                    program, system.machine.memory.read_flash_word,
                    base, end, system.layout, system.runtime.symbols,
                    exports=exports, engine=engine, region=name,
                    module=name)
            else:
                module = system.load_module(program, name,
                                            exports=exports,
                                            elide=args.elide)
                export_targets = {
                    e: system.linker.export_target(module.domain, e)
                    for e in module.exports}
                report = validate_translation(
                    program, system.machine.memory.read_flash_word,
                    module.start, module.end, system.layout,
                    system.runtime.symbols, exports=exports,
                    manifest=module.manifest,
                    export_targets=export_targets, engine=engine,
                    region=name, domain=module.domain, module=name)
                module.certification = report
            reports.append(report)
    except (AsmError, OSError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    except (RewriteError, VerifyError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    summary = {
        "schema": 1,
        "modules": [r.to_dict() for r in reports],
        "certified": all(r.ok for r in reports),
        "blocks": sum(len(r.blocks) for r in reports),
        "translatable_blocks": sum(r.translatable_blocks
                                   for r in reports),
        "untranslatable_blocks": sum(r.untranslatable_blocks
                                     for r in reports),
        "store_checks": sum(r.store_checks for r in reports),
        "semantic_proofs": sum(r.semantic_proofs for r in reports),
        "elided_sites": sum(r.elided_sites for r in reports),
    }
    if args.format == "text":
        text = engine.render_text()
        for r in reports:
            text += ("\n{}: {} — {} line(s) matched, {} checked "
                     "store(s) ({} symbolically proved), {} elided "
                     "site(s); {} block(s): {} translatable, {} "
                     "untranslatable".format(
                         r.module,
                         "certified" if r.ok else "REJECTED",
                         r.matched_lines, r.store_checks,
                         r.semantic_proofs, r.elided_sites,
                         len(r.blocks), r.translatable_blocks,
                         r.untranslatable_blocks))
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
    else:
        if args.output:
            write_report(args.output, engine, fmt=args.format,
                         analysis=summary)
        doc = engine.to_sarif() if args.format == "sarif" \
            else engine.to_dict(analysis=summary)
        print(json_mod.dumps(doc, indent=1, sort_keys=True))
    if args.report:
        with open(args.report, "w") as handle:
            json_mod.dump(summary, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("; JIT-readiness report -> {}".format(args.report),
              file=sys.stderr)
    return 1 if _findings_at_or_above(engine, args.fail_on) else 0


def cmd_fuzz(argv=None):
    parser = argparse.ArgumentParser(
        prog="harbor-fuzz",
        description="adversarial soundness campaign: generate hostile "
                    "modules, drive them through the admission "
                    "pipeline, execute the admitted ones on both "
                    "execution paths under a write oracle and report "
                    "any isolation escape")
    parser.add_argument("--system", choices=("sfi", "umpu", "both"),
                        default="both",
                        help="which enforcement system(s) to attack "
                             "(default: both)")
    parser.add_argument("--count", type=int, default=1000, metavar="N",
                        help="candidates per system (default: 1000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--start", type=int, default=0, metavar="INDEX",
                        help="first candidate index (default: 0)")
    parser.add_argument("--index", type=int, default=None,
                        metavar="INDEX",
                        help="replay exactly one candidate index "
                             "(prints its source/words and verdict)")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="per-call cycle budget (default: 20000)")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="dump escape artifacts (JSON + .asm) here")
    parser.add_argument("--json", action="store_true",
                        help="print the full stats as JSON")
    args = parser.parse_args(argv)

    import json

    from repro.soundness import Campaign, dump_escape
    from repro.soundness.fuzzer import DEFAULT_MAX_CYCLES

    kinds = ("sfi", "umpu") if args.system == "both" else (args.system,)
    max_cycles = args.max_cycles or DEFAULT_MAX_CYCLES
    escaped = False
    for kind in kinds:
        campaign = Campaign(kind, seed=args.seed, max_cycles=max_cycles)
        if args.index is not None:
            result = campaign.run_one(args.index)
            candidate = result["candidate"]
            print("# {} candidate {} (family {}, seed {})".format(
                kind, args.index, candidate.family, args.seed))
            if candidate.source:
                sys.stdout.write(candidate.source)
            else:
                for addr, word in sorted(candidate.program.words.items()):
                    print("{:04x}: {:04x}".format(addr, word))
            print("verdict: {}".format(
                "ESCAPE" if result["escape"] else
                "rejected at {}".format(result["rejected"][0])
                if "rejected" in result else
                "outcomes {}".format(result.get("outcomes"))))
        else:
            campaign.run(args.count, start=args.start)
            print("{}: {}".format(kind, campaign.stats.summary()))
        if args.json:
            print(json.dumps(campaign.stats.to_dict(), indent=2,
                             sort_keys=True, default=str))
        if campaign.stats.escapes:
            escaped = True
            for escape in campaign.stats.escapes:
                if args.artifacts:
                    path = dump_escape(args.artifacts, escape,
                                       prefix=kind + "-")
                    print("escape artifact -> {}".format(path),
                          file=sys.stderr)
                else:
                    print("ESCAPE: {}".format(
                        json.dumps(escape, default=str)[:400]),
                        file=sys.stderr)
    return 1 if escaped else 0


def main(argv=None):
    """Multiplexer: ``python -m repro.cli <tool> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    tools = {"asm": cmd_asm, "disasm": cmd_disasm,
             "rewrite": cmd_rewrite, "verify": cmd_verify,
             "run": cmd_run, "trace": cmd_trace, "profile": cmd_profile,
             "replay": cmd_replay, "explain-fault": cmd_explain_fault,
             "metrics": cmd_metrics, "lint": cmd_lint, "opt": cmd_opt,
             "certify": cmd_certify, "fuzz": cmd_fuzz, "race": cmd_race}
    if not argv or argv[0] not in tools:
        print("usage: python -m repro.cli "
              "{asm|disasm|rewrite|verify|run|trace|profile|replay|"
              "explain-fault|metrics|lint|opt|certify|fuzz|race} ...",
              file=sys.stderr)
        return 64
    return tools[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
