"""Escape triage: replayable artifacts and module minimization.

Every escape candidate the campaign flags is dumped as a pair of
files:

* ``escape-<index>-<family>.json`` — the full replay record: seed,
  index, family, generated source / word stream, the escape reasons
  (oracle records, differential diffs, forgery verdicts) and the most
  recent FlightRecorder fault reports;
* ``escape-<index>-<family>.asm`` — the module source on its own, for
  direct ``harbor-asm`` / ``harbor-rewrite`` replay.

Replay is ``harbor-fuzz --system <kind> --seed <seed> --index
<index>`` — candidate generation is a pure function of (seed, index).

:func:`minimize_source` is a greedy line-deletion reducer (ddmin-lite)
used to shrink an escaping module to the smallest source that still
trips the predicate.
"""

import json
import os


def dump_escape(directory, escape, prefix="", reports=None):
    """Write one escape record; returns the JSON artifact path.

    *escape* is the dict the campaign collects in ``stats.escapes``
    (``candidate`` / ``reasons`` / ``forgery`` / ``outcomes``).
    *reports* takes FlightRecorder-style reports with ``to_dict()``;
    when None the process-recent report ring is used.
    """
    os.makedirs(directory, exist_ok=True)
    candidate = escape.get("candidate", {})
    stem = "{}escape-{:06d}-{}".format(
        prefix, candidate.get("index", 0),
        candidate.get("family", "unknown"))
    if reports is None:
        from repro.trace.forensics import RECENT_REPORTS
        reports = list(RECENT_REPORTS)
    payload = dict(escape)
    payload["fault_reports"] = [r.to_dict() for r in reports]
    path = os.path.join(directory, stem + ".json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    source = candidate.get("source")
    if source:
        with open(os.path.join(directory, stem + ".asm"), "w") as fh:
            fh.write(source)
    return path


def minimize_source(source, still_fails, max_probes=2000):
    """Greedy delta-debugging over source lines.

    Repeatedly deletes line chunks (halving the chunk size) while
    ``still_fails(candidate_source)`` keeps returning True.  The
    predicate must treat *any* error as "does not fail the same way"
    (return False) so minimization never replaces one bug with
    another.  Returns the minimized source (always still failing).
    """
    lines = [ln for ln in source.splitlines() if ln.strip()]
    probes = 0
    changed = True
    while changed and probes < max_probes:
        changed = False
        chunk = max(1, len(lines) // 2)
        while chunk >= 1 and probes < max_probes:
            i = 0
            while i < len(lines) and probes < max_probes:
                trial = lines[:i] + lines[i + chunk:]
                probes += 1
                if trial and still_fails("\n".join(trial) + "\n"):
                    lines = trial
                    changed = True
                else:
                    i += chunk
            chunk //= 2
    return "\n".join(lines) + "\n"
