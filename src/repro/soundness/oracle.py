"""Write oracle: differential validation of every landed store.

The oracle is a bus interposer appended *after* the protection units,
which makes its position semantically meaningful:

* a write the hardware MMC vetoes raises before reaching the oracle, so
  the oracle's log contains exactly the writes that **landed**;
* a passing checked store still traverses the oracle (the MMC's
  verdict is a stall, not a claim), as does every unchecked write;
* the safe-stack unit's redirected ``RET_PUSH`` bytes are claimed
  before the oracle sees them — safe-stack traffic is trusted hardware
  state, not module-observable memory.

Every landed write is replayed against the golden store-permission
model (:class:`~repro.core.checker.WriteChecker`, the reference both
enforcement paths are unit-tested against).  A landed write that the
golden model rejects is an **escape**: the enforcement layer admitted a
store the model forbids.

Scope per system:

* **UMPU** (:class:`UmpuWriteOracle`): purely domain-based.  The
  hardware checks every ``DATA_STORE``/``STACK_PUSH`` by an untrusted
  domain no matter where the code lives, so any such write reaching
  the oracle that the model rejects is an escape.
* **SFI** (:class:`SfiWriteOracle`): PC-based.  The software runtime's
  check stubs execute with the *module's* ``cur_dom`` but are trusted
  code — they legitimately update bookkeeping (trusted cells, the
  safe stack, memory-map entries, heap headers) that the golden model
  would reject for the module itself.  The invariant under test is "a
  verified+linted module never writes outside its domain", so the
  oracle checks writes whose PC lies inside a loaded module's code
  span: elided raw stores, smuggled store encodings, module pushes and
  module ``out`` instructions.  (Stub-vs-golden-model equivalence is
  pinned separately by the checker unit tests.)

The oracle's log doubles as the write-log for fast-loop vs ``step()``
differential comparison: bus interposers do not affect the core's
run-loop selection, so the same oracle observes both paths.
"""

from repro.core.checker import CheckContext, WriteChecker
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import ProtectionFault
from repro.sim.bus import BusInterposer
from repro.sim.events import AccessKind


class EscapeRecord:
    """One landed write the golden model rejects."""

    __slots__ = ("pc", "addr", "value", "kind", "domain", "rule")

    def __init__(self, pc, addr, value, kind, domain, rule):
        self.pc = pc            # flash byte address of the storing instr
        self.addr = addr
        self.value = value
        self.kind = kind        # AccessKind name
        self.domain = domain
        self.rule = rule        # golden-model fault class name / reason

    def to_dict(self):
        return {"pc": self.pc, "addr": self.addr, "value": self.value,
                "kind": self.kind, "domain": self.domain,
                "rule": self.rule}

    def __repr__(self):
        return ("EscapeRecord(pc=0x{:05x}, addr=0x{:04x}, kind={}, "
                "domain={}, rule={})".format(self.pc, self.addr,
                                             self.kind, self.domain,
                                             self.rule))


class WriteOracle(BusInterposer):
    """Base oracle: logs every landed write, collects escapes.

    Subclasses implement :meth:`_check` to decide whether a write is in
    scope and whether the golden model admits it.
    """

    name = "write-oracle"

    def __init__(self):
        #: (pc_byte, addr, value, kind_name, domain) per landed write
        self.log = []
        self.escapes = []

    def clear(self):
        self.log = []
        self.escapes = []

    # ------------------------------------------------------------------
    def on_write(self, bus, addr, value, kind):
        pc = self._pc_byte()
        domain = self._domain()
        self.log.append((pc, addr, value & 0xFF, kind.name, domain))
        if domain != TRUSTED_DOMAIN:
            rule = self._check(pc, addr, kind, domain)
            if rule is not None:
                self.escapes.append(EscapeRecord(
                    pc, addr, value & 0xFF, kind.name, domain, rule))
        return None

    # ------------------------------------------------------------------
    def _golden_reject(self, addr, domain):
        """Run the golden model; the fault class name on rejection,
        None when the store is admissible."""
        checker = WriteChecker(CheckContext(
            self._memmap(), domain, self._stack_bound()))
        try:
            checker.check(addr, domain)
            return None
        except ProtectionFault as fault:
            return type(fault).__name__

    # --- subclass interface -------------------------------------------
    def _pc_byte(self):
        raise NotImplementedError

    def _domain(self):
        raise NotImplementedError

    def _memmap(self):
        raise NotImplementedError

    def _stack_bound(self):
        raise NotImplementedError

    def _check(self, pc, addr, kind, domain):
        """Return an escape reason, or None if the write is fine."""
        raise NotImplementedError


class SfiWriteOracle(WriteOracle):
    """Oracle for the software-only system: module-PC writes only."""

    def __init__(self, system, allowed_io=()):
        super().__init__()
        self.system = system
        self.layout = system.layout
        self.allowed_io = frozenset(allowed_io)

    def _pc_byte(self):
        return self.system.machine.core.pc * 2

    def _domain(self):
        return self.system.machine.memory.data[self.layout.cur_dom]

    def _memmap(self):
        return self.system.memmap

    def _stack_bound(self):
        mem = self.system.machine.memory
        cell = self.layout.stack_bound
        return mem.data[cell] | (mem.data[cell + 1] << 8)

    def _in_module(self, pc):
        for module in self.system.modules.values():
            if module.start <= pc < module.end:
                return True
        return False

    def _check(self, pc, addr, kind, domain):
        if not self._in_module(pc):
            return None             # trusted runtime/jump-table code
        if kind is AccessKind.IO_WRITE:
            io_addr = addr - 0x20
            if io_addr in self.allowed_io:
                return None
            return "ForbiddenIoWrite"
        return self._golden_reject(addr, domain)


class UmpuWriteOracle(WriteOracle):
    """Oracle for the hardware system: every untrusted checked-kind
    write must satisfy the golden model, no PC exemptions."""

    #: the kinds the MMC contract covers (mirrors mmc._CHECKED_KINDS)
    CHECKED_KINDS = (AccessKind.DATA_STORE, AccessKind.STACK_PUSH)

    def __init__(self, machine):
        super().__init__()
        self.machine = machine

    def _pc_byte(self):
        return self.machine.core.pc * 2

    def _domain(self):
        return self.machine.regs.cur_domain

    def _memmap(self):
        return self.machine.memmap

    def _stack_bound(self):
        return self.machine.regs.stack_bound

    def _check(self, pc, addr, kind, domain):
        if kind not in self.CHECKED_KINDS:
            return None
        if not self.machine.regs.enabled:
            return None             # protection explicitly disabled
        return self._golden_reject(addr, domain)
