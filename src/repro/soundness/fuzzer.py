"""Seeded hostile-module fuzzer for the isolation claims.

The generator emits adversarial modules in four families:

* ``store-boundary`` — direct/indirect/displacement stores, fill loops
  and masked-index idioms aimed exactly at protection edges (trusted
  cells, memory-map table, domain boundaries, static-span edges, the
  safe stack, the run-time stack, the I/O window);
* ``control-flow`` — indirect calls/jumps into and around the jump
  table, absolute calls into the runtime, bounded recursion, skip
  tricks and forbidden opcodes;
* ``encoding`` — hand-built word streams (via the assembler's own
  encoder): raw store encodings, truncated 32-bit instructions, stores
  smuggled as the trailing word of a ``call``, and plain random words;
* ``manifest-forgery`` (SFI only) — a benign elidable module loaded
  with ``elide=True``, whose manifest is then mutated with every attack
  in :data:`~repro.analysis.static.elision.MANIFEST_ATTACKS` and
  re-presented to the verifier and the install-time re-prover.  Every
  mutation is hostile by construction, so *any* acceptance is an
  escape;
* ``jump-table-abuse`` — computed control flow aimed squarely at the
  cross-domain jump table: slot midpoints (the trailing word of a
  trampoline ``jmp``), foreign-domain pages, one-past-the-end, direct
  ``call``/``jmp`` into table words, and Z values derived
  arithmetically at run time so no static pass can resolve the target.

The campaign drives each candidate through the full admission pipeline
(rewrite → verify → lint → elide for SFI; raw load for UMPU), executes
the admitted ones on **both** execution paths — the fast run loop and
the fully-instrumented ``step()`` path — under a last-in-chain
:class:`~repro.soundness.oracle.WriteOracle`, and flags:

* **oracle escapes** — a landed module write the golden model rejects;
* **differential mismatches** — the two paths disagree on the write
  log, the call outcomes, or the final machine state;
* **forgery acceptances** — a corrupted manifest that re-proves.

Machine state is restored from a post-boot snapshot between candidates
(and from a post-load snapshot between the two execution paths), so a
campaign is one system construction plus O(1) state per candidate.

Determinism: candidate *i* of seed *s* is generated from
``random.Random("s:i")`` — replaying a single index reproduces the
exact module.
"""

import random

from repro.asm import AsmError, Program, assemble
from repro.core.faults import ProtectionFault
from repro.sfi.layout import SfiLayout
from repro.sfi.rewriter import RewriteError
from repro.sfi.system import SfiSystem
from repro.sfi.verifier import VerifyError
from repro.sim.errors import SimError
from repro.soundness.oracle import SfiWriteOracle, UmpuWriteOracle
from repro.trace import uninstall
from repro.umpu.system import UmpuSystem

#: generation families; manifest-forgery is meaningful only where there
#: is a manifest (the software system)
FAMILIES = ("store-boundary", "control-flow", "encoding",
            "manifest-forgery", "jump-table-abuse")

#: default per-call cycle budget — generated modules are tiny, so this
#: is pure runaway containment (icall loops, erased-flash execution)
DEFAULT_MAX_CYCLES = 20_000


class Candidate:
    """One generated hostile module."""

    __slots__ = ("index", "family", "seed", "name", "source", "program",
                 "exports", "calls", "elide", "attack", "meta")

    def __init__(self, index, family, seed, name, source=None,
                 program=None, exports=("main",),
                 calls=(("main", ()),), elide=False, attack=None,
                 meta=None):
        self.index = index
        self.family = family
        self.seed = seed
        self.name = name
        self.source = source        # assembly text (None for raw words)
        self.program = program      # pre-built Program (encoding family)
        self.exports = exports
        self.calls = calls          # ((export, args), ...)
        self.elide = elide
        self.attack = attack        # manifest-forgery attack kind
        self.meta = meta or {}

    def to_dict(self):
        return {
            "index": self.index, "family": self.family,
            "seed": self.seed, "name": self.name, "source": self.source,
            "words": (None if self.program is None
                      else {str(k): v
                            for k, v in sorted(self.program.words.items())}),
            "exports": list(self.exports),
            "calls": [[e, list(a)] for e, a in self.calls],
            "elide": self.elide, "attack": self.attack,
            "meta": self.meta,
        }


class HostileModuleGenerator:
    """Seeded generator of adversarial modules.

    ``generate(i)`` is a pure function of ``(seed, i)``; the family
    rotates round-robin so every campaign length covers all families
    evenly.
    """

    def __init__(self, seed, layout, symbols=None):
        self.seed = seed
        self.layout = layout
        #: symbols module sources assemble against (KERNEL_*, JT_*)
        self.symbols = dict(symbols or {})
        self._lib = self._build_word_library()

    def families_for(self, kind):
        if kind == "sfi":
            return FAMILIES
        # hardware has no verifier and no manifests to forge; spend the
        # slot on the jump table the CFC guards
        return ("store-boundary", "control-flow", "encoding",
                "jump-table-abuse")

    def generate(self, index, kind="sfi"):
        families = self.families_for(kind)
        family = families[index % len(families)]
        rng = random.Random("{}:{}".format(self.seed, index))
        name = "fz{}".format(index)
        if family == "store-boundary":
            source = self._gen_store_boundary(rng, index)
            return Candidate(index, family, self.seed, name, source=source)
        if family == "control-flow":
            source = self._gen_control_flow(rng, index, kind)
            return Candidate(index, family, self.seed, name, source=source)
        if family == "encoding":
            program = self._gen_encoding(rng)
            return Candidate(index, family, self.seed, name,
                             program=program)
        if family == "jump-table-abuse":
            source = self._gen_jump_table_abuse(rng, index)
            return Candidate(index, family, self.seed, name, source=source)
        source = self._gen_elidable(rng)
        attack = rng.choice(_manifest_attacks())
        return Candidate(index, family, self.seed, name, source=source,
                         elide=True, attack=attack)

    # --- address corpus ----------------------------------------------
    def _addresses(self, rng):
        """Protection-edge addresses plus a few random ones."""
        lay = self.layout
        pool = [
            0x0000, 0x001F, 0x0020, 0x005E,             # regs / I/O
            lay.cur_dom, lay.fault_code, lay.stack_bound,
            lay.memmap_table,
            lay.memmap_table + rng.randrange(1, 64),
            lay.prot_bottom - 1, lay.prot_bottom,
            lay.prot_bottom + rng.randrange(8),
            lay.heap_dynamic_end - 1, lay.heap_dynamic_end,
            lay.heap_end - 1, lay.heap_end,
            lay.prot_top, lay.prot_top + 1,
            lay.safe_stack_base + rng.randrange(0x40),
            lay.safe_stack_limit - 1,
            lay.prot_top + 1 + rng.randrange(0x200),    # run-time stack
            0x0FFF,
            rng.randrange(0x1000),
        ]
        for domain in range(max(1, lay.static_data_domains)):
            span = lay.static_data_span(domain)
            if span:
                lo, hi = span
                pool += [lo - 1, lo, lo + rng.randrange(hi - lo),
                         hi - 1, hi]
        return pool

    @staticmethod
    def _load_ptr(reg_lo, addr):
        return ["    ldi r{}, 0x{:02x}".format(reg_lo, addr & 0xFF),
                "    ldi r{}, 0x{:02x}".format(reg_lo + 1,
                                               (addr >> 8) & 0xFF)]

    # --- store-boundary ----------------------------------------------
    def _gen_store_boundary(self, rng, index):
        addrs = self._addresses(rng)
        lines = ["main:"]
        for i in range(rng.randrange(2, 6)):
            idiom = rng.choice(("sts", "st_x", "st_post", "st_pre",
                                "std", "fill", "mask", "push"))
            addr = rng.choice(addrs) & 0xFFFF
            val = rng.randrange(256)
            if idiom == "sts":
                lines += ["    ldi r18, {}".format(val),
                          "    sts 0x{:04x}, r18".format(addr)]
            elif idiom in ("st_x", "st_post", "st_pre"):
                lines += self._load_ptr(26, addr)
                lines.append("    ldi r18, {}".format(val))
                lines.append({"st_x": "    st X, r18",
                              "st_post": "    st X+, r18",
                              "st_pre": "    st -X, r18"}[idiom])
            elif idiom == "std":
                disp = rng.randrange(64)
                lines += self._load_ptr(28, (addr - disp) & 0xFFFF)
                lines += ["    ldi r18, {}".format(val),
                          "    std Y+{}, r18".format(disp)]
            elif idiom == "fill":
                count = rng.choice((4, 8, 16, 32))
                start = (addr - rng.randrange(count)) & 0xFFFF
                label = "fill{}_{}".format(index, i)
                lines += self._load_ptr(26, start)
                lines += ["    ldi r20, {}".format(count),
                          "    ldi r18, {}".format(val),
                          "{}:".format(label),
                          "    st X+, r18",
                          "    dec r20",
                          "    brne {}".format(label)]
            elif idiom == "mask":
                mask = rng.choice((0x07, 0x0F, 0x1F, 0x3F, 0x7F, 0xFF))
                lines += ["    ldi r26, 0x{:02x}".format(rng.randrange(256)),
                          "    andi r26, 0x{:02x}".format(mask),
                          "    ldi r27, 0x{:02x}".format((addr >> 8) & 0xFF),
                          "    ldi r18, {}".format(val),
                          "    st X, r18"]
            else:   # push/pop pair near the stack bound
                lines += ["    ldi r18, {}".format(val),
                          "    push r18",
                          "    pop r19"]
        if rng.random() < 0.4 and "KERNEL_MALLOC" in self.symbols:
            # allocate a small buffer and poke just past its end
            over = rng.choice((0, 1, 8, 32))
            lines += ["    ldi r24, 8", "    ldi r25, 0",
                      "    call KERNEL_MALLOC",
                      "    movw r26, r24",
                      "    adiw r26, {}".format(over),
                      "    ldi r18, 0xA5",
                      "    st X, r18"]
        lines.append("    ret")
        return "\n".join(lines) + "\n"

    # --- control-flow ------------------------------------------------
    def _gen_control_flow(self, rng, index, kind):
        lay = self.layout
        lines = ["main:"]
        for i in range(rng.randrange(1, 4)):
            choice = rng.choice(("icall", "call_jt", "call_wild",
                                 "recurse", "loop", "skip", "forbidden"))
            if choice == "icall":
                target = rng.choice((
                    lay.jt_base,
                    lay.jt_base + 4 * rng.randrange(
                        lay.ndomains * (lay.jt_page_bytes // 4)),
                    lay.jt_base + 2,                  # entry midpoint
                    lay.jt_end,
                    0x0000,
                    rng.randrange(0, 0x4000) & ~1))
                lines += self._load_ptr(30, (target // 2) & 0xFFFF)
                lines.append("    icall")
            elif choice == "call_jt" and "KERNEL_NOOP" in self.symbols:
                lines.append("    call KERNEL_NOOP")
            elif choice == "call_wild":
                # absolute call outside the module: the verifier must
                # reject it; the hardware tracker must confine it
                target = rng.choice((0x0000, 0x0100, lay.jt_base - 2,
                                     lay.jt_end + 0x100))
                lines.append("    call 0x{:04x}".format(target))
            elif choice == "recurse":
                depth = rng.randrange(2, 12)
                label = "rec{}_{}".format(index, i)
                done = "done{}_{}".format(index, i)
                lines += ["    ldi r20, {}".format(depth),
                          "{}:".format(label),
                          "    dec r20",
                          "    breq {}".format(done),
                          "    rcall {}".format(label),
                          "{}:".format(done)]
            elif choice == "loop":
                count = rng.randrange(2, 40)
                label = "lp{}_{}".format(index, i)
                lines += ["    ldi r20, {}".format(count),
                          "{}:".format(label),
                          "    dec r20",
                          "    brne {}".format(label)]
            elif choice == "skip":
                skipped = "sk{}_{}".format(index, i)
                lines += ["    cpse r18, r18",
                          "    rjmp {}".format(skipped),
                          "{}:".format(skipped)]
            else:
                lines.append("    " + rng.choice(
                    ("reti", "sleep", "wdr", "break", "cli", "sei",
                     "out 0x3f, r18")))
        lines.append("    ret")
        return "\n".join(lines) + "\n"

    # --- jump-table-abuse ---------------------------------------------
    def _gen_jump_table_abuse(self, rng, index):
        """Aim computed control flow at the jump table itself.

        Unlike the broad ``control-flow`` family, every transfer here
        targets the table: slot midpoints (executing the trailing word
        of a trampoline ``jmp`` as an instruction), pages belonging to
        other domains, the bytes just before/past the table, direct
        ``call``/``jmp`` into table words, and Z pointers computed from
        a masked run-time value so the target is statically opaque.
        Any transfer that runs table words as module code or reaches a
        foreign domain's trampoline un-checked is an escape."""
        lay = self.layout
        slots = lay.ndomains * (lay.jt_page_bytes // 4)
        lines = ["main:"]
        for _ in range(rng.randrange(1, 4)):
            choice = rng.choice(("midpoint", "foreign_page", "computed",
                                 "call_table", "jmp_table", "edge"))
            if choice == "midpoint":
                # second word of a trampoline entry
                target = lay.jt_base + 4 * rng.randrange(slots) + 2
                lines += self._load_ptr(30, (target // 2) & 0xFFFF)
                lines.append("    " + rng.choice(("icall", "ijmp")))
            elif choice == "foreign_page":
                page = rng.randrange(lay.ndomains)
                target = (lay.jt_base + page * lay.jt_page_bytes
                          + 4 * rng.randrange(lay.jt_page_bytes // 4))
                lines += self._load_ptr(30, (target // 2) & 0xFFFF)
                lines.append("    icall")
            elif choice == "computed":
                # Z = jt base + masked run-time offset: statically opaque
                mask = rng.choice((0x03, 0x07, 0x0F, 0x3F, 0xFF))
                lines += self._load_ptr(30, (lay.jt_base // 2) & 0xFFFF)
                lines += ["    ldi r20, 0x{:02x}".format(rng.randrange(256)),
                          "    andi r20, 0x{:02x}".format(mask),
                          "    ldi r21, 0",
                          "    add r30, r20",
                          "    adc r31, r21",
                          "    " + rng.choice(("icall", "ijmp"))]
            elif choice == "call_table":
                target = (lay.jt_base + 4 * rng.randrange(slots)
                          + rng.choice((0, 2)))
                lines.append("    call 0x{:04x}".format(target & 0xFFFF))
            elif choice == "jmp_table":
                # one-way jump into the table; nothing after it runs
                target = (lay.jt_base + 4 * rng.randrange(slots)
                          + rng.choice((0, 2)))
                lines.append("    jmp 0x{:04x}".format(target & 0xFFFF))
                break
            else:   # edge: just before the table / at and past its end
                target = rng.choice((lay.jt_base - 2, lay.jt_end,
                                     lay.jt_end + 2))
                lines += self._load_ptr(30, (target // 2) & 0xFFFF)
                lines.append("    " + rng.choice(("icall", "ijmp")))
        lines.append("    ret")
        return "\n".join(lines) + "\n"

    # --- encoding -----------------------------------------------------
    def _build_word_library(self):
        """Assemble one-instruction snippets into raw encodings, so the
        word streams this family emits are real machine code."""
        lib = {}
        for name, src in (
                ("st_x", "st X, r18"),
                ("st_xp", "st X+, r18"),
                ("sts_bound", "sts 0x{:04x}, r18".format(
                    self.layout.stack_bound)),
                ("sts_memmap", "sts 0x{:04x}, r18".format(
                    self.layout.memmap_table)),
                ("std_y", "std Y+9, r18"),
                ("push", "push r18"),
                ("pop", "pop r18"),
                ("ret", "ret"),
                ("nop", "nop"),
                ("ldi_xl", "ldi r26, 0x61"),
                ("ldi_xh", "ldi r27, 0x00"),
                ("ldi_val", "ldi r18, 0x5a"),
                ("icall", "icall"),
                ("ijmp", "ijmp"),
                ("break", "break"),
                ("out_sreg", "out 0x3f, r18"),
                ("in_sreg", "in r18, 0x3f"),
                ("call0", "call 0x0000"),
                ("jmp0", "jmp 0x0000"),
                ("movw", "movw r26, r24"),
        ):
            prog = assemble(src + "\n")
            lib[name] = tuple(prog.words[w] for w in sorted(prog.words))
        return lib

    def _gen_encoding(self, rng):
        words = []
        for name in ("ldi_xl", "ldi_xh", "ldi_val"):
            words += self._lib[name]
        names = sorted(self._lib)
        for _ in range(rng.randrange(3, 10)):
            roll = rng.random()
            if roll < 0.55:
                seq = self._lib[rng.choice(names)]
                if len(seq) == 2 and rng.random() < 0.3:
                    words.append(seq[0])    # truncated 32-bit prefix
                else:
                    words.extend(seq)
            elif roll < 0.75:
                words.append(rng.randrange(0x10000))
            else:
                # a store encoding smuggled as a call's trailing word
                words.append(self._lib["call0"][0])
                words.extend(self._lib[rng.choice(
                    ("st_x", "st_xp", "push"))])
        if rng.random() < 0.9:
            words.extend(self._lib["ret"])
        return Program(words={i: w & 0xFFFF for i, w in enumerate(words)},
                       symbols={"main": 0},
                       source_name="<hostile-words>")

    # --- manifest-forgery (benign elidable module) --------------------
    def _gen_elidable(self, rng):
        span = self.layout.static_data_span(0)
        if span is None:
            raise ValueError("manifest-forgery needs a layout with "
                             "static data spans")
        lo, hi = span
        lines = ["main:"]
        for _ in range(rng.randrange(2, 6)):
            addr = lo + rng.randrange(hi - lo)
            val = rng.randrange(256)
            if rng.random() < 0.5:
                lines += ["    ldi r18, {}".format(val),
                          "    sts 0x{:04x}, r18".format(addr)]
            else:
                # page-pinned masked index: stays inside the span page
                lines += ["    ldi r26, 0x{:02x}".format(rng.randrange(256)),
                          "    ldi r27, 0x{:02x}".format((lo >> 8) & 0xFF),
                          "    ldi r18, {}".format(val),
                          "    st X, r18"]
        lines.append("    ret")
        return "\n".join(lines) + "\n"


def _manifest_attacks():
    from repro.analysis.static.elision import MANIFEST_ATTACKS
    return MANIFEST_ATTACKS


class CampaignStats:
    """Aggregate campaign outcome counters."""

    def __init__(self):
        self.total = 0
        self.rejected = {}      # admission stage -> count
        self.outcomes = {}      # outcome label -> count
        self.families = {}      # family -> count
        self.escapes = []       # escape dicts (see Campaign._escape)

    def _bump(self, table, key):
        table[key] = table.get(key, 0) + 1

    @property
    def executed(self):
        return self.total - sum(self.rejected.values())

    def to_dict(self):
        return {"total": self.total,
                "executed": self.executed,
                "rejected": dict(sorted(self.rejected.items())),
                "outcomes": dict(sorted(self.outcomes.items())),
                "families": dict(sorted(self.families.items())),
                "escapes": self.escapes}

    def summary(self):
        return ("{} candidates: {} executed, {} rejected "
                "({}), {} escapes".format(
                    self.total, self.executed,
                    sum(self.rejected.values()),
                    ", ".join("{} {}".format(v, k)
                              for k, v in sorted(self.rejected.items()))
                    or "none",
                    len(self.escapes)))


class Campaign:
    """Run hostile candidates against one system, differentially."""

    def __init__(self, kind="sfi", seed=0, max_cycles=DEFAULT_MAX_CYCLES,
                 layout=None, allowed_io=()):
        if kind not in ("sfi", "umpu"):
            raise ValueError("kind must be 'sfi' or 'umpu'")
        self.kind = kind
        self.seed = seed
        self.max_cycles = max_cycles
        if layout is None:
            # static spans give the elision prover (and so the forgery
            # family) something to prove
            layout = SfiLayout(static_data_bytes=256,
                               static_data_domains=2)
        self.layout = layout
        if kind == "sfi":
            self.system = SfiSystem(layout, allowed_io=allowed_io)
            self.oracle = SfiWriteOracle(self.system,
                                         allowed_io=allowed_io)
        else:
            self.system = UmpuSystem(layout)
            self.oracle = UmpuWriteOracle(self.system.machine)
        self.machine = self.system.machine
        # appended last: the oracle sees exactly the writes that land
        self.machine.bus.add_interposer(self.oracle)
        self.base = self.system.snapshot()
        self.generator = HostileModuleGenerator(
            seed, layout, self.system.kernel_symbols())
        self.stats = CampaignStats()

    # ------------------------------------------------------------------
    def run(self, count, start=0, on_escape=None):
        """Run ``count`` candidates; returns the stats object."""
        for index in range(start, start + count):
            result = self.run_one(index)
            if result.get("escape") and on_escape is not None:
                on_escape(result)
        return self.stats

    def run_one(self, index):
        candidate = self.generator.generate(index, self.kind)
        stats = self.stats
        stats.total += 1
        stats._bump(stats.families, candidate.family)
        self.system.restore(self.base)
        self.oracle.clear()

        result = {"index": index, "family": candidate.family,
                  "candidate": candidate, "escape": False}
        try:
            program = candidate.program
            if program is None:
                program = assemble(candidate.source,
                                   name=candidate.name,
                                   symbols=dict(self.generator.symbols))
            module = self._load(program, candidate)
        except AsmError as err:
            stats._bump(stats.rejected, "assemble")
            result["rejected"] = ("assemble", str(err))
            return result
        except RewriteError as err:
            stats._bump(stats.rejected, "rewrite")
            result["rejected"] = ("rewrite", str(err))
            return result
        except VerifyError as err:
            stats._bump(stats.rejected, "verify")
            result["rejected"] = ("verify", str(err))
            return result

        if candidate.family == "manifest-forgery":
            self._forgery_check(candidate, module, result)

        post = self.system.snapshot()
        fast = self._execute(candidate)
        self.system.restore(post)
        self.oracle.clear()
        self.machine.attach_trace()
        try:
            step = self._execute(candidate)
        finally:
            uninstall(self.machine)

        self._judge(candidate, fast, step, result)
        return result

    # ------------------------------------------------------------------
    def _load(self, program, candidate):
        if self.kind == "sfi":
            return self.system.load_module(
                program, candidate.name, exports=candidate.exports,
                elide=candidate.elide)
        return self.system.load_module(program, candidate.name,
                                       exports=candidate.exports)

    def _execute(self, candidate):
        """Call every export once; faults are contained + recovered."""
        outcomes = []
        for export, call_args in candidate.calls:
            try:
                ret, _cycles = self.system.call_export(
                    candidate.name, export, *call_args,
                    max_cycles=self.max_cycles)
                outcomes.append(("ok", ret))
            except ProtectionFault as fault:
                outcomes.append(("fault", type(fault).__name__))
                self.system.recover()
            except SimError as err:
                outcomes.append(("sim", type(err).__name__))
                self.system.recover()
        return {"outcomes": outcomes,
                "log": list(self.oracle.log),
                "escapes": list(self.oracle.escapes),
                "state": self._state_signature()}

    def _state_signature(self):
        core = self.machine.core
        return (core.pc, core.cycles, core.instret, core.halted,
                bytes(self.machine.memory.data))

    def _judge(self, candidate, fast, step, result):
        stats = self.stats
        reasons = []
        for label, run in (("fast", fast), ("step", step)):
            for record in run["escapes"]:
                reasons.append({"kind": "oracle", "path": label,
                                "record": record.to_dict()})
        if fast["outcomes"] != step["outcomes"]:
            reasons.append({"kind": "differential", "what": "outcomes",
                            "fast": fast["outcomes"],
                            "step": step["outcomes"]})
        if fast["log"] != step["log"]:
            reasons.append({"kind": "differential", "what": "write-log",
                            "fast_len": len(fast["log"]),
                            "step_len": len(step["log"]),
                            "first_diff": _first_diff(fast["log"],
                                                      step["log"])})
        if fast["state"] != step["state"]:
            reasons.append({"kind": "differential", "what": "state",
                            "detail": _state_diff(fast["state"],
                                                  step["state"])})
        result["outcomes"] = fast["outcomes"]
        if reasons or result.get("forgery_accepted"):
            result["escape"] = True
            result["reasons"] = reasons
            stats._bump(stats.outcomes, "escape")
            stats.escapes.append(self._escape(candidate, result))
        elif any(kind != "ok" for kind, _ in fast["outcomes"]):
            stats._bump(stats.outcomes, "contained")
        else:
            stats._bump(stats.outcomes, "clean")

    def _escape(self, candidate, result):
        return {"candidate": candidate.to_dict(),
                "reasons": result.get("reasons", []),
                "forgery": result.get("forgery"),
                "outcomes": result.get("outcomes")}

    # ------------------------------------------------------------------
    def _forgery_check(self, candidate, module, result):
        """Mutate the installed module's manifest and re-present it to
        both acceptance layers.  Acceptance anywhere is an escape."""
        from repro.analysis.static.elision import (
            corrupt_manifest,
            verify_manifest,
        )
        stats = self.stats
        if module.manifest is None:
            stats._bump(stats.outcomes, "no-manifest")
            result["forgery"] = {"attack": candidate.attack,
                                 "manifest": False}
            return
        rng = random.Random("{}:{}:forge".format(self.seed,
                                                 candidate.index))
        forged = corrupt_manifest(module.manifest, candidate.attack, rng)
        read = self.machine.memory.read_flash_word
        entries = sorted(
            self.system.linker._by_name[(module.domain, name)].target
            for name in module.exports)
        problems = verify_manifest(read, self.layout,
                                   self.system.runtime.symbols, forged,
                                   entries=entries)
        view = Program(words={w: read(w)
                              for w in range(module.start // 2,
                                             module.end // 2)})
        try:
            self.system.verifier.verify(view, module.start, module.end,
                                        manifest=forged)
            verifier_rejected = False
        except VerifyError:
            verifier_rejected = True
        reprover_rejected = bool(problems)
        result["forgery"] = {
            "attack": candidate.attack,
            "manifest": True,
            "reprover_rejected": reprover_rejected,
            "verifier_rejected": verifier_rejected,
            "problems": [m for m, _a in problems],
        }
        # the re-prover is the system's final gate; a forged manifest it
        # accepts would let raw stores through un-re-proved
        if not reprover_rejected:
            result["forgery_accepted"] = True


def _first_diff(a, b):
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return {"at": i, "fast": x, "step": y}
    return {"at": min(len(a), len(b)), "fast": None, "step": None}


def _state_diff(a, b):
    names = ("pc", "cycles", "instret", "halted")
    out = {}
    for name, x, y in zip(names, a, b):
        if x != y:
            out[name] = {"fast": x, "step": y}
    da, db = a[4], b[4]
    if da != db:
        addrs = [i for i in range(min(len(da), len(db)))
                 if da[i] != db[i]]
        out["data"] = {"differing_addrs": addrs[:16],
                       "count": len(addrs)}
    return out
