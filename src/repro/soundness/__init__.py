"""repro.soundness — adversarial validation of the isolation claims.

The verifier, harbor-lint and the elision prover are load-bearing
security claims: the paper's whole point is that a verified module
*cannot* write outside its domain.  This package attacks those claims
at scale instead of assuming them:

* :class:`~repro.soundness.oracle.WriteOracle` — a last-in-chain bus
  interposer that replays every *landed* write against the golden
  store-permission model (:class:`~repro.core.checker.WriteChecker`)
  and records any untrusted module write the model rejects as an
  **escape**;
* :class:`~repro.soundness.fuzzer.HostileModuleGenerator` /
  :class:`~repro.soundness.fuzzer.Campaign` — a seeded generator of
  adversarial modules (store-boundary idioms, hostile control flow,
  hand-crafted encodings, forged/stale elision manifests) driven
  through the full admission pipeline and executed on both the fast
  loop and the instrumented ``step()`` path, differentially;
* :mod:`~repro.soundness.triage` — every escape candidate auto-dumps a
  replay seed, the (minimized) module source and the FlightRecorder
  fault reports as a JSON artifact.

CLI: ``python -m repro.cli fuzz`` / ``harbor-fuzz``; docs in
``docs/soundness.md``.
"""

from repro.soundness.oracle import EscapeRecord, SfiWriteOracle, \
    UmpuWriteOracle, WriteOracle
from repro.soundness.fuzzer import Campaign, CampaignStats, Candidate, \
    HostileModuleGenerator, FAMILIES
from repro.soundness.triage import dump_escape, minimize_source

__all__ = [
    "WriteOracle",
    "SfiWriteOracle",
    "UmpuWriteOracle",
    "EscapeRecord",
    "HostileModuleGenerator",
    "Candidate",
    "Campaign",
    "CampaignStats",
    "FAMILIES",
    "dump_escape",
    "minimize_source",
]
