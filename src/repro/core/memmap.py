"""The Memory Map: block-granular ownership/layout table (paper §2).

The address space between ``prot_bottom`` and ``prot_top`` is divided
into fixed-size *blocks*; contiguous runs of blocks form *segments*
allocated to protection domains.  The memory map stores one permission
entry per block, packed (two 4-bit entries per byte in multi-domain
mode, four 2-bit entries per byte in two-domain mode).

Address translation (paper Figure "Addr Translate"): for a write
address *a*,

1. ``offset  = a - prot_bottom``
2. ``block   = offset >> log2(block_size)``
3. ``byte    = block >> entries_per_byte_log2`` indexes the table
4. the remaining low bits of ``block`` select the entry inside the byte

The table itself can live anywhere: in a plain Python buffer (golden
model) or inside simulated SRAM (the UMPU MMC and the software runtime
both read the very bytes in the machine's memory), via the storage
protocol below.
"""

from dataclasses import dataclass

from repro.core.encoding import TRUSTED_DOMAIN, encoding_for
from repro.core.faults import MemMapFault


def _log2(n):
    if n <= 0 or n & (n - 1):
        raise ValueError("{} is not a power of two".format(n))
    return n.bit_length() - 1


@dataclass(frozen=True)
class Translation:
    """Result of translating a data address to a memory-map location."""

    offset: int       # address - prot_bottom
    block: int        # block number within the protected region
    byte_index: int   # byte offset into the table
    entry_index: int  # which entry within that byte (0 = low bits)
    shift: int        # bit shift of the entry within the byte


@dataclass(frozen=True)
class MemMapConfig:
    """Geometry of the protected region and the table encoding.

    ``block_size`` and the protection mode are what the paper's
    ``mem_map_config`` register programs; ``prot_bottom``/``prot_top``
    are the protected-address-space bounds registers.
    """

    prot_bottom: int
    prot_top: int          # inclusive
    block_size: int = 8
    mode: str = "multi"    # "multi" (4-bit) or "two" (2-bit)

    def __post_init__(self):
        _log2(self.block_size)
        span = self.prot_top - self.prot_bottom + 1
        if span <= 0:
            raise ValueError("empty protected region")
        if span % self.block_size:
            raise ValueError(
                "protected region size {} not a multiple of block size {}"
                .format(span, self.block_size))

    @property
    def encoding(self):
        return encoding_for(self.mode)

    @property
    def nblocks(self):
        return (self.prot_top - self.prot_bottom + 1) // self.block_size

    @property
    def entries_per_byte(self):
        return 8 // self.encoding.bits_per_entry

    @property
    def table_bytes(self):
        """Bytes of RAM the memory map occupies (paper §5.2 sizing)."""
        per = self.entries_per_byte
        return (self.nblocks + per - 1) // per

    def contains(self, addr):
        return self.prot_bottom <= addr <= self.prot_top

    def block_of(self, addr):
        if not self.contains(addr):
            raise ValueError("address 0x{:04x} outside protected region"
                             .format(addr))
        return (addr - self.prot_bottom) >> _log2(self.block_size)

    def block_addr(self, block):
        """First data address of block number *block*."""
        return self.prot_bottom + block * self.block_size

    def translate(self, addr):
        """Full translation record for *addr* (Figure `memtrans`)."""
        offset = addr - self.prot_bottom
        block = self.block_of(addr)
        per_log2 = _log2(self.entries_per_byte)
        byte_index = block >> per_log2
        entry_index = block & (self.entries_per_byte - 1)
        shift = entry_index * self.encoding.bits_per_entry
        return Translation(offset, block, byte_index, entry_index, shift)

    def blocks_spanning(self, addr, nbytes):
        """Block-number range [first, last] covering [addr, addr+nbytes)."""
        first = self.block_of(addr)
        last = self.block_of(addr + max(nbytes, 1) - 1)
        return first, last


class BufferStorage:
    """Table storage in a plain Python bytearray (golden model)."""

    def __init__(self, nbytes):
        self.buf = bytearray(nbytes)

    def read_byte(self, index):
        return self.buf[index]

    def write_byte(self, index, value):
        self.buf[index] = value & 0xFF


class MemoryBackedStorage:
    """Table storage inside simulated SRAM at ``base`` (UMPU / runtime).

    Reading through this storage sees exactly the bytes the simulated
    software maintains, which is how the MMC hardware model and the
    golden model stay comparable on the same machine state.
    """

    def __init__(self, memory, base):
        self.memory = memory
        self.base = base

    def read_byte(self, index):
        return self.memory.read_data(self.base + index)

    def write_byte(self, index, value):
        self.memory.write_data(self.base + index, value)


class MemoryMap:
    """Permission table over a protected region.

    All mutating operations keep the paper's invariants: every block has
    exactly one owner; segment starts are flagged; free blocks read as
    trusted-owned so no user domain may touch them.
    """

    def __init__(self, config, storage=None, initialize=True):
        """*initialize*: mark everything free.  Pass False when wrapping
        storage some other party already maintains (e.g. a host-side
        view of the table the simulated runtime keeps in SRAM)."""
        self.config = config
        self.encoding = config.encoding
        self.storage = storage if storage is not None \
            else BufferStorage(config.table_bytes)
        if initialize:
            self.clear()

    # --- raw entry access ----------------------------------------------
    def get_code(self, block):
        """Raw permission code of block number *block*."""
        self._check_block(block)
        tr = self._translate_block(block)
        byte = self.storage.read_byte(tr[0])
        mask = (1 << self.encoding.bits_per_entry) - 1
        return (byte >> tr[1]) & mask

    def set_code(self, block, code):
        self._check_block(block)
        tr = self._translate_block(block)
        mask = (1 << self.encoding.bits_per_entry) - 1
        byte = self.storage.read_byte(tr[0])
        byte = (byte & ~(mask << tr[1])) | ((code & mask) << tr[1])
        self.storage.write_byte(tr[0], byte)

    def _translate_block(self, block):
        per_log2 = _log2(self.config.entries_per_byte)
        byte_index = block >> per_log2
        entry = block & (self.config.entries_per_byte - 1)
        return byte_index, entry * self.encoding.bits_per_entry

    def _check_block(self, block):
        if not 0 <= block < self.config.nblocks:
            raise ValueError("block {} out of range".format(block))

    # --- decoded access -------------------------------------------------
    def permission(self, block):
        return self.encoding.decode(self.get_code(block))

    def owner_of(self, addr):
        """Owning domain of the block containing *addr*."""
        return self.permission(self.config.block_of(addr)).owner

    def is_segment_start(self, block):
        return self.permission(block).is_start

    def set_block(self, block, owner, is_start):
        self.set_code(block, self.encoding.encode(owner, is_start))

    # --- segment operations -----------------------------------------------
    def clear(self):
        """Mark the whole region free (trusted-owned)."""
        for block in range(self.config.nblocks):
            self.set_code(block, self.encoding.free)

    def set_segment(self, addr, nbytes, owner):
        """Mark the blocks covering [addr, addr+nbytes) as one segment
        owned by *owner* (first block start-flagged)."""
        first, last = self.config.blocks_spanning(addr, nbytes)
        for block in range(first, last + 1):
            self.set_block(block, owner, block == first)

    def free_segment(self, addr):
        """Mark the segment starting at *addr* free; returns its length
        in blocks (layout information comes from the map itself)."""
        length = self.segment_length(addr)
        first = self.config.block_of(addr)
        for block in range(first, first + length):
            self.set_code(block, self.encoding.free)
        return length

    def segment_length(self, addr):
        """Length (blocks) of the segment starting at *addr*.

        The segment extends from its start-flagged block over all
        following same-owner, non-start blocks — this is the layout
        information the paper encodes to make ``free`` possible without
        per-allocation headers.
        """
        first = self.config.block_of(addr)
        perm = self.permission(first)
        if not perm.is_start:
            raise ValueError(
                "0x{:04x} is not the start of a segment".format(addr))
        length = 1
        for block in range(first + 1, self.config.nblocks):
            nxt = self.permission(block)
            if nxt.is_start or nxt.owner != perm.owner:
                break
            length += 1
        return length

    def change_owner(self, addr, new_owner):
        """Re-own the segment starting at *addr*; preserves layout."""
        length = self.segment_length(addr)
        first = self.config.block_of(addr)
        for block in range(first, first + length):
            self.set_block(block, new_owner, block == first)
        return length

    # --- checking ----------------------------------------------------------
    def check_write(self, addr, domain):
        """Raise :class:`MemMapFault` unless *domain* may write *addr*.

        The trusted domain may write anywhere; any other domain only
        into blocks it owns.  (Free blocks are trusted-owned, so they
        are covered by the same comparison — exactly the single compare
        the MMC hardware performs.)
        """
        if domain == TRUSTED_DOMAIN:
            return
        owner = self.owner_of(addr)
        if owner != domain:
            raise MemMapFault(addr, domain, owner)

    def segments(self):
        """Iterate ``(start_addr, nblocks, owner)`` over all non-free
        segments (free runs are reported with owner TRUSTED_DOMAIN and
        merged arbitrarily with trusted segments; used for display)."""
        out = []
        block = 0
        n = self.config.nblocks
        while block < n:
            perm = self.permission(block)
            start = block
            block += 1
            while block < n:
                nxt = self.permission(block)
                if nxt.is_start or nxt.owner != perm.owner:
                    break
                block += 1
            out.append((self.config.block_addr(start), block - start,
                        perm.owner))
        return out
