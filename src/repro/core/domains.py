"""Protection domains (paper §2.1).

A protection domain is a *fragmented but logically distinct* portion of
the data address space; every module's state lives in its own domain.
There is exactly one trusted domain (the kernel), allowed to access all
memory; user domains may only write blocks the memory map assigns to
them.
"""

from dataclasses import dataclass, field

from repro.core.encoding import TRUSTED_DOMAIN


@dataclass(frozen=True)
class Domain:
    """One protection domain."""

    did: int
    name: str = ""

    @property
    def trusted(self):
        return self.did == TRUSTED_DOMAIN

    def __str__(self):
        label = self.name or ("trusted" if self.trusted
                              else "domain{}".format(self.did))
        return "{}(id={})".format(label, self.did)


@dataclass
class DomainSet:
    """The set of domains configured on a node.

    ``max_user_domains`` comes from the protection mode: 7 under
    multi-domain (4-bit) encoding, 1 under two-domain (2-bit) encoding.
    """

    max_user_domains: int = 7
    _domains: dict = field(default_factory=dict)

    def __post_init__(self):
        self._domains[TRUSTED_DOMAIN] = Domain(TRUSTED_DOMAIN, "trusted")

    @property
    def trusted(self):
        return self._domains[TRUSTED_DOMAIN]

    def create(self, name=""):
        """Allocate the next free user domain id."""
        for did in range(self.max_user_domains):
            if did not in self._domains:
                domain = Domain(did, name or "domain{}".format(did))
                self._domains[did] = domain
                return domain
        raise ValueError("no free protection domains "
                         "(max {})".format(self.max_user_domains))

    def destroy(self, did):
        if did == TRUSTED_DOMAIN:
            raise ValueError("cannot destroy the trusted domain")
        del self._domains[did]

    def get(self, did):
        return self._domains[did]

    def __contains__(self, did):
        return did in self._domains

    def __iter__(self):
        return iter(sorted(self._domains.values(), key=lambda d: d.did))

    def __len__(self):
        return len(self._domains)

    def user_domains(self):
        return [d for d in self if not d.trusted]
