"""Dynamic memory with memory-map bookkeeping (paper §2.4).

The software library's ``malloc``/``free``/``change_own`` must keep the
memory map current at all times and must enforce that *only the block
owner may free or transfer memory* — the paper calls this out as the
guard against one module freeing or hijacking another module's memory.

The allocator is a first-fit free-list over block-aligned segments, the
same design as the assembly runtime in :mod:`repro.sfi.runtime_asm`.
Segment lengths are never stored in headers: ``free`` recovers the
length from the memory map's layout encoding (start flags), which is the
paper's reason for encoding layout in the map at all.
"""

from dataclasses import dataclass

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import OwnershipFault


@dataclass
class FreeRange:
    addr: int
    nbytes: int

    @property
    def end(self):
        return self.addr + self.nbytes


class HeapError(Exception):
    """Allocator misuse that is not a protection fault (bad free etc.)."""


class HarborHeap:
    """First-fit heap over [start, end) keeping a MemoryMap consistent."""

    def __init__(self, memmap, start, end):
        cfg = memmap.config
        if start % cfg.block_size or end % cfg.block_size:
            raise ValueError("heap bounds must be block aligned")
        if not (cfg.contains(start) and cfg.contains(end - 1)):
            raise ValueError("heap must lie inside the protected region")
        self.memmap = memmap
        self.start = start
        self.end = end
        self.free_list = [FreeRange(start, end - start)]
        #: statistics for tests/benchmarks
        self.stats = {"malloc": 0, "free": 0, "change_own": 0, "failed": 0}

    @property
    def block_size(self):
        return self.memmap.config.block_size

    def _round_up(self, nbytes):
        bs = self.block_size
        return (max(nbytes, 1) + bs - 1) // bs * bs

    # ------------------------------------------------------------------
    def malloc(self, nbytes, domain):
        """Allocate *nbytes* (rounded up to blocks) owned by *domain*.

        Returns the segment address, or None when no fit exists (the
        embedded convention: out-of-memory is an expected condition the
        caller must check — forgetting to is exactly the Surge bug).
        """
        need = self._round_up(nbytes)
        for i, fr in enumerate(self.free_list):
            if fr.nbytes >= need:
                addr = fr.addr
                if fr.nbytes == need:
                    del self.free_list[i]
                else:
                    fr.addr += need
                    fr.nbytes -= need
                self.memmap.set_segment(addr, need, domain)
                self.stats["malloc"] += 1
                return addr
        self.stats["failed"] += 1
        return None

    # ------------------------------------------------------------------
    def _check_owner(self, addr, domain, operation):
        perm = self.memmap.permission(self.memmap.config.block_of(addr))
        if not perm.is_start:
            raise HeapError(
                "0x{:04x} is not the start of an allocation".format(addr))
        if perm.owner == TRUSTED_DOMAIN and self._is_free(addr):
            raise HeapError("0x{:04x} is already free".format(addr))
        if domain != TRUSTED_DOMAIN and perm.owner != domain:
            raise OwnershipFault(addr, domain, perm.owner, operation)
        return perm.owner

    def _is_free(self, addr):
        return any(fr.addr <= addr < fr.end for fr in self.free_list)

    def free(self, addr, domain):
        """Free the segment at *addr*; only its owner (or the trusted
        domain) may do so.  Returns the freed size in bytes."""
        if not self.start <= addr < self.end:
            raise HeapError("free of non-heap address 0x{:04x}".format(addr))
        self._check_owner(addr, domain, "free")
        nblocks = self.memmap.free_segment(addr)
        nbytes = nblocks * self.block_size
        self._insert_free(FreeRange(addr, nbytes))
        self.stats["free"] += 1
        return nbytes

    def _insert_free(self, new):
        """Insert sorted and coalesce with neighbours."""
        out = []
        placed = False
        for fr in self.free_list:
            if not placed and new.addr < fr.addr:
                out.append(new)
                placed = True
            out.append(fr)
        if not placed:
            out.append(new)
        merged = [out[0]]
        for fr in out[1:]:
            last = merged[-1]
            if last.end == fr.addr:
                last.nbytes += fr.nbytes
            else:
                merged.append(fr)
        self.free_list = merged

    # ------------------------------------------------------------------
    def change_own(self, addr, new_domain, domain):
        """Transfer the segment at *addr* to *new_domain*.

        Only the current owner (or trusted) may transfer; this is how
        message payloads move between SOS modules without copying.
        """
        if not self.start <= addr < self.end:
            raise HeapError(
                "change_own of non-heap address 0x{:04x}".format(addr))
        self._check_owner(addr, domain, "change_own")
        self.memmap.change_owner(addr, new_domain)
        self.stats["change_own"] += 1

    # ------------------------------------------------------------------
    def owner_of(self, addr):
        return self.memmap.owner_of(addr)

    def allocation_size(self, addr):
        """Size in bytes of the allocation starting at *addr*."""
        return self.memmap.segment_length(addr) * self.block_size

    @property
    def free_bytes(self):
        return sum(fr.nbytes for fr in self.free_list)

    @property
    def largest_free(self):
        return max((fr.nbytes for fr in self.free_list), default=0)

    def check_invariants(self):
        """Assert allocator/memmap consistency (used by property tests).

        * free-list ranges are sorted, non-overlapping, coalesced and
          inside the heap;
        * every free-list byte's block is marked free in the memory map;
        * every non-free heap block belongs to a segment whose start
          flag is set.
        """
        prev_end = self.start - 1
        for fr in self.free_list:
            assert self.start <= fr.addr < fr.end <= self.end
            assert fr.addr > prev_end, "free list unsorted/overlapping"
            assert fr.addr != prev_end + 1 or prev_end == self.start - 1, \
                "free list not coalesced"
            prev_end = fr.end - 1
            assert fr.addr % self.block_size == 0
            assert fr.nbytes % self.block_size == 0
        cfg = self.memmap.config
        free_blocks = set()
        for fr in self.free_list:
            first, last = cfg.blocks_spanning(fr.addr, fr.nbytes)
            free_blocks.update(range(first, last + 1))
        first_heap, last_heap = cfg.blocks_spanning(self.start,
                                                    self.end - self.start)
        expecting_start = True
        for block in range(first_heap, last_heap + 1):
            perm = self.memmap.permission(block)
            if block in free_blocks:
                assert self.memmap.get_code(block) == self.memmap.encoding.free, \
                    "free block {} not marked free".format(block)
                expecting_start = True
            else:
                if expecting_start:
                    assert perm.is_start, \
                        "allocated run at block {} lacks start flag".format(
                            block)
                expecting_start = False
