"""Harbor protection core: the paper's primary contribution.

Memory map (§2), control-flow manager / cross-domain calls (§3), safe
stack (§3.4), stack-bound protection (§3.3), the protected dynamic
memory library (§2.4) and the golden-model write checker, plus the
:class:`HarborSystem` facade assembling them.
"""

from repro.core.checker import CheckContext, WriteChecker
from repro.core.control_flow import (
    CrossDomainManager,
    DomainContext,
    JumpTable,
    JT_ENTRIES_PER_DOMAIN,
    JT_ENTRY_BYTES,
)
from repro.core.domains import Domain, DomainSet
from repro.core.encoding import (
    BlockPermission,
    MultiDomainEncoding,
    TRUSTED_DOMAIN,
    TwoDomainEncoding,
    encoding_for,
)
from repro.core.faults import (
    ConfigFault,
    JumpTableFault,
    MemMapFault,
    OwnershipFault,
    ProtectionFault,
    SafeStackOverflow,
    SafeStackUnderflow,
    StackBoundFault,
    UntrustedAccessFault,
)
from repro.core.harbor import HarborSystem
from repro.core.heap import HarborHeap, HeapError
from repro.core.memmap import (
    BufferStorage,
    MemMapConfig,
    MemoryBackedStorage,
    MemoryMap,
    Translation,
)
from repro.core.safe_stack import (
    CROSS_DOMAIN_FRAME_BYTES,
    CrossDomainFrame,
    SafeStack,
)

__all__ = [
    "CheckContext",
    "WriteChecker",
    "CrossDomainManager",
    "DomainContext",
    "JumpTable",
    "JT_ENTRIES_PER_DOMAIN",
    "JT_ENTRY_BYTES",
    "Domain",
    "DomainSet",
    "BlockPermission",
    "MultiDomainEncoding",
    "TRUSTED_DOMAIN",
    "TwoDomainEncoding",
    "encoding_for",
    "ConfigFault",
    "JumpTableFault",
    "MemMapFault",
    "OwnershipFault",
    "ProtectionFault",
    "SafeStackOverflow",
    "SafeStackUnderflow",
    "StackBoundFault",
    "UntrustedAccessFault",
    "HarborSystem",
    "HarborHeap",
    "HeapError",
    "BufferStorage",
    "MemMapConfig",
    "MemoryBackedStorage",
    "MemoryMap",
    "Translation",
    "CROSS_DOMAIN_FRAME_BYTES",
    "CrossDomainFrame",
    "SafeStack",
]
