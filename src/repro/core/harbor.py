"""Harbor system facade: assemble all protection components (golden model).

:class:`HarborSystem` wires together domains, memory map, heap, safe
stack, jump table and the write checker over one address space, and
offers the module-eye view used by the SOS substrate, the examples and
the property tests: allocate memory, write through the checker, make
cross-domain calls.

This is the *behavioural* system — no instruction simulation.  The two
cycle-accurate systems built from the same techniques are
:mod:`repro.sfi` (binary rewriting) and :mod:`repro.umpu` (hardware
extensions); both are differentially tested against this model.
"""

from contextlib import contextmanager

from repro.core.checker import CheckContext, WriteChecker
from repro.core.control_flow import (
    CrossDomainManager,
    JumpTable,
)
from repro.core.domains import DomainSet
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.heap import HarborHeap
from repro.core.memmap import MemMapConfig, MemoryMap
from repro.core.safe_stack import SafeStack
from repro.isa.registers import ATMEGA103


class HarborSystem:
    """A protected node: domains + memory map + heap + control flow.

    Default layout over the ATmega103's 4 KiB data space (matching the
    paper's configuration: 8-byte blocks, multi-domain 4-bit encoding):

    * trusted globals + memory map table below ``heap_start``;
    * the heap (memory-map protected) in the middle;
    * the safe stack just above the heap, growing up;
    * the run-time stack at RAMEND, growing down.
    """

    def __init__(self, geometry=ATMEGA103, block_size=8, mode="multi",
                 heap_start=0x0200, heap_end=0x0C00,
                 safe_stack_bytes=0x100, jt_base=0x1000, ndomains=8):
        self.geometry = geometry
        span = geometry.data_end + 1
        # protect everything from the heap up to the safe stack's end;
        # the region must be block aligned
        prot_bottom = heap_start
        prot_top = heap_end + safe_stack_bytes - 1
        self.memmap = MemoryMap(MemMapConfig(
            prot_bottom=prot_bottom, prot_top=prot_top,
            block_size=block_size, mode=mode))
        self.domains = DomainSet(
            max_user_domains=self.memmap.encoding.max_user_domains)
        self.heap = HarborHeap(self.memmap, heap_start, heap_end)
        self.safe_stack = SafeStack(heap_end, heap_end + safe_stack_bytes)
        # the safe stack region belongs to the trusted domain: mark it a
        # trusted segment so no user domain can scribble on it
        self.memmap.set_segment(heap_end, safe_stack_bytes, TRUSTED_DOMAIN)
        self.jump_table = JumpTable(base=jt_base, ndomains=ndomains)
        self.control = CrossDomainManager(
            self.jump_table, self.safe_stack,
            initial_domain=TRUSTED_DOMAIN,
            initial_stack_bound=geometry.ramend)
        self.context = CheckContext(self.memmap,
                                    cur_domain=TRUSTED_DOMAIN,
                                    stack_bound=geometry.ramend)
        self.checker = WriteChecker(self.context)
        #: data memory image for behavioural stores
        self.data = bytearray(span)
        self.sp = geometry.ramend

    # --- domain management ----------------------------------------------
    @property
    def cur_domain(self):
        return self.control.cur_domain

    def create_domain(self, name=""):
        return self.domains.create(name)

    @contextmanager
    def as_domain(self, domain):
        """Execute behavioural operations as *domain* (test/kernel aid).

        This models the kernel dispatching into a module without a full
        cross-domain call (no stack-bound change).
        """
        did = getattr(domain, "did", domain)
        prev_ctl, prev_ctx = self.control.cur_domain, self.context.cur_domain
        self.control.cur_domain = did
        self.context.cur_domain = did
        try:
            yield
        finally:
            self.control.cur_domain = prev_ctl
            self.context.cur_domain = prev_ctx

    # --- memory operations -----------------------------------------------
    def _did(self, domain):
        if domain is None:
            return self.cur_domain
        return getattr(domain, "did", domain)

    def malloc(self, nbytes, domain=None):
        return self.heap.malloc(nbytes, self._did(domain))

    def free(self, addr, domain=None):
        return self.heap.free(addr, self._did(domain))

    def change_own(self, addr, new_domain, domain=None):
        return self.heap.change_own(addr, self._did(new_domain),
                                    self._did(domain))

    def store(self, addr, value, domain=None):
        """A checked behavioural store (what a module's ``st`` does)."""
        self._sync_context()
        self.checker.check(addr, self._did(domain))
        self.data[addr] = value & 0xFF

    def store_unchecked(self, addr, value):
        """An unprotected store — what happens *without* Harbor."""
        self.data[addr] = value & 0xFF

    def load(self, addr):
        return self.data[addr]

    def _sync_context(self):
        self.context.cur_domain = self.control.cur_domain
        self.context.stack_bound = self.control.stack_bound

    # --- cross-domain calls ---------------------------------------------------
    def cross_domain_call(self, target_byte_addr, ret_word_addr=0):
        """Protection side of calling a jump-table entry."""
        callee = self.control.cross_domain_call(target_byte_addr,
                                                ret_word_addr, self.sp)
        self._sync_context()
        return callee

    def cross_domain_return(self):
        frame = self.control.on_return()
        self._sync_context()
        return frame

    # --- reporting ----------------------------------------------------------------
    def domain_layout(self):
        """``(start, nblocks, owner)`` segments — Figure 2's picture."""
        return self.memmap.segments()
