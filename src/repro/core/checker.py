"""Golden-model write checker: the complete Harbor store-permission rule.

This is the reference the hardware MMC and the software runtime checker
are both tested against.  The rule, assembled from paper §2 (memory
map), §3.3 (run-time stack protection) and §3.4 (safe stack placement):

1. The trusted domain may write anywhere.
2. A write above ``stack_bound`` would corrupt a caller domain's stack
   frames → :class:`StackBoundFault`.
3. A write inside the memory-map-protected region must target a block
   owned by the writing domain → :class:`MemMapFault` otherwise.
4. A write between the protected region and the stack bound is the
   module's own run-time stack window → allowed.
5. Anything else (register file, I/O space, trusted globals below the
   protected region) → :class:`UntrustedAccessFault`.
"""

from dataclasses import dataclass

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import StackBoundFault, UntrustedAccessFault


@dataclass
class CheckContext:
    """Mutable protection state the checker consults.

    Mirrors the UMPU register file: current domain, stack bound, plus
    the memory map.  The control-flow manager updates ``cur_domain`` and
    ``stack_bound`` on cross-domain calls/returns.
    """

    memmap: object
    cur_domain: int = TRUSTED_DOMAIN
    stack_bound: int = 0xFFFF


class WriteChecker:
    """Checks stores against a :class:`CheckContext`."""

    def __init__(self, context):
        self.context = context

    def check(self, addr, domain=None):
        """Validate a store to *addr* by *domain* (default: current).

        Raises a :class:`~repro.core.faults.ProtectionFault` subclass on
        violation; returns the applicable rule name on success (handy
        for tests and traces).
        """
        ctx = self.context
        if domain is None:
            domain = ctx.cur_domain
        if domain == TRUSTED_DOMAIN:
            return "trusted"
        if addr > ctx.stack_bound:
            raise StackBoundFault(addr, domain, ctx.stack_bound)
        cfg = ctx.memmap.config
        if cfg.contains(addr):
            ctx.memmap.check_write(addr, domain)
            return "memmap"
        if addr > cfg.prot_top:
            # between the protected region and the stack bound: the
            # module's own stack window
            return "stack"
        raise UntrustedAccessFault(addr, domain)

    def allowed(self, addr, domain=None):
        """Boolean form of :meth:`check` (no exception)."""
        from repro.core.faults import ProtectionFault
        try:
            self.check(addr, domain)
            return True
        except ProtectionFault:
            return False
