"""Control Flow Manager (paper §3): jump tables and cross-domain calls.

Control may leave a domain only through functions exported by other
domains; all such calls are redirected through per-domain *jump tables*
in flash.  The jump-table geometry makes both checks the paper relies on
a single compare/divide:

* a valid cross-domain target must lie inside the jump-table region
  (one compare against the base; the upper bound check is folded into
  the domain-id range check), and
* the callee domain id is ``(target - base) / page_size`` — if that
  exceeds the configured number of domains, the target was beyond the
  table and an exception is raised.

:class:`CrossDomainManager` is the golden model of the paper's "cross
domain state machine": it tracks the current domain, swaps stack
bounds, and pushes/pops the 5-byte frames on the safe stack.  The UMPU
domain tracker and the SFI software stubs both implement this model.
"""

from dataclasses import dataclass, field

from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.faults import JumpTableFault

#: Default jump-table page: 128 exported functions of one 4-byte ``jmp``
#: each.  The paper allots "one complete page of flash" per domain and
#: notes the 128-function limit.
JT_ENTRY_BYTES = 4
JT_ENTRIES_PER_DOMAIN = 128


@dataclass(frozen=True)
class JumpTable:
    """Geometry of the co-located per-domain jump tables in flash.

    Domain *d*'s table occupies
    ``[base + d*page_bytes, base + (d+1)*page_bytes)``; entry *i* of the
    table is a ``jmp`` to the *i*-th exported function.
    """

    base: int                    # flash byte address
    ndomains: int                # number of domains with tables
    entries_per_domain: int = JT_ENTRIES_PER_DOMAIN
    entry_bytes: int = JT_ENTRY_BYTES

    @property
    def page_bytes(self):
        return self.entries_per_domain * self.entry_bytes

    @property
    def end(self):
        """First byte address past the whole jump-table region."""
        return self.base + self.ndomains * self.page_bytes

    @property
    def total_flash_bytes(self):
        """FLASH the tables occupy (Table `swlibsize` row "Jump Table")."""
        return self.ndomains * self.page_bytes

    def contains(self, byte_addr):
        return self.base <= byte_addr < self.end

    def entry_addr(self, domain, index):
        """Flash byte address of entry *index* of *domain*'s table."""
        if not 0 <= index < self.entries_per_domain:
            raise ValueError("jump table entry {} out of range".format(index))
        if not 0 <= domain < self.ndomains:
            raise ValueError("domain {} has no jump table".format(domain))
        return self.base + domain * self.page_bytes + index * self.entry_bytes

    def classify(self, byte_addr):
        """Map a call target to ``(domain, entry_index)``.

        Exactly the hardware algorithm: compare against the base, then
        divide the offset by the page size; a quotient beyond the
        domain count means the target overran the table.
        Raises :class:`JumpTableFault` for misaligned or out-of-range
        targets.
        """
        if byte_addr < self.base:
            raise JumpTableFault(byte_addr, reason="below jump table base")
        offset = byte_addr - self.base
        domain = offset // self.page_bytes
        if domain >= self.ndomains:
            raise JumpTableFault(byte_addr,
                                 reason="beyond jump table upper bound")
        within = offset % self.page_bytes
        if within % self.entry_bytes:
            raise JumpTableFault(byte_addr,
                                 reason="misaligned jump table entry")
        return domain, within // self.entry_bytes


@dataclass
class DomainContext:
    """Per-activation protection state saved across cross-domain calls."""

    domain: int
    stack_bound: int


class CrossDomainManager:
    """Golden model of cross-domain call/return domain tracking.

    The manager answers two questions the protection machinery needs at
    every instant (paper §3.2): *which domain is executing now?* and
    *where is its stack bound?* — and enforces that cross-domain entry
    happens only through the jump table.

    ``call_depths`` realizes the hardware's cross-domain state machine:
    a counter per open cross-domain frame counts ordinary nested calls,
    so the machinery knows which ``ret`` closes the frame.
    """

    def __init__(self, jump_table, safe_stack,
                 initial_domain=TRUSTED_DOMAIN, initial_stack_bound=0xFFFF):
        self.jump_table = jump_table
        self.safe_stack = safe_stack
        self.cur_domain = initial_domain
        self.stack_bound = initial_stack_bound
        self.call_depths = []
        #: domain id -> (code_start_byte, code_end_byte) exclusive end;
        #: recorded at load time, used to confine direct calls.
        self.code_regions = {}

    # ------------------------------------------------------------------
    def register_code_region(self, domain, start_byte, end_byte):
        """Record where *domain*'s code lives in flash (load time)."""
        self.code_regions[domain] = (start_byte, end_byte)

    def is_cross_domain_target(self, target_byte_addr):
        return self.jump_table.contains(target_byte_addr)

    def classify_call(self, target_byte_addr):
        """Classify a call target for the current domain.

        Returns ``"cross"`` for jump-table targets and ``"local"`` for
        targets within the current domain's code region (the trusted
        domain may call anywhere).  Any other target is an escape
        attempt and raises :class:`JumpTableFault`.
        """
        if self.jump_table.contains(target_byte_addr):
            return "cross"
        if self.cur_domain == TRUSTED_DOMAIN:
            return "local"
        region = self.code_regions.get(self.cur_domain)
        if region and region[0] <= target_byte_addr < region[1]:
            return "local"
        raise JumpTableFault(
            target_byte_addr, domain=self.cur_domain,
            reason="direct call escaping the domain's code region")

    def cross_domain_call(self, target_byte_addr, ret_word_addr, sp):
        """Perform the protection side of a cross-domain call.

        Verifies the target, pushes the 5-byte frame (previous domain,
        previous stack bound, return address), activates the callee
        domain, and copies SP into the new stack bound.  Returns the
        callee domain id.
        """
        callee, _index = self.jump_table.classify(target_byte_addr)
        self.safe_stack.push_cross_domain(self.cur_domain, self.stack_bound,
                                          ret_word_addr)
        self.call_depths.append(0)
        self.cur_domain = callee
        self.stack_bound = sp
        return callee

    def local_call(self):
        """Note an ordinary (intra-domain) call under the current frame."""
        if self.call_depths:
            self.call_depths[-1] += 1

    def on_return(self):
        """Process a ``ret``.

        Returns the :class:`~repro.core.safe_stack.CrossDomainFrame` if
        this return closes a cross-domain frame (the caller's domain and
        stack bound are restored), else None for an ordinary return.
        """
        if not self.call_depths:
            return None
        if self.call_depths[-1] > 0:
            self.call_depths[-1] -= 1
            return None
        self.call_depths.pop()
        frame = self.safe_stack.pop_cross_domain()
        self.cur_domain = frame.prev_domain
        self.stack_bound = frame.prev_stack_bound
        return frame

    @property
    def nesting(self):
        """Open cross-domain frames (chained calls A->B->C give 2)."""
        return len(self.call_depths)
