"""Memory-map permission encodings (paper Table `mmap_table`).

Multi-domain protection packs one 4-bit code per block::

    1111  Free, or start of trusted segment
    1110  Later portion of trusted segment
    xxx1  Start of domain (0-6) segment
    xxx0  Later portion of domain (0-6) segment

The three ``x`` bits carry the owning domain id (0-6); the pattern 111
is reserved for the trusted domain, which is also the owner of free
memory (so modules can never write unallocated blocks).  Note the
deliberate overlap: *free* and *start of trusted segment* share code
1111 — distinguishing them is the heap free list's job, not the memory
map's (the map answers "may domain D write this block?", and the answer
for both free and trusted blocks is "only if D is trusted").

Two-domain protection (one user domain vs the trusted kernel) needs
only 2 bits per block, halving the table — this is where the paper's
"70 bytes (1.7%)" figure comes from::

    11  Free, or start of trusted segment
    10  Later portion of trusted segment
    01  Start of user segment
    00  Later portion of user segment
"""

from dataclasses import dataclass

#: Domain id of the single trusted domain (the SOS kernel).  In the
#: multi-domain encoding the three owner bits 111 name it.
TRUSTED_DOMAIN = 7

#: User domains available under multi-domain protection (ids 0..6).
MAX_USER_DOMAINS_MULTI = 7

#: User domains available under two-domain protection (id 0 only).
MAX_USER_DOMAINS_TWO = 1


@dataclass(frozen=True)
class BlockPermission:
    """Decoded permission entry of one block."""

    owner: int      # domain id; TRUSTED_DOMAIN for trusted/free blocks
    is_start: bool  # first block of a logical segment (or free)

    def __str__(self):
        owner = "T" if self.owner == TRUSTED_DOMAIN else str(self.owner)
        return "{}{}".format(owner, "s" if self.is_start else "-")


class MultiDomainEncoding:
    """4-bit entries, up to 7 user domains + trusted (Table 1)."""

    bits_per_entry = 4
    max_user_domains = MAX_USER_DOMAINS_MULTI

    #: Code meanings, printable (reproduces paper Table 1).
    TABLE = (
        ("1111", "Free or Start of Trusted Segment"),
        ("1110", "Later portion of Trusted Segment"),
        ("xxx1", "Start of Domain (0 - 6) Segment"),
        ("xxx0", "Later portion of Domain (0 - 6) Segment"),
    )

    FREE_CODE = 0b1111

    def encode(self, owner, is_start):
        if not 0 <= owner <= TRUSTED_DOMAIN:
            raise ValueError("bad domain id {}".format(owner))
        return ((owner & 0x7) << 1) | (1 if is_start else 0)

    def decode(self, code):
        return BlockPermission(owner=(code >> 1) & 0x7,
                               is_start=bool(code & 1))

    @property
    def free(self):
        """Code for a free block (same as trusted-segment start)."""
        return self.FREE_CODE


class TwoDomainEncoding:
    """2-bit entries: one user domain vs trusted (halved memory map)."""

    bits_per_entry = 2
    max_user_domains = MAX_USER_DOMAINS_TWO

    TABLE = (
        ("11", "Free or Start of Trusted Segment"),
        ("10", "Later portion of Trusted Segment"),
        ("01", "Start of User Segment"),
        ("00", "Later portion of User Segment"),
    )

    FREE_CODE = 0b11

    def encode(self, owner, is_start):
        if owner not in (0, TRUSTED_DOMAIN):
            raise ValueError(
                "two-domain encoding supports domains 0 and trusted only, "
                "got {}".format(owner))
        trusted_bit = 1 if owner == TRUSTED_DOMAIN else 0
        return (trusted_bit << 1) | (1 if is_start else 0)

    def decode(self, code):
        owner = TRUSTED_DOMAIN if code & 0b10 else 0
        return BlockPermission(owner=owner, is_start=bool(code & 1))

    @property
    def free(self):
        return self.FREE_CODE


def encoding_for(mode):
    """Return the encoding object for *mode* (``"multi"`` or ``"two"``)."""
    if mode == "multi":
        return MultiDomainEncoding()
    if mode == "two":
        return TwoDomainEncoding()
    raise ValueError("unknown protection mode {!r}".format(mode))
