"""Protection fault hierarchy.

Every violation Harbor can detect raises a distinct fault type.  On real
hardware these are the exceptions the MMC / domain tracker signal; in
the software-only system they are raised by the run-time check routines.
The simulator propagates them out of :meth:`Machine.run` (tests) or into
the kernel panic handler (OS integration), mirroring the paper's
"signal the invalid access" behaviour.
"""


class ProtectionFault(Exception):
    """Base class for all Harbor protection violations.

    Every fault class carries a stable, machine-readable ``code`` slug
    (class attribute) used by the forensics layer, the metrics registry
    and the on-node numeric fault-code round-trip
    (:func:`fault_from_code`).  Codes are part of the external format
    (JSON reports, CI artifacts) — never rename one.
    """

    code = "protection"

    def __init__(self, message, domain=None, addr=None):
        self.domain = domain
        self.addr = addr
        detail = []
        if domain is not None:
            detail.append("domain={}".format(domain))
        if addr is not None:
            detail.append("addr=0x{:04x}".format(addr))
        if detail:
            message = "{} ({})".format(message, ", ".join(detail))
        super().__init__(message)


class MemMapFault(ProtectionFault):
    """A store targeted a block owned by a different domain."""

    code = "memmap"

    def __init__(self, addr, domain, owner):
        self.owner = owner
        super().__init__(
            "illegal store into block owned by domain {}".format(owner),
            domain=domain, addr=addr)


class StackBoundFault(ProtectionFault):
    """A store targeted the run-time stack above the current stack bound
    (i.e. the caller domains' stack frames)."""

    code = "stack_bound"

    def __init__(self, addr, domain, stack_bound):
        self.stack_bound = stack_bound
        super().__init__(
            "store above stack bound 0x{:04x}".format(stack_bound),
            domain=domain, addr=addr)


class UntrustedAccessFault(ProtectionFault):
    """A store by an untrusted domain targeted memory outside both the
    memory-map-protected region and its stack window (I/O registers,
    trusted globals, the register file)."""

    code = "outside_region"

    def __init__(self, addr, domain):
        super().__init__("store outside protected region and stack window",
                         domain=domain, addr=addr)


class JumpTableFault(ProtectionFault):
    """A cross-domain control transfer did not target a valid jump-table
    entry (bad base, bad domain index, or an empty slot)."""

    code = "jump_table"

    def __init__(self, target, domain=None, reason="not a jump table entry"):
        self.target = target
        super().__init__(
            "invalid cross-domain transfer to 0x{:05x}: {}".format(
                target, reason),
            domain=domain)


class SafeStackOverflow(ProtectionFault):
    """The safe stack grew into the run-time stack (or its limit)."""

    code = "safe_stack_overflow"

    def __init__(self, ptr, limit):
        self.ptr = ptr
        self.limit = limit
        super().__init__(
            "safe stack overflow: ptr 0x{:04x} reached limit 0x{:04x}"
            .format(ptr, limit))


class SafeStackUnderflow(ProtectionFault):
    """A cross-domain return with no matching cross-domain call."""

    code = "safe_stack_underflow"

    def __init__(self):
        super().__init__("safe stack underflow: unmatched return")


class OwnershipFault(ProtectionFault):
    """free()/change_own() attempted by a domain that does not own the
    segment (prevents hijacking or freeing foreign memory)."""

    code = "ownership"

    def __init__(self, addr, domain, owner, operation):
        self.owner = owner
        self.operation = operation
        super().__init__(
            "{} of segment owned by domain {}".format(operation, owner),
            domain=domain, addr=addr)


class ConfigFault(ProtectionFault):
    """An untrusted domain attempted to reprogram protection state
    (memory-map configuration registers, safe stack pointer, ...)."""

    code = "config"

    def __init__(self, what, domain=None):
        self.what = what
        super().__init__("untrusted write to {}".format(what), domain=domain)


#: code slug -> fault class (every concrete fault type, plus the base).
FAULT_BY_CODE = {cls.code: cls for cls in (
    ProtectionFault, MemMapFault, StackBoundFault, UntrustedAccessFault,
    JumpTableFault, SafeStackOverflow, SafeStackUnderflow, OwnershipFault,
    ConfigFault)}


def fault_from_code(code, addr=None, domain=None, **context):
    """Rebuild the typed fault for a stable ``code`` slug.

    The inverse of reading ``fault.code``: the on-node runtimes report
    violations as numeric codes in trusted SRAM (see
    :mod:`repro.sfi.layout`); the host maps the number to its slug and
    calls this to get the same typed exception the hardware units raise
    directly.  *context* supplies the per-type extras when known
    (``owner``, ``stack_bound``, ``ptr``/``limit``, ``operation``,
    ``what``, ``reason``); missing extras degrade to ``None``/defaults,
    never to an anonymous :class:`ProtectionFault`.
    """
    cls = FAULT_BY_CODE.get(code)
    if cls is MemMapFault:
        return MemMapFault(addr, domain, context.get("owner"))
    if cls is StackBoundFault:
        return StackBoundFault(addr, domain, context.get("stack_bound", 0))
    if cls is UntrustedAccessFault:
        return UntrustedAccessFault(addr, domain)
    if cls is JumpTableFault:
        if "reason" in context:
            return JumpTableFault(addr or 0, domain=domain,
                                  reason=context["reason"])
        return JumpTableFault(addr or 0, domain=domain)
    if cls is SafeStackOverflow:
        return SafeStackOverflow(context.get("ptr", addr or 0),
                                 context.get("limit", 0))
    if cls is SafeStackUnderflow:
        return SafeStackUnderflow()
    if cls is OwnershipFault:
        return OwnershipFault(addr, domain, context.get("owner"),
                              context.get("operation", "free/change_own"))
    if cls is ConfigFault:
        return ConfigFault(context.get("what", "protection state"),
                           domain=domain)
    message = context.get("message",
                          "protection fault (code {!r})".format(code))
    return ProtectionFault(message, domain=domain, addr=addr)
