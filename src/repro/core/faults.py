"""Protection fault hierarchy.

Every violation Harbor can detect raises a distinct fault type.  On real
hardware these are the exceptions the MMC / domain tracker signal; in
the software-only system they are raised by the run-time check routines.
The simulator propagates them out of :meth:`Machine.run` (tests) or into
the kernel panic handler (OS integration), mirroring the paper's
"signal the invalid access" behaviour.
"""


class ProtectionFault(Exception):
    """Base class for all Harbor protection violations."""

    def __init__(self, message, domain=None, addr=None):
        self.domain = domain
        self.addr = addr
        detail = []
        if domain is not None:
            detail.append("domain={}".format(domain))
        if addr is not None:
            detail.append("addr=0x{:04x}".format(addr))
        if detail:
            message = "{} ({})".format(message, ", ".join(detail))
        super().__init__(message)


class MemMapFault(ProtectionFault):
    """A store targeted a block owned by a different domain."""

    def __init__(self, addr, domain, owner):
        self.owner = owner
        super().__init__(
            "illegal store into block owned by domain {}".format(owner),
            domain=domain, addr=addr)


class StackBoundFault(ProtectionFault):
    """A store targeted the run-time stack above the current stack bound
    (i.e. the caller domains' stack frames)."""

    def __init__(self, addr, domain, stack_bound):
        self.stack_bound = stack_bound
        super().__init__(
            "store above stack bound 0x{:04x}".format(stack_bound),
            domain=domain, addr=addr)


class UntrustedAccessFault(ProtectionFault):
    """A store by an untrusted domain targeted memory outside both the
    memory-map-protected region and its stack window (I/O registers,
    trusted globals, the register file)."""

    def __init__(self, addr, domain):
        super().__init__("store outside protected region and stack window",
                         domain=domain, addr=addr)


class JumpTableFault(ProtectionFault):
    """A cross-domain control transfer did not target a valid jump-table
    entry (bad base, bad domain index, or an empty slot)."""

    def __init__(self, target, domain=None, reason="not a jump table entry"):
        self.target = target
        super().__init__(
            "invalid cross-domain transfer to 0x{:05x}: {}".format(
                target, reason),
            domain=domain)


class SafeStackOverflow(ProtectionFault):
    """The safe stack grew into the run-time stack (or its limit)."""

    def __init__(self, ptr, limit):
        self.ptr = ptr
        self.limit = limit
        super().__init__(
            "safe stack overflow: ptr 0x{:04x} reached limit 0x{:04x}"
            .format(ptr, limit))


class SafeStackUnderflow(ProtectionFault):
    """A cross-domain return with no matching cross-domain call."""

    def __init__(self):
        super().__init__("safe stack underflow: unmatched return")


class OwnershipFault(ProtectionFault):
    """free()/change_own() attempted by a domain that does not own the
    segment (prevents hijacking or freeing foreign memory)."""

    def __init__(self, addr, domain, owner, operation):
        self.owner = owner
        self.operation = operation
        super().__init__(
            "{} of segment owned by domain {}".format(operation, owner),
            domain=domain, addr=addr)


class ConfigFault(ProtectionFault):
    """An untrusted domain attempted to reprogram protection state
    (memory-map configuration registers, safe stack pointer, ...)."""

    def __init__(self, what, domain=None):
        super().__init__("untrusted write to {}".format(what), domain=domain)
