"""The Safe Stack (paper §3.4): return addresses in protected memory.

A module can corrupt its own run-time stack; to keep control-flow
integrity, Harbor stores *all* return addresses in a separate stack in a
protected region.  Per the paper, the safe stack is "set up at the end
of all global data" and grows *up*, approaching the run-time stack which
grows down — overflow is detected when the safe-stack pointer reaches
its limit.

Two frame types live on it:

* a plain return frame (2 bytes: a flash word address) pushed for every
  function call, and
* a cross-domain frame (5 bytes: caller domain id, caller stack bound,
  return address) pushed by the cross-domain call mechanism — the
  paper's "total information that needs to be pushed to the stack is
  five bytes".

The stack can be backed by plain Python storage (golden model) or by
simulated SRAM (UMPU unit / software runtime state), exactly like the
memory map.
"""

from dataclasses import dataclass

from repro.core.faults import SafeStackOverflow, SafeStackUnderflow
from repro.core.memmap import BufferStorage

#: Bytes pushed by a cross-domain call: domain (1) + stack bound (2) +
#: return address (2).  One byte moves per clock, which is the paper's
#: five-cycle cross-domain call/return overhead.
CROSS_DOMAIN_FRAME_BYTES = 5

RETURN_FRAME_BYTES = 2


@dataclass(frozen=True)
class CrossDomainFrame:
    prev_domain: int
    prev_stack_bound: int
    ret_addr: int  # flash word address


class SafeStack:
    """A safe stack region [base, limit) growing upward."""

    def __init__(self, base, limit, storage=None):
        if limit <= base:
            raise ValueError("empty safe stack region")
        self.base = base
        self.limit = limit
        self.ptr = base  # next free byte
        self.storage = storage if storage is not None \
            else BufferStorage(limit)

    @property
    def depth_bytes(self):
        return self.ptr - self.base

    def reset(self):
        self.ptr = self.base

    # --- byte primitives (public: the UMPU units sequence partial
    # frames byte-by-byte over these) ------------------------------------
    def push_byte(self, value):
        if self.ptr >= self.limit:
            raise SafeStackOverflow(self.ptr, self.limit)
        self.storage.write_byte(self.ptr, value & 0xFF)
        self.ptr += 1

    def pop_byte(self):
        if self.ptr <= self.base:
            raise SafeStackUnderflow()
        self.ptr -= 1
        return self.storage.read_byte(self.ptr)

    # --- return-address frames ----------------------------------------------
    def push_return(self, ret_addr):
        """Push a 2-byte return address (flash word address)."""
        self.push_byte(ret_addr & 0xFF)
        self.push_byte((ret_addr >> 8) & 0xFF)

    def pop_return(self):
        hi = self.pop_byte()
        lo = self.pop_byte()
        return (hi << 8) | lo

    # --- cross-domain frames ---------------------------------------------------
    def push_cross_domain(self, prev_domain, prev_stack_bound, ret_addr):
        """Push the 5-byte cross-domain frame."""
        self.push_byte(prev_domain)
        self.push_byte(prev_stack_bound & 0xFF)
        self.push_byte((prev_stack_bound >> 8) & 0xFF)
        self.push_byte(ret_addr & 0xFF)
        self.push_byte((ret_addr >> 8) & 0xFF)

    def pop_cross_domain(self):
        ret_hi = self.pop_byte()
        ret_lo = self.pop_byte()
        sb_hi = self.pop_byte()
        sb_lo = self.pop_byte()
        prev_domain = self.pop_byte()
        return CrossDomainFrame(prev_domain, (sb_hi << 8) | sb_lo,
                                (ret_hi << 8) | ret_lo)
