"""Table 6 (paper Table `hwsize`): gate-count overhead of the hardware
extensions, from the structural area model, with the fixed-configuration
ablation the paper proposes."""

from repro.analysis.tables import render_table
from repro.umpu.area import (
    PAPER_TABLE6,
    core_growth,
    fixed_config_savings,
    gate_count_table,
    mmc_area,
    safe_stack_area,
    domain_tracker_area,
)


def build_table():
    rows = []
    for row in gate_count_table():
        paper_ext, paper_orig = PAPER_TABLE6[row.component]
        rows.append((row.component, row.extended, paper_ext,
                     row.original, paper_orig))
    table = render_table(
        "Table 6 -- Gate count overhead of hardware extensions",
        ("HW Component", "Ext (model)", "Ext (paper)",
         "Orig (model)", "Orig (paper)"),
        rows,
        note="core growth: {:.1%} modelled vs {:.1%} implied by the "
             "paper's table; fixed-configuration synthesis saves {} "
             "gates in the MMC (the paper's suggested optimization)"
             .format(core_growth(), (22498 - 16419) / 16419,
                     fixed_config_savings()))
    return rows, table


def build_structure_report():
    return "\n\n".join(unit().report() for unit in
                       (mmc_area, safe_stack_area, domain_tracker_area))


def test_table6_gate_counts(benchmark, show):
    rows, table = build_table()
    show(table)
    show(build_structure_report())
    benchmark(gate_count_table)
    for component, ext, paper_ext, _orig, _paper_orig in rows:
        assert abs(ext - paper_ext) / paper_ext < 0.02, component
    assert mmc_area().equiv_gates > safe_stack_area().equiv_gates \
        > domain_tracker_area().equiv_gates


def test_fixed_config_ablation(benchmark, show):
    def ablation():
        return {
            "configurable": gate_count_table(configurable=True)[2].extended,
            "fixed": gate_count_table(configurable=False)[2].extended,
        }
    result = benchmark(ablation)
    show(render_table(
        "Ablation: MMC gates, configurable vs fixed block size",
        ("Variant", "Gates"),
        list(result.items()),
        note="'we can eliminate this overhead if the processor is "
             "synthesized for a fixed block size' (paper section 5.2)"))
    assert result["fixed"] < result["configurable"]


if __name__ == "__main__":
    print(build_table()[1])
    print()
    print(build_structure_report())
