"""Section 5.2 sizing numbers: memory-map bytes for the paper's three
configurations plus a full block-size/mode sweep."""

from repro.analysis.sizing import (
    PAPER_SIZING,
    paper_sizing_points,
    sweep,
)
from repro.analysis.tables import render_table


def build_tables():
    points = paper_sizing_points()
    rows = [(p.label, p.covered_bytes, p.mode, p.table_bytes,
             "{:.2f}%".format(p.overhead_pct)) for p in points]
    table = render_table(
        "Section 5.2 -- Memory map sizing (paper: 256 / 140 / 70 bytes)",
        ("Configuration", "Covered B", "Mode", "Table B", "Overhead"),
        rows)
    grid = sweep()
    rows2 = [(p.label, p.table_bytes, "{:.2f}%".format(p.overhead_pct))
             for p in grid]
    table2 = render_table(
        "Sweep: table bytes vs block size and protection mode",
        ("Config", "Table B", "Overhead"), rows2,
        note="larger blocks shrink the table but coarsen protection; "
             "the paper picks 8-byte blocks")
    return points, table + "\n" + table2


def test_sizing_reproduces_paper_numbers(benchmark, show):
    points, tables = build_tables()
    show(tables)
    benchmark(paper_sizing_points)
    by_label = {p.label: p.table_bytes for p in points}
    assert by_label["full address space, multi-domain"] == \
        PAPER_SIZING["memmap_full_multi"]
    assert by_label["heap + safe stack, multi-domain"] == \
        PAPER_SIZING["memmap_heapstack_multi"]
    assert by_label["heap + safe stack, two-domain"] == \
        PAPER_SIZING["memmap_heapstack_two"]


if __name__ == "__main__":
    print(build_tables()[1])
