"""Table 2 (paper Table `mmap_config`): the memory-map configuration
registers, printed from the implementation's register file, plus
I/O-access throughput of the register device."""

from repro.analysis.tables import render_table
from repro.isa.registers import IoReg
from repro.sim import Memory
from repro.umpu import UmpuRegisters


def build_table():
    regs = UmpuRegisters()
    rows = [(name, desc) for name, desc in regs.REGISTER_TABLE]
    table = render_table(
        "Table 2 -- Memory Map Configuration Registers",
        ("Register", "Function"), rows,
        note="first four rows are the paper's Table 2; the rest are the"
             " extension state of sections 3.2-3.4")
    return rows, table


def test_table2_registers(benchmark, show):
    rows, table = build_table()
    show(table)
    paper_rows = {"mem_map_base", "mem_prot_bot", "mem_prot_top",
                  "mem_map_config"}
    assert paper_rows <= {name for name, _ in rows}

    mem = Memory()
    regs = UmpuRegisters().attach(mem)
    regs.mem_map_base = 0x0100
    addr = IoReg.MEM_MAP_BASE_L + 0x20

    def io_roundtrip():
        regs.io_write(addr, 0x34)
        assert regs.io_read(addr) == 0x34

    benchmark(io_roundtrip)


if __name__ == "__main__":
    print(build_table()[1])
