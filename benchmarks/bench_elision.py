"""Proof-directed check elision: cycles earned back by the analyzer.

The same logger workload — a 32-byte fill loop plus a masked-index
store into the domain's *static data span* — runs in three
configurations:

* **unprotected**: raw stores on a stock core (the floor)
* **SFI checked**: normal rewrite, every store through ``hb_st_*``
* **SFI elided**: ``load_module(..., elide=True)`` — the prover shows
  the span stores in-domain on every path, the rewriter drops their
  check calls, and the :class:`ElisionManifest` records the proofs

A differential harness interposes on the data bus in both SFI
configurations and records every architectural write below the safe
stack: elision must change *cycle counts only* — the write sequence,
the exported result and the span contents stay byte-identical.

Acceptance: the elided configuration earns back at least 10% of the
checked-store overhead (it actually earns back most of it — the
workload's checks are nearly all provable).
"""

from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.sfi import SfiSystem
from repro.sfi.layout import SfiLayout
from repro.sim import Machine
from repro.sim.bus import BusInterposer

MODULE = """
fill:
    ldi r26, lo8({SDATA})
    ldi r27, hi8({SDATA})
    ldi r24, 0xA5
    ldi r25, 32
f_loop:
    ldi r27, hi8({SDATA})  ; re-pin the page: loop invariant for absint
    st X+, r24             ; provable -> elided
    dec r25
    brne f_loop
    andi r24, 0x3F
    ldi r30, lo8({SDATA})
    ldi r31, hi8({SDATA})
    add r30, r24
    st Z, r24              ; provable -> elided
    ldi r24, 1
    ldi r25, 0
    ret
"""


def _layout():
    return SfiLayout(static_data_bytes=256, static_data_domains=1)


def _source():
    span = _layout().static_data_span(0)
    return MODULE.format(SDATA="0x{:04x}".format(span[0]))


class WriteRecorder(BusInterposer):
    """Records (addr, value) of every data write in ``[lo, hi)`` — the
    protected data region the modules store into.  Below ``lo`` live
    the register file / I/O / protection state the check stubs
    themselves touch (SREG save/restore), above ``hi`` the safe stack:
    neither is part of the module's architectural write sequence."""

    name = "write-recorder"

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi
        self.writes = []

    def on_write(self, bus, addr, value, kind):
        if self.lo <= addr < self.hi:
            self.writes.append((addr, value))
        return None


def run_unprotected():
    program = assemble(".org 0x100\n" + _source(), "logger_base")
    machine = Machine(program)
    return machine.call("fill", max_cycles=100000)


def _run_sfi(elide):
    layout = _layout()
    system = SfiSystem(layout=layout)
    module = system.load_module(assemble(_source(), "logger"), "logger",
                                exports=("fill",), elide=elide)
    recorder = WriteRecorder(layout.prot_bottom, layout.safe_stack_base)
    system.machine.bus.add_interposer(recorder)
    result, cycles = system.call_export("logger", "fill",
                                        max_cycles=100000)
    span = layout.static_data_span(0)
    contents = bytes(system.machine.read_bytes(span[0], span[1] - span[0]))
    return {
        "cycles": cycles,
        "result": result,
        "writes": recorder.writes,
        "span": contents,
        "manifest": module.manifest,
        "stats": module.rewrite_stats,
    }


def build_table():
    base = run_unprotected()
    checked = _run_sfi(elide=False)
    elided = _run_sfi(elide=True)

    # differential soundness: identical architectural behavior
    assert checked["result"] == elided["result"]
    assert checked["writes"] == elided["writes"]
    assert checked["span"] == elided["span"]

    manifest = elided["manifest"]
    assert manifest is not None
    saved = checked["cycles"] - elided["cycles"]
    overhead = checked["cycles"] - base
    rows = [
        ("unprotected", base, "1.00x", "-"),
        ("SFI checked", checked["cycles"],
         "{:.2f}x".format(checked["cycles"] / base), "-"),
        ("SFI elided", elided["cycles"],
         "{:.2f}x".format(elided["cycles"] / base),
         "{} of {} checks".format(manifest.elided_checks,
                                  checked["stats"]["stores"])),
    ]
    table = render_table(
        "Proof-directed check elision: logger workload "
        "(33 span stores/pass)",
        ("Configuration", "Cycles/pass", "Relative", "Elided"),
        rows,
        note="elision earned back {} of {} overhead cycles ({:.0f}%); "
             "write sequences, result and span contents verified "
             "byte-identical between checked and elided runs".format(
                 saved, overhead, 100.0 * saved / overhead))
    return {"base": base, "checked": checked["cycles"],
            "elided": elided["cycles"], "saved": saved,
            "overhead": overhead,
            "elided_checks": manifest.elided_checks}, table


def test_elision_earns_back_overhead(benchmark, show):
    from conftest import once
    result, table = once(benchmark, build_table)
    show(table)
    assert result["elided"] < result["checked"]
    # acceptance floor: >= 10% of the checked-store overhead elided
    assert result["saved"] >= 0.10 * result["overhead"]
    assert result["elided_checks"] >= 2


if __name__ == "__main__":
    print(build_table()[1])
