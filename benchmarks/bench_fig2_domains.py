"""Figure 2 (paper Figure `prot_domains`): protection domains as
fragmented regions of one address space.

The figure is a diagram; its executable reproduction loads several
modules, lets them allocate interleaved memory, and renders the
resulting block-ownership map — visibly fragmented per domain yet
logically partitioned.
"""

from repro.analysis.tables import render_table
from repro.core.encoding import TRUSTED_DOMAIN
from repro.core.harbor import HarborSystem


def build_figure():
    system = HarborSystem()
    a = system.create_domain("moduleA")
    b = system.create_domain("moduleB")
    c = system.create_domain("moduleC")
    # interleave allocations so every domain ends up fragmented
    for _round in range(3):
        for domain in (a, b, c):
            system.malloc(24, domain)
    rows = [(hex(start), nblocks,
             "trusted/free" if owner == TRUSTED_DOMAIN
             else "domain {}".format(owner))
            for start, nblocks, owner in system.domain_layout()
            if start < 0x400]
    table = render_table(
        "Figure 2 -- Protection domains (fragmented, block-granular)",
        ("Segment start", "Blocks", "Owner"), rows)
    strip = []
    for start, nblocks, owner in system.domain_layout():
        if start >= 0x400:
            break
        ch = "." if owner == TRUSTED_DOMAIN else str(owner)
        strip.append(ch * nblocks)
    picture = "block map 0x200..0x400: [{}]".format("".join(strip))
    return system, table + "\n" + picture


def test_fig2_domain_fragmentation(benchmark, show):
    from conftest import once
    system, figure = once(benchmark, build_figure)
    show(figure)
    layout = system.domain_layout()
    per_domain = {}
    for start, _n, owner in layout:
        per_domain.setdefault(owner, []).append(start)
    # every module owns multiple non-adjacent segments (fragmentation)
    for did in (0, 1, 2):
        assert len(per_domain[did]) == 3
    # yet the map partitions the space: each block has one owner
    cfg = system.memmap.config
    covered = sum(n for _s, n, _o in layout)
    assert covered == cfg.nblocks


if __name__ == "__main__":
    print(build_figure()[1])
