#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one
run (the script form of the bench suite).

Run:  python benchmarks/run_all.py [--attribution] [--metrics OUT.json]

``--attribution`` additionally prints, for every benchmark that
supports it (``build_attribution`` hook), the per-domain cycle
attribution of its workload — the observability layer's view of where
the measured cycles went (see docs/observability.md).

``--metrics OUT.json`` runs a representative UMPU workload with the
metrics registry attached after the tables and writes the registry's
schema-versioned JSON (see ``repro.trace.metrics`` for the schema) to
OUT.json.  Stdout is byte-identical with or without the flag; the only
difference is the file and a trailing stderr note.
"""

import argparse
import importlib
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

MODULES = [
    ("bench_table1_encoding", "Table 1"),
    ("bench_table2_registers", "Table 2"),
    ("bench_table3_microbm", "Table 3"),
    ("bench_table4_malloc", "Table 4"),
    ("bench_table5_swlib", "Table 5"),
    ("bench_table6_gates", "Table 6"),
    ("bench_fig2_domains", "Figure 2"),
    ("bench_fig3_mmc_intercept", "Figure 3"),
    ("bench_fig4_mmc_timing", "Figure 4"),
    ("bench_fig5_cross_domain", "Figure 5"),
    ("bench_sizing_sweep", "Section 5.2 sizing"),
    ("bench_macro_overhead", "Application-level overhead (M1)"),
    ("bench_loadtime", "Load-time pipeline costs"),
    ("bench_ablation_blocks", "Ablation: block size"),
    ("bench_safe_stack_depth", "Safe-stack sizing"),
    ("bench_verifier_space", "Verifier design space"),
    ("bench_elision", "Proof-directed check elision"),
    ("bench_fuzz_corpus", "Hostile-corpus soundness campaign"),
    ("bench_replay_overhead", "Timeline record-mode overhead"),
    ("bench_transval", "Translation validation / JIT readiness"),
    ("bench_raceck", "Interrupt-race analysis / latency certificate"),
]

#: modules skipped under ``--quick``: corpus generators / stress
#: workloads whose runtime buys no additional table or figure
QUICK_EXCLUDE = {
    "bench_fuzz_corpus",
}


def collect_metrics(path, iterations=8):
    """Run the Table-3 UMPU workload with the metrics registry attached
    and write its JSON export (schema in ``repro.trace.metrics``)."""
    from repro.analysis.microbench import build_umpu_bench
    from repro.trace import write_metrics

    machine, _probe, _jt = build_umpu_bench()
    registry = machine.attach_metrics()
    for _ in range(iterations):
        machine.enter_domain(0)
        machine.call("store_fn")
        machine.enter_trusted()
        machine.call("xcall_fn")
    registry.sample(machine)
    write_metrics(path, registry)
    return registry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attribution", action="store_true",
                        help="also dump each benchmark's per-domain "
                             "cycle attribution where supported")
    parser.add_argument("--metrics", default=None, metavar="OUT.json",
                        help="run the UMPU metrics workload after the "
                             "tables and write the registry JSON here "
                             "(stdout stays byte-identical)")
    parser.add_argument("--quick", action="store_true",
                        help="skip the corpus/stress workloads ({})"
                        .format(", ".join(sorted(QUICK_EXCLUDE))))
    args = parser.parse_args(argv)
    for name, label in MODULES:
        if args.quick and name in QUICK_EXCLUDE:
            continue
        module = importlib.import_module(name)
        print()
        print("#" * 70)
        print("# {}".format(label))
        print("#" * 70)
        if hasattr(module, "build_table"):
            print(module.build_table()[1])
        if hasattr(module, "build_tables"):
            print(module.build_tables()[1])
        if hasattr(module, "build_figure"):
            print(module.build_figure()[1])
        if hasattr(module, "build_timing"):
            print(module.build_timing()[2])
            print()
            print(module.build_translation()[1])
        if hasattr(module, "build_structure_report"):
            print()
            print(module.build_structure_report())
        if args.attribution and hasattr(module, "build_attribution"):
            print()
            print(module.build_attribution()[1])
    if args.metrics:
        registry = collect_metrics(args.metrics)
        print("# metrics -> {} ({} metrics)".format(args.metrics,
                                                    len(registry)),
              file=sys.stderr)


if __name__ == "__main__":
    main()
