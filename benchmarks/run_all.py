#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation in one
run (the script form of the bench suite).

Run:  python benchmarks/run_all.py [--attribution]

``--attribution`` additionally prints, for every benchmark that
supports it (``build_attribution`` hook), the per-domain cycle
attribution of its workload — the observability layer's view of where
the measured cycles went (see docs/observability.md).
"""

import argparse
import importlib
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

MODULES = [
    ("bench_table1_encoding", "Table 1"),
    ("bench_table2_registers", "Table 2"),
    ("bench_table3_microbm", "Table 3"),
    ("bench_table4_malloc", "Table 4"),
    ("bench_table5_swlib", "Table 5"),
    ("bench_table6_gates", "Table 6"),
    ("bench_fig2_domains", "Figure 2"),
    ("bench_fig3_mmc_intercept", "Figure 3"),
    ("bench_fig4_mmc_timing", "Figure 4"),
    ("bench_fig5_cross_domain", "Figure 5"),
    ("bench_sizing_sweep", "Section 5.2 sizing"),
    ("bench_macro_overhead", "Application-level overhead (M1)"),
    ("bench_loadtime", "Load-time pipeline costs"),
    ("bench_ablation_blocks", "Ablation: block size"),
    ("bench_safe_stack_depth", "Safe-stack sizing"),
    ("bench_verifier_space", "Verifier design space"),
]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attribution", action="store_true",
                        help="also dump each benchmark's per-domain "
                             "cycle attribution where supported")
    args = parser.parse_args(argv)
    for name, label in MODULES:
        module = importlib.import_module(name)
        print()
        print("#" * 70)
        print("# {}".format(label))
        print("#" * 70)
        if hasattr(module, "build_table"):
            print(module.build_table()[1])
        if hasattr(module, "build_tables"):
            print(module.build_tables()[1])
        if hasattr(module, "build_figure"):
            print(module.build_figure()[1])
        if hasattr(module, "build_timing"):
            print(module.build_timing()[2])
            print()
            print(module.build_translation()[1])
        if hasattr(module, "build_structure_report"):
            print()
            print(module.build_structure_report())
        if args.attribution and hasattr(module, "build_attribution"):
            print()
            print(module.build_attribution()[1])


if __name__ == "__main__":
    main()
