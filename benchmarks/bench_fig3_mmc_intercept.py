"""Figure 3 (paper Figure `mmcramcpu`): the MMC sits between CPU and
data memory.

Executable reproduction: run one store on the UMPU machine with a bus
tracer attached and show that the transaction flowed CPU -> MMC (check)
-> RAM, and that a failing check never reaches RAM.
"""

from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.core.faults import MemMapFault
from repro.umpu import HarborLayout, UmpuMachine

SRC = """
store_fn:
    movw r26, r24
    st X, r22
    ret
"""


def build_figure():
    layout = HarborLayout()
    machine = UmpuMachine(assemble(SRC), layout=layout)
    machine.memmap.set_segment(0x0400, 8, 0)
    machine.attach_tracer()
    lines = []

    machine.enter_domain(0)
    machine.call("store_fn", 0x0400, ("u8", 0x5A))
    lines.append(("st 0x0400 (owned)", "CPU -> MMC: check", "pass",
                  "RAM[0x0400] = 0x5A",
                  "stall +{}".format(1)))

    machine.reset()
    machine.enter_domain(0)
    try:
        machine.call("store_fn", 0x0500, ("u8", 0x66))
        verdict = "BUG: passed"
    except MemMapFault:
        verdict = "exception"
    lines.append(("st 0x0500 (foreign)", "CPU -> MMC: check", verdict,
                  "RAM[0x0500] = 0x{:02X} (unchanged)".format(
                      machine.memory.read_data(0x0500)), "-"))

    table = render_table(
        "Figure 3 -- MMC between CPU and data memory",
        ("CPU issues", "Path", "Check", "Memory effect", "Cycles"),
        lines)
    return machine, table


def test_fig3_mmc_interception(benchmark, show):
    from conftest import once
    machine, figure = once(benchmark, build_figure)
    show(figure)
    assert machine.mmc.checked_stores >= 1
    assert machine.mmc.faults == 1
    assert machine.memory.read_data(0x0400) == 0x5A
    assert machine.memory.read_data(0x0500) == 0x00


if __name__ == "__main__":
    print(build_figure()[1])
