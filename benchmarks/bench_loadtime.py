"""Load-time pipeline costs: code-size blowup and verification effort.

The paper keeps module code small by *not inlining* the run-time checks
("to minimize the module code size, the run-time checks are not
inlined").  This bench quantifies what that buys: the rewritten-size
blowup factor as a function of store density, and the (constant-state)
verifier's work per instruction — the on-node admission cost.
"""

from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.sfi.layout import SfiLayout
from repro.sfi.rewriter import Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier

LAYOUT = SfiLayout()
RUNTIME = build_runtime(LAYOUT)


def synth_module(n_instr, store_every):
    """A synthetic module of *n_instr* body instructions where every
    *store_every*-th instruction is a store."""
    body = []
    for i in range(n_instr):
        if store_every and i % store_every == 0:
            body.append("    st X+, r5")
        else:
            body.append("    add r16, r17")
    return "entry:\n" + "\n".join(body) + "\n    ret\n"


def build_table():
    rewriter = Rewriter(RUNTIME.symbols, LAYOUT)
    verifier = Verifier(RUNTIME.symbols, LAYOUT)
    rows = []
    results = {}
    for label, store_every in (("no stores", 0), ("1 in 8", 8),
                               ("1 in 4", 4), ("1 in 2", 2),
                               ("every instr", 1)):
        module = assemble(synth_module(64, store_every), "synth")
        result = rewriter.rewrite(module, LAYOUT.jt_end,
                                  exports=("entry",))
        report = verifier.verify(result.program, result.start,
                                 result.end)
        blowup = result.stats["size_out"] / result.stats["size_in"]
        rows.append((label, result.stats["size_in"],
                     result.stats["size_out"],
                     "{:.2f}x".format(blowup), result.stats["stores"],
                     report.instructions))
        results[label] = blowup
    table = render_table(
        "Load-time costs: rewritten size vs store density "
        "(64-instruction module)",
        ("Store density", "In (B)", "Out (B)", "Blowup", "Stores",
         "Verified instrs"),
        rows,
        note="checks are calls, not inlined sequences: even an "
             "all-stores module stays at 5x (inlining the ~35-"
             "instruction checker sequence would exceed 15x)")
    return results, table


def test_loadtime_blowup(benchmark, show):
    from conftest import once
    results, table = once(benchmark, build_table)
    show(table)
    assert results["no stores"] < 1.5      # prologue/epilogue only
    assert results["every instr"] <= 5.0   # calls, not inlined checks
    # blowup grows monotonically with store density
    order = ["no stores", "1 in 8", "1 in 4", "1 in 2", "every instr"]
    values = [results[k] for k in order]
    assert values == sorted(values)


def test_bench_rewrite_throughput(benchmark):
    """Rewriter throughput on a mid-sized module."""
    rewriter = Rewriter(RUNTIME.symbols, LAYOUT)
    module = assemble(synth_module(128, 4), "synth")

    def rewrite():
        return rewriter.rewrite(module, LAYOUT.jt_end,
                                exports=("entry",))

    result = benchmark(rewrite)
    assert result.stats["stores"] == 32


def test_bench_verify_throughput(benchmark):
    rewriter = Rewriter(RUNTIME.symbols, LAYOUT)
    verifier = Verifier(RUNTIME.symbols, LAYOUT)
    module = assemble(synth_module(128, 4), "synth")
    result = rewriter.rewrite(module, LAYOUT.jt_end, exports=("entry",))

    def verify():
        return verifier.verify(result.program, result.start, result.end)

    report = benchmark(verify)
    assert report.instructions > 128


if __name__ == "__main__":
    print(build_table()[1])
