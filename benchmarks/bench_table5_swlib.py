"""Table 5 (paper Table `swlibsize`): FLASH and RAM footprint of the
software library — measured from the actually-assembled runtime."""

from repro.analysis.sizing import PAPER_SIZING, PAPER_TABLE5, \
    measure_library
from repro.analysis.tables import render_table
from repro.sfi.runtime_asm import build_runtime


def build_table():
    measured = measure_library()
    rows = []
    for name, (paper_flash, paper_ram) in PAPER_TABLE5.items():
        flash, ram = measured[name]
        rows.append((name, flash, paper_flash, ram, paper_ram))
    table = render_table(
        "Table 5 -- FLASH and RAM overhead of software library",
        ("SW Component", "FLASH meas", "FLASH paper", "RAM meas",
         "RAM paper"),
        rows,
        note="library code total: {} B measured vs {} B paper "
             "({:.2f}% vs 2.8% of 128 KiB flash); our jump table uses"
             " 4-byte jmp entries (paper: 2-byte), hence 4096 vs 2048"
             .format(measured["total_code_bytes"],
                     PAPER_SIZING["library_code_bytes"],
                     measured["code_pct"]))
    return measured, table


def test_table5_library_size(benchmark, show):
    from conftest import once
    measured, table = once(benchmark, build_table)
    show(table)
    # shape: jump table has no RAM; memory map RAM dominated by table +
    # safe stack; total code in the same ballpark (within 3x) of paper
    assert measured["Jump Table"][1] == 0
    assert measured["Memory Map"][1] >= 176
    assert measured["total_code_bytes"] < \
        2 * PAPER_SIZING["library_code_bytes"]
    assert measured["code_pct"] < 3.0


def test_bench_runtime_assembly(benchmark):
    """Assembling the whole runtime (the toolchain under load)."""
    program = benchmark(build_runtime)
    assert program.code_bytes > 800


if __name__ == "__main__":
    print(build_table()[1])
