#!/usr/bin/env python3
"""Record-mode overhead of the time-travel timeline.

The timeline recorder (``repro.trace.timeline``) keeps the core on the
threaded-dispatch fast loop: the keyframe check rides the run loop's
existing budget comparison (``bound = min(limit, watermark)``), so the
per-instruction cost of an armed recorder is zero and the only overhead
is the keyframe capture itself (one data-space copy every *interval*
cycles; flash is shared between keyframes until a flash write).

This harness measures wall-clock instructions/sec of representative
workloads bare vs. with a recording timeline attached at the default
keyframe interval, and asserts the ratio stays under
``MAX_OVERHEAD_RATIO`` (2x) — the acceptance bound for "recording is
cheap enough to leave on".  ``--compare BENCH_host.json`` additionally
gates record-mode instr/s against the host-speed baseline file so a
capture-path regression shows up even when the bare path regressed too.

Run::

    PYTHONPATH=src python benchmarks/bench_replay_overhead.py
    PYTHONPATH=src python benchmarks/bench_replay_overhead.py --quick \\
        --compare benchmarks/BENCH_host.json
    PYTHONPATH=src python benchmarks/bench_replay_overhead.py \\
        --artifacts out/   # CI: record macro workload, seek, export
"""

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro.asm import assemble  # noqa: E402
from repro.analysis.tables import render_table  # noqa: E402
from repro.core.faults import ProtectionFault  # noqa: E402

import bench_host_speed as host  # noqa: E402

#: record-mode wall-clock slowdown budget at the default interval
MAX_OVERHEAD_RATIO = 2.0

#: (name, bench_host_speed builder, iterations) — the pure fast-loop
#: micro workload plus the application-level macro pipeline
WORKLOADS = [
    ("micro_alu", host.build_micro_alu, 6000),
    ("macro_unprot", host.build_macro_unprot, 30),
]

QUICK_SCALE = 0.25


def _median_ips(build, iterations, repeats, record):
    """Median instructions/sec of one workload, optionally recording."""
    machine, run_pass = build(iterations)
    timeline = machine.attach_timeline() if record else None
    core = machine.core
    run_pass()  # cold pass
    times = []
    keyframes = 0
    for _ in range(repeats):
        before_i = core.instret
        t0 = time.perf_counter()
        run_pass()
        t1 = time.perf_counter()
        times.append((t1 - t0) / max(1, core.instret - before_i))
    if timeline is not None:
        keyframes = len(timeline.keyframes)
        timeline.detach()
    return 1.0 / statistics.median(times), keyframes


def measure(repeats=3, scale=1.0):
    results = {}
    for name, build, iterations in WORKLOADS:
        n = max(1, int(iterations * scale))
        # record first, bare second: interpreter warm-up then favours
        # the bare run, biasing the ratio AGAINST the 2x gate
        rec_ips, keyframes = _median_ips(build, n, repeats, record=True)
        bare_ips, _ = _median_ips(build, n, repeats, record=False)
        results[name] = {
            "bare_ips": round(bare_ips, 1),
            "record_ips": round(rec_ips, 1),
            "overhead": round(bare_ips / rec_ips, 3),
            "keyframes": keyframes,
        }
    return results


def build_table(repeats=3, scale=1.0):
    """(results, text) — run_all.py hook."""
    results = measure(repeats=repeats, scale=scale)
    rows = []
    for name, r in results.items():
        rows.append((name, "{:,.0f}".format(r["bare_ips"]),
                     "{:,.0f}".format(r["record_ips"]),
                     "{:.2f}x".format(r["overhead"]), r["keyframes"]))
    text = render_table(
        "Timeline record-mode overhead (default keyframe interval)",
        ("Workload", "Bare instr/s", "Recording instr/s", "Overhead",
         "Keyframes"),
        rows,
        note="budget: < {:.1f}x wall-clock (keyframe check rides the "
             "run-loop budget comparison)".format(MAX_OVERHEAD_RATIO))
    return results, text


# ----------------------------------------------------------------------
FAULT_SRC = """
entry:
    ldi r18, 0x55
    ldi r16, 40
warm:
    inc r17
    dec r16
    brne warm
    sts 0x0700, r18
    break
"""


def export_artifacts(directory, interval=None):
    """CI artifact export: record the macro pipeline, seek to a mid-run
    cycle, replay a synthetic UMPU fault, and write the timeline +
    speedscope JSON documents.  Returns the written paths."""
    from repro.trace import BlockHeat, write_speedscope
    from repro.umpu import HarborLayout, UmpuMachine

    os.makedirs(directory, exist_ok=True)
    paths = []

    # -- macro workload: record, seek mid-run, export ------------------
    machine, run_pass = host.build_macro_unprot(20)
    timeline = machine.attach_timeline(interval=interval)
    run_pass()
    timeline.finalize()
    start = timeline.keyframes[0].cycles
    end = timeline.end_cycle
    mid = (start + end) // 2
    timeline.seek(mid)
    assert start <= timeline.machine.core.cycles <= end
    window = timeline.window(cycle=mid, before=8)
    assert window, "mid-run replay window must not be empty"
    path = os.path.join(directory, "timeline-macro.json")
    timeline.write(path)
    paths.append(path)
    heat = BlockHeat.from_machine(machine).feed(timeline)
    path = os.path.join(directory, "speedscope-macro.json")
    write_speedscope(path, heat, name="macro_unprot")
    paths.append(path)

    # -- synthetic fault: record, replay to the fault ------------------
    layout = HarborLayout()
    fm = UmpuMachine(assemble(FAULT_SRC, "flt"), layout=layout)
    fm.memmap.set_segment(0x0700, 8, 1)  # foreign block: store faults
    fm.tracker.register_code_region(0, 0, layout.jt_base)
    fm.enter_domain(0)
    fault_timeline = fm.attach_timeline(interval=16)
    try:
        fm.call("entry")
    except ProtectionFault:
        pass
    else:
        raise AssertionError("synthetic fault workload must fault")
    assert fault_timeline.faults, "fault must be pinned as a keyframe"
    window = fault_timeline.window(before=6)
    assert window[-1]["fault"] is not None, \
        "replayed fault window must end at the faulting instruction"
    path = os.path.join(directory, "timeline-fault.json")
    fault_timeline.write(path)
    paths.append(path)
    return paths


# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(
        description="timeline record-mode overhead benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller workloads")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default=None, metavar="OUT.json",
                        help="write the results JSON here")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="BENCH_host.json baseline: also gate "
                             "record-mode instr/s against it")
    parser.add_argument("--max-regression", type=float, default=0.50,
                        help="allowed record-mode ips drop vs the "
                             "baseline's bare ips (default 0.50 — the "
                             "2x overhead budget)")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="export CI artifacts (timeline + "
                             "speedscope JSON) instead of timing")
    args = parser.parse_args(argv)

    if args.artifacts:
        for path in export_artifacts(args.artifacts):
            print("artifact -> {}".format(path))
        return 0

    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else 3)
    scale = QUICK_SCALE if args.quick else 1.0
    results, text = build_table(repeats=repeats, scale=scale)
    print(text)

    failed = []
    for name, r in results.items():
        if r["overhead"] > MAX_OVERHEAD_RATIO:
            failed.append("{} overhead {:.2f}x > {:.1f}x".format(
                name, r["overhead"], MAX_OVERHEAD_RATIO))
    if args.compare and os.path.exists(args.compare):
        with open(args.compare) as fh:
            baseline = json.load(fh)
        for name, r in results.items():
            base = baseline.get("workloads", {}).get(name)
            if base is None:
                continue
            floor = base["ips"] * (1.0 - args.max_regression)
            verdict = "ok" if r["record_ips"] >= floor else "REGRESSED"
            print("{:14s} baseline(bare) {:>12,.0f}  record "
                  "{:>12,.0f}  floor {:>12,.0f}  {}".format(
                      name, base["ips"], r["record_ips"], floor, verdict))
            if r["record_ips"] < floor:
                failed.append("{} record-mode ips below baseline floor"
                              .format(name))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"schema": 1, "workloads": results}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote {}".format(args.out))
    if failed:
        print("FAIL: " + "; ".join(failed))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
