"""Translation validation: certify cost and JIT readiness.

Loads the example modules and the elision logger workload through
``load_module(certify=True)``, measuring what certification costs at
load time (wall-clock per module, matched lines, symbolic proofs) —
then executes the logger workload under a timeline recording and
attributes every replayed cycle to its basic block, classifying each
module block with the symbolic evaluator.  The resulting *hot-cycle
translatable fraction* is the entry ticket for the block-JIT roadmap
item: the fraction of module execution the JIT could translate today.

Acceptance: every module certifies (zero HL017), and at least 50% of
executed module-block cycles land in pure/translatable blocks.
"""

import time

from repro.analysis.static.symexec import (
    CLASS_UNTRANSLATABLE,
    classify_lines,
)
from repro.analysis.static.transval import validate_translation
from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.asm.assembler import Assembler
from repro.asm.disassembler import disassemble_flash
from repro.sfi import SfiSystem
from repro.trace.timeline import BlockHeat

from bench_elision import _layout, _source

EXAMPLES = [
    ("clean_sensor", "examples/modules/clean_sensor.s",
     ("sample", "tally", "report"), False),
    ("static_logger", "examples/modules/static_logger.s",
     ("logger_fill", "logger_set", "logger_tally"), True),
]


def _certify_example(path, exports, elide):
    system = SfiSystem(layout=_layout())
    asm = Assembler(symbols=system.kernel_symbols())
    with open(path) as handle:
        program = asm.assemble(handle.read(), name=path)
    t0 = time.perf_counter()
    module = system.load_module(
        program, path.rsplit("/", 1)[-1].rsplit(".", 1)[0],
        exports=exports, elide=elide, certify=True)
    elapsed = time.perf_counter() - t0
    # re-run validation alone for the certify-only share
    t1 = time.perf_counter()
    validate_translation(
        program, system.machine.memory.read_flash_word,
        module.start, module.end, system.layout,
        system.runtime.symbols, exports=exports,
        manifest=module.manifest, module=module.name)
    certify_ms = (time.perf_counter() - t1) * 1000.0
    return module, elapsed * 1000.0, certify_ms


def _hot_fraction():
    """Execute the logger workload under a timeline and classify every
    module-block cycle."""
    system = SfiSystem(layout=_layout())
    module = system.load_module(assemble(_source(), "logger"), "logger",
                                exports=("fill",), elide=True,
                                certify=True)
    timeline = system.attach_timeline(interval=4096)
    system.call_export("logger", "fill", max_cycles=100000)
    timeline.finalize()
    heat = BlockHeat.from_system(system).feed(timeline)

    read_word = system.machine.memory.read_flash_word
    classes = {}
    module_cycles = 0
    translatable_cycles = 0
    for (idx, _domain), cell in heat.cells.items():
        if idx is None:
            continue
        start, end = heat.blocks[idx][:2]
        if not (module.start <= start < module.end):
            continue    # trusted runtime / kernel block: not JIT input
        if idx not in classes:
            lines = disassemble_flash(read_word, start // 2,
                                      (end - start) // 2)
            classes[idx] = classify_lines(lines)[0]
        module_cycles += cell.cycles
        if classes[idx] != CLASS_UNTRANSLATABLE:
            translatable_cycles += cell.cycles
    fraction = (translatable_cycles / module_cycles
                if module_cycles else 0.0)
    return module, fraction, module_cycles, heat.total_cycles


def build_table():
    rows = []
    reports = []
    for name, path, exports, elide in EXAMPLES:
        module, load_ms, certify_ms = _certify_example(
            path, exports, elide)
        report = module.certification
        reports.append(report)
        rows.append((name, "{:.1f}".format(load_ms),
                     "{:.1f}".format(certify_ms),
                     "{}/{}".format(report.semantic_proofs,
                                    report.store_checks),
                     report.elided_sites,
                     "{}/{}".format(report.translatable_blocks,
                                    len(report.blocks))))

    logger, fraction, module_cycles, total_cycles = _hot_fraction()
    reports.append(logger.certification)
    rows.append(("logger (executed)", "-", "-",
                 "{}/{}".format(logger.certification.semantic_proofs,
                                logger.certification.store_checks),
                 logger.certification.elided_sites,
                 "{}/{}".format(logger.certification.translatable_blocks,
                                len(logger.certification.blocks))))

    table = render_table(
        "Translation validation: certify cost and JIT readiness",
        ("Module", "Load ms", "Certify ms", "Proved stores",
         "Elided", "Translatable blocks"),
        rows,
        note="logger workload executed {} module-block cycles of {} "
             "replayed; {:.0f}% of module-block cycles are in "
             "JIT-translatable blocks".format(
                 module_cycles, total_cycles, 100.0 * fraction))
    return {
        "certified": all(r.ok for r in reports),
        "mismatches": sum(r.mismatches for r in reports),
        "translatable_fraction": fraction,
        "module_cycles": module_cycles,
    }, table


def test_certify_cost_and_jit_readiness(benchmark, show):
    from conftest import once
    result, table = once(benchmark, build_table)
    show(table)
    assert result["certified"] and result["mismatches"] == 0
    # JIT-readiness acceptance: >= 50% of executed module-block
    # cycles are translatable
    assert result["translatable_fraction"] >= 0.5
    assert result["module_cycles"] > 0


if __name__ == "__main__":
    print(build_table()[1])
