"""Ablation: block-size tuning (paper §2.2: "the memory map can be
tuned to match available resources and protection requirements").

Larger blocks shrink the table but waste memory to internal
fragmentation (allocations round up to blocks) and coarsen protection.
This bench runs an identical allocation workload on the golden heap for
several block sizes and reports the three-way trade-off.
"""

from repro.analysis.tables import render_table
from repro.core.heap import HarborHeap
from repro.core.memmap import MemMapConfig, MemoryMap

#: a mixed SOS-ish allocation workload (message headers, packets,
#: neighbour tables, ...), sizes in bytes
WORKLOAD = [6, 12, 3, 24, 16, 9, 30, 4, 18, 7, 26, 5, 14, 11, 22, 2,
            28, 8, 20, 10] * 4


def run_workload(block_size):
    cfg = MemMapConfig(prot_bottom=0x200, prot_top=0xCFF,
                       block_size=block_size, mode="multi")
    heap = HarborHeap(MemoryMap(cfg), 0x200, 0xC00)
    requested = 0
    allocated = 0
    failures = 0
    live = []
    for i, size in enumerate(WORKLOAD):
        ptr = heap.malloc(size, i % 7)
        if ptr is None:
            failures += 1
            continue
        requested += size
        allocated += heap.allocation_size(ptr)
        live.append((ptr, i % 7))
        if len(live) > 24:  # steady-state: free the oldest
            addr, owner = live.pop(0)
            requested -= 0  # bookkeeping is for peak usage
            heap.free(addr, owner)
    heap.check_invariants()
    frag_pct = 100.0 * (allocated - requested) / allocated
    return {
        "table_bytes": cfg.table_bytes,
        "frag_pct": frag_pct,
        "failures": failures,
    }


def build_table():
    results = {}
    rows = []
    for block_size in (4, 8, 16, 32, 64):
        r = run_workload(block_size)
        results[block_size] = r
        rows.append((block_size, r["table_bytes"],
                     "{:.1f}%".format(r["frag_pct"]), r["failures"]))
    table = render_table(
        "Ablation: block size vs memory-map size vs fragmentation",
        ("Block (B)", "Table (B)", "Internal frag", "Alloc failures"),
        rows,
        note="the paper's 8-byte choice sits at the knee: halving the "
             "table again (16 B blocks) nearly doubles fragmentation, "
             "while 4 B blocks double the table for a ~12-point gain")
    return results, table


def test_block_size_tradeoff(benchmark, show):
    from conftest import once
    results, table = once(benchmark, build_table)
    show(table)
    # table shrinks monotonically with block size...
    tables = [results[b]["table_bytes"] for b in (4, 8, 16, 32, 64)]
    assert tables == sorted(tables, reverse=True)
    # ...while fragmentation grows monotonically
    frags = [results[b]["frag_pct"] for b in (4, 8, 16, 32, 64)]
    assert frags == sorted(frags)
    # the paper's 8-byte config keeps fragmentation modest
    assert results[8]["frag_pct"] < 35
    assert results[8]["failures"] == 0


if __name__ == "__main__":
    print(build_table()[1])
