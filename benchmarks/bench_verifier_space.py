"""The verifier design space (paper §4 future work): inlined checks vs
called checks, measured.

Two (rewriter, verifier) pairs implement the same protection rule:

* **called** (the paper's shipped design): stores become calls into the
  trusted checker; the verifier is a constant-state linear scan.
* **inlined** (`repro.sfi.inline`): the check template is pasted before
  every raw store; the verifier pattern-matches the template and forbids
  control transfers into it.

The bench quantifies the trade: per-store cycles vs module size, on the
same source module at several store densities.
"""

from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.sfi.inline import InlineRewriter, TemplateVerifier
from repro.sfi.layout import SfiLayout
from repro.sfi.rewriter import Rewriter
from repro.sfi.runtime_asm import build_runtime
from repro.sfi.verifier import Verifier
from repro.sim import Machine

LAYOUT = SfiLayout()
RUNTIME = build_runtime(LAYOUT)
ORIGIN = LAYOUT.jt_end


def workload(n_stores):
    body = ["    movw r26, r24"]
    for _ in range(n_stores):
        body.append("    st X+, r22")
    return "f:\n" + "\n".join(body) + "\n    ret\n"


def measure(rewriter_cls, verifier_cls, n_stores):
    rewriter = rewriter_cls(RUNTIME.symbols, LAYOUT)
    verifier = verifier_cls(RUNTIME.symbols, LAYOUT)
    module = assemble(workload(n_stores), "m")
    result = rewriter.rewrite(module, ORIGIN, exports=("f",))
    verifier.verify(result.program, result.start, result.end)
    machine = Machine(RUNTIME)
    for w, v in result.program.words.items():
        machine.memory.write_flash_word(w, v)
    machine.core.invalidate_decode_cache()
    machine.call("hb_init", max_cycles=100000)
    # domain 0 owns the target area
    machine.core.set_reg_pair(26, 0x0400)
    machine.core.set_reg_pair(20, 256)
    machine.core.set_reg(18, 1)
    machine.core.set_reg(19, 0)
    machine.call("hb_mmap_mark")
    machine.memory.write_data(LAYOUT.cur_dom, 0)
    cycles = machine.call(result.exports["f"], 0x0400, ("u8", 0x33),
                          max_cycles=500000)
    assert machine.memory.read_data(LAYOUT.fault_code) == 0
    return cycles, result.size_bytes


def build_table():
    rows = []
    results = {}
    for n in (1, 8, 32):
        called_cyc, called_size = measure(Rewriter, Verifier, n)
        inline_cyc, inline_size = measure(InlineRewriter,
                                          TemplateVerifier, n)
        results[n] = (called_cyc, inline_cyc, called_size, inline_size)
        rows.append((n, called_cyc, inline_cyc,
                     "{:+d}".format(inline_cyc - called_cyc),
                     called_size, inline_size,
                     "{:.1f}x".format(inline_size / called_size)))
    table = render_table(
        "Verifier design space: called vs inlined checks",
        ("Stores", "Called cyc", "Inline cyc", "Cycle delta",
         "Called B", "Inline B", "Size ratio"),
        rows,
        note="inlining saves the ~17-cycle call/marshal dispatch per "
             "store but pastes ~130 bytes of template per site — the "
             "paper ships the called design 'to minimize the module "
             "code size'")
    return results, table


# =====================================================================
# Linear verifier vs whole-image CFG analyzer (docs/static-analysis.md)
# =====================================================================
def branchy_workload(n_stores):
    # one conditional branch around every store, so the basic-block
    # count (and the fixpoint's per-block state) grows with the module
    body = ["    movw r26, r24"]
    for i in range(n_stores):
        # r16 is callee-saved, so the constant survives the rewritten
        # store's call into the check stub and shows up in the abstract
        # state of every successor block
        body.append("    ldi r16, {}".format(i & 0xFF))
        body.append("    cpi r22, {}".format(i & 0xFF))
        body.append("    breq skip{}".format(i))
        body.append("    st X+, r22")
        body.append("skip{}:".format(i))
        body.append("    inc r22")
    return "f:\n" + "\n".join(body) + "\n    ret\n"


def measure_analysis_space(n_stores):
    """Admission-time cost of the two analysis designs on the same
    rewritten module: the constant-state linear verifier vs the
    harbor-lint CFG + abstract-interpretation fixpoint (which carries a
    per-block register state instead of a few booleans)."""
    import time
    import tracemalloc

    rewriter = Rewriter(RUNTIME.symbols, LAYOUT)
    verifier = Verifier(RUNTIME.symbols, LAYOUT)
    module = assemble(branchy_workload(n_stores), "m")
    result = rewriter.rewrite(module, ORIGIN, exports=("f",))
    words = [result.program.word(i) for i in range(result.end // 2)]

    def read_word(index):
        return words[index] if index < len(words) else 0xFFFF

    tracemalloc.start()
    t0 = time.perf_counter()
    verifier.verify(result.program, result.start, result.end)
    linear_time = time.perf_counter() - t0
    _cur, linear_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    from repro.analysis.static import absint
    from repro.analysis.static.cfg import RegionCFG
    tracemalloc.start()
    t0 = time.perf_counter()
    cfg = RegionCFG.build(read_word, result.start, result.end, name="m")
    in_states = absint.analyze_cfg(cfg)
    cfg_time = time.perf_counter() - t0
    _cur, cfg_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    state_entries = sum(len(s) for s in in_states.values())
    return {
        "linear_time": linear_time, "linear_peak": linear_peak,
        "cfg_time": cfg_time, "cfg_peak": cfg_peak,
        "blocks": len(cfg.blocks), "state_entries": state_entries,
    }


def build_tables():
    rows = []
    results = {}
    for n in (1, 8, 32):
        m = measure_analysis_space(n)
        results[n] = m
        rows.append((
            n, m["blocks"], m["state_entries"],
            "{:.2f}".format(m["linear_time"] * 1000),
            "{:.2f}".format(m["cfg_time"] * 1000),
            "{:.1f}".format(m["linear_peak"] / 1024),
            "{:.1f}".format(m["cfg_peak"] / 1024)))
    table = render_table(
        "Analyzer design space: linear verifier vs CFG fixpoint",
        ("Stores", "Blocks", "States", "Linear ms", "CFG ms",
         "Linear KiB", "CFG KiB"),
        rows,
        note="the linear scan carries constant state (the paper's "
             "on-node design point); the whole-image analyzer pays a "
             "per-block register state for path-sensitive rules and "
             "bounds — host-side tooling, not node-side admission")
    return results, table


def test_analyzer_design_space(show):
    results, table = build_tables()
    show(table)
    for n, m in results.items():
        assert m["linear_time"] > 0 and m["cfg_time"] > 0
        assert m["blocks"] >= 1
        # the fixpoint's state grows with the module; the linear scan's
        # does not (constant state) — the analyzer must stay host-scale
        assert m["cfg_time"] < 5.0
    assert results[32]["blocks"] > results[1]["blocks"]
    assert results[32]["state_entries"] > results[1]["state_entries"]


def test_verifier_design_space(benchmark, show):
    from conftest import once
    results, table = once(benchmark, build_table)
    show(table)
    for n, (called_cyc, inline_cyc, called_size, inline_size) in \
            results.items():
        assert inline_cyc < called_cyc            # faster
        assert inline_size > 2 * called_size      # much bigger
    # the per-store cycle saving is roughly the dispatch cost
    d1 = results[1][0] - results[1][1]
    d32 = (results[32][0] - results[32][1]) / 32
    assert 5 <= d32 <= 40
    assert abs(d32 - d1) < 15


if __name__ == "__main__":
    print(build_table()[1])
