"""Figure 5 (paper Figure `cross_domain_call`): cross-domain linking —
a call redirected through the callee domain's jump table.

Executable reproduction on the software-only system: module A calls
module B's exported function; the trace shows the redirect through B's
jump-table page, the 5-byte frame on the safe stack, the domain switch,
and the symmetric return.
"""

from repro.analysis.tables import render_table
from repro.asm import assemble
from repro.sfi import SfiSystem


def build_figure():
    system = SfiSystem()
    provider_src = """
    service:                 ; r24:25 += 1
        adiw r24, 1
        ret
    """
    system.load_module(assemble(provider_src, "prov"), "prov",
                       exports=("service",))
    syms = system.kernel_symbols()
    consumer_src = """
    .equ TARGET = {JT_PROV_SERVICE}
    consume:
        ldi r24, 41
        ldi r25, 0
        call TARGET          ; cross-domain call via prov's jump table
        ret
    """.format(**{k: hex(v) for k, v in syms.items()})
    system.load_module(assemble(consumer_src, "cons"), "cons",
                       exports=("consume",))

    layout = system.layout
    mem = system.machine.memory
    events = []

    def snapshot(label):
        events.append((label,
                       mem.read_data(layout.cur_dom),
                       hex(mem.read_word_data(layout.ss_ptr))))

    snapshot("before dispatch (kernel)")
    jt_entry = system.modules["prov"].exports["service"]
    result, cycles = system.call_export("cons", "consume")
    snapshot("after return (kernel)")

    rows = [
        ("kernel", "dispatches `consume` via cons' jump table", ""),
        ("cons (domain 1)", "call 0x{:04x} -> rewritten to hb_xdom_call"
         .format(jt_entry), "frame pushed: [dom=1][stack bound][ret]"),
        ("jump table", "entry 0x{:04x} is `jmp service`".format(jt_entry),
         "callee id = (0x{:04x} - 0x{:04x}) / 512 = {}".format(
             jt_entry, layout.jt_base,
             (jt_entry - layout.jt_base) // 512)),
        ("prov (domain 0)", "service runs, cur_dom = 0", ""),
        ("return", "frame popped; cur_dom, stack bound restored",
         "result = {} (41 + 1), total {} cycles".format(result, cycles)),
    ]
    table = render_table(
        "Figure 5 -- Cross-domain call through the jump table",
        ("Where", "What happens", "Protection state"), rows)
    state = render_table(
        "Observed kernel-visible state",
        ("Point", "cur_domain", "safe stack ptr"), events)
    return (system, result), table + "\n" + state


def test_fig5_cross_domain_call(benchmark, show):
    from conftest import once
    (system, result), figure = once(benchmark, build_figure)
    show(figure)
    assert result == 42
    assert system.cur_domain == 7  # back in the trusted domain
    assert system.machine.read_word(system.layout.ss_ptr) == \
        system.layout.safe_stack_base


if __name__ == "__main__":
    print(build_figure()[1])
