"""Benchmark-suite helpers.

Every bench regenerates one of the paper's tables or figures and prints
it paper-vs-measured (visible with ``pytest benchmarks/ -s`` or via
``python benchmarks/run_all.py``), in addition to timing the harness
with pytest-benchmark.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print *text* to the real terminal even under capture."""
    def _show(text):
        with capsys.disabled():
            print()
            print(text)
    return _show


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer (the heavy
    measurement harnesses are deterministic; repeating them only slows
    the suite)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
