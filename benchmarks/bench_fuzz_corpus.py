"""Hostile-corpus throughput: what one soundness-campaign minute buys.

Runs a short seeded campaign (``repro.soundness``) against both
enforcement systems and reports the admission/outcome mix and the
candidate throughput — the number that sizes the nightly burn-down
budget (10k candidates ≈ 2 minutes on a laptop).

This is a corpus *generator* workload, not a paper table: its cost is
dominated by the admission pipeline (rewrite → verify → elide), so it
is excluded from ``run_all.py --quick``.
"""

import time

from repro.analysis.tables import render_table
from repro.soundness import Campaign

SEED = 2007
COUNT = 120


def build_table(count=COUNT, seed=SEED):
    rows = []
    stats_by_kind = {}
    for kind in ("sfi", "umpu"):
        campaign = Campaign(kind, seed=seed)
        start = time.perf_counter()
        stats = campaign.run(count)
        elapsed = time.perf_counter() - start
        stats_by_kind[kind] = stats
        rows.append((kind, stats.total, stats.executed,
                     sum(stats.rejected.values()),
                     stats.outcomes.get("contained", 0),
                     stats.outcomes.get("clean", 0),
                     len(stats.escapes),
                     "{:.0f}/s".format(stats.total / elapsed)))
    table = render_table(
        "Hostile-corpus campaign ({} candidates/system, seed {})".format(
            count, seed),
        ("system", "total", "executed", "rejected", "contained",
         "clean", "escapes", "throughput"),
        rows,
        note="escapes must be 0: a verified/hardware-checked module "
             "never writes outside its domain")
    return stats_by_kind, table


def test_corpus_has_zero_escapes():
    stats_by_kind, table = build_table(count=60)
    print(table)
    for kind, stats in stats_by_kind.items():
        assert stats.escapes == [], kind
        assert stats.executed > 0, kind


if __name__ == "__main__":
    print(build_table()[1])
