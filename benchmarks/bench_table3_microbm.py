"""Table 3 (paper Table `microbmperf`): CPU-cycle overhead of the
memory-protection routines, AVR extension (UMPU) vs binary rewrite
(SFI).

Regenerates the exact rows the paper prints, measured and paper columns
side by side.  Run ``python benchmarks/bench_table3_microbm.py`` or
``pytest benchmarks/bench_table3_microbm.py -s --benchmark-only``.
"""

from repro.analysis.microbench import (
    PAPER_TABLE3,
    attribution_breakdown,
    measure_sfi,
    measure_table3,
    measure_umpu,
)
from repro.analysis.tables import render_table


def build_table():
    measured = measure_table3()
    rows = []
    for name, (hw, sw) in measured.items():
        paper_hw, paper_sw = PAPER_TABLE3[name]
        rows.append((name, hw, paper_hw, sw, paper_sw))
    body = getattr(measure_sfi, "checker_body", None)
    dispatch = getattr(measure_sfi, "checker_dispatch", None)
    table = render_table(
        "Table 3 -- Overhead (CPU cycles) of Memory Protection Routines",
        ("Function Name", "AVR Ext (meas)", "AVR Ext (paper)",
         "Rewrite (meas)", "Rewrite (paper)"),
        rows,
        note="decomposition: checker body {} cycles (paper's 65 is the "
             "routine itself) + {} cycles call/marshal dispatch; see "
             "EXPERIMENTS.md".format(body, dispatch))
    return measured, table


def build_attribution():
    """Optional per-domain cycle breakdown of the Table-3 workload
    (``run_all.py --attribution``): where the measured cycles actually
    went, per protection domain and category."""
    from repro.trace import flat_report
    _machine, profiler, sink = attribution_breakdown()
    return profiler, flat_report(
        profiler, sink,
        title="Table 3 workload -- per-domain cycle attribution")


def test_table3_microbenchmarks(benchmark, show):
    from conftest import once
    measured, table = once(benchmark, build_table)
    show(table)
    # acceptance criteria (DESIGN.md T3)
    assert measured["Memmap Checker"][0] == 1
    assert measured["Save Ret Addr"][0] == 0
    assert measured["Restore Ret Addr"][0] == 0
    assert measured["Cross Domain Ret"][0] == 5
    for name, (hw, sw) in measured.items():
        assert sw >= 5 * max(hw, 1), name


def test_bench_umpu_measurement(benchmark):
    """Timing of the UMPU measurement harness itself."""
    benchmark.pedantic(measure_umpu, rounds=3, iterations=1)


def test_bench_sfi_measurement(benchmark):
    benchmark.pedantic(measure_sfi, rounds=3, iterations=1)


if __name__ == "__main__":
    print(build_table()[1])
