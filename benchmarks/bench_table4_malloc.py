"""Table 4 (paper Table `malloc_comparison`): CPU-cycle cost of the
dynamic-memory routines with and without protection, measured on the
assembly allocator running on the simulator."""

from repro.analysis.microbench import PAPER_TABLE4, measure_table4
from repro.analysis.tables import render_table


def build_table(alloc_bytes=16, warmup_allocs=4):
    measured = measure_table4(alloc_bytes, warmup_allocs)
    rows = []
    for name, (normal, protected) in measured.items():
        p_normal, p_protected = PAPER_TABLE4[name]
        rows.append((name, normal, p_normal, protected, p_protected,
                     "{:.1f}x".format(protected / normal)))
    table = render_table(
        "Table 4 -- Overhead (CPU cycles) of memory allocation routines",
        ("Function Name", "Normal (meas)", "Normal (paper)",
         "Protected (meas)", "Protected (paper)", "Overhead"),
        rows,
        note="our first-fit allocator is simpler than SOS's, so absolute"
             " cycles are lower; the protected/normal shape is preserved")
    return measured, table


def test_table4_allocation(benchmark, show):
    from conftest import once
    measured, table = once(benchmark, build_table)
    show(table)
    for name, (normal, protected) in measured.items():
        assert protected > normal, name
    rel = {n: p / norm for n, (norm, p) in measured.items()}
    assert rel["malloc"] < rel["free"]
    assert rel["malloc"] < rel["change_own"]


def test_bench_allocation_sizes(benchmark, show):
    """Sweep allocation sizes: the protected overhead grows with the
    number of blocks to mark (the memmap loop is per block)."""
    from conftest import once

    def sweep():
        return {size: measure_table4(alloc_bytes=size)["malloc"]
                for size in (8, 32, 64, 128)}

    results = once(benchmark, sweep)
    rows = [(size, n, p, p - n) for size, (n, p) in results.items()]
    show(render_table(
        "malloc cycles vs allocation size (ablation)",
        ("Bytes", "Normal", "Protected", "Delta"), rows))
    deltas = [p - n for (n, p) in results.values()]
    assert deltas == sorted(deltas), "marking cost must grow with size"


if __name__ == "__main__":
    print(build_table()[1])
