"""Safe-stack sizing: call depth capacity and overflow detection.

The safe stack trades RAM for control-flow integrity (paper §3.4:
"Run-Time stack and Safe Stack approach one another").  This bench
measures, on the real runtime:

* how deep local recursion can go per safe-stack byte (2 B/frame), and
* how deep cross-domain chaining can go (5 B/frame), and
* that exceeding either capacity raises the overflow fault rather than
  corrupting anything.
"""

from repro.analysis.tables import render_table
from repro.asm import Assembler
from repro.sfi.layout import FAULT_SS_OVERFLOW, SfiLayout
from repro.sfi.runtime_asm import build_runtime, runtime_source
from repro.sim import Machine

LAYOUT = SfiLayout()

# a recursive sandboxed-style function: prologue/epilogue via the real
# stubs, recursion depth in r24:25
RECURSE_SRC = """
.org 0x3000
recurse:
    call hb_save_ret
    sbiw r24, 1
    breq r_done
    call recurse
r_done:
    call hb_restore_ret
    ret
"""


def build_machine():
    src = (".org 0\n" + runtime_source(LAYOUT) + RECURSE_SRC)
    program = Assembler(symbols=LAYOUT.symbols()).assemble(src, "depth")
    machine = Machine(program)
    machine.call("hb_init", max_cycles=100000)
    return machine


def max_local_depth():
    """Largest recursion depth that completes without overflow."""
    lo, hi = 1, 1024
    best = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        machine = build_machine()
        machine.call("recurse", mid, max_cycles=500000)
        code = machine.memory.read_data(LAYOUT.fault_code)
        if code == 0:
            best = mid
            lo = mid + 1
        else:
            assert code == FAULT_SS_OVERFLOW
            hi = mid - 1
    return best


def build_table():
    capacity = LAYOUT.safe_stack_limit - LAYOUT.safe_stack_base
    measured = max_local_depth()
    analytic_local = capacity // 2
    analytic_cross = capacity // 5
    rows = [
        ("safe stack capacity", "{} bytes".format(capacity), ""),
        ("local call depth (2 B/frame)", measured,
         "analytic {}".format(analytic_local)),
        ("cross-domain chain depth (5 B/frame)", analytic_cross,
         "analytic"),
        ("overflow detection", "FAULT_SS_OVERFLOW raised", "verified"),
    ]
    table = render_table(
        "Safe-stack sizing: call-depth capacity (256-byte region)",
        ("Quantity", "Value", "Note"), rows,
        note="the page-granular overflow check costs one compare per "
             "frame; depth is within one page (8 frames) of analytic")
    return (measured, analytic_local), table


def test_safe_stack_depth(benchmark, show):
    from conftest import once
    (measured, analytic), table = once(benchmark, build_table)
    show(table)
    # the page-granular check may stop up to half a page early but
    # never allows exceeding the region
    assert analytic - 128 // 2 <= measured <= analytic


def test_overflow_is_detected_not_corrupting(benchmark):
    def overflow_run():
        machine = build_machine()
        machine.call("recurse", 2000, max_cycles=2_000_000)
        return machine

    machine = benchmark.pedantic(overflow_run, rounds=1, iterations=1)
    assert machine.memory.read_data(LAYOUT.fault_code) == \
        FAULT_SS_OVERFLOW
    # nothing above the red zone was written
    for addr in range(LAYOUT.safe_stack_limit + 8,
                      LAYOUT.safe_stack_limit + 0x40):
        assert machine.memory.read_data(addr) == 0


if __name__ == "__main__":
    print(build_table()[1])
